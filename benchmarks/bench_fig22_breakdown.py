"""Figure 22: speedup breakdown of LoRAFusion's components (70B, 4 GPUs).

Paper stack, normalised to Megatron 1F1B PP = 1.00x:
  + FusedLoRA kernel only                      1.13x
  multi-LoRA zero-bubble PP (naive kernels)    1.50x
  + FusedMultiLoRA                             1.72x
  balanced scheduling without fusion           1.57x
  full LoRAFusion                              2.05x
"""

from benchmarks.common import fmt_row, h100_cluster, make_jobs, write_table
from repro.distsim import run_lorafusion, run_megatron_pp, run_mlora
from repro.models import LLAMA3_70B
from repro.planner import propose_capacity
from repro.scheduler import SchedulerConfig

PAPER = {
    "1F1B PP": 1.00,
    "1F1B PP + FusedLoRA": 1.13,
    "Multi-LoRA ZB PP": 1.50,
    "Multi-LoRA ZB PP + FusedMultiLoRA": 1.72,
    "Balanced Multi-LoRA ZB PP": 1.57,
    "Balanced + FusedMultiLoRA (full)": 2.05,
}


def sweep():
    jobs = make_jobs(["mixed"] * 4, samples=24)
    cluster = h100_cluster(4)
    report = propose_capacity(jobs, LLAMA3_70B, cluster)
    cap = report.best_capacity
    config = SchedulerConfig(capacity=cap, num_stages=4, milp_timeout=0.3)
    rates = {
        "1F1B PP": run_megatron_pp(jobs, LLAMA3_70B, cluster,
                                   capacity=cap).tokens_per_second,
        "1F1B PP + FusedLoRA": run_megatron_pp(
            jobs, LLAMA3_70B, cluster, capacity=cap,
            strategy="fused").tokens_per_second,
        "Multi-LoRA ZB PP": run_mlora(jobs, LLAMA3_70B, cluster,
                                      capacity=cap).tokens_per_second,
        "Multi-LoRA ZB PP + FusedMultiLoRA": run_lorafusion(
            jobs, LLAMA3_70B, cluster, use_scheduler=False,
            capacity=cap).tokens_per_second,
        "Balanced Multi-LoRA ZB PP": run_lorafusion(
            jobs, LLAMA3_70B, cluster, scheduler_config=config,
            use_fused_kernels=False, capacity=cap).tokens_per_second,
        "Balanced + FusedMultiLoRA (full)": run_lorafusion(
            jobs, LLAMA3_70B, cluster, scheduler_config=config,
            capacity=cap).tokens_per_second,
    }
    return rates


def test_fig22_breakdown(benchmark):
    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rates["1F1B PP"]
    widths = [36, 8, 10]
    lines = [
        "Figure 22 -- speedup breakdown, LLaMa-70B on 4xH100 (Mixed)",
        fmt_row(["configuration", "paper", "measured"], widths),
    ]
    measured = {}
    for name, paper in PAPER.items():
        measured[name] = rates[name] / base
        lines.append(fmt_row([name, f"{paper:.2f}x",
                              f"{measured[name]:.2f}x"], widths))
    write_table("fig22_breakdown", lines)

    # The stack must be ordered exactly as the paper's:
    assert measured["1F1B PP + FusedLoRA"] > 1.05
    assert measured["Multi-LoRA ZB PP"] > measured["1F1B PP + FusedLoRA"]
    assert (measured["Multi-LoRA ZB PP + FusedMultiLoRA"]
            > measured["Multi-LoRA ZB PP"])
    assert (measured["Balanced Multi-LoRA ZB PP"]
            > measured["Multi-LoRA ZB PP"])
    assert (measured["Balanced + FusedMultiLoRA (full)"]
            == max(measured.values()))
    assert 1.5 <= measured["Balanced + FusedMultiLoRA (full)"] <= 2.4
