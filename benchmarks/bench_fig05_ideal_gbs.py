"""Figure 5: ideal throughput of LLaMa-70B on 4 H100s vs. global batch size.

Uniform fixed-length samples ("ideal" = no imbalance).  Paper: growing GBS
4 -> 32 lifts throughput 1.84x under FSDP and 1.45x under PP.
"""

from benchmarks.common import fmt_row, h100_cluster, write_table
from repro.data.dataset import FinetuneDataset, Sample
from repro.distsim import run_megatron_fsdp, run_megatron_pp
from repro.models import LLAMA3_70B
from repro.scheduler import AdapterJob

SEQ_LEN = 1024
GBS_SWEEP = (4, 8, 16, 32)


def uniform_job(gbs, batches=2):
    samples = [Sample(0, i, SEQ_LEN) for i in range(gbs * batches)]
    return [AdapterJob(0, FinetuneDataset(0, samples), gbs)]


def sweep():
    cluster = h100_cluster(4)
    fsdp, pp = {}, {}
    for gbs in GBS_SWEEP:
        jobs = uniform_job(gbs)
        fsdp[gbs] = run_megatron_fsdp(jobs, LLAMA3_70B, cluster).tokens_per_second
        pp[gbs] = run_megatron_pp(
            jobs, LLAMA3_70B, cluster, capacity=16384, microbatch_samples=1
        ).tokens_per_second
    return fsdp, pp


def test_fig05_ideal_gbs(benchmark):
    fsdp, pp = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [6, 14, 10, 14, 10]
    lines = [
        "Figure 5 -- ideal LLaMa-70B throughput on 4xH100 vs global batch size",
        fmt_row(["GBS", "FSDP tok/s", "speedup", "PP tok/s", "speedup"],
                widths),
    ]
    for gbs in GBS_SWEEP:
        lines.append(fmt_row([
            gbs, f"{fsdp[gbs]:.0f}", f"{fsdp[gbs]/fsdp[4]:.2f}x",
            f"{pp[gbs]:.0f}", f"{pp[gbs]/pp[4]:.2f}x",
        ], widths))
    lines += [
        "",
        f"paper: FSDP 1.84x, PP 1.45x at GBS=32; "
        f"measured: FSDP {fsdp[32]/fsdp[4]:.2f}x, PP {pp[32]/pp[4]:.2f}x",
    ]
    write_table("fig05_ideal_gbs", lines)

    # Both systems improve monotonically with GBS; gains in a sane band.
    assert fsdp[4] < fsdp[8] < fsdp[16] < fsdp[32]
    assert pp[4] < pp[8] < pp[16] < pp[32]
    assert 1.2 <= fsdp[32] / fsdp[4] <= 2.4
    assert 1.2 <= pp[32] / pp[4] <= 2.0
