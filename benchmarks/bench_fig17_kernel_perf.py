"""Figure 17: FusedLoRA / FusedMultiLoRA kernel throughput vs Torch LoRA.

Paper claims (C2): FusedLoRA averages 1.27x (up to 1.39x); FusedMultiLoRA
averages 1.17x (up to 1.24x); the multi variant's extra cost sits in the
backward pass (gradient accumulation across adapters).
"""

from benchmarks.common import fmt_row, write_table
from repro.core import LoRAShape, lora_profiles
from repro.gpu import H100, simulate_kernel_sequence

TOKENS = (2048, 4096, 6144, 8192)
DIMS = (4096, 5120, 8192)


def pass_time(strategy, m, d, num_adapters=1):
    shape = LoRAShape(m=m, k=d, n=d, r=16, num_adapters=num_adapters)
    total = 0.0
    for direction in ("forward", "backward"):
        total += simulate_kernel_sequence(
            lora_profiles(strategy, direction, shape), H100
        ).total_time
    return total


def sweep():
    speedups = {}
    for d in DIMS:
        for m in TOKENS:
            torch = pass_time("torch", m, d)
            speedups[("fused", d, m)] = torch / pass_time("fused", m, d)
            speedups[("multi", d, m)] = torch / pass_time(
                "fused_multi", m, d, num_adapters=4)
    return speedups


def test_fig17_kernel_perf(benchmark):
    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [10, 8] + [8] * len(TOKENS)
    lines = [
        "Figure 17 -- fused kernel speedup over Torch LoRA (fwd+bwd, H100)",
        fmt_row(["kernel", "N=K"] + [str(t) for t in TOKENS], widths),
    ]
    for kernel in ("fused", "multi"):
        for d in DIMS:
            lines.append(fmt_row(
                [kernel, d]
                + [f"{speedups[(kernel, d, m)]:.2f}x" for m in TOKENS],
                widths))
    fused_values = [v for (k, _, _), v in speedups.items() if k == "fused"]
    multi_values = [v for (k, _, _), v in speedups.items() if k == "multi"]
    avg_fused = sum(fused_values) / len(fused_values)
    avg_multi = sum(multi_values) / len(multi_values)
    lines += [
        "",
        f"FusedLoRA      avg {avg_fused:.2f}x max {max(fused_values):.2f}x "
        "(paper: 1.27x avg, 1.39x max)",
        f"FusedMultiLoRA avg {avg_multi:.2f}x max {max(multi_values):.2f}x "
        "(paper: 1.17x avg, 1.24x max)",
    ]
    write_table("fig17_kernel_perf", lines)

    assert 1.15 <= avg_fused <= 1.45
    assert 1.05 <= avg_multi <= 1.40
    assert avg_multi < avg_fused  # multi pays the gradient-routing tax
    assert all(v > 1.0 for v in fused_values + multi_values)
    # Speedup shrinks at the largest base dim (base GEMM dominates).
    fused_by_dim = {
        d: sum(speedups[("fused", d, m)] for m in TOKENS) / len(TOKENS)
        for d in DIMS
    }
    assert fused_by_dim[8192] < fused_by_dim[4096]
