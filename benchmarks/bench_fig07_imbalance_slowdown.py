"""Figure 7: practical LoRA fine-tuning vs. the fixed-length ideal.

Top row of the figure: practical runs on variable-length data reach only
~70-100% of the fixed-length ideal at the same GBS (up to ~30% slowdown).
Bottom row: against the GBS=32 ideal, small practical batches leave up to
2.28x on the table -- the multi-LoRA opportunity.
"""

import numpy as np

from benchmarks.common import fmt_row, h100_cluster, write_table
from repro.data import get_distribution
from repro.data.dataset import FinetuneDataset, Sample
from repro.distsim import run_megatron_fsdp, run_megatron_pp
from repro.models import LLAMA3_70B
from repro.scheduler import AdapterJob

GBS_SWEEP = (4, 8, 16, 32)
BATCHES = 2


def practical_job(dataset, gbs):
    rng = np.random.default_rng(17)
    lengths = get_distribution(dataset).sample(gbs * BATCHES, rng)
    samples = [Sample(0, i, int(l)) for i, l in enumerate(lengths)]
    return [AdapterJob(0, FinetuneDataset(0, samples), gbs)], lengths


def ideal_job(mean_len, gbs):
    samples = [Sample(0, i, int(mean_len)) for i in range(gbs * BATCHES)]
    return [AdapterJob(0, FinetuneDataset(0, samples), gbs)]


def run_pair(dataset):
    cluster = h100_cluster(4)
    rows = {}
    for gbs in GBS_SWEEP:
        jobs, lengths = practical_job(dataset, gbs)
        ideal = ideal_job(lengths.mean(), gbs)
        fsdp_prac = run_megatron_fsdp(jobs, LLAMA3_70B, cluster)
        fsdp_ideal = run_megatron_fsdp(ideal, LLAMA3_70B, cluster)
        pp_prac = run_megatron_pp(jobs, LLAMA3_70B, cluster, capacity=16384)
        pp_ideal = run_megatron_pp(ideal, LLAMA3_70B, cluster, capacity=16384)
        rows[gbs] = {
            "fsdp": fsdp_prac.tokens_per_second / fsdp_ideal.tokens_per_second,
            "pp": pp_prac.tokens_per_second / pp_ideal.tokens_per_second,
            "fsdp_ideal": fsdp_ideal.tokens_per_second,
            "pp_ideal": pp_ideal.tokens_per_second,
        }
    return rows


def sweep():
    return {name: run_pair(name) for name in ("cnn_dailymail", "mixed")}


def test_fig07_imbalance_slowdown(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [14, 5, 12, 12]
    lines = [
        "Figure 7 -- practical throughput as % of the fixed-length ideal",
        fmt_row(["dataset", "GBS", "FSDP %ideal", "PP %ideal"], widths),
    ]
    for name, rows in data.items():
        for gbs in GBS_SWEEP:
            lines.append(fmt_row(
                [name, gbs, f"{rows[gbs]['fsdp']:.0%}",
                 f"{rows[gbs]['pp']:.0%}"], widths))
    # Bottom subplots: headroom vs the GBS=32 ideal.
    lines.append("")
    headrooms = []
    for name, rows in data.items():
        for system in ("fsdp", "pp"):
            practical_small = rows[4][system] * rows[4][f"{system}_ideal"]
            headroom = rows[32][f"{system}_ideal"] / practical_small
            headrooms.append(headroom)
            lines.append(
                f"{name} {system}: GBS=32 ideal is {headroom:.2f}x the "
                "GBS=4 practical run (paper: up to 2.28x)"
            )
    write_table("fig07_imbalance_slowdown", lines)

    for name, rows in data.items():
        for gbs in GBS_SWEEP:
            assert rows[gbs]["fsdp"] <= 1.02
            assert rows[gbs]["pp"] <= 1.02
    # Some configuration shows a double-digit slowdown, and the total
    # multi-LoRA headroom is roughly the paper's 2.3x.
    worst = min(min(r[g]["fsdp"], r[g]["pp"]) for r in data.values()
                for g in GBS_SWEEP)
    assert worst < 0.92
    assert 1.5 <= max(headrooms) <= 3.2
