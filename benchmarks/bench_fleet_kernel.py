"""Event kernel vs lockstep fleet loop: same trace, wall-clock speedup.

The lockstep loop (``ReplicaSetConfig(kernel="lockstep")``) advances the
whole fleet one wave at a time: every iteration rescans every replica to
find the laggard, rebuilds every router view on every arrival, and
recomputes every load on every rebalance probe -- O(fleet) work per
event even when one replica changed.  The discrete-event kernel
(``kernel="event"``, the default) pops one timestamped event at a time
off a global heap and touches only the replicas that event names;
router views, load vectors, and cost prices are cached and invalidated
per replica, and the hot paths (batch pricing, ordering keys, router
scoring) are vectorized with numpy.

Both kernels replay the *same* Poisson trace -- thousands of one-shot
tenants across hundreds of replicas -- and this bench asserts their
results are bit-identical (makespan, every per-job record) before
timing them.  The gate: the event kernel must beat lockstep by
``SPEEDUP_FLOOR`` x on the large scenario and sustain at least
``EVENTS_PER_SEC_FLOOR`` processed events per wall second
(``scripts/check_bench_results.py`` re-checks the committed table).

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_fleet_kernel.py --seed 13

Pass ``--profile`` to additionally print the top-20 cumulative-time
functions of a cProfile capture of each kernel's run.
"""

import argparse
import cProfile
import pstats
import time

from benchmarks.common import fmt_row, write_table
from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CostAwareRouting,
    CostEstimator,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

NUM_STAGES = 2
CAPACITY = 8192
SLOTS = 4
DEFAULT_SEED = 7
#: Distinct sample-length values across the whole tenant population.
#: Jobs sharing a length share a ``TenantProfile``, so the cost model's
#: per-profile memos stay warm and the bench times the *fleet loop*,
#: not cold pricing.
NUM_PROFILES = 16
#: Offered load: high enough that replicas stay backlogged, so the
#: lockstep loop's O(fleet) rescans dominate its runtime.
RATE = 400.0
#: Seconds-skew rebalance trigger -- keeps the rebalance probe on every
#: event's hot path (the check that forces lockstep to recompute every
#: replica's load; the balanced trace rarely trips an actual move --
#: migration/drain equivalence is the equivalence suite's job).
MIGRATION_TIME_THRESHOLD = 30.0
#: (name, number of one-batch tenant jobs, fleet size).
SCENARIOS = (
    ("fleet-64", 2000, 64),
    ("fleet-512", 3000, 512),
)
#: Minimum event-kernel wall-clock advantage on the largest scenario.
SPEEDUP_FLOOR = 10.0
#: Minimum processed events per wall second on every scenario.
EVENTS_PER_SEC_FLOOR = 5000.0

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)


def make_jobs(num_jobs, seed):
    """One-global-batch tenants drawn from a small pool of lengths."""
    import numpy as np

    rng = np.random.default_rng(seed)
    pool = rng.integers(64, 512, size=NUM_PROFILES)
    return [
        AdapterJob(
            a,
            FinetuneDataset(a, [Sample(a, 0, int(pool[a % NUM_PROFILES]))]),
            1,
        )
        for a in range(num_jobs)
    ]


def serve(kernel, num_jobs, num_replicas, seed, profile=False):
    """Run one kernel over the scenario trace; return (result, seconds)."""
    estimator = CostEstimator.for_scheduler(COST, SCHED)
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=1,
            admission=SlotAdmission(SLOTS),
            estimator=estimator,
        ),
        routing=CostAwareRouting(estimator),
        migration_time_threshold=MIGRATION_TIME_THRESHOLD,
        kernel=kernel,
    )
    executors = [
        StreamingSimExecutor(COST, NUM_STAGES) for _ in range(num_replicas)
    ]
    workload = poisson_workload(make_jobs(num_jobs, seed + 10), rate=RATE,
                                rng=seed)
    replica_set = ReplicaSet(executors, config)
    profiler = cProfile.Profile() if profile else None
    if profiler is not None:
        profiler.enable()
    start = time.perf_counter()
    result = replica_set.run(workload)
    elapsed = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
        print(f"\n-- cProfile top 20 ({kernel}, {num_jobs} jobs, "
              f"{num_replicas} replicas) --")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return result, elapsed


def fingerprint(result):
    """The per-job outcome stream both kernels must reproduce exactly."""
    return {
        aid: (r.arrival_time, r.admit_time, r.first_scheduled_time,
              r.finish_time, r.replica, r.migrations, r.num_batches)
        for aid, r in result.records.items()
    }


def sweep(seed=DEFAULT_SEED, profile=False):
    results = {}
    for name, num_jobs, num_replicas in SCENARIOS:
        event, event_s = serve("event", num_jobs, num_replicas, seed,
                               profile=profile)
        lockstep, lockstep_s = serve("lockstep", num_jobs, num_replicas,
                                     seed, profile=profile)
        # Equivalence spot-check before any timing claim: the two loops
        # must be the same simulation, not two similar ones.
        assert event.makespan == lockstep.makespan
        assert fingerprint(event) == fingerprint(lockstep)
        results[name] = {
            "num_jobs": num_jobs,
            "num_replicas": num_replicas,
            "event_s": event_s,
            "lockstep_s": lockstep_s,
            "events": sum(event.events_processed.values()),
        }
    return results


def report(results, seed):
    widths = [11, 6, 9, 8, 11, 8, 8, 9]
    lines = [
        f"Event kernel vs lockstep fleet loop (seed {seed}, Poisson rate "
        f"{RATE}, {SLOTS} slots/replica, {NUM_STAGES}-stage pipelines, "
        f"LLaMa-8B)",
        fmt_row(
            ["scenario", "jobs", "replicas", "event_s", "lockstep_s",
             "speedup", "events", "events/s"],
            widths,
        ),
    ]
    for name, row in results.items():
        lines.append(
            fmt_row(
                [
                    name,
                    row["num_jobs"],
                    row["num_replicas"],
                    f"{row['event_s']:.2f}",
                    f"{row['lockstep_s']:.2f}",
                    f"{row['lockstep_s'] / row['event_s']:.1f}x",
                    row["events"],
                    f"{row['events'] / row['event_s']:.0f}",
                ],
                widths,
            )
        )
    write_table("fleet_kernel", lines)


def check(results):
    for name, row in results.items():
        # Every scenario must sustain the event-throughput floor.
        assert row["events"] / row["event_s"] >= EVENTS_PER_SEC_FLOOR, name
    largest = results[SCENARIOS[-1][0]]
    speedup = largest["lockstep_s"] / largest["event_s"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"event kernel speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x gate"
    )


def test_fleet_kernel(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload + arrival seed")
    parser.add_argument("--profile", action="store_true",
                        help="print cProfile top-20 for each kernel run")
    args = parser.parse_args()
    results = sweep(args.seed, profile=args.profile)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
