"""Cost-model-driven control plane vs batch-count heuristics.

Beyond the paper's offline evaluation: three serving scenarios where
pricing decisions in expected *seconds* (``repro/serve/costing.py``)
beats counting global batches.

1. **Routing.**  A heterogeneous two-replica trace mixing heavy tenants
   (few global batches of long wikisum samples) with light ones (many
   batches of short xsum samples) -- exactly the shape that makes
   outstanding-batch counts lie.  ``LeastLoadedRouting`` piles the
   heavies onto one replica because their batch counts look small;
   ``CostAwareRouting`` balances expected seconds and wins on mean JCT.
2. **Deadline admission.**  An overloaded deadline trace where the
   earliest deadlines belong to hopeless jobs.  Plain EDF dutifully
   serves the doomed first and cascades misses onto feasible tenants;
   the ``DeadlineFeasibilityAdmission`` gate sheds infeasible arrivals
   (terminal ``rejected`` state) so the feasible ones finish on time --
   lower served miss rate and more deadline-goodput from the same
   pipeline.
3. **Adaptive window.**  A stable single-tenant horizon under the
   ``AdaptiveWindowConfig`` control loop: the window grows while the
   tenant set is quiet, cutting replans vs the static window at no JCT
   cost.

Every scenario runs with the estimator on, and the table records the
per-run calibration ratio (predicted / observed wave seconds); each must
stay within the documented ``CALIBRATION_TOLERANCE``.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_cost_routing.py --seed 13
"""

import argparse

from benchmarks.common import fmt_row, write_table
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CALIBRATION_TOLERANCE,
    AdaptiveWindowConfig,
    CostAwareRouting,
    CostEstimator,
    DeadlineFeasibilityAdmission,
    DeadlineOrdering,
    JobOutcome,
    LeastLoadedRouting,
    OnlineOrchestrator,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 4
CAPACITY = 8192
DEFAULT_SEED = 7
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)
ESTIMATOR = CostEstimator.for_scheduler(COST, SCHED)


def heterogeneous_trace(seed):
    """Heavies (few batches, long samples) + lights (many, short).

    Batch counts are anti-correlated with wall-clock cost on purpose:
    each heavy owes 2 global batches of wikisum-length samples, each
    light 8 global batches of xsum-length ones, so a batch-counting
    router systematically underestimates the heavies.
    """
    jobs = []
    for a in range(8):
        heavy = a % 2 == 0
        dataset = synthetic_dataset(
            a, "wikisum" if heavy else "xsum", 32, seed=seed,
        )
        gbs = 16 if heavy else 4
        jobs.append(
            ServeJob(job=AdapterJob(a, dataset, gbs), arrival_time=0.05 * a)
        )
    return jobs


def route(workload, routing):
    # Two slots per replica: misplacement shows up as queueing, which is
    # what JCT punishes.
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=2,
            admission=SlotAdmission(2),
            estimator=ESTIMATOR,
        ),
        routing=routing,
    )
    executors = [StreamingSimExecutor(COST, NUM_STAGES) for _ in range(2)]
    result = ReplicaSet(executors, config).run(workload)
    assert result.violations == 0
    return result


def deadline_trace(seed):
    """All-deadline trace whose *earliest* deadlines are hopeless.

    Three doomed heavies (deadline far below their own service time)
    plus five feasible lights.  EDF ranks the doomed first -- worst
    case for an admission policy that never says no.
    """
    jobs = []
    for a in range(3):
        dataset = synthetic_dataset(a, "wikisum", 48, seed=seed)
        job = AdapterJob(a, dataset, 8)
        jobs.append(
            ServeJob(job=job, arrival_time=0.01 * a,
                     deadline=0.2 + 0.01 * a)  # << its own service time
        )
    for a in range(3, 8):
        dataset = synthetic_dataset(a, "xsum", 16, seed=seed)
        job = AdapterJob(a, dataset, 8)
        solo = ESTIMATOR.job_seconds(job)
        jobs.append(
            ServeJob(job=job, arrival_time=0.01 * a,
                     deadline=0.01 * a + 8 * solo)
        )
    return jobs


def serve_deadlines(workload, gated):
    admission = SlotAdmission(2)
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=1,
        admission=(
            DeadlineFeasibilityAdmission(admission) if gated else admission
        ),
        ordering=DeadlineOrdering(),
        estimator=ESTIMATOR,
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    return result


def serve_window(seed, adaptive):
    dataset = synthetic_dataset(0, "mixed", 96, seed=seed)
    workload = [ServeJob(job=AdapterJob(0, dataset, 8), arrival_time=0.0)]
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=1,
        estimator=ESTIMATOR,
        adaptive_window=(
            AdaptiveWindowConfig(min_batches=1, max_batches=6)
            if adaptive else None
        ),
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    return result


def sweep(seed=DEFAULT_SEED):
    trace = heterogeneous_trace(seed)
    deadlines = deadline_trace(seed)
    return {
        "least-loaded-x2": route(trace, LeastLoadedRouting()),
        "cost-aware-x2": route(trace, CostAwareRouting(ESTIMATOR)),
        "edf": serve_deadlines(deadlines, gated=False),
        "edf-gated": serve_deadlines(deadlines, gated=True),
        "static-w1": serve_window(seed, adaptive=False),
        "adaptive-window": serve_window(seed, adaptive=True),
    }


def report(results, seed):
    widths = [16, 9, 9, 9, 11, 8, 7, 8, 6]
    lines = [
        "Cost-model-driven control plane vs batch-count heuristics "
        f"(seed {seed}, {NUM_STAGES}-stage pipeline, LLaMa-8B, "
        f"calibration tolerance {CALIBRATION_TOLERANCE})",
        fmt_row(
            ["scenario", "makespan", "meanJCT", "missrate", "servedmiss",
             "goodput", "reject", "replans", "calib"],
            widths,
        ),
    ]
    for name, result in results.items():
        ratio = result.calibration_ratio()
        lines.append(
            fmt_row(
                [
                    name,
                    f"{result.makespan:.2f}",
                    f"{result.mean_completion_time():.3f}",
                    f"{result.deadline_miss_rate():.2f}",
                    f"{result.served_deadline_miss_rate():.2f}",
                    result.deadline_goodput(),
                    result.rejected,
                    result.replans,
                    "-" if ratio is None else f"{ratio:.2f}",
                ],
                widths,
            )
        )
    write_table("cost_routing", lines)


def check(results):
    least, aware = results["least-loaded-x2"], results["cost-aware-x2"]
    # Routing claim: pricing placements in seconds beats batch counts on
    # the heterogeneous trace -- no worse mean JCT, same work served.
    assert aware.mean_completion_time() <= least.mean_completion_time()
    assert aware.total_tokens == least.total_tokens
    for result in (least, aware):
        assert all(r.finish_time is not None for r in result.records.values())

    edf, gated = results["edf"], results["edf-gated"]
    # Admission claim: shedding infeasible arrivals lowers the miss rate
    # among served jobs and raises deadline-goodput -- the same pipeline
    # stops wasting time on doomed work.
    assert gated.rejected >= 1
    assert gated.served_deadline_miss_rate() < edf.deadline_miss_rate()
    assert gated.deadline_goodput() >= edf.deadline_goodput()
    # Every non-rejected job in the gated run still finishes.
    assert all(
        r.finish_time is not None
        for r in gated.records.values()
        if r.outcome is not JobOutcome.REJECTED
    )

    static, adaptive = results["static-w1"], results["adaptive-window"]
    # Window claim: a stable tenant set earns bigger windows -- fewer
    # replans at (approximately) no makespan cost.
    assert adaptive.replans < static.replans
    assert adaptive.makespan <= 1.05 * static.makespan

    # Estimator honesty: every run's predicted/observed ratio stays
    # within the documented tolerance.
    for name, result in results.items():
        ratio = result.calibration_ratio()
        assert ratio is not None, name
        assert 1 / CALIBRATION_TOLERANCE <= ratio <= CALIBRATION_TOLERANCE, (
            name, ratio,
        )


def test_cost_routing(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="dataset seed for the trace tenants")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
