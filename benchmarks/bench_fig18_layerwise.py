"""Figure 18: fused-kernel speedup at decoder-layer granularity.

The layer includes attention, norms, rotary, and residuals that fusion
does not touch, so the speedup dilutes relative to Figure 17.  Paper:
FusedLoRA 1.21x average (up to 1.30x); FusedMultiLoRA 1.13x (up to 1.17x).
"""

from benchmarks.common import fmt_row, write_table
from repro.gpu import H100
from repro.models import LLAMA3_70B, LLAMA3_8B, QWEN25_32B, LayerCostModel
from repro.models.layer_costs import MicrobatchShape

BATCH_SIZES = (4, 8, 12, 16, 20)
SEQ_LEN = 512
MODELS = {m.name: m for m in (LLAMA3_8B, QWEN25_32B, LLAMA3_70B)}


def layer_pass_time(model, strategy, batch_size, num_adapters=1):
    cost = LayerCostModel(model, H100, strategy=strategy)
    shape = MicrobatchShape.from_lengths([SEQ_LEN] * batch_size,
                                         num_adapters=num_adapters)
    return (cost.layer_time(shape, "forward")
            + cost.layer_time(shape, "backward"))


def sweep():
    speedups = {}
    for name, model in MODELS.items():
        for bs in BATCH_SIZES:
            torch = layer_pass_time(model, "torch", bs)
            speedups[("fused", name, bs)] = torch / layer_pass_time(
                model, "fused", bs)
            speedups[("multi", name, bs)] = torch / layer_pass_time(
                model, "fused_multi", bs, num_adapters=4)
    return speedups


def test_fig18_layerwise(benchmark):
    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [8, 14] + [7] * len(BATCH_SIZES)
    lines = [
        f"Figure 18 -- decoder-layer speedup (seq len {SEQ_LEN}, fwd+bwd)",
        fmt_row(["kernel", "model"] + [f"bs{b}" for b in BATCH_SIZES], widths),
    ]
    for kernel in ("fused", "multi"):
        for name in MODELS:
            lines.append(fmt_row(
                [kernel, name.split("-")[0] + name[-4:]]
                + [f"{speedups[(kernel, name, b)]:.2f}" for b in BATCH_SIZES],
                widths))
    fused = [v for (k, _, _), v in speedups.items() if k == "fused"]
    multi = [v for (k, _, _), v in speedups.items() if k == "multi"]
    avg_fused, avg_multi = sum(fused) / len(fused), sum(multi) / len(multi)
    lines += [
        "",
        f"FusedLoRA layer-wise  avg {avg_fused:.2f}x max {max(fused):.2f}x "
        "(paper: 1.21x avg, 1.30x max)",
        f"FusedMultiLoRA layer  avg {avg_multi:.2f}x max {max(multi):.2f}x "
        "(paper: 1.13x avg, 1.17x max)",
    ]
    write_table("fig18_layerwise", lines)

    assert 1.10 <= avg_fused <= 1.40
    assert 1.05 <= avg_multi <= 1.30
    assert avg_multi < avg_fused
    # Layer-level gains are diluted versus the kernel-level Figure 17.
    from benchmarks.bench_fig17_kernel_perf import sweep as kernel_sweep

    kernel = kernel_sweep()
    kernel_avg = sum(
        v for (k, _, _), v in kernel.items() if k == "fused"
    ) / 12
    assert avg_fused <= kernel_avg + 0.02
