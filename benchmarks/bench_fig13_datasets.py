"""Figure 13: sample-length distributions of the three datasets.

Paper: XSum mean ~500, CNN/DailyMail ~900, WikiSum ~2200 with a long tail;
the curves motivate both the packing benches and the Het workload.
"""

import numpy as np

from benchmarks.common import fmt_row, write_table
from repro.data import CNN_DAILYMAIL, WIKISUM, XSUM

N = 20000


def sample_stats():
    stats = {}
    for dist in (XSUM, CNN_DAILYMAIL, WIKISUM):
        lengths = dist.sample(N, np.random.default_rng(23))
        stats[dist.name] = {
            "mean": lengths.mean(),
            "p10": np.percentile(lengths, 10),
            "p50": np.percentile(lengths, 50),
            "p90": np.percentile(lengths, 90),
            "max": lengths.max(),
        }
    return stats


def test_fig13_datasets(benchmark):
    stats = benchmark.pedantic(sample_stats, rounds=1, iterations=1)
    widths = [15, 8, 8, 8, 8, 8]
    lines = [
        "Figure 13 -- dataset length distributions (20K synthetic samples)",
        fmt_row(["dataset", "mean", "p10", "p50", "p90", "max"], widths),
    ]
    for name, s in stats.items():
        lines.append(fmt_row(
            [name] + [f"{s[k]:.0f}" for k in ("mean", "p10", "p50", "p90",
                                              "max")], widths))
    lines.append("")
    lines.append("paper means: XSum ~500, CNN/DailyMail ~900, WikiSum ~2200")
    write_table("fig13_datasets", lines)

    assert 380 <= stats["XSum"]["mean"] <= 560
    assert 750 <= stats["CNN/DailyMail"]["mean"] <= 1050
    assert 1700 <= stats["WikiSum"]["mean"] <= 2600
    # WikiSum's tail reaches the 4K+ region shown in the figure.
    assert stats["WikiSum"]["p90"] > 3000
