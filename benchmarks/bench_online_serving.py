"""Online multi-tenant serving vs. the offline oracle.

Beyond the paper's offline evaluation: jobs arrive over time (Poisson)
and the orchestrator schedules them incrementally, window by window, with
admission control.  The oracle knows all jobs at time 0 and schedules the
whole horizon in one wave -- the best case incremental scheduling can
approach once every tenant is present.  We report makespan, mean JCT,
utilization, and the no-op overhead of splicing, for two window sizes.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_online_serving.py --seed 13
"""

import argparse

from benchmarks.common import fmt_row, write_table
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig, find_violations
from repro.serve import (
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

NUM_JOBS = 8
NUM_STAGES = 4
CAPACITY = 8192
SLOTS = 4
DEFAULT_SEED = 7
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


def make_jobs(seed):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], 24, seed=seed + 10),
                   8)
        for a in range(NUM_JOBS)
    ]


def serve(workload, window_batches, slots=SLOTS):
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                                  use_milp=False),
        window_batches=window_batches,
        admission=SlotAdmission(slots) if slots else None,
    )
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(cost, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    assert find_violations(orchestrator.stream, NUM_STAGES) == []
    return result


def sweep(seed=DEFAULT_SEED):
    jobs = make_jobs(seed)
    # Arrival rate chosen so several tenants overlap but the system is
    # not permanently saturated (the interesting online regime).
    online_workload = poisson_workload(jobs, rate=1.5, rng=seed)
    oracle_workload = [ServeJob(job=job, arrival_time=0.0) for job in jobs]
    return {
        # The oracle is unconstrained: full information, no slot limit.
        "oracle-offline": serve(oracle_workload, window_batches=None,
                                slots=None),
        "online-w2": serve(online_workload, window_batches=2),
        "online-w1": serve(online_workload, window_batches=1),
    }


def report(results, seed):
    widths = [15, 10, 10, 10, 8, 8, 8]
    lines = [
        f"Online serving vs oracle ({NUM_JOBS} jobs, seed {seed}, "
        f"{SLOTS} slots, {NUM_STAGES}-stage pipeline, LLaMa-8B)",
        fmt_row(
            ["scenario", "makespan", "meanJCT", "meanQdelay", "util",
             "noops", "replans"],
            widths,
        ),
    ]
    for name, result in results.items():
        lines.append(
            fmt_row(
                [
                    name,
                    f"{result.makespan:.2f}",
                    f"{result.mean_completion_time():.2f}",
                    f"{result.mean_queueing_delay():.2f}",
                    f"{result.utilization:.1%}",
                    result.noop_microbatches,
                    result.replans,
                ],
                widths,
            )
        )
    write_table("online_serving", lines)


def check(results):
    oracle = results["oracle-offline"]
    online = results["online-w2"]
    # Every scenario finishes every job.
    for result in results.values():
        assert all(
            r.finish_time is not None for r in result.records.values()
        )
        assert result.total_tokens == oracle.total_tokens
    # The oracle plans once; online replans many times.
    assert oracle.replans == 1
    assert online.replans > oracle.replans
    # Online service time (excluding queueing for arrival) cannot beat
    # the oracle's total makespan by definition of the oracle's
    # full-information schedule, and should stay within a small factor.
    assert online.makespan >= 0.95 * oracle.makespan
    # Incremental scheduling pays a bounded bubble overhead: spliced
    # junction no-ops exist but do not dominate the stream.
    assert online.noop_microbatches < online.total_microbatches


def test_online_serving(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload + arrival seed")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
