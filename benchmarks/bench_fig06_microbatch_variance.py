"""Figure 6: tokens per microbatch at a fixed microbatch size of 4 samples.

Paper: CNN/DailyMail and especially the Mix dataset show wild variation
(roughly 2K-8K tokens per microbatch), the root of the load imbalance.
"""

import numpy as np

from benchmarks.common import fmt_row, write_table
from repro.data import get_distribution, onthefly_microbatches

MBS = 4
NUM_MICROBATCHES = 40


def microbatch_tokens(dataset):
    rng = np.random.default_rng(13)
    lengths = get_distribution(dataset).sample(MBS * NUM_MICROBATCHES, rng)
    return [sum(mb) for mb in onthefly_microbatches(list(lengths), MBS)]


def both():
    return {name: microbatch_tokens(name)
            for name in ("cnn_dailymail", "mixed")}


def test_fig06_microbatch_variance(benchmark):
    series = benchmark.pedantic(both, rounds=1, iterations=1)
    widths = [14, 8, 8, 8, 8]
    lines = [
        f"Figure 6 -- tokens per microbatch (microbatch size = {MBS})",
        fmt_row(["dataset", "min", "mean", "max", "std"], widths),
    ]
    stats = {}
    for name, totals in series.items():
        arr = np.asarray(totals)
        stats[name] = arr
        lines.append(fmt_row(
            [name, arr.min(), f"{arr.mean():.0f}", arr.max(),
             f"{arr.std():.0f}"], widths))
    ratio_cnn = stats["cnn_dailymail"].max() / stats["cnn_dailymail"].min()
    ratio_mix = stats["mixed"].max() / stats["mixed"].min()
    lines += [
        "",
        f"max/min spread: CNN/DailyMail {ratio_cnn:.1f}x, Mix {ratio_mix:.1f}x "
        "(paper shows ~2-4x spread, larger for Mix)",
    ]
    write_table("fig06_microbatch_variance", lines)

    # Substantial variation, larger on the mixture.
    assert ratio_cnn > 1.3
    assert ratio_mix > ratio_cnn
    assert stats["mixed"].std() > stats["cnn_dailymail"].std()
