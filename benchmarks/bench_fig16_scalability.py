"""Figure 16: scaling LLaMa-70B multi-LoRA fine-tuning to 4/8/16 H100s.

Two scaling modes: DP scaling (replicate the 4-stage pipeline and split
each global batch across replicas -- inherits load imbalance between
replicas) and job scaling (run more independent 4-GPU islands, each with
its own jobs).  Paper: job scaling consistently wins (1.18x at 8 GPUs,
1.25x at 16); LoRAFusion stays ahead of the baselines under both.
"""

from benchmarks.common import fmt_row, h100_cluster, make_jobs, write_table
from repro.distsim import run_lorafusion, run_megatron_fsdp, run_mlora
from repro.models import LLAMA3_70B
from repro.scheduler import SchedulerConfig

GPU_COUNTS = (4, 8, 16)
CAPACITY = 8192


def island_throughput(system, jobs, seed_offset=0):
    cluster = h100_cluster(4)
    if system == "fsdp":
        return run_megatron_fsdp(jobs, LLAMA3_70B, cluster).tokens_per_second
    if system == "mlora":
        return run_mlora(jobs, LLAMA3_70B, cluster,
                         capacity=CAPACITY).tokens_per_second
    config = SchedulerConfig(capacity=CAPACITY, num_stages=4, use_milp=False)
    return run_lorafusion(jobs, LLAMA3_70B, cluster, scheduler_config=config,
                          capacity=CAPACITY).tokens_per_second


def dp_scaled_throughput(system, num_gpus):
    """DP scaling: replicas process disjoint halves of each global batch.

    Replicas synchronise per step, so aggregate throughput is the sum of
    replica rates gated by the slowest replica; we model it by running
    each replica's (smaller, unluckier) share independently.
    """
    replicas = num_gpus // 4
    if system == "fsdp":
        jobs = make_jobs(["mixed"] * 4, samples=16, gbs=8 * replicas)
        cluster = h100_cluster(num_gpus)
        return run_megatron_fsdp(jobs, LLAMA3_70B, cluster).tokens_per_second
    rates = []
    for r in range(replicas):
        jobs = make_jobs(["mixed"] * 4, samples=16, gbs=8, seed=31 + r)
        rates.append(island_throughput(system, jobs))
    # Synchronised replicas: total tokens / slowest replica's time.
    return replicas * min(rates)


def job_scaled_throughput(system, num_gpus):
    """Job scaling: independent islands each train their own 4 jobs."""
    islands = num_gpus // 4
    total = 0.0
    for island in range(islands):
        jobs = make_jobs(["mixed"] * 4, samples=16, gbs=8, seed=31 + island)
        total += island_throughput(system, jobs)
    return total


def sweep():
    results = {}
    for system in ("fsdp", "mlora", "lorafusion"):
        for num_gpus in GPU_COUNTS:
            results[(system, num_gpus, "dp")] = dp_scaled_throughput(
                system, num_gpus)
            results[(system, num_gpus, "job")] = job_scaled_throughput(
                system, num_gpus)
    return results


def test_fig16_scalability(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [12, 6, 12, 12, 8]
    lines = [
        "Figure 16 -- LLaMa-70B scaling across H100s (tokens/s)",
        fmt_row(["system", "gpus", "DP scaling", "job scaling", "job/DP"],
                widths),
    ]
    for system in ("fsdp", "mlora", "lorafusion"):
        for num_gpus in GPU_COUNTS:
            dp = results[(system, num_gpus, "dp")]
            job = results[(system, num_gpus, "job")]
            lines.append(fmt_row(
                [system, num_gpus, f"{dp:.0f}", f"{job:.0f}",
                 f"{job/dp:.2f}x"], widths))
    ratio16 = (results[("lorafusion", 16, "job")]
               / results[("lorafusion", 16, "dp")])
    lines += [
        "",
        f"LoRAFusion job-vs-DP scaling at 16 GPUs: {ratio16:.2f}x "
        "(paper: 1.25x; 1.18x at 8 GPUs)",
    ]
    write_table("fig16_scalability", lines)

    for system in ("mlora", "lorafusion"):
        for num_gpus in (8, 16):
            assert (results[(system, num_gpus, "job")]
                    >= results[(system, num_gpus, "dp")] * 0.99)
    # LoRAFusion scales ~linearly under job scaling.
    base = results[("lorafusion", 4, "job")]
    assert results[("lorafusion", 16, "job")] > 3.5 * base
    # And it beats the baselines at every size.
    for num_gpus in GPU_COUNTS:
        for mode in ("dp", "job"):
            assert (results[("lorafusion", num_gpus, mode)]
                    > results[("mlora", num_gpus, mode)] * 0.99)
