"""Closed-loop cost calibration vs the a priori control plane.

Three serving scenarios where *feeding the estimator's own record back
into it* beats acting on a priori prices alone:

1. **Feedback correction.**  Two tenants whose length distribution
   drifts mid-run (short xsum-like samples for the first half of the
   stream, long wikisum-like ones for the second), so the dataset-level
   moments the a priori estimator prices with are stale for every
   individual wave.  A ``CalibrationTracker`` folds each wave's
   observed/predicted ratio back into the estimator; the corrected run's
   calibration ratio must be strictly tighter than the uncorrected one
   -- and inside the tightened ``CORRECTED_CALIBRATION_TOLERANCE`` band,
   while the uncorrected run is only held to ``CALIBRATION_TOLERANCE``.
2. **Queueing-aware admission.**  An overloaded deadline trace: light
   tenants that can meet their deadlines while sharing the pipeline
   with each other, plus heavy arrivals whose deadlines fit their solo
   service time but not the backlog already planned ahead of them.  The
   service-time-only ``DeadlineFeasibilityAdmission`` admits the
   heavies (each looks feasible alone), they clog the pipeline, and
   everyone misses; the ``queueing_aware`` gate charges the replica's
   expected wave backlog too, sheds the heavies at arrival, and the
   lights finish on time -- strictly more deadline-goodput from the
   same pipeline.  The cost is pessimism: a lucky schedule could
   occasionally have saved a shed job, which is why the mode is off by
   default.
3. **Seconds-skew rebalancing.**  A heterogeneous two-replica fleet
   (heavies owing *few* global batches of long samples, lights many
   batches of short ones) under count-based routing, so batch counts
   systematically misstate the load.  The batch-skew rebalancer moves
   jobs to even a number that lies; the seconds-skew rebalancer
   compares completion horizons (replica clock + expected remaining
   seconds) and must match or beat it on mean JCT.  A third leg turns
   on ``drain_then_migrate`` to measure what paying pipeline flushes to
   unlock deep-pipeline migrations costs/buys
   (``ReplicaSetResult.rebalance_drains`` counts the flushes).

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_calibration.py --seed 13
"""

import argparse

from benchmarks.common import fmt_row, write_table
from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CALIBRATION_TOLERANCE,
    CORRECTED_CALIBRATION_TOLERANCE,
    CalibrationTracker,
    CostEstimator,
    DeadlineFeasibilityAdmission,
    DeadlineOrdering,
    JobOutcome,
    LeastLoadedRouting,
    OnlineOrchestrator,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    SRPTOrdering,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 4
CAPACITY = 8192
DEFAULT_SEED = 7
#: Fast smoothing for the drift scenario: the regime shifts once, so the
#: tracker should chase the newest waves rather than average regimes.
TRACKER_ALPHA = 0.6
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)
#: Tracker-free pricing helper for building traces (deadlines etc.).
PRICER = CostEstimator.for_scheduler(COST, SCHED)


def fresh_estimator(corrected):
    """A per-run estimator (trackers are stateful; never share them)."""
    tracker = CalibrationTracker(alpha=TRACKER_ALPHA) if corrected else None
    return CostEstimator.for_scheduler(COST, SCHED, calibration=tracker)


# -- scenario 1: feedback correction under drift -------------------------


def drifting_job(adapter_id, seed, samples=96, gbs=8):
    """A tenant whose length distribution steps mid-stream.

    First half xsum-length samples, second half wikisum-length: the
    dataset-level moments (what the a priori estimator prices every
    wave with) describe the *mixture*, so each half is mispriced in a
    different direction -- early waves overpredicted, late waves
    underpredicted.
    """
    short = synthetic_dataset(adapter_id, "xsum", samples // 2, seed=seed)
    long = synthetic_dataset(adapter_id, "wikisum", samples // 2, seed=seed + 1)
    lengths = [s.length for s in short.samples] + [s.length for s in long.samples]
    dataset = FinetuneDataset(
        adapter_id=adapter_id,
        samples=[
            Sample(adapter_id=adapter_id, index=i, length=length)
            for i, length in enumerate(lengths)
        ],
        source="drift",
    )
    return AdapterJob(adapter_id, dataset, gbs)


def serve_drift(seed, corrected):
    workload = [
        ServeJob(job=drifting_job(a, seed + a), arrival_time=0.0)
        for a in range(2)
    ]
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=1,  # one batch per wave: the drift is per-wave visible
        estimator=fresh_estimator(corrected),
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    return result


# -- scenario 2: queueing-aware deadline admission -----------------------


def overload_trace(seed):
    """Lights that survive sharing; heavies doomed by the queue only.

    Light deadlines are 5x their solo service time -- generous enough
    to share the pipeline with the other lights, not with a heavy.
    Heavy deadlines are 1.2x solo: feasible on an idle pipeline (the
    service-only gate must admit them), infeasible behind the lights'
    planned backlog (the queueing-aware gate must shed them).
    """
    jobs = []
    for a, t in [(0, 0.0), (1, 0.0), (2, 0.4), (3, 0.6)]:
        job = AdapterJob(a, synthetic_dataset(a, "xsum", 48, seed=seed), 8)
        jobs.append(
            ServeJob(job=job, arrival_time=t,
                     deadline=t + 5.0 * PRICER.job_seconds(job))
        )
    for a, t in [(4, 0.2), (5, 0.5)]:
        job = AdapterJob(a, synthetic_dataset(a, "wikisum", 48, seed=seed), 8)
        jobs.append(
            ServeJob(job=job, arrival_time=t,
                     deadline=t + 1.2 * PRICER.job_seconds(job))
        )
    return sorted(jobs, key=lambda j: (j.arrival_time, j.adapter_id))


def serve_overload(workload, queueing_aware):
    config = OrchestratorConfig(
        scheduler=SCHED,
        window_batches=2,
        admission=DeadlineFeasibilityAdmission(
            SlotAdmission(3), queueing_aware=queueing_aware
        ),
        ordering=DeadlineOrdering(),
        estimator=fresh_estimator(corrected=False),
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(COST, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    return result


# -- scenario 3: seconds-skew vs batch-skew rebalancing ------------------


def heterogeneous_trace(seed):
    """Batch counts anti-correlated with cost (the lying-count shape)."""
    jobs = []
    for a in range(8):
        heavy = a % 2 == 0
        dataset = synthetic_dataset(
            a, "wikisum" if heavy else "xsum", 32, seed=seed,
        )
        gbs = 16 if heavy else 4
        jobs.append(
            ServeJob(job=AdapterJob(a, dataset, gbs), arrival_time=0.05 * a)
        )
    return jobs


def mean_batch_price(trace):
    """Trace-wide expected seconds per global batch (threshold currency).

    Makes the batch and seconds thresholds commensurable: a batch-skew
    threshold of ``K`` batches and a seconds-skew threshold of
    ``K * mean_batch_price`` tolerate the same skew *for the average
    tenant* -- the comparison then isolates the unit, not the
    sensitivity.
    """
    total = sum(PRICER.job_seconds(j.job) for j in trace)
    batches = sum(j.job.num_global_batches() for j in trace)
    return total / batches


def serve_fleet(workload, batch_thr=None, time_thr=None, drain=False):
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=2,
            admission=SlotAdmission(2),
            ordering=SRPTOrdering(),
            estimator=fresh_estimator(corrected=False),
        ),
        routing=LeastLoadedRouting(),  # count-based placement, on purpose
        migration_threshold=batch_thr,
        migration_time_threshold=time_thr,
        drain_then_migrate=drain,
    )
    executors = [StreamingSimExecutor(COST, NUM_STAGES) for _ in range(2)]
    result = ReplicaSet(executors, config).run(workload)
    assert result.violations == 0
    return result


def sweep(seed=DEFAULT_SEED):
    overload = overload_trace(seed)
    fleet = heterogeneous_trace(seed)
    price = mean_batch_price(fleet)
    return {
        "uncorrected": serve_drift(seed, corrected=False),
        "corrected": serve_drift(seed, corrected=True),
        "edf-service": serve_overload(overload, queueing_aware=False),
        "edf-queueaware": serve_overload(overload, queueing_aware=True),
        "batch-skew": serve_fleet(fleet, batch_thr=4),
        "secs-skew": serve_fleet(fleet, time_thr=4 * price),
        "secs-skew-drain": serve_fleet(fleet, time_thr=4 * price, drain=True),
    }


def report(results, seed):
    widths = [16, 7, 9, 9, 9, 9, 8, 7, 7, 5, 7]
    lines = [
        "Closed-loop cost calibration vs the a priori control plane "
        f"(seed {seed}, {NUM_STAGES}-stage pipeline, LLaMa-8B; corrected "
        f"band {CORRECTED_CALIBRATION_TOLERANCE}, uncorrected "
        f"{CALIBRATION_TOLERANCE})",
        fmt_row(
            ["scenario", "calib", "caliberr", "waveerr", "meanJCT",
             "makespan", "goodput", "smiss", "reject", "mig", "drains"],
            widths,
        ),
    ]
    for name, result in results.items():
        ratio = result.calibration_ratio()
        error = result.calibration_error()
        wave_error = result.mean_wave_calibration_error()
        migrations = getattr(result, "migrations", None)
        drains = getattr(result, "rebalance_drains", None)
        lines.append(
            fmt_row(
                [
                    name,
                    "-" if ratio is None else f"{ratio:.2f}",
                    "-" if error is None else f"{error:.3f}",
                    "-" if wave_error is None else f"{wave_error:.3f}",
                    f"{result.mean_completion_time():.3f}",
                    f"{result.makespan:.2f}",
                    result.deadline_goodput(),
                    f"{result.served_deadline_miss_rate():.2f}",
                    result.rejected,
                    "-" if migrations is None else migrations,
                    "-" if drains is None else drains,
                ],
                widths,
            )
        )
    write_table("calibration", lines)


def check(results):
    uncorrected, corrected = results["uncorrected"], results["corrected"]
    # Correction claim: the feedback loop tightens calibration on the
    # drifting trace -- run-level ratio strictly closer to 1.0, mean
    # per-wave error strictly lower, and each run inside its own band.
    assert corrected.calibration_error() < uncorrected.calibration_error()
    assert (
        corrected.mean_wave_calibration_error()
        < uncorrected.mean_wave_calibration_error()
    )
    ratio = uncorrected.calibration_ratio()
    assert 1 / CALIBRATION_TOLERANCE <= ratio <= CALIBRATION_TOLERANCE, ratio
    ratio = corrected.calibration_ratio()
    assert (
        1 / CORRECTED_CALIBRATION_TOLERANCE
        <= ratio
        <= CORRECTED_CALIBRATION_TOLERANCE
    ), ratio
    # Same trace, same work: correction changes prices, not execution.
    assert corrected.total_tokens == uncorrected.total_tokens

    service, queueing = results["edf-service"], results["edf-queueaware"]
    # Admission claim: charging the planned backlog sheds doomed-under-
    # load arrivals at arrival, so the same pipeline finishes strictly
    # more deadline-carrying jobs on time (and misses less among the
    # jobs it serves).
    assert queueing.deadline_goodput() > service.deadline_goodput()
    assert (
        queueing.served_deadline_miss_rate()
        <= service.served_deadline_miss_rate()
    )
    assert queueing.rejected >= 1 and service.rejected >= 1
    for result in (service, queueing):
        assert all(
            r.finish_time is not None
            for r in result.records.values()
            if r.outcome is not JobOutcome.REJECTED
        )

    batch, seconds = results["batch-skew"], results["secs-skew"]
    drain = results["secs-skew-drain"]
    # Rebalancing claim: triggering on completion-horizon seconds skew
    # matches or beats the batch-count trigger on mean JCT (the counts
    # lie on this trace), at commensurable thresholds.
    assert (
        seconds.mean_completion_time() <= 1.05 * batch.mean_completion_time()
    )
    # The drain leg pays flushes to unlock migrations a deep pipeline
    # otherwise starves; it must actually fire, and everyone finishes
    # in every leg.
    assert drain.rebalance_drains >= 1
    assert batch.rebalance_drains == 0 and seconds.rebalance_drains == 0
    for result in (batch, seconds, drain):
        assert all(
            r.finish_time is not None for r in result.records.values()
        )
        assert result.total_tokens == batch.total_tokens


def test_calibration(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="dataset seed for the trace tenants")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
