"""Offline autotuning vs every single-policy default, on a held-out trace.

The gate behind ``repro/tune``: composing policies found by searching
the config space must beat every *single-knob* configuration an
operator might reasonably default to -- otherwise the search is
ceremony.  The harness:

1. **Tune** on a mixed-deadline trace (light tenants whose deadlines
   survive sharing the pipeline, heavy tenants whose deadlines fit
   their solo service time but not the backlog in front of them) over
   a space spanning fleet size x routing x ordering x feasibility gate
   (queueing-aware or not).  The tuned pick is the first Pareto-front
   entry that dominates every default *on the tuning trace* -- model
   selection sees only training data.
2. **Hold out** a second trace with the same shape but different
   sampled lengths (next dataset seed), unseen during tuning.
3. **Gate**: the tuned config must Pareto-dominate every
   :func:`~repro.tune.space.single_policy_defaults` baseline on the
   held-out trace -- no worse on mean JCT, deadline goodput, and
   dollars, strictly better on at least one.

Determinism is part of the gate: the tuner is rerun in-process and must
render a byte-identical ``autotune_front.json`` artifact (the committed
copy under ``benchmarks/results/`` is what
``scripts/check_bench_results.py`` re-validates).

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_autotune.py --seed 13
"""

import argparse

from benchmarks.common import RESULTS_DIR, fmt_row, write_table
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import CostEstimator, ServeJob
from repro.tune import (
    SearchSpace,
    dominates,
    evaluate,
    front_to_json,
    single_policy_defaults,
    tune,
)

NUM_STAGES = 4
CAPACITY = 8192
DEFAULT_SEED = 7
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)
#: Tracker-free pricing helper for building deadline traces.
PRICER = CostEstimator.for_scheduler(COST, SCHED)

#: The bench's search space: 54 raw candidates over fleet size, the
#: three main routing families, the three main ordering families, and
#: the feasibility gate in both variants.  Slots and window stay at the
#: single-policy defaults so the comparison isolates the searched axes.
SPACE = SearchSpace(
    fleet_sizes=(1, 2),
    routings=("round_robin", "least_loaded", "cost_aware"),
    orderings=("fcfs", "srpt", "deadline"),
    deadline_gates=(False, True),
    queueing_aware=(False, True),
)


def mixed_deadline_trace(seed):
    """Lights that survive sharing; heavies doomed by the queue only.

    The same shape the calibration bench's admission scenario uses,
    shrunk for tuning throughput: light deadlines are 6x their solo
    service (generous enough to share with the other lights), heavy
    deadlines 1.2x solo (feasible on an idle pipeline, infeasible
    behind the lights' backlog).  A config must compose shedding with
    sensible routing/ordering to win on all three objectives at once.
    """
    jobs = []
    for a, t in [(0, 0.0), (1, 0.0), (2, 0.4), (3, 0.6)]:
        job = AdapterJob(a, synthetic_dataset(a, "xsum", 24, seed=seed), 8)
        jobs.append(
            ServeJob(job=job, arrival_time=t,
                     deadline=t + 6.0 * PRICER.job_seconds(job))
        )
    for a, t in [(4, 0.2), (5, 0.5)]:
        job = AdapterJob(a, synthetic_dataset(a, "wikisum", 24, seed=seed), 8)
        jobs.append(
            ServeJob(job=job, arrival_time=t,
                     deadline=t + 1.2 * PRICER.job_seconds(job))
        )
    return sorted(jobs, key=lambda j: (j.arrival_time, j.adapter_id))


def sweep(seed=DEFAULT_SEED):
    tuning_trace = mixed_deadline_trace(seed)
    held_out = mixed_deadline_trace(seed + 1)

    search = tune(tuning_trace, SPACE, cost=COST, scheduler=SCHED)
    artifact = front_to_json(search)
    # Determinism gate: a second full tuning run must render the same
    # artifact byte for byte (same front, same order, same floats).
    rerun = tune(tuning_trace, SPACE, cost=COST, scheduler=SCHED)
    assert front_to_json(rerun) == artifact

    # Model selection on training data only: the tuned pick is the
    # first front entry that already dominates every single-policy
    # default on the tuning trace.  The held-out comparison below is
    # the out-of-sample validation.
    training_defaults = [
        evaluate(config, tuning_trace, cost=COST, scheduler=SCHED)[0]
        for config in single_policy_defaults().values()
    ]
    winners = [
        trial
        for trial in search.front
        if all(dominates(trial.point, point) for point in training_defaults)
    ]
    assert winners, "no front entry dominates the defaults on the tuning trace"
    tuned_config = winners[0].config

    points = {"tuned": evaluate(tuned_config, held_out, cost=COST,
                                scheduler=SCHED)}
    for name, config in single_policy_defaults().items():
        points[name] = evaluate(config, held_out, cost=COST, scheduler=SCHED)
    return {
        "tuned_config": tuned_config,
        "search": search,
        "artifact": artifact,
        "held_out": points,
    }


def report(results, seed):
    search = results["search"]
    widths = [14, 9, 9, 11, 9, 7, 9]
    lines = [
        "Tuned config vs single-policy defaults on a held-out trace "
        f"(seed {seed}, {NUM_STAGES}-stage pipeline, LLaMa-8B; tuned = "
        f"{results['tuned_config'].label()}; "
        f"searched {search.candidates} candidates: "
        f"{search.collapsed} collapsed, {search.pruned} pruned, "
        f"{search.simulated} simulated, front of {len(search.front)})",
        fmt_row(
            ["scenario", "meanJCT", "goodput", "dollars", "gpusecs",
             "reject", "makespan"],
            widths,
        ),
    ]
    for name, (point, run) in results["held_out"].items():
        lines.append(
            fmt_row(
                [
                    name,
                    f"{point.mean_jct:.3f}",
                    point.goodput,
                    f"{point.dollars:.6f}",
                    f"{point.gpu_seconds:.3f}",
                    run.rejected,
                    f"{run.makespan:.3f}",
                ],
                widths,
            )
        )
    write_table("autotune", lines)
    (RESULTS_DIR / "autotune_front.json").write_text(results["artifact"])


def check(results):
    held_out = results["held_out"]
    tuned, _ = held_out["tuned"]
    # The headline gate: the tuned composition Pareto-dominates every
    # single-knob default on the trace it never saw -- at least as good
    # on all of (mean JCT, goodput, dollars), strictly better on >= 1.
    for name, (point, _) in held_out.items():
        if name == "tuned":
            continue
        assert dominates(tuned, point), (
            f"tuned config fails to dominate default '{name}': "
            f"{tuned} vs {point}"
        )
    # The search accounting must add up, and the equivalence collapse
    # must actually be doing analytic work on this space.
    search = results["search"]
    assert (
        search.collapsed + search.pruned + search.simulated
        == search.candidates
    )
    assert search.collapsed > 0
    # Front entries are mutually non-dominated by construction; verify
    # the invariant survived serialization boundaries.
    for a in search.front:
        for b in search.front:
            assert not dominates(a.point, b.point)


def test_autotune(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="dataset seed for the trace tenants")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
