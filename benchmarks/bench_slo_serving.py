"""SLO-aware serving: ordering policies vs JCT on a heavy-tailed trace.

Beyond the paper's offline evaluation: a heavy-tailed tenant trace (one
huge job, two medium, five short -- the shorts arriving last) is served
under each ordering policy at a fixed adapter-slot budget.  FCFS makes
the shorts wait behind the heavy tenants; SRPT reorders the queue by
remaining batches; preemptive SRPT additionally evicts the heavy job
(lossless park-and-resume); mid-wave admission cuts the running wave the
moment an urgent arrival lands.  A priority/EDF scenario reports
per-class JCT and the deadline-miss rate.

The second half is the losslessness leg: on the numeric engine, a
best-effort tenant is preempted by a high-class arrival and resumed, and
its final adapter weights must be identical (atol=0) to an uninterrupted
sequential run.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_slo_serving.py --seed 13
"""

import argparse

import numpy as np

from benchmarks.common import fmt_row, write_table
from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models import LLAMA3_8B, TINY, TinyLoRATransformer
from repro.models.layer_costs import LayerCostModel
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    DeadlineOrdering,
    FCFSOrdering,
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
    SRPTOrdering,
    StreamingSimExecutor,
)

NUM_STAGES = 4
CAPACITY = 8192
SLOTS = 2
DEFAULT_SEED = 7
MODEL_SEED = 31
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
# Heavy-tailed trace: one huge tenant, two medium, five short; the
# shorts arrive last, exactly the order FCFS is worst at.
SIZES = [96, 32, 32, 8, 8, 8, 8, 8]
ARRIVALS = [0.0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14]
#: Short tenants are the high class in the priority/deadline scenarios.
HIGH_CLASS = {3, 4, 5, 6, 7}
DEADLINES = {a: 3.0 + 0.2 * a for a in HIGH_CLASS}


def make_workload(seed, priorities=False, deadlines=False):
    jobs = []
    for a, (size, arrival) in enumerate(zip(SIZES, ARRIVALS)):
        dataset = synthetic_dataset(a, DATASETS[a % 4], size, seed=seed)
        jobs.append(
            ServeJob(
                job=AdapterJob(a, dataset, 8),
                arrival_time=arrival,
                priority=1 if priorities and a in HIGH_CLASS else 0,
                deadline=DEADLINES.get(a) if deadlines else None,
            )
        )
    return jobs


def serve(workload, ordering, mid_wave=False):
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                                  use_milp=False),
        window_batches=2,
        admission=SlotAdmission(SLOTS),
        ordering=ordering,
        mid_wave_admission=mid_wave,
    )
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(cost, NUM_STAGES), config
    )
    result = orchestrator.run(workload)
    assert result.violations == 0
    return result


def make_numeric_tenant(rng, adapter_id, rank, num_samples, gbs, arrival,
                        priority):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(job=AdapterJob(adapter_id, dataset, gbs),
                    arrival_time=arrival, numeric=numeric, priority=priority)


def preemption_losslessness():
    """Preempt-and-resume on the numeric engine; compare atol=0.

    Returns ``(preemptions, exact)``: how often the long tenant lost its
    slot, and whether every tenant's final adapter weights are
    bit-identical to sequential solo training.
    """
    rng = np.random.default_rng(0)
    workload = [
        make_numeric_tenant(rng, 0, 2, 12, 2, arrival=0.0, priority=0),
        make_numeric_tenant(rng, 1, 3, 4, 2, arrival=1.0, priority=1),
    ]
    model = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False, group_size=2),
        window_batches=1,
        admission=SlotAdmission(1),
        ordering=PriorityOrdering(),
        mid_wave_admission=True,
    )
    orchestrator = OnlineOrchestrator(NumericExecutor(engine), config)
    result = orchestrator.run(workload)
    assert result.violations == 0
    exact = True
    for serve_job in workload:
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, serve_job.numeric)
        online = model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        for key in online:
            exact &= bool(np.array_equal(online[key].a, solo[key].a))
            exact &= bool(np.array_equal(online[key].b, solo[key].b))
    return result.preemptions, exact


def sweep(seed=DEFAULT_SEED):
    results = {
        "fcfs": serve(make_workload(seed), FCFSOrdering()),
        "srpt": serve(make_workload(seed), SRPTOrdering()),
        "srpt-preempt": serve(
            make_workload(seed), SRPTOrdering(preemptive=True), mid_wave=True
        ),
        "priority-preempt": serve(
            make_workload(seed, priorities=True), PriorityOrdering(),
            mid_wave=True,
        ),
        "edf": serve(
            make_workload(seed, deadlines=True), DeadlineOrdering()
        ),
        "fcfs-deadlines": serve(
            make_workload(seed, deadlines=True), FCFSOrdering()
        ),
    }
    return results, preemption_losslessness()


def report(results, lossless, seed):
    preemptions, exact = lossless
    widths = [17, 10, 9, 9, 9, 8, 5, 8]
    lines = [
        f"SLO-aware serving on a heavy-tailed trace ({len(SIZES)} jobs, "
        f"sizes {SIZES}, seed {seed}, {SLOTS} slots, {NUM_STAGES}-stage "
        f"pipeline, LLaMa-8B)",
        fmt_row(
            ["scenario", "makespan", "meanJCT", "jctHigh", "jctLow",
             "preempt", "cuts", "missrate"],
            widths,
        ),
    ]
    for name, result in results.items():
        classes = result.jct_by_class()
        high = classes.get(1)
        lines.append(
            fmt_row(
                [
                    name,
                    f"{result.makespan:.2f}",
                    f"{result.mean_completion_time():.3f}",
                    "-" if high is None else f"{high:.3f}",
                    f"{classes[0]:.3f}",
                    result.preemptions,
                    result.wave_cuts,
                    f"{result.deadline_miss_rate():.2f}",
                ],
                widths,
            )
        )
    lines.append("")
    lines.append(
        f"numeric preempt-and-resume: {preemptions} preemption(s), "
        f"weights bit-identical to sequential (atol=0): {exact}"
    )
    write_table("slo_serving", lines)


def check(results, lossless):
    fcfs = results["fcfs"]
    srpt = results["srpt"]
    srpt_preempt = results["srpt-preempt"]
    priority = results["priority-preempt"]
    # Every scenario finishes every job, losslessly spliced.
    for result in results.values():
        assert all(
            r.finish_time is not None for r in result.records.values()
        )
        assert result.total_tokens == fcfs.total_tokens
    # The headline SRPT claim: strictly lower mean JCT than FCFS on the
    # heavy-tailed trace, preemption lowering it further.
    assert srpt.mean_completion_time() < fcfs.mean_completion_time()
    assert (srpt_preempt.mean_completion_time()
            <= srpt.mean_completion_time())
    assert srpt_preempt.preemptions >= 1
    assert srpt_preempt.wave_cuts >= 1
    # Priority classes: the high class beats its own FCFS treatment and
    # the best-effort class within the same run.
    assert (priority.mean_completion_time(priority=1)
            < fcfs.mean_completion_time())
    assert (priority.mean_completion_time(priority=1)
            < priority.mean_completion_time(priority=0))
    # EDF meets deadlines at least as often as FCFS.
    assert (results["edf"].deadline_miss_rate()
            <= results["fcfs-deadlines"].deadline_miss_rate())
    # The preempted-then-resumed numeric job is bit-exact.
    preemptions, exact = lossless
    assert preemptions >= 1
    assert exact


def test_slo_serving(benchmark):
    results, lossless = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, lossless, DEFAULT_SEED)
    check(results, lossless)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="dataset seed for the trace tenants")
    args = parser.parse_args()
    results, lossless = sweep(args.seed)
    report(results, lossless, args.seed)
    check(results, lossless)


if __name__ == "__main__":
    main()
