"""Live gateway door under sustained load and a 10x overload burst.

The :class:`~repro.serve.gateway.ServeGateway` promises two things under
pressure: the door stays *fast* (admission latency is a handful of
microseconds of ledger work, not a fleet replan) and *honest* (every
refusal lands in the :class:`~repro.serve.metrics.GatewayStats` ledger,
every acceptance survives to a finished fleet record).  This bench
drives two scripted sessions against one door configuration:

* ``steady`` -- Poisson arrivals at roughly half the aggregate
  token-bucket rate, the regime the door was provisioned for.
* ``burst-10x`` -- the same door at ten times the steady offered rate;
  the bucket and queue bound must shed most of it, and the tail
  admission latency must stay bounded *while* shedding.

Virtual time is a seeded :class:`~repro.serve.ManualClock` (the door's
rate/quota decisions are deterministic per seed); wall-clock throughput
and admission latency are real ``perf_counter`` measurements.  Gates
(re-checked against the committed table by
``scripts/check_bench_results.py``):

* every scenario sustains at least ``SUBMIT_RATE_FLOOR`` wall-clock
  submits per second through the live door;
* p99 admission latency stays under ``P99_LATENCY_CEILING`` seconds,
  overloaded or not;
* **zero admitted jobs lost** -- every released submission has a
  finished fleet record after the drain;
* the shed count equals the backpressure ledger -- refusals returned to
  callers and ``GatewayStats.sheds`` are the same tally, and
  ``submitted == accepted + shed``.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_gateway.py --seed 13
"""

import argparse
import asyncio
import time

import numpy as np

from benchmarks.common import fmt_row, write_table
from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import GatewayOverload, ManualClock, ServeConfig
from repro.serve.metrics import JobOutcome

NUM_STAGES = 2
CAPACITY = 8192
DEFAULT_SEED = 11
#: Tenants sharing the door; each gets its own token bucket and queue.
TENANTS = ("acme", "globex", "initech", "umbrella")
#: Distinct sample-length values across the tenant population (shared
#: lengths share a ``TenantProfile``, so the bench times the door, not
#: cold cost-model pricing).
NUM_PROFILES = 16
#: Per-tenant token-bucket refill rate, virtual arrivals/second.
GATE_RATE = 40.0
#: Token-bucket burst allowance.
GATE_BURST = 8.0
#: Per-tenant backlog bound behind the door.
QUEUE_BOUND = 32
#: Steady offered load: half the aggregate bucket rate, so the door
#: sheds (almost) nothing and the bench times the accept path.
STEADY_RATE = 0.5 * GATE_RATE * len(TENANTS)
#: (name, submissions, offered-load multiplier over ``STEADY_RATE``).
SCENARIOS = (
    ("steady", 400, 1.0),
    ("burst-10x", 400, 10.0),
)
#: Minimum wall-clock submissions/second through the live door.
SUBMIT_RATE_FLOOR = 200.0
#: Maximum p99 wall-clock admission latency, seconds (any decision --
#: accept or shed -- must be bounded even mid-overload).
P99_LATENCY_CEILING = 0.050

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)


def door_config():
    """The one door every scenario runs against."""
    return ServeConfig(
        num_replicas=2,
        slots=4,
        window_batches=1,
        gateway_rate=GATE_RATE,
        gateway_burst=GATE_BURST,
        gateway_queue_bound=QUEUE_BOUND,
    )


def make_jobs(num_jobs, seed):
    """One-global-batch tenants drawn from a small pool of lengths."""
    rng = np.random.default_rng(seed)
    pool = rng.integers(64, 512, size=NUM_PROFILES)
    return [
        AdapterJob(
            a,
            FinetuneDataset(a, [Sample(a, 0, int(pool[a % NUM_PROFILES]))]),
            1,
        )
        for a in range(num_jobs)
    ]


def serve(num_jobs, offered_rate, seed):
    """Drive one live session; return (result, caller-seen sheds, seconds).

    ``seconds`` covers the submit loop only -- the wall-clock cost of
    pushing ``num_jobs`` arrivals through the door -- not the drain.
    """
    jobs = make_jobs(num_jobs, seed + 10)
    gaps = np.random.default_rng(seed).exponential(
        1.0 / offered_rate, size=num_jobs
    )

    async def drive():
        clock = ManualClock()
        gateway = door_config().build_gateway(COST, SCHED, clock=clock)
        refused = 0
        start = time.perf_counter()
        for a, job in enumerate(jobs):
            clock.advance(float(gaps[a]))
            outcome = await gateway.submit(
                job, tenant=TENANTS[a % len(TENANTS)]
            )
            if isinstance(outcome, GatewayOverload):
                refused += 1
        elapsed = time.perf_counter() - start
        result = await gateway.drain()
        return result, refused, elapsed

    return asyncio.run(drive())


def sweep(seed=DEFAULT_SEED):
    results = {}
    for name, num_jobs, multiplier in SCENARIOS:
        result, refused, elapsed = serve(
            num_jobs, STEADY_RATE * multiplier, seed
        )
        stats = result.stats
        # The honesty gates are structural -- assert them at run time
        # too, not just against the committed table.
        assert stats.submitted == num_jobs
        assert refused == stats.shed_total(), name
        assert stats.submitted == stats.accepted + stats.shed_total(), name
        finished = sum(
            1
            for record in result.records.values()
            if record.outcome is JobOutcome.FINISHED
        )
        results[name] = {
            "jobs": num_jobs,
            "offered": STEADY_RATE * multiplier,
            "accepted": stats.accepted,
            "shed": stats.shed_total(),
            "lost": stats.released - finished,
            "p99_ms": result.admission_latency_percentiles()["p99"] * 1e3,
            "submit_rate": num_jobs / elapsed,
        }
    return results


def report(results, seed):
    widths = [11, 6, 9, 10, 6, 6, 8, 9]
    lines = [
        f"Live gateway door under load (seed {seed}, {len(TENANTS)} "
        f"tenants, bucket {GATE_RATE:g}/s burst {GATE_BURST:g}, queue "
        f"bound {QUEUE_BOUND}, LLaMa-8B)",
        fmt_row(
            ["scenario", "jobs", "offered", "accepted", "shed", "lost",
             "p99_ms", "submit/s"],
            widths,
        ),
    ]
    for name, row in results.items():
        lines.append(
            fmt_row(
                [
                    name,
                    row["jobs"],
                    f"{row['offered']:.0f}",
                    row["accepted"],
                    row["shed"],
                    row["lost"],
                    f"{row['p99_ms']:.3f}",
                    f"{row['submit_rate']:.0f}",
                ],
                widths,
            )
        )
    write_table("gateway", lines)


def check(results):
    for name, row in results.items():
        assert row["lost"] == 0, f"{name} lost {row['lost']} admitted job(s)"
        assert row["submit_rate"] >= SUBMIT_RATE_FLOOR, (
            f"{name} sustained {row['submit_rate']:.0f} submits/s, below "
            f"the {SUBMIT_RATE_FLOOR:.0f}/s floor"
        )
        assert row["p99_ms"] <= P99_LATENCY_CEILING * 1e3, (
            f"{name} p99 admission latency {row['p99_ms']:.3f} ms left "
            f"the {P99_LATENCY_CEILING * 1e3:.0f} ms ceiling"
        )
    steady, burst = (results[name] for name, _, _ in SCENARIOS)
    # The burst scenario must actually exercise backpressure, and the
    # door must shed *more* of the 10x load, not admit it all.
    assert burst["shed"] > steady["shed"]
    assert burst["shed"] > 0


def test_gateway(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload + arrival seed")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
