"""Section 6.5: effectiveness of the MILP packer and the merge pass.

Paper (LLaMa-70B, 4 adapters, 4xH100): the merge pass adds +4.34%
throughput, the two-stage MILP adds +3.82% over pure greedy packing, and
the MILP path is selected for 77.4% of global batches at a 10s timeout.
"""

from benchmarks.common import fmt_row, h100_cluster, make_jobs, write_table
from repro.distsim import run_lorafusion
from repro.models import LLAMA3_70B
from repro.scheduler import MultiLoRAScheduler, SchedulerConfig

CAPACITY = 8192


def throughput(use_milp, use_merge, jobs):
    config = SchedulerConfig(capacity=CAPACITY, num_stages=4,
                             use_milp=use_milp, use_merge=use_merge,
                             milp_timeout=1.0)
    return run_lorafusion(jobs, LLAMA3_70B, h100_cluster(4),
                          scheduler_config=config,
                          capacity=CAPACITY).tokens_per_second


def sweep():
    jobs = make_jobs(["mixed"] * 4, samples=64)
    rates = {
        "greedy, no merge": throughput(False, False, jobs),
        "greedy + merge": throughput(False, True, jobs),
        "milp, no merge": throughput(True, False, jobs),
        "milp + merge (full)": throughput(True, True, jobs),
    }
    config = SchedulerConfig(capacity=CAPACITY, num_stages=4, use_milp=True,
                             milp_timeout=1.0)
    stats = MultiLoRAScheduler(jobs, config).schedule().stats
    return rates, stats


def test_sec65_scheduler_ablation(benchmark):
    rates, stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = rates["greedy, no merge"]
    widths = [22, 12, 10]
    lines = [
        "Section 6.5 -- scheduler component ablation (LLaMa-70B, 4xH100)",
        fmt_row(["configuration", "tokens/s", "vs greedy"], widths),
    ]
    for name, rate in rates.items():
        delta = rate / base - 1.0
        label = "baseline" if name == "greedy, no merge" else f"{delta:+.2%}"
        lines.append(fmt_row([name, f"{rate:.0f}", label], widths))
    milp_frac = stats["milp_selected_frac"]
    lines += [
        "",
        f"MILP selected for {milp_frac:.1%} of global batches "
        "(paper: 77.4% at a 10 s timeout)",
        f"merges performed: {stats['merges']:.0f}",
        "paper: merge +4.34%, MILP +3.82%.  Our reproduction shows the "
        "same modest-magnitude effects (within a few percent); under our "
        "stricter fwd-first dependency gap (S vs the paper's S-1) the "
        "merge pass rarely finds legal moves at depth 4, so its gain "
        "concentrates at shallower pipelines -- see EXPERIMENTS.md.",
    ]
    write_table("sec65_scheduler_ablation", lines)

    # The MILP path fires on a meaningful share of batches (paper: 77.4%).
    assert milp_frac > 0.3
    # Component effects are modest, as the paper reports (|effect| < 5%),
    # and the full configuration never collapses below the greedy baseline.
    for rate in rates.values():
        assert abs(rate / base - 1.0) < 0.05
    assert rates["milp + merge (full)"] >= base * 0.95
