"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_fig*.py`` regenerates one figure of the paper's evaluation:
it computes the figure's series with this repository's models/simulators,
prints a paper-vs-measured table, writes it under ``benchmarks/results/``,
and wraps the core computation in pytest-benchmark for timing.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.data import synthetic_dataset
from repro.distsim import ClusterSpec
from repro.gpu import H100
from repro.scheduler import AdapterJob

RESULTS_DIR = Path(__file__).parent / "results"

#: Standard 4-adapter workloads of Section 6.1.
DATASET_SETTINGS = {
    "XSUM": ["xsum"] * 4,
    "CNNDM": ["cnn_dailymail"] * 4,
    "WikiSum": ["wikisum"] * 4,
    "Mixed": ["mixed"] * 4,
    "Het": ["xsum", "cnn_dailymail", "wikisum", "mixed"],
}


def make_jobs(datasets, samples=16, gbs=8, seed=11):
    """Four fine-tuning jobs with the given per-adapter datasets."""
    return [
        AdapterJob(a, synthetic_dataset(a, name, samples, seed=seed), gbs)
        for a, name in enumerate(datasets)
    ]


def h100_cluster(num_gpus):
    """An H100 cluster of the given size."""
    return ClusterSpec(gpu=H100, num_gpus=num_gpus)


def write_table(name: str, lines: list[str]) -> None:
    """Print a results table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def fmt_row(cells, widths):
    """Fixed-width table row."""
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
