"""Figure 20: pipeline bubble ratio by system and adapter count.

Paper (4-stage pipeline): Megatron 1F1B 48.79%; mLoRA 34.11%; LoRAFusion
44.17% with 1 adapter, then 15.00% / 12.23% / 11.09% with 2/3/4 adapters
(the residual floor comes from the heavier LM-head stage).
"""

from benchmarks.common import fmt_row, h100_cluster, make_jobs, write_table
from repro.distsim import run_lorafusion, run_megatron_pp, run_mlora
from repro.models import LLAMA3_70B
from repro.planner import propose_capacity
from repro.scheduler import SchedulerConfig

PAPER = {
    "megatron-1f1b": 0.4879,
    "mlora-4": 0.3411,
    "lorafusion-1": 0.4417,
    "lorafusion-2": 0.1500,
    "lorafusion-3": 0.1223,
    "lorafusion-4": 0.1109,
}


def bubble_for(num_adapters):
    datasets = ["xsum", "cnn_dailymail", "wikisum", "mixed"][:num_adapters]
    jobs = make_jobs(datasets, samples=48)
    cluster = h100_cluster(4)
    report = propose_capacity(jobs, LLAMA3_70B, cluster)
    config = SchedulerConfig(capacity=report.best_capacity, num_stages=4,
                             use_milp=False)
    return run_lorafusion(jobs, LLAMA3_70B, cluster, scheduler_config=config,
                          capacity=report.best_capacity).bubble_ratio


def sweep():
    cluster = h100_cluster(4)
    jobs4 = make_jobs(["xsum", "cnn_dailymail", "wikisum", "mixed"],
                      samples=48)
    measured = {
        "megatron-1f1b": run_megatron_pp(jobs4, LLAMA3_70B,
                                         cluster).bubble_ratio,
        "mlora-4": run_mlora(jobs4, LLAMA3_70B, cluster,
                             capacity=8192).bubble_ratio,
    }
    for n in (1, 2, 3, 4):
        measured[f"lorafusion-{n}"] = bubble_for(n)
    return measured


def test_fig20_bubbles(benchmark):
    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [16, 10, 10]
    lines = [
        "Figure 20 -- pipeline bubble ratio (4-stage, LLaMa-70B)",
        fmt_row(["system", "paper", "measured"], widths),
    ]
    for name, paper in PAPER.items():
        lines.append(fmt_row([name, f"{paper:.1%}",
                              f"{measured[name]:.1%}"], widths))
    write_table("fig20_bubbles", lines)

    # Orderings the paper emphasises:
    assert measured["megatron-1f1b"] > 0.40
    assert measured["lorafusion-1"] > 0.30  # one adapter: grouping useless
    assert measured["mlora-4"] < measured["megatron-1f1b"]
    assert measured["lorafusion-4"] < measured["mlora-4"]
    # More adapters monotonically reduce bubbles, saturating by 4.
    assert (measured["lorafusion-2"] < measured["lorafusion-1"])
    assert (measured["lorafusion-4"] <= measured["lorafusion-2"] + 0.02)
    # The 4-adapter bubble approaches the paper's ~11% floor.
    assert measured["lorafusion-4"] < 0.30
