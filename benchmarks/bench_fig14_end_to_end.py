"""Figure 14: end-to-end throughput, 4 adapters, three models on H100s.

Paper claims (C1): LoRAFusion is 1.19-1.96x over the best Megatron-LM
baseline (1.47x average) and up to 1.46x (1.29x average) over mLoRA.
LLaMa-8B runs on one GPU (kernel gains only); Qwen-32B on two; LLaMa-70B
on four (kernel + scheduling gains).
"""


from benchmarks.common import (
    DATASET_SETTINGS,
    fmt_row,
    h100_cluster,
    make_jobs,
    write_table,
)
from repro.distsim import (
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
    run_single_gpu_sequential,
)
from repro.models import LLAMA3_70B, LLAMA3_8B, QWEN25_32B
from repro.planner import propose_capacity
from repro.scheduler import SchedulerConfig

MODELS = [(LLAMA3_8B, 1), (QWEN25_32B, 2), (LLAMA3_70B, 4)]


def run_setting(model, num_gpus, datasets):
    jobs = make_jobs(datasets)
    cluster = h100_cluster(num_gpus)
    if num_gpus == 1:
        baseline = run_single_gpu_sequential(jobs, model, cluster,
                                             strategy="torch")
        report = propose_capacity(jobs, model, cluster)
        config = SchedulerConfig(capacity=report.best_capacity, num_stages=1,
                                 milp_timeout=0.3)
        fusion = run_lorafusion(jobs, model, cluster, scheduler_config=config,
                                capacity=report.best_capacity)
        return {"baseline": baseline.tokens_per_second,
                "lorafusion": fusion.tokens_per_second}
    report = propose_capacity(jobs, model, cluster)
    config = SchedulerConfig(capacity=report.best_capacity,
                             num_stages=num_gpus, milp_timeout=0.3)
    return {
        "baseline": run_megatron_fsdp(jobs, model, cluster).tokens_per_second,
        "megatron-pp": run_megatron_pp(jobs, model, cluster).tokens_per_second,
        "mlora": run_mlora(jobs, model, cluster).tokens_per_second,
        "lorafusion": run_lorafusion(
            jobs, model, cluster, scheduler_config=config,
            capacity=report.best_capacity,
        ).tokens_per_second,
    }


def full_sweep():
    results = {}
    for model, num_gpus in MODELS:
        for setting, datasets in DATASET_SETTINGS.items():
            results[(model.name, setting)] = run_setting(model, num_gpus,
                                                         datasets)
    return results


def test_fig14_end_to_end(benchmark):
    results = benchmark.pedantic(full_sweep, rounds=1, iterations=1)
    widths = [14, 9, 10, 8, 8, 8]
    lines = [
        "Figure 14 -- end-to-end throughput (tokens/s), 4 adapters, H100",
        fmt_row(["model", "setting", "baseline", "pp", "mlora", "fusion"],
                widths),
    ]
    fusion_vs_best_baseline = []
    fusion_vs_mlora = []
    for (model, setting), r in results.items():
        pp = r.get("megatron-pp")
        mlora = r.get("mlora")
        lines.append(fmt_row([
            model.split("-")[0] + model[-4:], setting, f"{r['baseline']:.0f}",
            f"{pp:.0f}" if pp else "-", f"{mlora:.0f}" if mlora else "-",
            f"{r['lorafusion']:.0f}",
        ], widths))
        best = max(v for k, v in r.items()
                   if k in ("baseline", "megatron-pp"))
        fusion_vs_best_baseline.append(r["lorafusion"] / best)
        if mlora:
            fusion_vs_mlora.append(r["lorafusion"] / mlora)
    avg_vs_base = sum(fusion_vs_best_baseline) / len(fusion_vs_best_baseline)
    avg_vs_mlora = sum(fusion_vs_mlora) / len(fusion_vs_mlora)
    lines += [
        "",
        f"LoRAFusion vs best Megatron baseline: avg {avg_vs_base:.2f}x, "
        f"max {max(fusion_vs_best_baseline):.2f}x "
        "(paper: avg 1.47x, max 1.96x)",
        f"LoRAFusion vs mLoRA: avg {avg_vs_mlora:.2f}x, "
        f"max {max(fusion_vs_mlora):.2f}x (paper: avg 1.29x, max 1.46x)",
    ]
    write_table("fig14_end_to_end", lines)

    # C1 shape: LoRAFusion wins everywhere, with factors in the band.
    assert min(fusion_vs_best_baseline) > 1.05
    assert 1.2 <= avg_vs_base <= 1.9
    assert 1.05 <= avg_vs_mlora <= 1.55
