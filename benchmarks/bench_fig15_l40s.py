"""Figure 15: end-to-end throughput on L40S GPUs (Mixed and Het settings).

Paper: LLaMa-8B on one L40S gains ~1.2x (kernel only, memory-capacity
constrained); Qwen-32B on four L40S gains up to 1.96x, with Megatron-PP
*faster* than FSDP there (PCIe makes FSDP gathers expensive).
"""

from benchmarks.common import DATASET_SETTINGS, fmt_row, make_jobs, write_table
from repro.distsim import (
    ClusterSpec,
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
    run_single_gpu_sequential,
)
from repro.gpu import L40S
from repro.models import LLAMA3_8B, QWEN25_32B
from repro.planner import propose_capacity
from repro.scheduler import SchedulerConfig

SETTINGS = {k: DATASET_SETTINGS[k] for k in ("Mixed", "Het")}


def sweep():
    results = {}
    for setting, datasets in SETTINGS.items():
        jobs = make_jobs(datasets)
        # 8B on a single L40S: 48GB constrains activations, so the
        # token budget stays at the longest-sample floor.
        one = ClusterSpec(gpu=L40S, num_gpus=1, gpus_per_node=4)
        base = run_single_gpu_sequential(jobs, LLAMA3_8B, one, capacity=8192,
                                         strategy="torch")
        config = SchedulerConfig(capacity=8192, num_stages=1, milp_timeout=0.3)
        fusion = run_lorafusion(jobs, LLAMA3_8B, one, scheduler_config=config,
                                capacity=8192)
        results[("LLaMa-3.1-8B", setting)] = {
            "baseline": base.tokens_per_second,
            "lorafusion": fusion.tokens_per_second,
        }
        # 32B on four L40S.
        four = ClusterSpec(gpu=L40S, num_gpus=4, gpus_per_node=4)
        report = propose_capacity(jobs, QWEN25_32B, four)
        config = SchedulerConfig(capacity=report.best_capacity, num_stages=4,
                                 milp_timeout=0.3)
        results[("Qwen-2.5-32B", setting)] = {
            "baseline": run_megatron_fsdp(jobs, QWEN25_32B, four).tokens_per_second,
            "megatron-pp": run_megatron_pp(jobs, QWEN25_32B, four).tokens_per_second,
            "mlora": run_mlora(jobs, QWEN25_32B, four).tokens_per_second,
            "lorafusion": run_lorafusion(
                jobs, QWEN25_32B, four, scheduler_config=config,
                capacity=report.best_capacity).tokens_per_second,
        }
    return results


def test_fig15_l40s(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [14, 7, 9, 8, 8, 8]
    lines = [
        "Figure 15 -- end-to-end throughput (tokens/s) on NVIDIA L40S",
        fmt_row(["model", "setting", "baseline", "pp", "mlora", "fusion"],
                widths),
    ]
    for (model, setting), r in results.items():
        lines.append(fmt_row([
            model[-9:], setting, f"{r['baseline']:.0f}",
            f"{r.get('megatron-pp', 0):.0f}" if "megatron-pp" in r else "-",
            f"{r.get('mlora', 0):.0f}" if "mlora" in r else "-",
            f"{r['lorafusion']:.0f}",
        ], widths))
    small = results[("LLaMa-3.1-8B", "Mixed")]
    big = results[("Qwen-2.5-32B", "Mixed")]
    ratio_8b = small["lorafusion"] / small["baseline"]
    best_32b = max(big["baseline"], big["megatron-pp"])
    ratio_32b = big["lorafusion"] / best_32b
    lines += [
        "",
        f"8B 1xL40S speedup: {ratio_8b:.2f}x (paper ~1.2x)",
        f"32B 4xL40S speedup vs best baseline: {ratio_32b:.2f}x "
        "(paper up to 1.96x)",
    ]
    write_table("fig15_l40s", lines)

    assert 1.05 <= ratio_8b <= 1.45
    assert ratio_32b > 1.2
    # On PCIe-connected L40S, FSDP gathers are exposed: PP beats FSDP
    # (Figure 15 shows FSDP at 0.67-0.80x of PP for Qwen-32B).
    assert big["megatron-pp"] > big["baseline"]
