"""Multi-replica serving: replica count vs JCT, utilization, throughput.

Beyond the paper's single-pipeline evaluation: the same Poisson tenant
stream is served by 1, 2, and 4 pipeline replicas behind a least-loaded
:class:`~repro.serve.router.TenantRouter`, plus a 2-replica
packing-affinity configuration with migration enabled.  At equal offered
load, adding replicas must raise job throughput (finished jobs per unit
virtual time) and cut mean JCT; per-replica utilization drops as the
fleet outruns the arrival process -- the classic capacity/latency trade
this bench quantifies.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_multi_replica.py --seed 13
"""

import argparse

from benchmarks.common import fmt_row, write_table
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    OrchestratorConfig,
    PackingAffinityRouting,
    ReplicaSet,
    ReplicaSetConfig,
    SlotAdmission,
    StreamingSimExecutor,
    poisson_workload,
)

NUM_JOBS = 8
NUM_STAGES = 4
CAPACITY = 8192
SLOTS = 4
# High enough that one pipeline is service-bound (backlogged), so adding
# replicas shows up as throughput, not just idle capacity.
RATE = 4.0
DEFAULT_SEED = 7
REPLICA_COUNTS = (1, 2, 4)
DATASETS = ["xsum", "cnn_dailymail", "wikisum", "mixed"]


def make_jobs(seed):
    return [
        AdapterJob(a, synthetic_dataset(a, DATASETS[a % 4], 24, seed=seed),
                   8)
        for a in range(NUM_JOBS)
    ]


def serve(workload, num_replicas, routing=None, migration_threshold=None):
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=CAPACITY,
                                      num_stages=NUM_STAGES,
                                      use_milp=False),
            window_batches=2,
            admission=SlotAdmission(SLOTS),
        ),
        routing=routing,
        migration_threshold=migration_threshold,
    )
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    executors = [
        StreamingSimExecutor(cost, NUM_STAGES) for _ in range(num_replicas)
    ]
    result = ReplicaSet(executors, config).run(workload)
    assert result.violations == 0
    return result


def sweep(seed=DEFAULT_SEED):
    jobs = make_jobs(seed + 10)
    # Same offered load for every fleet size: identical jobs, identical
    # arrival process.
    results = {}
    for count in REPLICA_COUNTS:
        workload = poisson_workload(jobs, rate=RATE, rng=seed)
        results[f"least-loaded-x{count}"] = serve(workload, count)
    workload = poisson_workload(jobs, rate=RATE, rng=seed)
    results["affinity+migrate-x2"] = serve(
        workload, 2, routing=PackingAffinityRouting(),
        migration_threshold=4,
    )
    return results


def report(results, seed):
    widths = [20, 10, 10, 8, 9, 9, 7, 7]
    lines = [
        f"Replica count vs JCT/utilization ({NUM_JOBS} jobs, Poisson "
        f"rate {RATE}, seed {seed}, {SLOTS} slots/replica, "
        f"{NUM_STAGES}-stage pipelines, LLaMa-8B)",
        fmt_row(
            ["scenario", "makespan", "meanJCT", "util", "jobs/t",
             "tokens/t", "migr", "rerte"],
            widths,
        ),
    ]
    for name, result in results.items():
        lines.append(
            fmt_row(
                [
                    name,
                    f"{result.makespan:.2f}",
                    f"{result.mean_completion_time():.2f}",
                    f"{result.utilization():.1%}",
                    f"{result.jobs_per_time():.3f}",
                    f"{result.tokens_per_time():.0f}",
                    result.migrations,
                    result.reroutes,
                ],
                widths,
            )
        )
    write_table("multi_replica", lines)


def check(results):
    single = results["least-loaded-x1"]
    double = results["least-loaded-x2"]
    # Every fleet size finishes every job; each job lives on one replica.
    for result in results.values():
        assert all(
            r.finish_time is not None for r in result.records.values()
        )
        assert len(result.records) == NUM_JOBS
        assert result.total_tokens == single.total_tokens
    # The scale-out claim: at equal offered load, >=2 replicas sustain
    # strictly higher job throughput than one pipeline.
    assert double.jobs_per_time() > single.jobs_per_time()
    assert double.makespan <= single.makespan
    assert double.mean_completion_time() <= single.mean_completion_time()


def test_multi_replica(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload + arrival seed")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
