"""Length-aware knapsack packing vs arrival-order head-tail grouping.

The gate behind the ``packing="knapsack"`` scheme (``docs/serving.md``
section "Length-aware packing"): on a heavy-tailed multi-tenant trace,
assembling waves from token-mass knapsack groups must cut padding waste
and the bubble rate at equal-or-better mean JCT -- and stay bit-identical
across both fleet kernels and across a double run.

The trace is the shape that makes head-tail contrast pairing overflow:
eight tenants alternating long wikisum jobs (small global batches of
~1.5k-token samples) with short xsum jobs (large global batches of
~0.4k-token samples).  Head-tail groups pair long with short, so every
(group, step) carries more padded tokens than one microbatch holds: the
step splits across bins, each split re-rounds its adapter segments to
the padding granule (waste) and puts the same adapters in adjacent
microbatches (bubble-lemma no-ops).  The knapsack assembler instead
weighs each job by its padded per-step token mass and first-fit-
decreasing-packs jobs into groups that fill one microbatch, so every
group-step is a single bin: one padding rounding per adapter per step,
and enough groups to interleave cleanly across the pipeline depth.

Four scenarios, one table row each:

* ``arrival``           -- the head-tail baseline (event kernel).
* ``knapsack``          -- knapsack waves + sticky groups + estimator-
                           priced packing-affinity routing (event kernel).
* ``knapsack-lockstep`` -- the same config on the lockstep kernel; every
                           cell must equal the ``knapsack`` row (kernel
                           bit-identity).
* ``knapsack-rerun``    -- the same config run twice; every cell must
                           equal the ``knapsack`` row (determinism).

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_packing.py --seed 13
"""

import argparse

from benchmarks.common import fmt_row, write_table
from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CostEstimator,
    OrchestratorConfig,
    PackingAffinityRouting,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 2
CAPACITY = 8192
DEFAULT_SEED = 7
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES, use_milp=False)

# The gate: knapsack must cut padding waste by at least this fraction of
# the arrival baseline's waste, without paying for it in mean JCT.
# ``scripts/check_bench_results.py`` imports both constants so the CI
# check and the benchmark agree by construction.
WASTE_REDUCTION_FLOOR = 0.15
JCT_PENALTY_CEILING = 1.0


def heavy_tailed_trace(seed):
    """Eight tenants alternating long-sample and short-sample jobs.

    Per-step token masses land near half a microbatch (long ~4.5k,
    short ~3k of the 8192 capacity), so knapsack pairs one of each into
    a ~92%-full single-bin group while head-tail's contrast pairs (two
    long + two short once all eight are live) overflow every step.
    """
    jobs = []
    for adapter in range(8):
        if adapter % 2 == 0:
            dataset = synthetic_dataset(adapter, "wikisum", 12, seed=seed)
            gbs = 3
        else:
            dataset = synthetic_dataset(adapter, "xsum", 32, seed=seed)
            gbs = 8
        jobs.append(
            ServeJob(
                job=AdapterJob(adapter, dataset, gbs),
                arrival_time=0.05 * adapter,
            )
        )
    return jobs


def serve(seed, packing, kernel):
    estimator = CostEstimator.for_scheduler(COST, SCHED)
    routing = (
        PackingAffinityRouting(estimator=estimator)
        if packing == "knapsack"
        else PackingAffinityRouting()
    )
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=2,
            admission=SlotAdmission(8),
            estimator=estimator,
            packing=packing,
        ),
        routing=routing,
        kernel=kernel,
    )
    executors = [StreamingSimExecutor(COST, NUM_STAGES)]
    result = ReplicaSet(executors, config).run(heavy_tailed_trace(seed))
    assert result.violations == 0
    return result


def sweep(seed=DEFAULT_SEED):
    return {
        "arrival": serve(seed, "arrival", "event"),
        "knapsack": serve(seed, "knapsack", "event"),
        "knapsack-lockstep": serve(seed, "knapsack", "lockstep"),
        "knapsack-rerun": serve(seed, "knapsack", "event"),
    }


def cells(result):
    """One row of metric cells; identical runs must produce equal cells."""
    return [
        f"{result.padding_waste():.4f}",
        f"{result.bubble_rate():.4f}",
        f"{result.pack_efficiency():.4f}",
        f"{result.mean_completion_time():.4f}",
        f"{result.makespan:.4f}",
        result.total_microbatches,
        result.noop_microbatches,
        result.total_tokens,
    ]


def report(results, seed):
    widths = [19, 8, 8, 9, 9, 9, 5, 7, 8]
    lines = [
        "Length-aware knapsack packing vs arrival-order head-tail grouping "
        f"(seed {seed}, {NUM_STAGES}-stage pipeline, LLaMa-8B, capacity "
        f"{CAPACITY}, waste-reduction floor {WASTE_REDUCTION_FLOOR})",
        fmt_row(
            ["scenario", "waste", "bubble", "packeff", "meanJCT",
             "makespan", "mbs", "noops", "tokens"],
            widths,
        ),
    ]
    for name, result in results.items():
        lines.append(fmt_row([name, *cells(result)], widths))
    write_table("packing", lines)


def check(results):
    arrival, knapsack = results["arrival"], results["knapsack"]
    # Packing claim: knapsack waves cut padding waste by at least the
    # floor and never bubble more, at equal-or-better mean JCT.
    reduction = 1.0 - knapsack.padding_waste() / arrival.padding_waste()
    assert reduction >= WASTE_REDUCTION_FLOOR, reduction
    assert knapsack.bubble_rate() <= arrival.bubble_rate()
    assert (
        knapsack.mean_completion_time()
        <= JCT_PENALTY_CEILING * arrival.mean_completion_time()
    )
    # Same work served either way: packing shapes the stream, not the
    # jobs -- and everything the stream computed is accounted for.
    assert knapsack.total_tokens == arrival.total_tokens
    for result in (arrival, knapsack):
        assert all(r.finish_time is not None for r in result.records.values())
        assert result.total_padded_tokens >= result.total_tokens > 0

    # Losslessness machinery claim: the knapsack schedule is the same
    # schedule on both kernels and on a second run, cell for cell.
    assert cells(results["knapsack-lockstep"]) == cells(knapsack)
    assert cells(results["knapsack-rerun"]) == cells(knapsack)


def test_packing(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="dataset seed for the trace tenants")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
