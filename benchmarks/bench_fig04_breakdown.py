"""Figure 4: runtime breakdown of one LoRA linear (n=k=4096, r=16, 8K tokens).

Paper values (fractions of pass time): forward X@W 59%, Dropout 19%,
X@A 6%, S@B 5%, MulAdd 12%; backward Mul 8%, S.T@dY 6%, dY@B 4%,
X.T@dS 5%, dS@A 6%, dY@W 60%, DropoutBwd 12%.
"""

from benchmarks.common import fmt_row, write_table
from repro.core import LoRAShape, lora_profiles
from repro.gpu import H100, simulate_kernel_sequence

SHAPE = LoRAShape(m=8192, k=4096, n=4096, r=16)

PAPER_FORWARD = {
    "gemm_xw": 0.59, "dropout": 0.19, "gemm_xa": 0.06, "gemm_sb": 0.05,
    "muladd": 0.12,
}
PAPER_BACKWARD = {
    "mul": 0.08, "gemm_s_dy": 0.06, "gemm_dy_b": 0.04, "gemm_x_ds": 0.05,
    "gemm_ds_a": 0.06, "gemm_dy_w": 0.60, "dropout_bwd_add": 0.12,
}


def breakdown(direction):
    timeline = simulate_kernel_sequence(
        lora_profiles("torch", direction, SHAPE), H100
    )
    return timeline.breakdown_fractions("name"), timeline.total_time


def both():
    return breakdown("forward"), breakdown("backward")


def test_fig04_breakdown(benchmark):
    (fwd, fwd_total), (bwd, bwd_total) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    widths = [18, 10, 10]
    lines = [
        "Figure 4 -- Torch LoRA runtime breakdown (m=8192, k=n=4096, r=16)",
        f"forward total: {fwd_total*1e6:.0f} us (paper ~600 us)",
        fmt_row(["kernel", "paper", "measured"], widths),
    ]
    for name, paper in PAPER_FORWARD.items():
        lines.append(fmt_row([name, f"{paper:.0%}", f"{fwd.get(name, 0):.0%}"],
                             widths))
    lines.append(f"backward total: {bwd_total*1e6:.0f} us (paper ~600 us)")
    for name, paper in PAPER_BACKWARD.items():
        lines.append(fmt_row([name, f"{paper:.0%}", f"{bwd.get(name, 0):.0%}"],
                             widths))
    write_table("fig04_breakdown", lines)

    # Shape checks: base GEMM dominates at ~60%; dropout is the biggest
    # non-GEMM forward cost; every paper kernel appears.
    assert abs(fwd["gemm_xw"] - 0.59) < 0.08
    assert abs(bwd["gemm_dy_w"] - 0.60) < 0.08
    assert abs(fwd["dropout"] - 0.19) < 0.06
    assert set(PAPER_FORWARD) <= set(fwd)
    assert set(PAPER_BACKWARD) <= set(bwd)
    # Absolute totals in the paper's ballpark (hundreds of microseconds).
    assert 400e-6 < fwd_total < 900e-6
    assert 400e-6 < bwd_total < 900e-6
