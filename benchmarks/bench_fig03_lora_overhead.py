"""Figure 3: LoRA linear-layer throughput vs. the frozen linear layer.

Paper claims: LoRA costs ~40% forward / ~36% backward throughput
regardless of token count; torch.compile gives zero forward benefit and
negligible backward benefit; rank (16 vs 32) barely matters.
"""

import pytest

from benchmarks.common import fmt_row, write_table
from repro.core import LoRAShape, lora_profiles
from repro.gpu import H100, simulate_kernel_sequence

TOKEN_SWEEP = (2560, 5120, 7680, 10240, 12800, 15360)
N = K = 4096

VARIANTS = [
    ("Linear (frozen W)", "frozen", 16),
    ("LoRA r=16", "torch", 16),
    ("LoRA r=16 (compile)", "compile", 16),
    ("LoRA r=32", "torch", 32),
    ("LoRA r=32 (compile)", "compile", 32),
]


def throughput(strategy, rank, tokens, direction):
    shape = LoRAShape(m=tokens, k=K, n=N, r=rank)
    timeline = simulate_kernel_sequence(
        lora_profiles(strategy, direction, shape), H100
    )
    return tokens / timeline.total_time / 1e6  # M tokens/s


def sweep():
    table = {}
    for label, strategy, rank in VARIANTS:
        for direction in ("forward", "backward"):
            table[(label, direction)] = [
                throughput(strategy, rank, t, direction) for t in TOKEN_SWEEP
            ]
    return table


def test_fig03_lora_overhead(benchmark):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [22, 9] + [8] * len(TOKEN_SWEEP)
    lines = [
        "Figure 3 -- throughput (M tokens/s) of a 4096x4096 linear on H100",
        fmt_row(["variant", "pass"] + [f"{t//1024}K" for t in TOKEN_SWEEP],
                widths),
    ]
    for (label, direction), values in table.items():
        lines.append(
            fmt_row([label, direction[:3]] + [f"{v:.1f}" for v in values],
                    widths)
        )
    frozen_f = table[("Linear (frozen W)", "forward")][-1]
    lora_f = table[("LoRA r=16", "forward")][-1]
    frozen_b = table[("Linear (frozen W)", "backward")][-1]
    lora_b = table[("LoRA r=16", "backward")][-1]
    fwd_slowdown = 1 - lora_f / frozen_f
    bwd_slowdown = 1 - lora_b / frozen_b
    lines += [
        "",
        f"forward slowdown : paper ~40%   measured {fwd_slowdown:.0%}",
        f"backward slowdown: paper ~36%   measured {bwd_slowdown:.0%}",
    ]
    write_table("fig03_lora_overhead", lines)

    assert 0.30 <= fwd_slowdown <= 0.45
    assert 0.28 <= bwd_slowdown <= 0.45
    # compile: zero forward benefit, <5% backward benefit.
    assert table[("LoRA r=16 (compile)", "forward")][-1] == pytest.approx(lora_f)
    compile_b = table[("LoRA r=16 (compile)", "backward")][-1]
    assert 1.0 <= compile_b / lora_b < 1.05
    # rank 32 within 3% of rank 16.
    r32 = table[("LoRA r=32", "forward")][-1]
    assert abs(r32 - lora_f) / lora_f < 0.03
