"""Elastic autoscaling on heterogeneous capacity: three gated scenarios.

A :class:`~repro.serve.autoscaler.FleetAutoscaler` watches the
calibrated seconds-valued backlog and sizes the fleet inside a
$/GPU-hour budget, buying from two pools -- on-demand H100s (the
hardware the cost model prices) and cheap spot L40S capacity whose
:attr:`~repro.serve.autoscaler.CapacityPool.speed_factor` (computed
here from the layer cost model itself, not guessed) seeds the
calibration tracker so slow hardware is priced honestly from its first
wave.  Scale actions flow through the event kernel as first-class heap
events, so every scenario replays byte-identically -- the sweep runs
each trace twice and asserts identical per-job records before reporting
a single number.

Scenarios (each also a pytest-benchmark case):

* ``diurnal`` -- two traffic peaks around a lull: the fleet must grow
  for each peak and give capacity back in between (joins *and* retires).
* ``flash-crowd`` -- a calm trickle, then a burst at 10x the rate: the
  fleet grows under pressure and every deadline-carrying job is judged
  by the served miss-rate gate.
* ``mass-reclaim`` -- a provider takes 25% of an 8-replica fleet back
  mid-run with a finite grace window; the gate is **zero lost jobs**
  and a bounded mean-JCT penalty versus the identical trace with no
  reclamation (``mass-reclaim-base``).

Gates (re-checked against the committed table by
``scripts/check_bench_results.py``): no scenario loses a job, every
scenario's deadline miss rate stays under ``MISS_RATE_CEILING``, the
elastic fleet's GPU-seconds stay under what a fixed fleet at peak size
would bill (``gpu_s < (replicas + joins) * makespan``), and the
mass-reclaim JCT penalty stays under ``RECLAIM_JCT_PENALTY``x.

Run under pytest (the default seed) or standalone:

    PYTHONPATH=src:. python benchmarks/bench_autoscale.py --seed 13
"""

import argparse
import time

import numpy as np

from benchmarks.common import fmt_row, write_table
from repro.data.dataset import FinetuneDataset, Sample
from repro.distsim.systems import stage_times
from repro.gpu import H100
from repro.gpu.specs import get_gpu
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CapacityPool,
    CostAwareRouting,
    CostEstimator,
    FleetAutoscaler,
    OrchestratorConfig,
    ReclamationNotice,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 2
CAPACITY = 8192
SLOTS = 4
DEFAULT_SEED = 7
#: Distinct sample-length values across the tenant population (shared
#: profiles keep the estimator's memos warm; see bench_fleet_kernel).
NUM_PROFILES = 16
#: Every Nth tenant carries a completion deadline.
DEADLINE_EVERY = 3
#: Seconds of slack a deadline-carrying tenant gets past its arrival.
DEADLINE_SLACK = 6.0
#: Served deadline-miss-rate ceiling every scenario must stay under.
MISS_RATE_CEILING = 0.15
#: Mean-JCT multiplier the mass reclaim may cost over the no-reclaim
#: baseline run of the identical trace.
RECLAIM_JCT_PENALTY = 1.5

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                        use_milp=False)


def pool_speed_factor(gpu_key):
    """Step-time ratio of ``gpu_key`` versus the reference H100 model.

    Derived from the same layer cost model the executors run on (a
    representative microbatch shape), so the calibration seed and the
    simulated hardware cannot drift apart.
    """
    probe = MicrobatchShape(tokens=4096, sum_sq_len=4096.0 * 256,
                            num_adapters=SLOTS)
    alt = LayerCostModel(LLAMA3_8B, get_gpu(gpu_key),
                         strategy="fused_multi")
    ref_f, ref_b = stage_times(COST, probe, NUM_STAGES)
    alt_f, alt_b = stage_times(alt, probe, NUM_STAGES)
    return (sum(alt_f) + sum(alt_b)) / (sum(ref_f) + sum(ref_b))


ON_DEMAND = CapacityPool("h100", "h100", hourly_rate=6.0, limit=6)
SPOT = CapacityPool("l40s-spot", "l40s", hourly_rate=1.5, limit=6,
                    speed_factor=pool_speed_factor("l40s"), spot=True)

#: (name, job count per segment, arrival rate per segment).  Segments
#: run back to back: diurnal is peak/lull/peak, the flash crowd is a
#: trickle then a 10x burst, the reclaim trace is steady overload.
TRACES = {
    "diurnal": ((160, 200.0), (40, 8.0), (160, 200.0)),
    "flash-crowd": ((60, 20.0), (240, 200.0)),
    "mass-reclaim": ((400, 100.0),),
}
#: 25% of the 8-replica reclaim fleet, taken with a 0.5s grace window.
RECLAIM_NOTICE = ReclamationNotice(time=1.0, count=2, deadline=0.5)
SCENARIOS = ("diurnal", "flash-crowd", "mass-reclaim-base", "mass-reclaim")


def make_jobs(count, seed):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(64, 512, size=NUM_PROFILES)
    return [
        AdapterJob(
            a,
            FinetuneDataset(a, [Sample(a, 0, int(lengths[a % NUM_PROFILES]))]),
            1,
        )
        for a in range(count)
    ]


def build_workload(name, seed):
    """Segment-rate Poisson arrivals; every Nth tenant gets a deadline."""
    segments = TRACES["mass-reclaim" if name.startswith("mass") else name]
    total = sum(count for count, _ in segments)
    jobs = make_jobs(total, seed + 10)
    rng = np.random.default_rng(seed)
    workload = []
    clock = 0.0
    offset = 0
    for count, rate in segments:
        gaps = rng.exponential(1.0 / rate, size=count)
        for index, gap in enumerate(gaps):
            clock += gap
            job = jobs[offset + index]
            deadline = (
                clock + DEADLINE_SLACK
                if job.adapter_id % DEADLINE_EVERY == 0
                else None
            )
            workload.append(
                ServeJob(job=job, arrival_time=clock, deadline=deadline)
            )
        offset += count
    return workload


def build_autoscaler(name):
    if name.startswith("mass-reclaim"):
        initial = ("h100",) * 4 + ("l40s-spot",) * 4
        notices = (RECLAIM_NOTICE,) if name == "mass-reclaim" else ()
    else:
        initial = ("h100",)
        notices = ()
    return FleetAutoscaler(
        pools=(ON_DEMAND, SPOT),
        budget_per_hour=40.0,
        initial_pools=initial,
        scale_up_backlog=0.5,
        scale_down_backlog=0.1,
        provision_delay=0.1,
        cooldown=0.2,
        reclamations=notices,
    )


def serve(name, seed):
    """Run one scenario; return (fleet result, wall seconds)."""
    scaler = build_autoscaler(name)
    estimator = CostEstimator.for_scheduler(COST, SCHED)
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=1,
            admission=SlotAdmission(SLOTS),
            estimator=estimator,
        ),
        routing=CostAwareRouting(estimator),
        migration_time_threshold=30.0,
        autoscaler=scaler,
        executor_factory=lambda pool: StreamingSimExecutor(
            LayerCostModel(LLAMA3_8B, get_gpu(pool.gpu),
                           strategy="fused_multi"),
            NUM_STAGES,
        ),
    )
    executors = [
        StreamingSimExecutor(COST, NUM_STAGES)
        for _ in range(len(scaler.initial_pools))
    ]
    workload = build_workload(name, seed)
    replica_set = ReplicaSet(executors, config)
    start = time.perf_counter()
    result = replica_set.run(workload)
    return result, time.perf_counter() - start


def fingerprint(result):
    """The per-job outcome stream a rerun must reproduce exactly."""
    return {
        aid: (r.arrival_time, r.admit_time, r.first_scheduled_time,
              r.finish_time, r.replica, r.migrations, r.num_batches)
        for aid, r in result.records.items()
    }


def sweep(seed=DEFAULT_SEED):
    results = {}
    for name in SCENARIOS:
        result, elapsed = serve(name, seed)
        # Determinism gate before any reported number: scale events are
        # kernel events, so the rerun must be byte-identical.
        rerun, _ = serve(name, seed)
        assert fingerprint(rerun) == fingerprint(result), name
        assert rerun.events_processed == result.events_processed, name
        lost = sum(
            1 for r in result.records.values() if r.finish_time is None
        )
        results[name] = {
            "jobs": len(result.records),
            "replicas": len(build_autoscaler(name).initial_pools),
            "joins": result.joins,
            "retires": result.retires,
            "reclaims": result.reclaims,
            "forced": result.forced_evacuations,
            "missrate": result.deadline_miss_rate(),
            "meanJCT": result.mean_completion_time(),
            "makespan": result.makespan,
            "gpu_s": result.gpu_seconds,
            "dollars": result.dollars_spent,
            "lost": lost,
            "wall_s": elapsed,
        }
    return results


def report(results, seed):
    widths = [18, 5, 5, 6, 7, 8, 6, 8, 8, 8, 8, 8, 4]
    lines = [
        f"Elastic autoscaling on heterogeneous capacity (seed {seed}, "
        f"H100 ${ON_DEMAND.hourly_rate}/h vs spot L40S "
        f"${SPOT.hourly_rate}/h at {SPOT.speed_factor:.2f}x step time, "
        f"$40/h budget, {SLOTS} slots/replica)",
        fmt_row(
            ["scenario", "jobs", "repl", "joins", "retires", "reclaims",
             "forced", "missrate", "meanJCT", "makespan", "gpu_s",
             "dollars", "lost"],
            widths,
        ),
    ]
    for name, row in results.items():
        lines.append(
            fmt_row(
                [
                    name,
                    row["jobs"],
                    row["replicas"],
                    row["joins"],
                    row["retires"],
                    row["reclaims"],
                    row["forced"],
                    f"{row['missrate']:.3f}",
                    f"{row['meanJCT']:.3f}",
                    f"{row['makespan']:.2f}",
                    f"{row['gpu_s']:.2f}",
                    f"{row['dollars']:.5f}",
                    row["lost"],
                ],
                widths,
            )
        )
    write_table("autoscale", lines)


def check(results):
    for name, row in results.items():
        assert row["lost"] == 0, f"{name} lost {row['lost']} job(s)"
        assert row["missrate"] <= MISS_RATE_CEILING, name
        # The elastic fleet must bill less than a fixed fleet held at
        # its peak size for the whole run.
        peak_bill = (row["replicas"] + row["joins"]) * row["makespan"]
        assert row["gpu_s"] < peak_bill, name
    assert results["diurnal"]["joins"] >= 1
    assert results["diurnal"]["retires"] >= 1
    assert results["flash-crowd"]["joins"] >= 1
    reclaim, base = results["mass-reclaim"], results["mass-reclaim-base"]
    assert reclaim["reclaims"] == RECLAIM_NOTICE.count
    assert reclaim["meanJCT"] <= RECLAIM_JCT_PENALTY * base["meanJCT"]


def test_autoscale(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(results, DEFAULT_SEED)
    check(results)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="workload + arrival seed")
    args = parser.parse_args()
    results = sweep(args.seed)
    report(results, args.seed)
    check(results)


if __name__ == "__main__":
    main()
