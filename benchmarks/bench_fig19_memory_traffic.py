"""Figure 19: GPU DRAM traffic of the three kernel strategies.

Paper (NCU-measured): FusedLoRA/FusedMultiLoRA cut total DRAM traffic to
0.63x / 0.66x / 0.77x of Torch LoRA on the 4096/5120/8192 square shapes,
with the ratio rising as the base GEMM (untouched by fusion) grows.  Our
analytical ledger reproduces the ordering and the monotone trend; it is
somewhat more optimistic than NCU because real kernels move extra traffic
(cache evictions, partial tiles) that fusion does not eliminate -- see
EXPERIMENTS.md.
"""

from benchmarks.common import fmt_row, write_table
from repro.core import LoRAShape, lora_profiles, total_traffic

SHAPES = [(8192, 4096), (8192, 5120), (8192, 8192)]
PAPER_RATIOS = {4096: 0.63, 5120: 0.66, 8192: 0.77}


def traffic_gb(strategy, m, d, num_adapters=1):
    shape = LoRAShape(m=m, k=d, n=d, r=16, num_adapters=num_adapters)
    total = sum(
        total_traffic(lora_profiles(strategy, direction, shape))
        for direction in ("forward", "backward")
    )
    return total / 1e9


def sweep():
    rows = {}
    for m, d in SHAPES:
        rows[d] = {
            "torch": traffic_gb("torch", m, d),
            "fused": traffic_gb("fused", m, d),
            "multi": traffic_gb("fused_multi", m, d, num_adapters=4),
        }
    return rows


def test_fig19_memory_traffic(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [16, 9, 9, 9, 12, 12]
    lines = [
        "Figure 19 -- DRAM read/write traffic (GB), fwd+bwd",
        fmt_row(["MxKxN", "torch", "fused", "multi", "fused ratio",
                 "paper"], widths),
    ]
    ratios = {}
    for (m, d), row in zip(SHAPES, rows.values()):
        ratio = row["fused"] / row["torch"]
        ratios[d] = ratio
        lines.append(fmt_row(
            [f"{m}x{d}x{d}", f"{row['torch']:.2f}", f"{row['fused']:.2f}",
             f"{row['multi']:.2f}", f"{ratio:.2f}x",
             f"{PAPER_RATIOS[d]:.2f}x"], widths))
    write_table("fig19_memory_traffic", lines)

    # Fusion always reduces traffic; reduction shrinks with base dim.
    for d, ratio in ratios.items():
        assert 0.40 <= ratio <= PAPER_RATIOS[d] + 0.05
    assert ratios[4096] < ratios[5120] < ratios[8192]
    # Multi moves nearly the same bytes as fused (atomics land in L2).
    for row in rows.values():
        assert row["multi"] <= row["fused"] * 1.05
