"""Figure 21: scheduler tuning time vs. number of samples.

Paper: scheduling cost grows linearly (~4 ms/sample on their 64-vCPU
box, 38s at 640 samples to 102s at 25600 with multiprocessing) and stays
an order of magnitude below GPU computation time, so it hides behind
training of the previous global batch.  We sweep smaller sample counts
(pure-Python MILP setup is slower per sample) and check both properties:
near-linear scaling and computation >> tuning.
"""

from benchmarks.common import fmt_row, h100_cluster, make_jobs, write_table
from repro.distsim import run_lorafusion
from repro.models import LLAMA3_70B
from repro.scheduler import MultiLoRAScheduler, SchedulerConfig

SAMPLE_SWEEP = (40, 80, 160, 320)
CAPACITY = 8192


def tune_and_simulate(samples_per_job):
    jobs = make_jobs(["mixed"] * 4, samples=samples_per_job, gbs=8)
    config = SchedulerConfig(capacity=CAPACITY, num_stages=4, use_milp=True,
                             milp_timeout=0.1)
    schedule = MultiLoRAScheduler(jobs, config).schedule()
    report = run_lorafusion(jobs, LLAMA3_70B, h100_cluster(4),
                            scheduler_config=config, capacity=CAPACITY)
    return schedule.stats["tuning_seconds"], report.total_time


def sweep():
    return {n: tune_and_simulate(n) for n in SAMPLE_SWEEP}


def test_fig21_tuning_time(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    widths = [10, 12, 16, 10]
    lines = [
        "Figure 21 -- scheduler tuning time vs workload size (4 adapters)",
        fmt_row(["samples", "tuning (s)", "GPU compute (s)", "ratio"],
                widths),
    ]
    for n, (tuning, compute) in data.items():
        total = 4 * n
        lines.append(fmt_row(
            [total, f"{tuning:.2f}", f"{compute:.1f}",
             f"{compute/tuning:.0f}x"], widths))
    first, last = SAMPLE_SWEEP[0], SAMPLE_SWEEP[-1]
    growth = data[last][0] / data[first][0]
    lines += [
        "",
        f"tuning time grew {growth:.1f}x for an 8x workload increase "
        "(paper: near-linear scaling)",
        "computation time exceeds tuning time throughout, so scheduling "
        "hides behind GPU execution of the previous batch",
    ]
    write_table("fig21_tuning_time", lines)

    # Near-linear: an 8x workload costs between 2x and 16x tuning time.
    assert 2.0 <= growth <= 16.0
    # Scheduling stays well below simulated GPU time at every size.
    for tuning, compute in data.values():
        assert compute > 2 * tuning
