"""Check intra-repo links in README.md and docs/*.md.

Scans markdown inline links (``[text](target)``) and fails when a
relative target does not exist in the repository -- or when a link's
``#fragment`` does not match any heading anchor of the target document
(GitHub-style slugs), including pure in-page ``#section`` links.
External links (``http(s)://``) and mail links are skipped.

CI runs this as the docs job; ``tests/docs/test_links.py`` runs the same
check under pytest so broken links fail locally too.

Usage:  python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; images share the syntax (with a leading ``!``).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks, where link-looking text is code, not a link.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
#: ATX headings (``# ...`` through ``###### ...``).
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
#: Characters GitHub strips when slugifying a heading.
_SLUG_STRIP = re.compile(r"[^\w\- ]")


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files the repository promises to keep link-clean."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading (sans duplicate suffixes)."""
    text = _SLUG_STRIP.sub("", heading.strip().lower())
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def heading_anchors(path: Path) -> frozenset[str]:
    """Every anchor a document exposes, with ``-N`` duplicate suffixes.

    Cached per path: several links usually point at the same document,
    and one parse per file is enough (the checker is one-shot).
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in _FENCE.sub("", path.read_text()).splitlines():
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return frozenset(anchors)


def broken_links(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` pairs for every broken relative link.

    A link is broken when its file part does not exist, or when its
    ``#fragment`` names no heading anchor of the target document (the
    linked file for ``file.md#frag``, this document for ``#frag``).
    """
    text = _FENCE.sub("", path.read_text())
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative, _, fragment = target.partition("#")
        resolved = (path.parent / relative).resolve() if relative else path
        if not resolved.exists():
            problems.append((target, f"missing file {resolved}"))
            continue
        if not fragment:
            continue
        if resolved.suffix != ".md":
            continue  # anchors are only checkable in markdown
        if fragment not in heading_anchors(resolved):
            problems.append(
                (target, f"dangling anchor '#{fragment}' in {resolved.name}")
            )
    return problems


def main() -> int:
    failures = 0
    for path in doc_files():
        for target, reason in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}: broken link "
                  f"'{target}' ({reason})")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"all intra-repo links ok across {len(doc_files())} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
