"""Check intra-repo links in README.md and docs/*.md.

Scans markdown inline links (``[text](target)``) and fails when a
relative target does not exist in the repository.  External links
(``http(s)://``), mail links, and pure in-page anchors are skipped;
anchors on relative targets are stripped before the existence check.

CI runs this as the docs job; ``tests/docs/test_links.py`` runs the same
check under pytest so broken links fail locally too.

Usage:  python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; images share the syntax (with a leading ``!``).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks, where link-looking text is code, not a link.
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files the repository promises to keep link-clean."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def broken_links(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` pairs for every broken relative link."""
    text = _FENCE.sub("", path.read_text())
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append((target, f"missing file {resolved}"))
    return problems


def main() -> int:
    failures = 0
    for path in doc_files():
        for target, reason in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}: broken link "
                  f"'{target}' ({reason})")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"all intra-repo links ok across {len(doc_files())} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
