"""Check intra-repo links and code references in the documentation.

Two families of checks:

1. **Markdown links.**  Scans inline links (``[text](target)``) in
   README.md and docs/*.md and fails when a relative target does not
   exist in the repository -- or when a link's ``#fragment`` does not
   match any heading anchor of the target document (GitHub-style
   slugs), including pure in-page ``#section`` links.  External links
   (``http(s)://``) and mail links are skipped.
2. **Code references.**  Scans Sphinx-style roles --
   ``:class:`...```, ``:func:``, ``:meth:``, ``:attr:``, ``:data:``,
   ``:mod:`` -- in docs/*.md *and* in every serve- and tune-layer
   docstring, and fails unless the referenced name actually imports
   and resolves (import the longest module prefix, then ``getattr``
   the rest; dataclass fields and annotated attributes count).  Docs
   can no longer point at renamed-away API and silently rot.
3. **Orphan modules.**  Every non-private module under the documented
   packages (``repro/serve``, ``repro/tune``) must be reachable from
   at least one doc page -- by a ``repro/serve/foo.py`` path mention
   or by a role whose target is defined in the module.  New modules
   cannot land undocumented.

CI runs this as the docs job; ``tests/docs/test_links.py`` runs the same
checks under pytest so broken links fail locally too.

Usage:  python scripts/check_docs_links.py
"""

from __future__ import annotations

import ast
import importlib
import re
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Inline markdown links; images share the syntax (with a leading ``!``).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks, where link-looking text is code, not a link.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
#: ATX headings (``# ...`` through ``###### ...``).
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
#: Characters GitHub strips when slugifying a heading.
_SLUG_STRIP = re.compile(r"[^\w\- ]")
#: Sphinx-style code-reference roles, e.g. ``:class:`~repro.serve.X```.
_ROLE = re.compile(r":(class|func|meth|attr|data|mod):`([^`]+)`")
#: The ``text <actual.target>`` form of a role body.
_ROLE_TARGET = re.compile(r".*<([^<>]+)>\s*$", re.DOTALL)


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """The markdown files the repository promises to keep link-clean."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading (sans duplicate suffixes)."""
    text = _SLUG_STRIP.sub("", heading.strip().lower())
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def heading_anchors(path: Path) -> frozenset[str]:
    """Every anchor a document exposes, with ``-N`` duplicate suffixes.

    Cached per path: several links usually point at the same document,
    and one parse per file is enough (the checker is one-shot).
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in _FENCE.sub("", path.read_text()).splitlines():
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = slugify(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return frozenset(anchors)


def broken_links(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` pairs for every broken relative link.

    A link is broken when its file part does not exist, or when its
    ``#fragment`` names no heading anchor of the target document (the
    linked file for ``file.md#frag``, this document for ``#frag``).
    """
    text = _FENCE.sub("", path.read_text())
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        relative, _, fragment = target.partition("#")
        resolved = (path.parent / relative).resolve() if relative else path
        if not resolved.exists():
            problems.append((target, f"missing file {resolved}"))
            continue
        if not fragment:
            continue
        if resolved.suffix != ".md":
            continue  # anchors are only checkable in markdown
        if fragment not in heading_anchors(resolved):
            problems.append(
                (target, f"dangling anchor '#{fragment}' in {resolved.name}")
            )
    return problems


# -- code-reference checking (:class:/:data:/... roles) ------------------

#: Packages whose docstrings are reference-checked and whose modules
#: must all be reachable from the docs (the enforced surface, like lint).
DOCUMENTED_PACKAGES = ("repro.serve", "repro.tune", "repro.data")

#: Namespaces bare (undotted) references in markdown resolve against,
#: tried in order.
DOCS_NAMESPACES = ("repro.serve", "repro.tune", "repro.data")

#: A module mention in prose or a diagram: ``repro/serve/costing.py``
#: or dotted ``repro.tune.pruner``.
_MODULE_MENTION = re.compile(r"repro[./](serve|tune|data)[./](\w+)")


def reference_sources(root: Path = REPO_ROOT) -> list[Path]:
    """The python files whose docstrings are reference-checked."""
    files = []
    for package in DOCUMENTED_PACKAGES:
        package_dir = root / "src" / Path(*package.split("."))
        files.extend(sorted(package_dir.glob("*.py")))
    return files


def role_references(text: str) -> list[tuple[str, str]]:
    """Every ``(role, target)`` reference in ``text``, normalized.

    Normalization strips the Sphinx ``~`` shorthand, unwraps the
    ``text <target>`` form, drops trailing call parentheses, and joins
    targets wrapped across docstring lines.
    """
    references = []
    for role, body in _ROLE.findall(text):
        explicit = _ROLE_TARGET.match(body)
        target = (explicit.group(1) if explicit else body).strip()
        target = re.sub(r"\s+", "", target).lstrip("~")
        if target.endswith("()"):
            target = target[: -len("()")]
        references.append((role, target))
    return references


def _attribute_missing(obj: object, name: str) -> bool:
    """Whether ``obj`` has no attribute/field/annotation called ``name``."""
    if hasattr(obj, name):
        return False
    if name in getattr(obj, "__dataclass_fields__", {}):
        return False
    return name not in getattr(obj, "__annotations__", {})


def _resolve_absolute(path: str) -> str | None:
    """``None`` when the dotted ``path`` imports/getattrs; else a reason."""
    parts = path.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj: object = importlib.import_module(module_name)
        except ImportError:
            continue
        for index, part in enumerate(parts[split:], start=split):
            if not _attribute_missing(obj, part):
                if index < len(parts) - 1:
                    obj = getattr(obj, part, None)
                    if obj is None:
                        # Annotation-only intermediate: cannot walk deeper.
                        return (
                            f"'{part}' is not a real attribute to look "
                            f"'{'.'.join(parts[index + 1:])}' up on"
                        )
                continue
            return f"module {module_name} has no attribute '{part}'"
        return None
    return f"no importable module prefix in '{path}'"


def resolve_reference(
    role: str, target: str, namespaces: list[str]
) -> str | None:
    """``None`` when a role reference names something real; else why not.

    Relative targets (no leading package path) are looked up in each of
    ``namespaces`` in order -- the enclosing class and module for
    docstrings, the serve package for markdown -- then as absolute
    paths.
    """
    candidates = [f"{namespace}.{target}" for namespace in namespaces]
    candidates.append(target)
    reasons = []
    for candidate in candidates:
        reason = _resolve_absolute(candidate)
        if reason is None:
            return None
        reasons.append(reason)
    return "; ".join(reasons)


def _docstring_scopes(path: Path) -> list[tuple[list[str], str]]:
    """``(namespaces, docstring)`` per documented node in ``path``.

    A module docstring resolves relative references against the module;
    a class docstring (and every method docstring inside it) also
    against the class itself, so ``:meth:`feasible``` inside
    ``DeadlineFeasibilityAdmission`` means what a reader thinks it
    means.
    """
    relative = path.relative_to(REPO_ROOT / "src")
    module = ".".join(relative.with_suffix("").parts)
    module = module.removesuffix(".__init__")
    scopes: list[tuple[list[str], str]] = []

    def visit(node: ast.AST, namespaces: list[str]) -> None:
        inner = namespaces
        if isinstance(node, ast.ClassDef):
            # The class's own docstring resolves in class scope too.
            inner = [f"{namespaces[0]}.{node.name}", *namespaces]
        docstring = (
            ast.get_docstring(node)
            if isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef,
                 ast.AsyncFunctionDef),
            )
            else None
        )
        if docstring:
            scopes.append((inner, docstring))
        for child in ast.iter_child_nodes(node):
            visit(child, inner)

    visit(ast.parse(path.read_text()), [module])
    return scopes


def broken_references(path: Path) -> list[tuple[str, str]]:
    """``(target, reason)`` pairs for unresolvable role references.

    Markdown files are scanned outside code fences against the
    :data:`DOCS_NAMESPACES`; python files docstring by docstring with
    class/module-relative resolution (see :func:`_docstring_scopes`).
    """
    if path.suffix == ".md":
        text = _FENCE.sub("", path.read_text())
        scopes = [(list(DOCS_NAMESPACES), text)]
    else:
        scopes = _docstring_scopes(path)
    problems = []
    for namespaces, text in scopes:
        for role, target in role_references(text):
            reason = resolve_reference(role, target, namespaces)
            if reason is not None:
                problems.append((f":{role}:`{target}`", reason))
    return problems


# -- orphan-module checking ----------------------------------------------


def _defining_module(target: str, namespaces: tuple[str, ...]) -> str | None:
    """The module a resolvable role target is defined in, if any.

    Mirrors :func:`resolve_reference`'s lookup order, then asks the
    resolved object for its ``__module__`` (classes, functions); plain
    objects -- module-level constants, the modules themselves -- fall
    back to the longest importable module prefix.
    """
    candidates = [f"{namespace}.{target}" for namespace in namespaces]
    candidates.append(target)
    for candidate in candidates:
        parts = candidate.split(".")
        for split in range(len(parts), 0, -1):
            module_name = ".".join(parts[:split])
            try:
                obj: object = importlib.import_module(module_name)
            except ImportError:
                continue
            for part in parts[split:]:
                obj = getattr(obj, part, None)
                if obj is None:
                    break
            else:
                return getattr(obj, "__module__", None) or module_name
            break  # longest importable prefix walked; try next candidate
    return None


def referenced_modules(root: Path = REPO_ROOT) -> set[str]:
    """Every documented-package module the doc pages reach.

    Path-style mentions are scanned in the raw text (module paths in
    fenced diagrams are genuine references); roles only outside fences,
    mirroring :func:`broken_references`.
    """
    referenced: set[str] = set()
    for path in doc_files(root):
        raw = path.read_text()
        for package, module in _MODULE_MENTION.findall(raw):
            referenced.add(f"repro.{package}.{module}")
        for _, target in role_references(_FENCE.sub("", raw)):
            module_name = _defining_module(target, DOCS_NAMESPACES)
            if module_name is not None:
                referenced.add(module_name)
    return referenced


def orphan_modules(root: Path = REPO_ROOT) -> list[str]:
    """Documented-package modules no doc page mentions at all."""
    referenced = referenced_modules(root)
    orphans = []
    for package in DOCUMENTED_PACKAGES:
        package_dir = root / "src" / Path(*package.split("."))
        for source in sorted(package_dir.glob("*.py")):
            if source.stem.startswith("_"):
                continue
            name = f"{package}.{source.stem}"
            if name not in referenced:
                orphans.append(name)
    return orphans


def main() -> int:
    failures = 0
    for path in doc_files():
        for target, reason in broken_links(path):
            print(f"{path.relative_to(REPO_ROOT)}: broken link "
                  f"'{target}' ({reason})")
            failures += 1
    reference_files = doc_files() + reference_sources()
    for path in reference_files:
        for target, reason in broken_references(path):
            print(f"{path.relative_to(REPO_ROOT)}: dangling reference "
                  f"{target} ({reason})")
            failures += 1
    orphans = orphan_modules()
    for name in orphans:
        print(f"{name}: module is referenced by no doc page (orphan)")
    failures += len(orphans)
    if failures:
        print(f"{failures} broken link(s)/reference(s)/orphan(s)")
        return 1
    print(
        f"all intra-repo links ok across {len(doc_files())} file(s); "
        f"all code references resolve across {len(reference_files)} "
        f"file(s); no orphan modules in {len(DOCUMENTED_PACKAGES)} "
        f"package(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
