"""Timeline simulation for sequences of GPU kernels.

A :class:`KernelTimeline` accumulates :class:`~repro.gpu.roofline.KernelProfile`
records (in issue order, as a CUDA stream would execute them) and reports the
total runtime, per-kernel times, and per-category breakdowns.  This is the
machinery behind the paper's Figure 4 (runtime breakdown of a LoRA linear
module) and Figures 3/17/18 (throughput comparisons), with the H100 roofline
model standing in for wall-clock measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpu.roofline import KernelProfile, estimate_kernel_time
from repro.gpu.specs import GPUSpec

__all__ = ["TimedKernel", "KernelTimeline", "simulate_kernel_sequence"]


@dataclass(frozen=True)
class TimedKernel:
    """A kernel profile together with its simulated start/end times."""

    profile: KernelProfile
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Simulated runtime in seconds."""
        return self.end - self.start


class KernelTimeline:
    """Sequential execution trace of kernels on one GPU stream."""

    def __init__(self, gpu: GPUSpec, dtype: str = "fp16") -> None:
        self.gpu = gpu
        self.dtype = dtype
        self._items: list[TimedKernel] = []
        self._clock = 0.0

    def launch(self, profile: KernelProfile) -> TimedKernel:
        """Append one kernel to the stream and return its timing record."""
        duration = estimate_kernel_time(profile, self.gpu, self.dtype)
        timed = TimedKernel(profile, self._clock, self._clock + duration)
        self._items.append(timed)
        self._clock = timed.end
        return timed

    def launch_all(self, profiles: Iterable[KernelProfile]) -> None:
        """Append a sequence of kernels in order."""
        for profile in profiles:
            self.launch(profile)

    @property
    def kernels(self) -> Sequence[TimedKernel]:
        """All launched kernels in issue order."""
        return tuple(self._items)

    @property
    def total_time(self) -> float:
        """End time of the last kernel (seconds)."""
        return self._clock

    def total_traffic(self) -> float:
        """Total DRAM bytes moved across all kernels."""
        return sum(item.profile.bytes_total for item in self._items)

    def total_flops(self) -> float:
        """Total FLOPs across all kernels."""
        return sum(item.profile.flops for item in self._items)

    def breakdown_by(self, attribute: str = "category") -> dict[str, float]:
        """Aggregate runtime (seconds) keyed by a profile attribute.

        Args:
            attribute: ``"category"`` or ``"name"``.
        """
        result: dict[str, float] = {}
        for item in self._items:
            key = getattr(item.profile, attribute)
            result[key] = result.get(key, 0.0) + item.duration
        return result

    def breakdown_fractions(self, attribute: str = "category") -> dict[str, float]:
        """Like :meth:`breakdown_by` but normalised to fractions of total."""
        total = self.total_time
        if total == 0:
            return {}
        return {k: v / total for k, v in self.breakdown_by(attribute).items()}


def simulate_kernel_sequence(
    profiles: Iterable[KernelProfile], gpu: GPUSpec, dtype: str = "fp16"
) -> KernelTimeline:
    """Convenience helper: build a timeline and launch ``profiles`` on it."""
    timeline = KernelTimeline(gpu, dtype)
    timeline.launch_all(profiles)
    return timeline
