"""GPU performance substrate: device specs, roofline model, kernel timeline.

This subpackage replaces the paper's physical H100/L40S testbed with an
analytical model (see DESIGN.md, "Hardware substitution").
"""

from repro.gpu.kernelsim import KernelTimeline, TimedKernel, simulate_kernel_sequence
from repro.gpu.roofline import (
    KernelProfile,
    arithmetic_intensity,
    estimate_kernel_time,
    is_memory_bound,
    lora_down_projection_intensity,
)
from repro.gpu.specs import (
    A100_PCIE,
    A100_SXM,
    BYTES_PER_ELEMENT,
    H100,
    L40S,
    RTX3090,
    GPUSpec,
    get_gpu,
    list_gpus,
)

__all__ = [
    "A100_PCIE",
    "A100_SXM",
    "BYTES_PER_ELEMENT",
    "H100",
    "L40S",
    "RTX3090",
    "GPUSpec",
    "KernelProfile",
    "KernelTimeline",
    "TimedKernel",
    "arithmetic_intensity",
    "estimate_kernel_time",
    "get_gpu",
    "is_memory_bound",
    "list_gpus",
    "lora_down_projection_intensity",
    "simulate_kernel_sequence",
]
