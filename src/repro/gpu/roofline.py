"""Roofline timing model for individual GPU kernels.

Each kernel is described by a :class:`KernelProfile`: its FLOP count, the
bytes it reads and writes from DRAM, and whether the arithmetic runs on
tensor cores (GEMMs) or CUDA cores (elementwise work).  Runtime is estimated
as the roofline maximum of compute time and memory time plus a fixed launch
latency.  This is the standard first-order model the paper itself uses to
argue that LoRA's projections are memory-bound (Section 3.1, Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.specs import GPUSpec

__all__ = [
    "KernelProfile",
    "arithmetic_intensity",
    "is_memory_bound",
    "estimate_kernel_time",
    "lora_down_projection_intensity",
]


@dataclass(frozen=True)
class KernelProfile:
    """Static cost description of one GPU kernel invocation.

    Attributes:
        name: Kernel name, e.g. ``"fused_xw_sb"``.
        flops: Floating-point operations performed (multiply-accumulate
            counted as two).
        bytes_read: Bytes loaded from DRAM.
        bytes_written: Bytes stored to DRAM.
        uses_tensor_cores: True for GEMM-like kernels; elementwise kernels
            run on CUDA cores at a much lower peak.
        category: Free-form group label used by runtime-breakdown reports
            (e.g. ``"base_gemm"``, ``"lora_gemm"``, ``"elementwise"``).
        gemm_efficiency_scale: Multiplier on the achievable FLOP rate; used
            to model register-pressure / tiling degradation (e.g. the
            full-fusion ablations of Figure 9).
        mem_efficiency_scale: Multiplier on the achievable bandwidth; used
            to model kernels with poor effective bandwidth such as
            RNG-heavy dropout.
        extra_latency_us: Additional fixed latency (microseconds), e.g.
            inter-block synchronisation semaphores or atomic serialisation.
    """

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    uses_tensor_cores: bool = True
    category: str = "other"
    gemm_efficiency_scale: float = 1.0
    mem_efficiency_scale: float = 1.0
    extra_latency_us: float = 0.0

    @property
    def bytes_total(self) -> float:
        """Total DRAM traffic (reads + writes) in bytes."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "KernelProfile":
        """Return a copy with flops and traffic multiplied by ``factor``."""
        return KernelProfile(
            name=self.name,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            uses_tensor_cores=self.uses_tensor_cores,
            category=self.category,
            gemm_efficiency_scale=self.gemm_efficiency_scale,
            mem_efficiency_scale=self.mem_efficiency_scale,
            extra_latency_us=self.extra_latency_us,
        )


def arithmetic_intensity(profile: KernelProfile) -> float:
    """FLOPs per byte of DRAM traffic for ``profile``.

    Returns ``inf`` for kernels with zero traffic (degenerate, but keeps the
    comparison against machine balance well defined).
    """
    if profile.bytes_total == 0:
        return float("inf")
    return profile.flops / profile.bytes_total


def lora_down_projection_intensity(m: int, n: int, r: int) -> float:
    """Arithmetic intensity of the LoRA down-projection GEMM (Equation 2).

    The paper derives ``I = 1 / (1/r + 1/n + 1/m)`` for the half-precision
    GEMM ``X_hat @ A`` with ``X_hat`` of shape ``(m, k=n)`` and ``A`` of
    shape ``(k, r)``: it reads ``m*k + k*r`` and writes ``m*r`` elements
    (2 bytes each) while performing ``2*m*k*r`` FLOPs.
    """
    return 1.0 / (1.0 / r + 1.0 / n + 1.0 / m)


def is_memory_bound(profile: KernelProfile, gpu: GPUSpec, dtype: str = "fp16") -> bool:
    """Whether ``profile`` sits below the roofline ridge point on ``gpu``."""
    return arithmetic_intensity(profile) < gpu.machine_balance(dtype)


def estimate_kernel_time(
    profile: KernelProfile,
    gpu: GPUSpec,
    dtype: str = "fp16",
    include_launch: bool = True,
) -> float:
    """Estimated wall-clock seconds for one invocation of ``profile``.

    The model is ``max(compute_time, memory_time) + launch_latency`` where
    compute time uses the tensor-core rate for GEMMs and the CUDA-core rate
    for elementwise kernels, each derated by the spec's calibrated
    efficiency factors.
    """
    if profile.uses_tensor_cores:
        flop_rate = gpu.peak_flops(dtype) * gpu.gemm_efficiency
    else:
        flop_rate = gpu.cuda_tflops * 1e12 * gpu.gemm_efficiency
    flop_rate *= profile.gemm_efficiency_scale
    compute_time = profile.flops / flop_rate if profile.flops else 0.0
    bandwidth = gpu.effective_bandwidth() * profile.mem_efficiency_scale
    memory_time = profile.bytes_total / bandwidth
    launch = gpu.kernel_launch_us * 1e-6 if include_launch else 0.0
    return max(compute_time, memory_time) + launch + profile.extra_latency_us * 1e-6
