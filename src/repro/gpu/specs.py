"""GPU device specifications used by the roofline performance model.

The paper evaluates on NVIDIA H100 (80GB, NVLink) and L40S (48GB, PCIe)
GPUs and additionally lists pre-tuned kernel configurations for A100 and
RTX 3090.  We reproduce those devices as :class:`GPUSpec` records.  Peak
numbers are the public datasheet values for *dense* (non-sparse) tensor-core
throughput; the efficiency factors calibrate achievable fractions of peak,
which is how the paper's absolute throughputs (e.g. Figure 3's ~17-20M
tokens/s for a frozen 4096x4096 linear) are matched in shape.

The key derived quantity is :attr:`GPUSpec.machine_balance` -- peak FLOP/s
divided by peak bytes/s.  Section 3.1 of the paper quotes ~295 FLOP/byte for
FP16 on H100; the spec below reproduces that value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "BYTES_PER_ELEMENT",
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "H100",
    "A100_SXM",
    "A100_PCIE",
    "L40S",
    "RTX3090",
]

#: Bytes occupied by one element of each supported storage dtype.
BYTES_PER_ELEMENT = {
    "fp64": 8,
    "fp32": 4,
    "tf32": 4,
    "fp16": 2,
    "bf16": 2,
    "fp8": 1,
    "int8": 1,
    "bool": 1,
}


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant description of a single GPU.

    Attributes:
        name: Human-readable device name.
        key: Short registry key (e.g. ``"h100"``).
        tensor_tflops: Dense tensor-core TFLOP/s by dtype.
        cuda_tflops: CUDA-core (vector) TFLOP/s for elementwise work.
        mem_bandwidth_gbps: Peak DRAM bandwidth in GB/s.
        mem_capacity_gb: DRAM capacity in GB.
        gemm_efficiency: Achievable fraction of peak for large GEMMs.
        mem_efficiency: Achievable fraction of peak DRAM bandwidth for
            memory-bound kernels (elementwise ops, skinny GEMMs).
        kernel_launch_us: Fixed per-kernel launch latency in microseconds.
        intra_node_gbps: Per-direction intra-node interconnect bandwidth
            (NVLink for H100/A100-SXM, PCIe for L40S/3090) in GB/s.
        inter_node_gbps: Per-direction inter-node (InfiniBand) bandwidth.
        link_latency_us: Per-message interconnect latency.
    """

    name: str
    key: str
    tensor_tflops: dict[str, float]
    cuda_tflops: float
    mem_bandwidth_gbps: float
    mem_capacity_gb: float
    gemm_efficiency: float = 0.77
    mem_efficiency: float = 0.83
    kernel_launch_us: float = 4.0
    intra_node_gbps: float = 300.0
    inter_node_gbps: float = 50.0
    link_latency_us: float = 10.0

    def peak_flops(self, dtype: str = "fp16") -> float:
        """Peak dense tensor-core FLOP/s for ``dtype``."""
        try:
            return self.tensor_tflops[dtype] * 1e12
        except KeyError as exc:
            raise KeyError(
                f"{self.name} has no tensor-core rate for dtype {dtype!r}; "
                f"available: {sorted(self.tensor_tflops)}"
            ) from exc

    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    def machine_balance(self, dtype: str = "fp16") -> float:
        """Peak FLOPs per byte of DRAM traffic (the roofline ridge point)."""
        return self.peak_flops(dtype) / self.peak_bandwidth()

    def effective_flops(self, dtype: str = "fp16") -> float:
        """Achievable GEMM FLOP/s after the calibrated efficiency factor."""
        return self.peak_flops(dtype) * self.gemm_efficiency

    def effective_bandwidth(self) -> float:
        """Achievable DRAM bytes/s after the calibrated efficiency factor."""
        return self.peak_bandwidth() * self.mem_efficiency

    def with_overrides(self, **kwargs) -> "GPUSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)


H100 = GPUSpec(
    name="NVIDIA H100 80GB HBM3",
    key="h100",
    tensor_tflops={"fp16": 989.4, "bf16": 989.4, "tf32": 494.7, "fp8": 1978.9},
    cuda_tflops=66.9,
    mem_bandwidth_gbps=3352.0,
    mem_capacity_gb=80.0,
    intra_node_gbps=450.0,  # NVLink 4 per-direction
    inter_node_gbps=50.0,  # 400Gb InfiniBand
)

A100_SXM = GPUSpec(
    name="NVIDIA A100 SXM4 80GB",
    key="a100-sxm",
    tensor_tflops={"fp16": 312.0, "bf16": 312.0, "tf32": 156.0},
    cuda_tflops=19.5,
    mem_bandwidth_gbps=2039.0,
    mem_capacity_gb=80.0,
    intra_node_gbps=300.0,  # NVLink 3
    inter_node_gbps=25.0,
)

A100_PCIE = A100_SXM.with_overrides(
    name="NVIDIA A100 PCIe 80GB",
    key="a100-pcie",
    mem_bandwidth_gbps=1935.0,
    intra_node_gbps=32.0,  # PCIe gen4 x16
)

L40S = GPUSpec(
    name="NVIDIA L40S 48GB",
    key="l40s",
    tensor_tflops={"fp16": 181.0, "bf16": 181.0, "tf32": 90.5, "fp8": 362.0},
    cuda_tflops=91.6,
    mem_bandwidth_gbps=864.0,
    mem_capacity_gb=48.0,
    intra_node_gbps=32.0,  # PCIe gen4 x16
    inter_node_gbps=25.0,
)

RTX3090 = GPUSpec(
    name="NVIDIA GeForce RTX 3090",
    key="rtx3090",
    tensor_tflops={"fp16": 71.0, "bf16": 71.0, "tf32": 35.6},
    cuda_tflops=35.6,
    mem_bandwidth_gbps=936.0,
    mem_capacity_gb=24.0,
    intra_node_gbps=16.0,
    inter_node_gbps=10.0,
)

_REGISTRY = {spec.key: spec for spec in (H100, A100_SXM, A100_PCIE, L40S, RTX3090)}


def get_gpu(key: str) -> GPUSpec:
    """Look up a GPU spec by registry key (case-insensitive)."""
    try:
        return _REGISTRY[key.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown GPU {key!r}; known: {sorted(_REGISTRY)}") from exc


def list_gpus() -> list[str]:
    """Registry keys of all known GPUs."""
    return sorted(_REGISTRY)
