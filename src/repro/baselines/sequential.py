"""Sequential single-job training: the numeric reference for losslessness.

This is what Megatron-LM does for multi-LoRA workloads: train each job on
its own, one after another.  It is the ground truth the scheduled
multi-LoRA engine must match -- per adapter, identical loss trajectories
and identical final parameters (up to float summation order).
"""

from __future__ import annotations

import numpy as np

from repro.models.transformer import PackedBatch, TinyLoRATransformer
from repro.runtime.engine import NumericJob, TrainResult
from repro.runtime.optimizer import AdamWConfig, AdapterOptimizer

__all__ = ["train_job_sequentially"]


def train_job_sequentially(
    model: TinyLoRATransformer,
    job: NumericJob,
    optimizer_config: AdamWConfig | None = None,
    microbatch_samples: int = 1,
) -> TrainResult:
    """Train one job alone, global batch by global batch.

    Args:
        model: Shared-base transformer; the job's adapter is added if
            missing.
        job: The numeric job to train.
        optimizer_config: AdamW hyper-parameters.
        microbatch_samples: Samples per microbatch (gradient accumulation
            granularity; any value yields the same updates up to float
            summation order).

    Returns:
        Per-batch losses and step counts for the job's adapter.
    """
    if job.adapter_id not in model.adapters:
        model.add_adapter(job.lora)
    optimizer = AdapterOptimizer(
        model.adapter_state(job.adapter_id), optimizer_config or AdamWConfig()
    )
    result = TrainResult(losses={job.adapter_id: []},
                         steps={job.adapter_id: 0})
    params = model.adapter_state(job.adapter_id)
    for batch_index in range(job.num_global_batches()):
        indices = job.batch_indices(batch_index)
        denom = job.batch_predicted_tokens(batch_index)
        accumulated = {
            key: {"a": np.zeros_like(w.a), "b": np.zeros_like(w.b)}
            for key, w in params.items()
        }
        batch_loss = 0.0
        for lo in range(0, len(indices), microbatch_samples):
            chunk = indices[lo : lo + microbatch_samples]
            samples = [(job.adapter_id, job.token_streams[i]) for i in chunk]
            weights = [1.0 / denom if denom else 0.0] * len(samples)
            packed = PackedBatch.from_samples(samples, weights)
            _, per_sample, grads = model.loss_and_grads(packed)
            batch_loss += sum(per_sample)
            result.microbatches_executed += 1
            for key, grad in grads[job.adapter_id].items():
                accumulated[key]["a"] += grad["a"]
                accumulated[key]["b"] += grad["b"]
        optimizer.step(accumulated)
        result.losses[job.adapter_id].append(batch_loss)
        result.steps[job.adapter_id] = batch_index + 1
    return result
