"""Baseline implementations the paper compares against."""

from repro.baselines.sequential import train_job_sequentially

__all__ = ["train_job_sequentially"]
