"""Exception hierarchy shared across the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class KernelConfigError(ReproError):
    """A kernel was invoked with an invalid or inconsistent configuration."""


class ScheduleError(ReproError):
    """A scheduling invariant (capacity, ordering, bubble lemma) was violated."""


class CapacityError(ScheduleError):
    """A sample or microbatch exceeds the configured token capacity."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
