"""Serving-layer job descriptions.

A :class:`ServeJob` pairs the *scheduling* view of a fine-tuning job (its
:class:`~repro.scheduler.types.AdapterJob`, over the full sample stream)
with its arrival time and, when the orchestrator drives numeric training,
the :class:`~repro.runtime.engine.NumericJob` holding real token arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.data.arrivals import poisson_times
from repro.errors import ScheduleError
from repro.runtime.engine import NumericJob
from repro.scheduler.types import AdapterJob

__all__ = ["JobOutcome", "ServeJob", "poisson_workload"]


class JobOutcome(enum.Enum):
    """Terminal (or so-far) state of a served job.

    ``REJECTED`` is the distinct terminal state deadline-feasibility
    admission produces: the arrival was shed because its expected
    remaining time already exceeded its time-to-deadline, so it never
    held a slot and never trains.  It is deliberately not a deadline
    *miss* -- metrics count the two separately
    (:meth:`~repro.serve.metrics._LatencyAggregates.rejections` vs
    :meth:`~repro.serve.metrics._LatencyAggregates.deadline_misses`)
    so shedding cannot masquerade as latency improvement.
    """

    #: Still pending, parked, or training when the result was cut.
    UNFINISHED = "unfinished"
    #: Last optimizer step completed.
    FINISHED = "finished"
    #: Shed by deadline-feasibility admission; never admitted.
    REJECTED = "rejected"


@dataclass(frozen=True)
class ServeJob:
    """One tenant's fine-tuning request in the online system.

    Attributes:
        job: Scheduling view: the full dataset and global batch size
            (``batch_offset`` must be 0 -- the orchestrator windows it).
        arrival_time: Virtual time at which the job becomes known.
        numeric: Token-level payload for numeric execution (None when the
            orchestrator only simulates makespan).
        priority: SLO class; larger is more urgent.  Consulted by
            class-aware :mod:`~repro.serve.ordering` policies and by
            priority-aware routing; 0 (best effort) elsewhere.
        deadline: Virtual time the job should finish by, for
            deadline-driven ordering and the deadline-miss-rate metric
            (``None`` = no deadline).
        tenant: Billing identity the live gateway
            (:class:`~repro.serve.gateway.ServeGateway`) rate-limits and
            quota-checks the submission under.  Purely gateway-side
            metadata: the fleet routes on ``adapter_id`` and ignores it,
            so sim traces (which leave it ``None``) are unaffected.
    """

    job: AdapterJob
    arrival_time: float
    numeric: NumericJob | None = None
    priority: int = 0
    deadline: float | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ScheduleError("arrival_time must be non-negative")
        if self.deadline is not None and self.deadline <= self.arrival_time:
            raise ScheduleError(
                "deadline must lie strictly after the job's arrival",
            )
        if self.job.batch_offset != 0:
            raise ScheduleError(
                "ServeJob takes the full job (batch_offset 0); the "
                "orchestrator derives windowed offsets itself"
            )
        if self.numeric is not None:
            if self.numeric.adapter_id != self.job.adapter_id:
                raise ScheduleError("numeric payload belongs to another adapter")
            if len(self.numeric.token_streams) != len(self.job.dataset):
                raise ScheduleError(
                    "numeric payload and dataset disagree on sample count"
                )
            if self.numeric.global_batch_size != self.job.global_batch_size:
                raise ScheduleError(
                    "numeric payload and job disagree on global batch size"
                )

    @property
    def adapter_id(self) -> int:
        """The job's adapter identity."""
        return self.job.adapter_id


def poisson_workload(
    jobs: list[AdapterJob],
    rate: float,
    rng: np.random.Generator | int = 0,
) -> list[ServeJob]:
    """Wrap offline jobs into a Poisson-arriving online workload.

    Args:
        jobs: Offline scheduling jobs (whole-horizon, ``batch_offset`` 0),
            one per tenant.
        rate: Mean arrivals per unit of virtual time.
        rng: Generator or seed for the exponential inter-arrival draws.

    Returns:
        One :class:`ServeJob` per input job, arrival-stamped in input
        order (no numeric payloads -- simulation workloads only).
    """
    times = poisson_times(len(jobs), rate, rng)
    return [ServeJob(job=job, arrival_time=time) for job, time in zip(jobs, times)]
