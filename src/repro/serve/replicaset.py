"""Multi-replica serving: N pipelines, one tenant stream.

One :class:`~repro.serve.orchestrator.OnlineOrchestrator` drives one
pipeline.  The :class:`ReplicaSet` scales that out: it owns several
independent orchestrators (one per pipeline replica, each with its own
executor), routes every arriving tenant to exactly one of them through a
pluggable :class:`~repro.serve.router.RoutingPolicy`, and -- when the
load skew between replicas exceeds a threshold -- *migrates* jobs
between pipelines.

Two fleet loops implement the same semantics, selected by
:attr:`ReplicaSetConfig.kernel`:

* ``"event"`` (the default) runs on the discrete-event kernel of
  :mod:`repro.serve.events`: arrivals and per-replica wave closes are
  typed events on one global heap, control work (rebalance checks,
  migrations, drains) runs on the kernel's immediate lane, and
  per-replica load/view snapshots are cached and invalidated only when
  an event actually mutates that replica.  Finding the next actor is
  O(log n) instead of an O(n) clock scan, which is what makes
  100-1000-replica traces replayable
  (``benchmarks/bench_fleet_kernel.py`` gates the speedup).
* ``"lockstep"`` is the original reference loop: every iteration scans
  all replicas, advances the furthest-behind working one (smallest
  clock, then index) until every working replica has reached the next
  arrival's timestamp, then routes that arrival against fresh load
  views.  It recomputes everything from scratch each iteration, so it
  is trivially correct -- and the equivalence oracle: both kernels
  produce **bit-identical** results (same records, same migration
  decisions, same calibration record;
  ``tests/integration/test_event_kernel_equivalence.py``).

Both loops route each arrival against replica state as of the arrival
instant, which is what makes least-loaded and packing-affinity policies
meaningful.

Migration is lossless.  A pending job moves as a queue entry (a
*reroute*); an admitted job moves between waves as a
:class:`~repro.serve.orchestrator.MigrationTicket` carrying the
executor's exported state -- for numeric executors, the adapter weights,
AdamW moments, and progress counters from
:meth:`~repro.runtime.engine.MultiLoRAEngine.export_job_state`.  Because
export happens only at optimizer-step boundaries and the destination
model shares the same frozen base weights, a migrated job's final
adapter is bit-identical to an unmigrated run
(``tests/integration/test_migration_losslessness.py``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, cast

import numpy as np

from repro.errors import ScheduleError
from repro.serve.autoscaler import CapacityPool, FleetAutoscaler
from repro.serve.events import Event, EventKernel, EventKind
from repro.serve.executors import Executor
from repro.serve.jobs import ServeJob
from repro.serve.metrics import JobRecord, ReplicaSetResult
from repro.serve.orchestrator import (
    MigrationTicket,
    OnlineOrchestrator,
    OrchestratorConfig,
)
from repro.serve.router import (
    FleetArrays,
    LeastLoadedRouting,
    ReplicaView,
    RoutingPolicy,
    TenantRouter,
)

__all__ = ["ReplicaSetConfig", "ReplicaSet", "FleetSession"]

#: The fleet-loop implementations :attr:`ReplicaSetConfig.kernel` accepts.
_KERNELS = ("event", "lockstep")

#: A planned rebalance action: ``("migrate", adapter_id, source, target)``
#: or ``("drain", source, migrant_or_None)``; ``None`` ends the pass.
_RebalanceAction = tuple


@dataclass
class _EventDriver:
    """The event fleet loop, packaged for incremental driving.

    :meth:`ReplicaSet._event_driver` builds one: the kernel, the
    dispatch closure over it, and the cached view/load state all live in
    the closure scope, exactly as the batch loop had them.  ``run()``
    ingests the whole workload and pumps to exhaustion; a
    :class:`FleetSession` (the gateway's handle) ingests one job at a
    time and pumps only to each submission's stamp.
    """

    #: The kernel the loop runs on (exposed for frontier introspection).
    kernel: EventKernel
    #: Live records by adapter id, filled as arrivals are offered.
    records: dict[int, JobRecord]
    #: Schedule one job's arrival event (``kind`` picks the taxonomy
    #: entry: ARRIVAL for trace replay, GATEWAY_INGRESS for live).
    ingest: Callable[[ServeJob, EventKind], None]
    #: Process every due event with timestamp at or before ``frontier``.
    pump: Callable[[float], None]
    #: Close out the loop: verify no evacuated job is stranded, record
    #: the per-kind event counts on the owning set.
    finalize: Callable[[], None]


@dataclass
class _RebalancePass:
    """One rebalance pass's bookkeeping, carried through posted events.

    The lockstep loop keeps these sets as locals of one synchronous
    ``_rebalance()`` call; the event kernel threads the same state
    through its REBALANCE/MIGRATION/FLUSH event chain so a pass has
    identical once-per-job and once-per-replica bounds in both modes.
    """

    #: Adapters already moved this pass (a job moves at most once).
    moved: set[int] = field(default_factory=set)
    #: Replicas already drained this pass (a replica drains at most once).
    drained: set[int] = field(default_factory=set)


@dataclass
class ReplicaSetConfig:
    """Tunables of the multi-replica serving layer.

    The rebalancer has two trigger modes, matching the two load units
    :class:`~repro.serve.router.ReplicaView` reports.
    ``migration_time_threshold`` is the cost-priced mode: it compares
    replicas on their completion horizons -- virtual clock plus
    ``expected_remaining_time`` **seconds** (the same estimator-priced
    backlog routing sees) -- and picks the migrant that best evens the
    seconds gap.  Two replicas owing the same batch count can owe very
    different amounts of time, so this is the mode to use whenever an
    estimator is configured.
    ``migration_threshold`` is the legacy batch-count mode.  When both
    are set, seconds win (they are the finer measure).

    Attributes:
        orchestrator: Per-replica orchestrator configuration (every
            replica runs the same scheduler/window/admission settings).
        routing: Tenant placement policy;
            :class:`~repro.serve.router.LeastLoadedRouting` when omitted.
        migration_threshold: Maximum tolerated outstanding-batch skew
            (a **count**) between the most and least loaded replicas
            before the set migrates jobs to rebalance; ``None`` disables
            the batch-skew trigger.
        migration_time_threshold: Maximum tolerated
            ``expected_remaining_time`` skew in **seconds**; requires
            the orchestrator to carry a
            :class:`~repro.serve.costing.CostEstimator`.  ``None``
            disables the seconds-skew trigger.
        drain_then_migrate: When a triggered rebalance finds no movable
            job -- under a deep pipeline the wave tail is usually in
            flight, so active jobs are not at step boundaries -- pay a
            pipeline drain on the overloaded replica to bring a migrant
            to a boundary and retry.  When a specific mid-flight job is
            worth moving, the drain is *partial*
            (:meth:`~repro.serve.orchestrator.OnlineOrchestrator.drain_for`):
            it stops once that job's submitted batches have stepped,
            leaving the other tenants' pipeline tails in flight --
            ``ReplicaSetResult.drain_steps_saved`` counts the optimizer
            steps a full flush would have forced early.  Only when no
            single candidate qualifies does the set fall back to the
            full flush
            (:meth:`~repro.serve.orchestrator.OnlineOrchestrator.flush`).
            Off by default: even a partial drain costs bubbles, so
            leave it off unless rebalances are visibly starving
            (``ReplicaSetResult.rebalance_drains`` counts the drains
            paid).
        kernel: Which fleet loop serves the run: ``"event"`` (the
            discrete-event kernel, the default) or ``"lockstep"`` (the
            original reference loop).  Results are bit-identical; the
            event kernel is the fast one (see the module docstring).
        autoscaler: Optional
            :class:`~repro.serve.autoscaler.FleetAutoscaler` making the
            replica count elastic: the event loop probes it after every
            event (cooldown-gated), turns its decisions into
            ``REPLICA_JOIN`` / ``REPLICA_RETIRE`` kernel events, and
            runs its spot-reclamation notices with lossless evacuation
            under each notice's deadline.  Requires ``kernel="event"``
            (scale actions are heap events, not loop iterations), an
            orchestrator estimator (the backlog signal is priced in
            seconds), and an ``executor_factory``.
        executor_factory: Builds the executor for a replica joining
            from a given :class:`~repro.serve.autoscaler.CapacityPool`
            (e.g. a :class:`~repro.serve.executors.StreamingSimExecutor`
            over that pool's GPU cost model).  Required with an
            autoscaler; for numeric serving it must produce engines
            sharing the fleet's frozen base weights, or migration onto
            the new replica would not be lossless.
    """

    orchestrator: OrchestratorConfig
    routing: RoutingPolicy | None = None
    migration_threshold: int | None = None
    migration_time_threshold: float | None = None
    drain_then_migrate: bool = False
    kernel: str = "event"
    autoscaler: FleetAutoscaler | None = None
    executor_factory: Callable[[CapacityPool], Executor] | None = None

    def __post_init__(self) -> None:
        if self.migration_threshold is not None and self.migration_threshold < 0:
            raise ScheduleError("migration_threshold must be non-negative")
        if self.migration_time_threshold is not None:
            if self.migration_time_threshold < 0:
                raise ScheduleError(
                    "migration_time_threshold must be non-negative"
                )
            if self.orchestrator.estimator is None:
                raise ScheduleError(
                    "migration_time_threshold compares replicas in expected "
                    "seconds; configure an estimator on the orchestrator"
                )
        if self.drain_then_migrate and (
            self.migration_threshold is None
            and self.migration_time_threshold is None
        ):
            raise ScheduleError(
                "drain_then_migrate without a migration threshold would "
                "never fire; set migration_threshold or "
                "migration_time_threshold"
            )
        if self.kernel not in _KERNELS:
            raise ScheduleError(
                f"unknown fleet kernel {self.kernel!r}; choose from {_KERNELS}"
            )
        if self.autoscaler is not None:
            if self.kernel != "event":
                raise ScheduleError(
                    "autoscaling needs kernel='event': scale actions are "
                    "kernel events, not lockstep iterations"
                )
            if self.orchestrator.estimator is None:
                raise ScheduleError(
                    "autoscaling watches the seconds-valued backlog; "
                    "configure an estimator on the orchestrator"
                )
            if self.executor_factory is None:
                raise ScheduleError(
                    "autoscaling needs an executor_factory to build the "
                    "executor a joining replica runs on"
                )


class ReplicaSet:
    """Serves one tenant stream across several pipeline replicas.

    Args:
        executors: One execution backend per replica.  For numeric
            serving the engines must share identical frozen base weights
            (build each model from the same seed), or migration would not
            be lossless.
        config: Replica-set tunables.
    """

    def __init__(self, executors: list[Executor], config: ReplicaSetConfig) -> None:
        if not executors:
            raise ScheduleError("a replica set needs at least one executor")
        self.config = config
        self.replicas = [
            OnlineOrchestrator(executor, config.orchestrator, replica_id=index)
            for index, executor in enumerate(executors)
        ]
        self.router = TenantRouter(config.routing or LeastLoadedRouting())
        self._migrations = 0
        self._reroutes = 0
        self._rebalance_drains = 0
        self._drain_steps_saved = 0
        self._events_processed: dict[str, int] = {}
        self._ran = False
        # Elastic-fleet state.  With no autoscaler none of it changes
        # after construction: every replica is routable for the whole
        # run and the result carries no intervals (the legacy
        # aggregation identities).
        self._autoscaler = config.autoscaler
        self._joined_at = [0.0] * len(executors)
        self._retired_at: list[float | None] = [None] * len(executors)
        self._hourly_rates = [0.0] * len(executors)
        self._unroutable: set[int] = set()
        self._routable_cache: list[int] | None = None
        self._reclaim_started: dict[int, float] = {}
        self._held: list[MigrationTicket] = []
        self._joins = 0
        self._retires = 0
        self._reclaims = 0
        self._forced_evacuations = 0
        self._reclaim_latencies: list[float] = []
        if self._autoscaler is not None:
            names = self._autoscaler.initial_pools
            if len(names) != len(executors):
                raise ScheduleError(
                    f"autoscaler names {len(names)} initial pool(s) for "
                    f"{len(executors)} executor(s)"
                )
            estimator = config.orchestrator.estimator
            calibration = estimator.calibration if estimator is not None else None
            for index, name in enumerate(names):
                pool = self._autoscaler.attach(index, name)
                self._hourly_rates[index] = pool.hourly_rate
                if calibration is not None and pool.speed_factor != 1.0:
                    calibration.seed_replica(index, pool.speed_factor)

    @property
    def num_replicas(self) -> int:
        """Pipeline replicas in the set (including retired ones)."""
        return len(self.replicas)

    def _routable(self) -> list[int]:
        """Indices arrivals, migrations, and evacuees may land on.

        Excludes draining (reclamation-marked) and retired replicas.
        Cached -- the fixed-fleet hot path pays one list build total,
        and scale events invalidate it.
        """
        if self._routable_cache is None:
            self._routable_cache = [
                index
                for index in range(len(self.replicas))
                if index not in self._unroutable
            ]
        return self._routable_cache

    def _replica_view(self, index: int) -> ReplicaView:
        """One replica's current :class:`~repro.serve.router.ReplicaView`.

        A pure function of the replica's state: the event kernel caches
        the result and recomputes only after an event mutates that
        replica, which is safe exactly because nothing here depends on
        other replicas.
        """
        replica = self.replicas[index]
        return ReplicaView(
            index=index,
            clock=replica.clock,
            outstanding_batches=replica.outstanding_batches(),
            num_active=replica.num_active,
            num_pending=replica.num_pending,
            num_parked=replica.num_parked,
            slots_free=replica.slots_free,
            live_mean_lengths=tuple(replica.live_mean_lengths()),
            live_priorities=tuple(replica.live_priorities()),
            live_profiles=tuple(replica.live_profiles()),
            expected_remaining_time=replica.expected_remaining_seconds(),
            expected_wave_time=replica.expected_wave_seconds(),
        )

    def views(self) -> list[ReplicaView]:
        """Current load snapshot of every replica, in index order.

        Load is reported in both units (see :class:`ReplicaView`):
        ``outstanding_batches`` counts active **plus parked plus
        pending** work, and -- when the orchestrators carry a
        :class:`~repro.serve.costing.CostEstimator` -- the same work is
        priced in expected seconds (``expected_remaining_time``,
        ``expected_wave_time``) for cost-aware policies.
        """
        return [self._replica_view(index) for index in range(len(self.replicas))]

    # -- the serving loop ---------------------------------------------------

    def run(self, workload: list[ServeJob]) -> ReplicaSetResult:
        """Serve ``workload`` to completion across the replica set.

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.

        Returns:
            Per-replica results plus fleet-wide records and counters.

        Raises:
            ScheduleError: On reuse or duplicate adapter ids.
        """
        if self._ran:
            raise ScheduleError("ReplicaSet.run is single-shot; construct a fresh set")
        self._ran = True
        ids = [job.adapter_id for job in workload]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids in workload: {ids}")
        for replica in self.replicas:
            replica.start([])
        arrivals = sorted(
            workload, key=lambda job: (job.arrival_time, job.adapter_id)
        )
        if self.config.kernel == "lockstep":
            self._run_lockstep(deque(arrivals))
        else:
            driver = self._event_driver()
            for job in arrivals:
                driver.ingest(job, EventKind.ARRIVAL)
            driver.pump(math.inf)
            driver.finalize()
        return self._assemble_result()

    def open_session(self) -> FleetSession:
        """Open the fleet for incremental, live-driven serving.

        The session form of :meth:`run`, for callers that discover the
        workload as it happens -- the live gateway
        (:class:`~repro.serve.gateway.ServeGateway`).  Jobs are ingested
        one at a time, the fleet is pumped only up to each caller-chosen
        time frontier, and :meth:`FleetSession.finish` runs the loop to
        exhaustion and assembles the same :class:`ReplicaSetResult` a
        batch run would.  Requires ``kernel="event"`` (the lockstep
        oracle has no incremental form) and consumes the set's single
        shot, exactly like :meth:`run`.
        """
        if self.config.kernel != "event":
            raise ScheduleError(
                "a fleet session needs kernel='event'; the lockstep "
                "oracle only runs complete traces"
            )
        if self._ran:
            raise ScheduleError(
                "ReplicaSet is single-shot; construct a fresh set"
            )
        self._ran = True
        for replica in self.replicas:
            replica.start([])
        return FleetSession(self, self._event_driver())

    def _assemble_result(self) -> ReplicaSetResult:
        """Finish every replica and fold the run into one result."""
        results = [replica.finish() for replica in self.replicas]
        records: dict[int, JobRecord] = {}
        for result in results:
            records.update(result.records)
        # Active intervals (and the GPU-time bill) only exist for
        # autoscaled runs; a fixed fleet reports none, keeping the
        # legacy makespan-weighted aggregation identities intact.
        intervals: list[tuple[float, float]] = []
        gpu_seconds = 0.0
        dollars = 0.0
        if self._autoscaler is not None:
            fleet_end = float(
                max(
                    max(result.makespan for result in results),
                    max(
                        (t for t in self._retired_at if t is not None),
                        default=0.0,
                    ),
                )
            )
            for index, result in enumerate(results):
                start = float(self._joined_at[index])
                retired = self._retired_at[index]
                end = max(
                    start, fleet_end if retired is None else float(retired)
                )
                intervals.append((start, end))
                gpu_seconds += end - start
                dollars += (end - start) / 3600.0 * self._hourly_rates[index]
        return ReplicaSetResult(
            replicas=results,
            records=records,
            migrations=self._migrations,
            reroutes=self._reroutes,
            rebalance_drains=self._rebalance_drains,
            drain_steps_saved=self._drain_steps_saved,
            events_processed=dict(self._events_processed),
            joins=self._joins,
            retires=self._retires,
            reclaims=self._reclaims,
            forced_evacuations=self._forced_evacuations,
            reclaim_latencies=list(self._reclaim_latencies),
            replica_intervals=intervals,
            gpu_seconds=gpu_seconds,
            dollars_spent=dollars,
        )

    def _run_lockstep(self, arrivals: deque[ServeJob]) -> None:
        """The reference fleet loop: scan, advance the laggard, route.

        Every iteration rescans all replicas and recomputes all loads
        and views from scratch -- O(replicas) per event before any
        pricing work.  Kept verbatim as the equivalence oracle for the
        event kernel (``config.kernel = "lockstep"``).
        """
        while arrivals or any(r.has_work() for r in self.replicas):
            next_arrival = arrivals[0].arrival_time if arrivals else math.inf
            behind = [
                replica for replica in self.replicas
                if replica.has_work() and replica.clock < next_arrival
            ]
            if behind:
                # Advance the furthest-behind working replica so every
                # pipeline reaches the arrival instant before we route.
                replica = min(behind, key=lambda r: (r.clock, r.replica_id))
                replica.step()
            else:
                job = arrivals.popleft()
                index = self.router.route(job, self.views())
                record = self.replicas[index].offer(job)
                record.replica = index
            self._rebalance()

    def _event_driver(self) -> _EventDriver:
        """Build the discrete-event fleet loop (``config.kernel = "event"``).

        Returns the loop packaged as an :class:`_EventDriver`: ``run()``
        ingests the sorted workload and pumps to exhaustion (the batch
        trace-replay path), while a :class:`FleetSession` ingests live
        submissions one at a time and pumps to each submission's stamp
        -- the two paths share every line of dispatch, which is what
        makes a recorded gateway session replay bit-identical through
        the batch path.

        Arrivals are scheduled on the heap (lane = adapter id, so
        simultaneous arrivals keep their sorted order); each working
        replica keeps exactly one WAVE_CLOSE event at its current
        clock, cancelled and rescheduled whenever an event mutates it.
        The heap's ``(time, (kind, lane), seq)`` order reproduces the
        lockstep loop's scan exactly: a wave close at the arrival
        frontier yields to the arrival (the strict ``clock <
        next_arrival`` rule), and equal-clock replicas advance in index
        order.  Control events -- the rebalance check after every
        iteration and the migrations/drains it decides -- run on the
        kernel's immediate lane, ahead of any timed event, mirroring
        the synchronous ``_rebalance()`` call.

        Per-replica loads and routing views are cached and recomputed
        only after a mutation, which is sound because both are pure
        functions of one replica's state -- with a single exception: a
        calibration observe on replica *B* repricess any tenant of
        *B*'s closed wave that has since migrated to another replica,
        so the loop watches the tracker's version stamp and invalidates
        the migrant's current host too.
        """
        kernel = EventKernel()
        n = len(self.replicas)
        records: dict[int, JobRecord] = {}
        params = self._rebalance_params()
        estimator = self.config.orchestrator.estimator
        calibration = estimator.calibration if estimator is not None else None
        seen_version = calibration.version if calibration is not None else 0
        autoscaler = self._autoscaler
        views: list[ReplicaView | None] = [None] * n
        arrays = FleetArrays.for_fleet(n)
        loads = np.empty(n, dtype=np.float64)
        stale_views: set[int] = set(range(n))
        stale_loads: set[int] = set(range(n))
        wave_events: list[Event | None] = [None] * n
        deadline_events: dict[int, Event] = {}

        def invalidate(index: int) -> None:
            stale_views.add(index)
            stale_loads.add(index)

        def resync(index: int) -> None:
            nonlocal seen_version
            invalidate(index)
            if calibration is not None and calibration.version != seen_version:
                fresh = calibration.version
                if fresh == seen_version + 1:
                    # One observe: its wave tenants live here unless they
                    # migrated away -- invalidate their current hosts.
                    for adapter_id in calibration.last_observed_tenants:
                        host = self.router.assignments.get(adapter_id)
                        if host is not None and host != index:
                            invalidate(host)
                else:
                    # Can't attribute multiple observes; drop every cache.
                    for other in range(len(self.replicas)):
                        invalidate(other)
                seen_version = fresh
            stale = wave_events[index]
            if stale is not None:
                kernel.cancel(stale)
                wave_events[index] = None
            replica = self.replicas[index]
            if replica.has_work():
                wave_events[index] = kernel.schedule(
                    replica.clock, EventKind.WAVE_CLOSE, payload=index, lane=index
                )

        def replica_views() -> list[ReplicaView]:
            # Refresh only the replicas an event has touched since the
            # last call -- O(dirty), not O(fleet).
            for index in stale_views:
                view = self._replica_view(index)
                views[index] = view
                arrays.refill(index, view)
            stale_views.clear()
            return cast("list[ReplicaView]", views)

        def replica_loads(seconds_mode: bool) -> np.ndarray:
            for index in stale_loads:
                loads[index] = self._replica_load(index, seconds_mode)
            stale_loads.clear()
            return loads

        # -- elastic-fleet helpers (no-ops for fixed fleets) --------------

        def place(ticket: MigrationTicket) -> bool:
            # Land an evacuated job on the least-loaded routable replica
            # (lowest index breaks ties); payload-carrying tickets need
            # a free adapter slot there.  False = nowhere fits yet.
            best: tuple[tuple[int, int], int] | None = None
            for index in self._routable():
                replica = self.replicas[index]
                if ticket.payload is not None and replica.slots_free == 0:
                    continue
                key = (replica.outstanding_batches(), index)
                if best is None or key < best[0]:
                    best = (key, index)
            if best is None:
                return False
            target = best[1]
            self.replicas[target].inject_job(ticket)
            ticket.record.replica = target
            self.router.reassign(ticket.adapter_id, target)
            if ticket.payload is None:
                self._reroutes += 1
            else:
                ticket.record.migrations += 1
                self._migrations += 1
            resync(target)
            return True

        def place_held() -> None:
            # Retry jobs evacuated when no replica could take them --
            # after every event, because any event can free a slot.
            if not self._held:
                return
            self._held = [ticket for ticket in self._held if not place(ticket)]

        def evacuate_movable(index: int) -> None:
            # Eject every pending/parked/boundary job, lowest adapter id
            # first; jobs with nowhere to go are held, never dropped.
            replica = self.replicas[index]
            movable = sorted(entry[0] for entry in replica.migratable_jobs())
            for adapter_id in movable:
                ticket = replica.eject_job(adapter_id)
                if not place(ticket):
                    self._held.append(ticket)
            if movable:
                resync(index)

        def complete_retirement(index: int, time: float, reclaim: bool) -> None:
            self._retired_at[index] = time
            self._retires += 1
            if reclaim:
                started = self._reclaim_started.pop(index)
                self._reclaim_latencies.append(float(time - started))
                pending_deadline = deadline_events.pop(index, None)
                if pending_deadline is not None:
                    kernel.cancel(pending_deadline)
            if autoscaler is not None:
                autoscaler.on_retired(index)
            resync(index)  # cancels the wave event; no work remains

        def evacuate_all(index: int, forced: bool) -> None:
            # Empty ``index`` completely.  The graceful path pays one
            # *partial* drain per mid-flight job (drain_for: stop at
            # that job's last submitted batch); the forced path -- a
            # reclaim deadline expiring -- pays one full flush.  Either
            # way every job leaves at a step boundary with full state.
            replica = self.replicas[index]
            evacuate_movable(index)
            if forced:
                if replica.num_active:
                    replica.flush()
            else:
                for adapter_id, _, _ in sorted(replica.drainable_jobs()):
                    replica.drain_for(adapter_id)
            evacuate_movable(index)
            if replica.has_work():  # jobs a partial drain left mid-flight
                replica.flush()
                evacuate_movable(index)

        def mark_unroutable(index: int) -> None:
            self._unroutable.add(index)
            self._routable_cache = None

        if autoscaler is not None:
            for notice_lane, notice in enumerate(autoscaler.reclamations):
                kernel.schedule(
                    notice.time,
                    EventKind.REPLICA_RETIRE,
                    payload=("reclaim", notice),
                    lane=notice_lane,
                )

        def ingest(job: ServeJob, kind: EventKind) -> None:
            kernel.schedule(job.arrival_time, kind, payload=job, lane=job.adapter_id)

        def pump(frontier: float) -> None:
            while (event := kernel.pop_until(frontier)) is not None:
                dispatch(event)

        def finalize() -> None:
            if self._held:
                raise ScheduleError(
                    f"{len(self._held)} evacuated job(s) never found a new "
                    "replica -- the fleet retired capacity it still needed"
                )
            self._events_processed = {
                kind.name: count for kind, count in sorted(kernel.processed.items())
            }

        def dispatch(event: Event) -> None:
            nonlocal loads
            kind = event.kind
            if kind is EventKind.WAVE_CLOSE:
                index = event.payload
                self.replicas[index].step()
                resync(index)
                if index in self._unroutable and self._retired_at[index] is None:
                    # A draining (reclaimed) replica: the wave close just
                    # brought active jobs to step boundaries -- evacuate
                    # them, and retire early once nothing is left.
                    evacuate_movable(index)
                    if not self.replicas[index].has_work():
                        complete_retirement(index, event.time, reclaim=True)
                if params is not None:
                    kernel.post(EventKind.REBALANCE, _RebalancePass())
            elif kind is EventKind.ARRIVAL or kind is EventKind.GATEWAY_INGRESS:
                # A gateway ingress is an arrival wearing its own kind:
                # same routing, same offer, same rebalance check.
                job = event.payload
                all_views = replica_views()
                routable = self._routable()
                if len(routable) == len(all_views):
                    index = self.router.route(job, all_views, arrays)
                else:
                    index = self.router.route(
                        job, [all_views[i] for i in routable]
                    )
                record = self.replicas[index].offer(job)
                record.replica = index
                records[job.adapter_id] = record
                resync(index)
                if params is not None:
                    kernel.post(EventKind.REBALANCE, _RebalancePass())
            elif kind is EventKind.REBALANCE:
                assert params is not None  # only posted when rebalancing is on
                threshold, seconds_mode = params
                state = event.payload
                routable = self._routable()
                action = self._plan_rebalance(
                    replica_loads(seconds_mode),
                    threshold,
                    seconds_mode,
                    state.moved,
                    state.drained,
                    None if len(routable) == len(self.replicas) else routable,
                )
                if action is None:
                    return
                if action[0] == "migrate":
                    kernel.post(EventKind.MIGRATION, action[1:] + (state,))
                else:
                    kernel.post(EventKind.FLUSH, action[1:] + (state,))
            elif kind is EventKind.MIGRATION:
                adapter_id, source, target, state = event.payload
                state.moved.add(adapter_id)
                self._migrate(adapter_id, source, target)
                resync(source)
                resync(target)
                kernel.post(EventKind.REBALANCE, state)
            elif kind is EventKind.FLUSH:
                source, migrant, state = event.payload
                state.drained.add(source)
                self._apply_drain(source, migrant)
                resync(source)
                kernel.post(EventKind.REBALANCE, state)
            elif kind is EventKind.REPLICA_JOIN:
                assert autoscaler is not None  # only scheduled by the probe
                factory = self.config.executor_factory
                assert factory is not None  # config validation
                pool = event.payload
                index = len(self.replicas)
                executor = factory(pool)
                # The new pipeline starts at the join instant, not at
                # virtual zero -- without this it would serve its first
                # jobs "in the past".
                executor.advance(event.time)
                replica = OnlineOrchestrator(
                    executor, self.config.orchestrator, replica_id=index
                )
                replica.start([])
                self.replicas.append(replica)
                self._joined_at.append(event.time)
                self._retired_at.append(None)
                self._hourly_rates.append(pool.hourly_rate)
                views.append(None)
                wave_events.append(None)
                loads = np.append(loads, 0.0)
                arrays.grow()
                self._routable_cache = None
                self._joins += 1
                autoscaler.on_joined(index, pool)
                if calibration is not None and pool.speed_factor != 1.0:
                    calibration.seed_replica(index, pool.speed_factor)
                resync(index)
            elif kind is EventKind.REPLICA_RETIRE:
                tag, data = event.payload
                if tag == "scale":
                    # Graceful scale-down: partial-drain each mid-flight
                    # job, move everything off, retire now.
                    index = data
                    if index not in self._unroutable:
                        mark_unroutable(index)
                        evacuate_all(index, forced=False)
                        complete_retirement(index, event.time, reclaim=False)
                else:  # a spot reclamation notice
                    assert autoscaler is not None
                    notice = data
                    victims = autoscaler.pick_reclaim_victims(
                        notice.count, self._routable()
                    )
                    for index in victims:
                        mark_unroutable(index)
                        self._reclaims += 1
                        self._reclaim_started[index] = event.time
                        evacuate_movable(index)
                        if not self.replicas[index].has_work():
                            complete_retirement(index, event.time, reclaim=True)
                        else:
                            deadline_events[index] = kernel.schedule(
                                event.time + notice.deadline,
                                EventKind.RECLAIM_DEADLINE,
                                payload=index,
                                lane=index,
                            )
            else:  # EventKind.RECLAIM_DEADLINE
                index = event.payload
                deadline_events.pop(index, None)
                if self._retired_at[index] is None:
                    # Grace expired with jobs still resident: force every
                    # active job to a step boundary and evacuate -- adds
                    # latency, loses nothing.
                    self._forced_evacuations += 1
                    evacuate_all(index, forced=True)
                    complete_retirement(index, event.time, reclaim=True)
            if autoscaler is not None:
                place_held()
                if autoscaler.ready(event.time):
                    routable = self._routable()
                    backlog = [
                        (
                            i,
                            self.replicas[i].expected_remaining_seconds() or 0.0,
                        )
                        for i in routable
                    ]
                    pressure = sum(
                        self.replicas[i].deadline_pressure() for i in routable
                    )
                    decision = autoscaler.plan(event.time, backlog, pressure)
                    if decision is not None:
                        if decision[0] == "join":
                            kernel.schedule(
                                event.time + autoscaler.provision_delay,
                                EventKind.REPLICA_JOIN,
                                payload=decision[1],
                            )
                        else:
                            kernel.post(
                                EventKind.REPLICA_RETIRE,
                                ("scale", decision[1]),
                            )

        return _EventDriver(
            kernel=kernel,
            records=records,
            ingest=ingest,
            pump=pump,
            finalize=finalize,
        )

    # -- rebalancing --------------------------------------------------------

    def _rebalance_params(self) -> tuple[float, bool] | None:
        """The active ``(threshold, seconds_mode)``, or ``None`` when off."""
        seconds_mode = self.config.migration_time_threshold is not None
        threshold: float | None = (
            self.config.migration_time_threshold
            if seconds_mode
            else self.config.migration_threshold
        )
        if threshold is None:
            return None
        # A single-replica fleet has nothing to rebalance -- unless an
        # autoscaler can grow it mid-run (per-check fleet size is then
        # _plan_rebalance's indices guard).
        if len(self.replicas) < 2 and self._autoscaler is None:
            return None
        return float(threshold), seconds_mode

    def _replica_load(self, index: int, seconds_mode: bool) -> float:
        """One replica's rebalance load, in the active trigger's unit.

        Seconds mode compares completion *horizons* -- virtual clock
        plus estimator-priced remaining seconds; batch mode counts
        outstanding global batches.  Pure in the replica's own state
        (plus, in seconds mode, the calibration factors of its own
        tenants), which is what lets the event kernel cache it.
        """
        replica = self.replicas[index]
        if seconds_mode:
            return replica.clock + (replica.expected_remaining_seconds() or 0.0)
        return float(replica.outstanding_batches())

    def _plan_rebalance(
        self,
        loads: "np.ndarray | list[float]",
        threshold: float,
        seconds_mode: bool,
        moved: set[int],
        drained: set[int],
        indices: list[int] | None = None,
    ) -> _RebalanceAction | None:
        """Decide one rebalance step from the given loads.

        The single decision procedure both fleet loops share, so their
        migration behavior cannot drift apart.  Returns ``("migrate",
        adapter_id, source, target)`` when a job should move,
        ``("drain", source, migrant)`` when ``drain_then_migrate``
        should pay a drain to unlock one (``migrant`` is the mid-flight
        job a partial drain targets, ``None`` for a full flush), or
        ``None`` when the pass is over (skew within threshold, or
        nothing left to try).  ``indices`` restricts the pass to a
        subset of ``loads``'s rows -- the elastic fleet's routable
        replicas, so a draining or retired replica is neither a source
        nor a target; ``None`` (fixed fleets) considers every row with
        no subset copy.
        """
        # argmax/argmin return the *first* extreme index, exactly like
        # ``max(range(n), key=loads.__getitem__)`` on ties -- one C sweep
        # instead of a Python comparison loop over the fleet.
        array = np.asarray(loads, dtype=np.float64)
        if indices is None:
            source = int(np.argmax(array))
            target = int(np.argmin(array))
        else:
            if len(indices) < 2:
                return None
            sub = array[indices]
            source = indices[int(np.argmax(sub))]
            target = indices[int(np.argmin(sub))]
        skew = float(array[source]) - float(array[target])
        if skew <= threshold:
            return None
        adapter_id = self._pick_migration(
            source, target, skew, seconds_mode, exclude=moved
        )
        if adapter_id is not None:
            return ("migrate", adapter_id, source, target)
        if self.config.drain_then_migrate and source not in drained:
            migrant = self._pick_drain_migrant(
                source, target, skew, seconds_mode, exclude=moved
            )
            return ("drain", source, migrant)
        return None

    def _rebalance(self) -> None:
        """Migrate jobs while load skew exceeds the configured threshold.

        With ``migration_time_threshold`` set, skew is measured in
        estimator-priced **seconds** -- each replica's *completion
        horizon*, its virtual clock plus ``expected_remaining_time``.
        Seconds compose with the clock (batch counts cannot), and the
        horizon is what a migrated job actually experiences: between
        arrivals replica clocks drift apart, and a job moved to a
        remaining-time-light replica whose clock runs *later* would
        finish later, not earlier.  Without the time threshold, skew is
        outstanding **batches** (the legacy trigger).  Each pass moves
        one job from the most to the least loaded replica when that
        strictly reduces the skew *as priced at the source*.  A job is
        moved at most once per pass: corrected prices are replica-keyed,
        so a tenant can reprice after landing, and without that guard a
        near-threshold weight could ping-pong between two replicas.
        The once-per-job bound also makes termination unconditional.
        When no job can move -- typically a deep pipeline holding every
        active job mid-wave -- ``drain_then_migrate`` pays one drain on
        the overloaded replica (at most once per replica per pass) to
        unlock the migration; see :meth:`_apply_drain` for the
        partial-vs-full drain choice.
        """
        params = self._rebalance_params()
        if params is None:
            return
        threshold, seconds_mode = params
        drained: set[int] = set()
        moved: set[int] = set()
        while True:
            loads = [
                self._replica_load(index, seconds_mode)
                for index in range(len(self.replicas))
            ]
            action = self._plan_rebalance(
                loads, threshold, seconds_mode, moved, drained
            )
            if action is None:
                return
            if action[0] == "migrate":
                _, adapter_id, source, target = action
                moved.add(adapter_id)
                self._migrate(adapter_id, source, target)
            else:
                _, source, migrant = action
                drained.add(source)
                self._apply_drain(source, migrant)

    def _pick_migration(
        self,
        source: int,
        target: int,
        skew: float,
        seconds_mode: bool,
        exclude: set[int] | frozenset[int] = frozenset(),
    ) -> int | None:
        """The job whose move best evens out ``source`` and ``target``.

        Each candidate is weighed in the skew's own unit -- expected
        remaining seconds in seconds mode, remaining batches otherwise.
        Only moves that strictly reduce the skew qualify (``0 < weight <
        skew``); among those, the job bringing the pair closest to even
        wins -- balance is the objective, so a strictly better-balancing
        active job beats a pending one.  Pending jobs win ties only,
        because a queue move costs nothing while an active move pays a
        state transfer; remaining ties go to the lowest adapter id, so
        the pick is deterministic.  Jobs in ``exclude`` (already moved
        this rebalance pass) never qualify.
        """
        target_slots = self.replicas[target].slots_free
        candidates = []
        for adapter_id, batches, seconds, is_pending in (
            self.replicas[source].migratable_jobs()
        ):
            if adapter_id in exclude:
                continue
            weight = seconds if seconds_mode else float(batches)
            if weight is None or not 0 < weight < skew:
                continue
            if not is_pending and target_slots == 0:
                continue
            candidates.append(
                (abs(skew - 2 * weight), 0 if is_pending else 1, adapter_id)
            )
        if not candidates:
            return None
        return min(candidates)[2]

    def _pick_drain_migrant(
        self,
        source: int,
        target: int,
        skew: float,
        seconds_mode: bool,
        exclude: set[int] | frozenset[int] = frozenset(),
    ) -> int | None:
        """The mid-flight job worth paying a *partial* drain to move.

        Scored like :meth:`_pick_migration` (same unit, same
        ``0 < weight < skew`` cut, closest-to-even wins, lowest adapter
        id breaks ties) but over the source's mid-flight active jobs --
        the ones a drain exists to unlock.  ``None`` when no single job
        qualifies: the caller then falls back to the full flush, whose
        broader effect (every active job reaches a boundary, retirements
        may settle the skew by themselves) is the only remaining play.
        """
        if self.replicas[target].slots_free == 0:
            return None  # an active move needs a slot on the target
        candidates = []
        for adapter_id, batches, seconds in self.replicas[source].drainable_jobs():
            if adapter_id in exclude:
                continue
            weight = seconds if seconds_mode else float(batches)
            if weight is None or not 0 < weight < skew:
                continue
            candidates.append((abs(skew - 2 * weight), adapter_id))
        if not candidates:
            return None
        return min(candidates)[1]

    def _apply_drain(self, source: int, migrant: int | None) -> None:
        """Pay the drain that unlocks migration on ``source``.

        With a ``migrant`` picked, the drain is partial
        (:meth:`~repro.serve.orchestrator.OnlineOrchestrator.drain_for`):
        the pipeline runs only until that job's submitted batches have
        stepped, and the optimizer steps left un-forced on the other
        tenants -- steps a full flush would have dragged to completion
        early -- are banked in ``drain_steps_saved``.  Without one, the
        full flush
        (:meth:`~repro.serve.orchestrator.OnlineOrchestrator.flush`)
        brings every active job to a boundary (and may retire jobs,
        settling the skew by itself).
        """
        self._rebalance_drains += 1
        if migrant is None:
            self.replicas[source].flush()
        else:
            self._drain_steps_saved += self.replicas[source].drain_for(migrant)

    def _migrate(self, adapter_id: int, source: int, target: int) -> None:
        """Move one job from replica ``source`` to replica ``target``."""
        ticket = self.replicas[source].eject_job(adapter_id)
        self.replicas[target].inject_job(ticket)
        ticket.record.replica = target
        self.router.reassign(adapter_id, target)
        if ticket.payload is None:
            self._reroutes += 1
        else:
            ticket.record.migrations += 1
            self._migrations += 1


class FleetSession:
    """One incrementally-driven fleet run: the live gateway's handle.

    Opened by :meth:`ReplicaSet.open_session`.  Where :meth:`ReplicaSet.run`
    consumes a complete trace, a session discovers its workload as it
    happens: each live submission is :meth:`ingest`-ed as a
    :attr:`~repro.serve.events.EventKind.GATEWAY_INGRESS` event at its
    virtual arrival stamp, and :meth:`advance` pumps the event loop only
    up to the caller's current time frontier -- the fleet never runs
    ahead of wall-clock-derived time.  Because the session shares every
    dispatch line with the batch loop, replaying the ingested jobs as a
    plain trace through a fresh :meth:`ReplicaSet.run` reproduces the
    session's result bit-identically
    (``tests/integration/test_gateway_conformance.py``).

    The contract callers must keep: ``ingest`` a job only with
    ``arrival_time`` at or after every frontier already passed to
    :meth:`advance` -- the kernel pops events in global time order, so
    an arrival scheduled behind an already-pumped frontier would replay
    in a different position than it ran live.  The gateway enforces this
    by stamping arrivals from its monotone submission clock.
    """

    def __init__(self, replica_set: ReplicaSet, driver: _EventDriver) -> None:
        self._set = replica_set
        self._driver = driver
        self._ids: set[int] = set()
        self._finished: ReplicaSetResult | None = None

    def ingest(self, job: ServeJob) -> None:
        """Schedule one live submission at its ``arrival_time``.

        Raises:
            ScheduleError: On a duplicate adapter id or a finished
                session.
        """
        if self._finished is not None:
            raise ScheduleError("the fleet session is finished")
        if job.adapter_id in self._ids:
            raise ScheduleError(
                f"duplicate adapter id in session: {job.adapter_id}"
            )
        self._ids.add(job.adapter_id)
        self._driver.ingest(job, EventKind.GATEWAY_INGRESS)

    def advance(self, frontier: float) -> None:
        """Pump every due event with timestamp at or before ``frontier``."""
        if self._finished is not None:
            raise ScheduleError("the fleet session is finished")
        self._driver.pump(frontier)

    def record(self, adapter_id: int) -> JobRecord | None:
        """The live :class:`~repro.serve.metrics.JobRecord` of an ingested
        job, or ``None`` while its ingress event is still queued."""
        return self._driver.records.get(adapter_id)

    def finish(self) -> ReplicaSetResult:
        """Run the loop to exhaustion and assemble the fleet result.

        Idempotent: the first call drains the kernel and finishes every
        replica; later calls return the same result object.
        """
        if self._finished is None:
            self._driver.pump(math.inf)
            self._driver.finalize()
            self._finished = self._set._assemble_result()
        return self._finished
