"""Multi-replica serving: N pipelines, one tenant stream.

One :class:`~repro.serve.orchestrator.OnlineOrchestrator` drives one
pipeline.  The :class:`ReplicaSet` scales that out: it owns several
independent orchestrators (one per pipeline replica, each with its own
executor), routes every arriving tenant to exactly one of them through a
pluggable :class:`~repro.serve.router.RoutingPolicy`, and -- when the
load skew between replicas exceeds a threshold -- *migrates* jobs
between pipelines.

Virtual time across replicas is coordinated event-style: the set always
advances the busiest-behind replica (smallest clock among those with
work) until every working replica has reached the next arrival's
timestamp, then routes that arrival against fresh load views.  Routing
decisions therefore see each replica's state as of (approximately) the
arrival instant, which is what makes least-loaded and packing-affinity
policies meaningful.

Migration is lossless.  A pending job moves as a queue entry (a
*reroute*); an admitted job moves between waves as a
:class:`~repro.serve.orchestrator.MigrationTicket` carrying the
executor's exported state -- for numeric executors, the adapter weights,
AdamW moments, and progress counters from
:meth:`~repro.runtime.engine.MultiLoRAEngine.export_job_state`.  Because
export happens only at optimizer-step boundaries and the destination
model shares the same frozen base weights, a migrated job's final
adapter is bit-identical to an unmigrated run
(``tests/integration/test_migration_losslessness.py``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.serve.executors import Executor
from repro.serve.jobs import ServeJob
from repro.serve.metrics import JobRecord, ReplicaSetResult
from repro.serve.orchestrator import OnlineOrchestrator, OrchestratorConfig
from repro.serve.router import (
    LeastLoadedRouting,
    ReplicaView,
    RoutingPolicy,
    TenantRouter,
)

__all__ = ["ReplicaSetConfig", "ReplicaSet"]


@dataclass
class ReplicaSetConfig:
    """Tunables of the multi-replica serving layer.

    The rebalancer has two trigger modes, matching the two load units
    :class:`~repro.serve.router.ReplicaView` reports.
    ``migration_time_threshold`` is the cost-priced mode: it compares
    replicas on their completion horizons -- virtual clock plus
    ``expected_remaining_time`` **seconds** (the same estimator-priced
    backlog routing sees) -- and picks the migrant that best evens the
    seconds gap.  Two replicas owing the same batch count can owe very
    different amounts of time, so this is the mode to use whenever an
    estimator is configured.
    ``migration_threshold`` is the legacy batch-count mode.  When both
    are set, seconds win (they are the finer measure).

    Attributes:
        orchestrator: Per-replica orchestrator configuration (every
            replica runs the same scheduler/window/admission settings).
        routing: Tenant placement policy;
            :class:`~repro.serve.router.LeastLoadedRouting` when omitted.
        migration_threshold: Maximum tolerated outstanding-batch skew
            (a **count**) between the most and least loaded replicas
            before the set migrates jobs to rebalance; ``None`` disables
            the batch-skew trigger.
        migration_time_threshold: Maximum tolerated
            ``expected_remaining_time`` skew in **seconds**; requires
            the orchestrator to carry a
            :class:`~repro.serve.costing.CostEstimator`.  ``None``
            disables the seconds-skew trigger.
        drain_then_migrate: When a triggered rebalance finds no movable
            job -- under a deep pipeline the wave tail is usually in
            flight, so active jobs are not at step boundaries -- pay one
            pipeline flush on the overloaded replica
            (:meth:`~repro.serve.orchestrator.OnlineOrchestrator.flush`)
            to bring them to boundaries and retry.  Off by default: the
            flush costs bubbles, so leave it off unless rebalances are
            visibly starving (``ReplicaSetResult.rebalance_drains``
            counts the flushes paid).
    """

    orchestrator: OrchestratorConfig
    routing: RoutingPolicy | None = None
    migration_threshold: int | None = None
    migration_time_threshold: float | None = None
    drain_then_migrate: bool = False

    def __post_init__(self) -> None:
        if self.migration_threshold is not None and self.migration_threshold < 0:
            raise ScheduleError("migration_threshold must be non-negative")
        if self.migration_time_threshold is not None:
            if self.migration_time_threshold < 0:
                raise ScheduleError(
                    "migration_time_threshold must be non-negative"
                )
            if self.orchestrator.estimator is None:
                raise ScheduleError(
                    "migration_time_threshold compares replicas in expected "
                    "seconds; configure an estimator on the orchestrator"
                )
        if self.drain_then_migrate and (
            self.migration_threshold is None
            and self.migration_time_threshold is None
        ):
            raise ScheduleError(
                "drain_then_migrate without a migration threshold would "
                "never fire; set migration_threshold or "
                "migration_time_threshold"
            )


class ReplicaSet:
    """Serves one tenant stream across several pipeline replicas.

    Args:
        executors: One execution backend per replica.  For numeric
            serving the engines must share identical frozen base weights
            (build each model from the same seed), or migration would not
            be lossless.
        config: Replica-set tunables.
    """

    def __init__(self, executors: list[Executor], config: ReplicaSetConfig) -> None:
        if not executors:
            raise ScheduleError("a replica set needs at least one executor")
        self.config = config
        self.replicas = [
            OnlineOrchestrator(executor, config.orchestrator, replica_id=index)
            for index, executor in enumerate(executors)
        ]
        self.router = TenantRouter(config.routing or LeastLoadedRouting())
        self._migrations = 0
        self._reroutes = 0
        self._rebalance_drains = 0
        self._ran = False

    @property
    def num_replicas(self) -> int:
        """Pipeline replicas in the set."""
        return len(self.replicas)

    def views(self) -> list[ReplicaView]:
        """Current load snapshot of every replica, in index order.

        Load is reported in both units (see :class:`ReplicaView`):
        ``outstanding_batches`` counts active **plus parked plus
        pending** work, and -- when the orchestrators carry a
        :class:`~repro.serve.costing.CostEstimator` -- the same work is
        priced in expected seconds (``expected_remaining_time``,
        ``expected_wave_time``) for cost-aware policies.
        """
        return [
            ReplicaView(
                index=index,
                clock=replica.clock,
                outstanding_batches=replica.outstanding_batches(),
                num_active=replica.num_active,
                num_pending=replica.num_pending,
                num_parked=replica.num_parked,
                slots_free=replica.slots_free,
                live_mean_lengths=tuple(replica.live_mean_lengths()),
                live_priorities=tuple(replica.live_priorities()),
                expected_remaining_time=replica.expected_remaining_seconds(),
                expected_wave_time=replica.expected_wave_seconds(),
            )
            for index, replica in enumerate(self.replicas)
        ]

    # -- the serving loop ---------------------------------------------------

    def run(self, workload: list[ServeJob]) -> ReplicaSetResult:
        """Serve ``workload`` to completion across the replica set.

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.

        Returns:
            Per-replica results plus fleet-wide records and counters.

        Raises:
            ScheduleError: On reuse or duplicate adapter ids.
        """
        if self._ran:
            raise ScheduleError("ReplicaSet.run is single-shot; construct a fresh set")
        self._ran = True
        ids = [job.adapter_id for job in workload]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids in workload: {ids}")
        for replica in self.replicas:
            replica.start([])
        arrivals = deque(
            sorted(workload, key=lambda job: (job.arrival_time, job.adapter_id))
        )
        while arrivals or any(r.has_work() for r in self.replicas):
            next_arrival = arrivals[0].arrival_time if arrivals else math.inf
            behind = [
                replica for replica in self.replicas
                if replica.has_work() and replica.clock < next_arrival
            ]
            if behind:
                # Advance the furthest-behind working replica so every
                # pipeline reaches the arrival instant before we route.
                replica = min(behind, key=lambda r: (r.clock, r.replica_id))
                replica.step()
            else:
                job = arrivals.popleft()
                index = self.router.route(job, self.views())
                record = self.replicas[index].offer(job)
                record.replica = index
            self._rebalance()
        results = [replica.finish() for replica in self.replicas]
        records: dict[int, JobRecord] = {}
        for result in results:
            records.update(result.records)
        return ReplicaSetResult(
            replicas=results,
            records=records,
            migrations=self._migrations,
            reroutes=self._reroutes,
            rebalance_drains=self._rebalance_drains,
        )

    # -- rebalancing --------------------------------------------------------

    def _rebalance(self) -> None:
        """Migrate jobs while load skew exceeds the configured threshold.

        With ``migration_time_threshold`` set, skew is measured in
        estimator-priced **seconds** -- each replica's *completion
        horizon*, its virtual clock plus ``expected_remaining_time``.
        Seconds compose with the clock (batch counts cannot), and the
        horizon is what a migrated job actually experiences: between
        arrivals replica clocks drift apart, and a job moved to a
        remaining-time-light replica whose clock runs *later* would
        finish later, not earlier.  Without the time threshold, skew is
        outstanding **batches** (the legacy trigger).  Each pass moves
        one job from the most to the least loaded replica when that
        strictly reduces the skew *as priced at the source*.  A job is
        moved at most once per pass: corrected prices are replica-keyed,
        so a tenant can reprice after landing, and without that guard a
        near-threshold weight could ping-pong between two replicas.
        The once-per-job bound also makes termination unconditional.
        When no job can move -- typically a deep pipeline holding every
        active job mid-wave -- ``drain_then_migrate`` pays one flush on
        the overloaded replica (at most once per replica per pass) to
        unlock the migration.
        """
        seconds_mode = self.config.migration_time_threshold is not None
        threshold: float | None = (
            self.config.migration_time_threshold
            if seconds_mode
            else self.config.migration_threshold
        )
        if threshold is None or len(self.replicas) < 2:
            return
        drained: set[int] = set()
        moved: set[int] = set()
        while True:
            if seconds_mode:
                loads = [
                    r.clock + (r.expected_remaining_seconds() or 0.0)
                    for r in self.replicas
                ]
            else:
                loads = [float(r.outstanding_batches()) for r in self.replicas]
            source = max(range(len(loads)), key=loads.__getitem__)
            target = min(range(len(loads)), key=loads.__getitem__)
            skew = loads[source] - loads[target]
            if skew <= threshold:
                return
            adapter_id = self._pick_migration(
                source, target, skew, seconds_mode, exclude=moved
            )
            if adapter_id is None:
                if self.config.drain_then_migrate and source not in drained:
                    # One flush buys step boundaries on every active job
                    # of the overloaded replica; retry the pick with the
                    # post-drain loads (the drain may also retire jobs,
                    # which can settle the skew by itself).
                    drained.add(source)
                    self._rebalance_drains += 1
                    self.replicas[source].flush()
                    continue
                return
            moved.add(adapter_id)
            self._migrate(adapter_id, source, target)

    def _pick_migration(
        self,
        source: int,
        target: int,
        skew: float,
        seconds_mode: bool,
        exclude: set[int] | frozenset[int] = frozenset(),
    ) -> int | None:
        """The job whose move best evens out ``source`` and ``target``.

        Each candidate is weighed in the skew's own unit -- expected
        remaining seconds in seconds mode, remaining batches otherwise.
        Only moves that strictly reduce the skew qualify (``0 < weight <
        skew``); among those, the job bringing the pair closest to even
        wins -- balance is the objective, so a strictly better-balancing
        active job beats a pending one.  Pending jobs win ties only,
        because a queue move costs nothing while an active move pays a
        state transfer; remaining ties go to the lowest adapter id, so
        the pick is deterministic.  Jobs in ``exclude`` (already moved
        this rebalance pass) never qualify.
        """
        target_slots = self.replicas[target].slots_free
        candidates = []
        for adapter_id, batches, seconds, is_pending in (
            self.replicas[source].migratable_jobs()
        ):
            if adapter_id in exclude:
                continue
            weight = seconds if seconds_mode else float(batches)
            if weight is None or not 0 < weight < skew:
                continue
            if not is_pending and target_slots == 0:
                continue
            candidates.append(
                (abs(skew - 2 * weight), 0 if is_pending else 1, adapter_id)
            )
        if not candidates:
            return None
        return min(candidates)[2]

    def _migrate(self, adapter_id: int, source: int, target: int) -> None:
        """Move one job from replica ``source`` to replica ``target``."""
        ticket = self.replicas[source].eject_job(adapter_id)
        self.replicas[target].inject_job(ticket)
        ticket.record.replica = target
        self.router.reassign(adapter_id, target)
        if ticket.payload is None:
            self._reroutes += 1
        else:
            ticket.record.migrations += 1
            self._migrations += 1
