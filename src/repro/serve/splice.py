"""Splicing window schedules into the in-flight microbatch stream.

Each replanning wave produces a window schedule that is internally
bubble-lemma-safe, but knows nothing about the microbatches already
submitted: a job's first window batch may depend on its previous window's
last optimizer step.  The splicer carries the live stream's
``(adapter, batch) -> last position`` state across waves and re-runs no-op
insertion at the junction, so the *concatenated* stream satisfies the
bubble lemma end to end -- the invariant
:func:`repro.scheduler.bubble.find_violations` checks and the acceptance
tests assert.
"""

from __future__ import annotations

from repro.scheduler.bubble import insert_noops
from repro.scheduler.types import Microbatch

__all__ = ["StreamSplicer"]


class StreamSplicer:
    """Stateful cross-window no-op inserter for one executor stream.

    Args:
        num_stages: Pipeline depth the stream must respect.

    Attributes:
        length: Microbatches emitted onto the stream so far.
        noops_inserted: Junction no-ops added across all splices.
    """

    length: int
    noops_inserted: int

    def __init__(self, num_stages: int) -> None:
        self.num_stages = num_stages
        self.length = 0
        self.noops_inserted = 0
        self._last_position: dict[tuple[int, int], int] = {}

    def splice(
        self, microbatches: list[Microbatch], plan_id: int | None = None
    ) -> list[Microbatch]:
        """Space a window's microbatches against the stream emitted so far.

        Args:
            microbatches: The window schedule, in execution order.
            plan_id: Provenance stamp applied to every microbatch
                (including junction no-ops) when given.

        Returns:
            The window with junction no-ops inserted; ready to submit.
        """
        spliced, inserted = insert_noops(
            microbatches,
            self.num_stages,
            initial_last=self._last_position,
            start_position=self.length,
        )
        if plan_id is not None:
            for mb in spliced:
                mb.plan_id = plan_id
        self.length += len(spliced)
        self.noops_inserted += inserted
        return spliced

    def retire(self, adapter_id: int) -> None:
        """Drop a finished adapter's position bookkeeping."""
        for key in [k for k in self._last_position if k[0] == adapter_id]:
            del self._last_position[key]

    def truncate(self, length: int) -> None:
        """Resynchronize after a spliced window was cut short.

        Mid-wave admission may abandon the tail of a window whose
        microbatches this splicer already spaced: the stream actually
        submitted is a strict prefix of what :meth:`splice` returned.
        Positions recorded at or past the cut are phantoms -- the cut
        point is always a whole-global-batch boundary, so no key has
        real work before the cut and phantom work after it -- and
        keeping them would make the next junction under-space the real
        stream.  Forget them and rewind the stream length; the abandoned
        batches are rescheduled by a later wave like fresh work.

        Args:
            length: The number of microbatches actually submitted (the
                real stream length); must not exceed :attr:`length`.
        """
        if length > self.length:
            raise ValueError(
                f"cannot truncate to {length}: only {self.length} "
                "microbatches were ever spliced"
            )
        for key in [k for k, pos in self._last_position.items() if pos >= length]:
            del self._last_position[key]
        self.length = length
