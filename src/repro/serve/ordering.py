"""Ordering policies: who gets the next adapter slot (and who loses one).

FCFS admission is the fairness baseline, but it is JCT-pessimal under
skewed job sizes: a short tenant arriving behind a heavy one waits a full
wave for a slot.  Continuous-batching serving systems (Orca-style
iteration-level scheduling, S-LoRA's multi-adapter admission) showed that
shortest-remaining-work ordering and bounded preemption cut mean JCT
dramatically on heavy-tailed traces.  This module is that decision layer
for the online orchestrator: a pluggable :class:`OrderingPolicy` ranks
every slot candidate (pending arrivals, preempted-and-parked jobs, and --
for preemption -- the jobs currently holding slots) and the orchestrator
admits in rank order.

A policy is two things:

* :meth:`~OrderingPolicy.key` -- a total order over :class:`JobView`
  snapshots; **lower sorts first**.  Every shipped policy ends its key
  with ``(arrival_time, adapter_id)`` so ranking is deterministic.

Two refinements make the ranking *quantitative* rather than heuristic:

* **Time, not batch counts.**  When the orchestrator carries a
  :class:`~repro.serve.costing.CostEstimator`, every :class:`JobView`
  is stamped with :attr:`~JobView.remaining_seconds` -- the job's
  expected remaining service time -- and :class:`SRPTOrdering` ranks on
  it (true shortest-remaining-*time*), while :class:`DeadlineOrdering`
  ranks on *slack* (time to deadline minus remaining time, i.e. least
  laxity first).  Without an estimator the policies fall back to
  remaining batch counts / raw deadlines, exactly the pre-estimator
  behavior.
* **Aging.**  SRPT and strict priority can starve long best-effort
  jobs indefinitely under sustained pressure.  An ``aging_rate`` term
  improves a candidate's rank linearly with its queueing time, which
  bounds worst-case queueing: a job with remaining work ``R`` waiting
  ``W`` outranks any fresh arrival with remaining work ``r`` once
  ``W > (R - r) / aging_rate`` (``tests/serve/test_ordering.py``
  asserts the bound).  Jobs waiting together age together, so aging
  never reorders two equally-old candidates -- it only stops fresh
  arrivals from cutting an ever-growing line.
* :attr:`~OrderingPolicy.preemptive` -- whether a candidate that ranks
  strictly ahead of a running job may evict it.  Eviction is lossless:
  the victim's executor state is exported at an optimizer-step boundary
  and parked, and the job re-enters the candidate pool with its progress
  intact (see :meth:`OnlineOrchestrator._admit_ready
  <repro.serve.orchestrator.OnlineOrchestrator>`).

Four policies ship: :class:`FCFSOrdering` (arrival order, the default),
:class:`SRPTOrdering` (shortest remaining batches first),
:class:`PriorityOrdering` (explicit classes, FCFS within a class), and
:class:`DeadlineOrdering` (earliest deadline first).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ScheduleError

__all__ = [
    "JobView",
    "OrderingPolicy",
    "FCFSOrdering",
    "SRPTOrdering",
    "PriorityOrdering",
    "DeadlineOrdering",
    "policy_keys",
    "validate_policy",
]


def _waited_array(jobs: Sequence[JobView], now: float) -> np.ndarray:
    """Per-job queueing times, elementwise-identical to :meth:`JobView.waited`."""
    arrivals = np.fromiter(
        (job.arrival_time for job in jobs), dtype=np.float64, count=len(jobs)
    )
    return np.maximum(0.0, now - arrivals)


@dataclass(frozen=True)
class JobView:
    """A policy-facing snapshot of one job competing for an adapter slot.

    Attributes:
        adapter_id: The job.
        arrival_time: When the job became known (the universal
            tie-breaker; preemption and parking do not change it).
        priority: SLO class; larger is more urgent.
        deadline: Virtual time the job should finish by (``None`` = no
            deadline).
        remaining_batches: Optimizer steps still to be taken.  For a
            preempted job this reflects the progress already banked, so
            remaining-work policies rank resumption correctly.
        admitted: Whether the job currently holds an adapter slot
            (a preemption victim) rather than waiting for one.
        remaining_seconds: Expected remaining service time in seconds,
            from the orchestrator's
            :class:`~repro.serve.costing.CostEstimator` (``None``
            without one); time-aware policies prefer it over the batch
            count.
    """

    adapter_id: int
    arrival_time: float
    priority: int
    deadline: float | None
    remaining_batches: int
    admitted: bool
    remaining_seconds: float | None = None

    def remaining_work(self) -> float:
        """Remaining seconds when priced, else the raw batch count.

        The two are different units (seconds vs batches); within one
        orchestrator every candidate is stamped the same way, so keys
        built from this stay mutually comparable.
        """
        if self.remaining_seconds is not None:
            return self.remaining_seconds
        return float(self.remaining_batches)

    def waited(self, now: float) -> float:
        """Queueing time accumulated by virtual time ``now``."""
        return max(0.0, now - self.arrival_time)


@runtime_checkable
class OrderingPolicy(Protocol):
    """Ranks slot candidates; lower :meth:`key` is served first."""

    @property
    def preemptive(self) -> bool:
        """Whether a strictly better-ranked candidate may evict a job."""
        ...

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """The job's rank at virtual time ``now`` (lower sorts first)."""


@dataclass(frozen=True)
class FCFSOrdering:
    """Arrival order -- the fairness baseline and the default.

    Never preempts, so it reproduces the orchestrator's original
    first-come-first-served admission exactly.
    """

    preemptive: bool = False

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by arrival time."""
        return (job.arrival_time, job.adapter_id)

    def keys(self, jobs: Sequence[JobView], now: float) -> list[tuple[float, ...]]:
        """Batch form of :meth:`key`; element ``i`` equals ``key(jobs[i], now)``."""
        return [(job.arrival_time, job.adapter_id) for job in jobs]


@dataclass(frozen=True)
class SRPTOrdering:
    """Shortest remaining processing time, with an optional aging bound.

    The mean-JCT workhorse on heavy-tailed traces: short jobs (and jobs
    that are nearly done -- remaining work, not total size) jump the
    queue.  Remaining work is expected *seconds* when the orchestrator
    prices candidates with a :class:`~repro.serve.costing.CostEstimator`
    (:attr:`JobView.remaining_seconds`), else global batches.  With
    ``preemptive=True`` this is true SRPT: a shorter arrival evicts the
    running job with the most remaining work.

    Long jobs can starve under sustained short-job pressure; a positive
    ``aging_rate`` bounds that: a job's effective remaining work shrinks
    by ``aging_rate`` per unit of queueing time, so a job with remaining
    work ``R`` overtakes any fresh arrival with remaining work ``r``
    after waiting at most ``(R - r) / aging_rate``.

    Attributes:
        preemptive: Evict the longest-remaining running job for a
            strictly shorter candidate (default off: reorder the queue
            only).
        aging_rate: Remaining-work units (seconds with an estimator,
            batches without) of rank credit per unit of waiting time;
            0 is pure SRPT (may starve).
    """

    preemptive: bool = False
    aging_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.aging_rate < 0:
            raise ScheduleError("aging_rate must be non-negative")

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by aged remaining work (time when priced), then arrival."""
        work = job.remaining_work() - self.aging_rate * job.waited(now)
        return (work, job.arrival_time, job.adapter_id)

    def keys(self, jobs: Sequence[JobView], now: float) -> list[tuple[float, ...]]:
        """Batch form of :meth:`key`; element ``i`` equals ``key(jobs[i], now)``.

        One elementwise array expression instead of per-job Python
        arithmetic -- same IEEE-754 ops in the same order, so the ranks
        are bit-identical (``x - 0.0 == x`` exactly lets the zero-rate
        case skip the aging term).
        """
        work = np.fromiter(
            (job.remaining_work() for job in jobs), dtype=np.float64, count=len(jobs)
        )
        if self.aging_rate:
            work = work - self.aging_rate * _waited_array(jobs, now)
        return [
            (value, job.arrival_time, job.adapter_id)
            for value, job in zip(work.tolist(), jobs)
        ]


@dataclass(frozen=True)
class PriorityOrdering:
    """Explicit SLO classes: higher :attr:`~repro.serve.jobs.ServeJob.priority` first.

    Within a class, FCFS.  Preemptive by default -- the point of paying
    for a high class is not waiting behind a low one; a high-class
    arrival evicts the lowest-class running job when no slot is free.

    A positive ``aging_rate`` raises a candidate's *effective* class
    linearly with its queueing time, so a best-effort job cannot wait
    behind class-``c`` traffic longer than ``c / aging_rate`` -- the
    starvation bound strict priority otherwise lacks.

    Attributes:
        preemptive: Allow class-based eviction (default on).
        aging_rate: Priority classes of rank credit per unit of waiting
            time; 0 is strict priority (may starve).
    """

    preemptive: bool = True
    aging_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.aging_rate < 0:
            raise ScheduleError("aging_rate must be non-negative")

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by aged class (higher effective priority first), then arrival."""
        effective = job.priority + self.aging_rate * job.waited(now)
        return (-effective, job.arrival_time, job.adapter_id)

    def keys(self, jobs: Sequence[JobView], now: float) -> list[tuple[float, ...]]:
        """Batch form of :meth:`key`; element ``i`` equals ``key(jobs[i], now)``."""
        priorities = np.fromiter(
            (job.priority for job in jobs), dtype=np.float64, count=len(jobs)
        )
        if self.aging_rate:
            effective = priorities + self.aging_rate * _waited_array(jobs, now)
        else:
            effective = priorities + 0.0
        return [
            (-value, job.arrival_time, job.adapter_id)
            for value, job in zip(effective.tolist(), jobs)
        ]


@dataclass(frozen=True)
class DeadlineOrdering:
    """Earliest deadline first (EDF), slack-aware when costs are priced.

    Jobs without a deadline rank last (after every deadline-carrying
    job).  When candidates carry :attr:`JobView.remaining_seconds` (an
    orchestrator with a :class:`~repro.serve.costing.CostEstimator`),
    the rank is *slack* -- time to deadline minus expected remaining
    time, i.e. least laxity first -- so a long job whose deadline is
    nominally later but effectively tighter is served first.  Without
    an estimator the rank is the raw deadline, classic EDF.  Preemptive
    by default, as EDF's optimality argument assumes.

    Attributes:
        preemptive: Allow deadline-based eviction (default on).
        aging_rate: Rank credit (same time units as the deadline clock)
            per unit of waiting, bounding how long a *deadline-carrying*
            job queues behind fresh earlier-deadline arrivals; 0 is pure
            EDF/least-laxity.  Deadline-free jobs rank last regardless
            (their base is infinite, which no finite credit moves) --
            bound best-effort starvation with :class:`SRPTOrdering` or
            :class:`PriorityOrdering` aging instead.
    """

    preemptive: bool = True
    aging_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.aging_rate < 0:
            raise ScheduleError("aging_rate must be non-negative")

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by slack (deadline when unpriced; no deadline = +inf)."""
        if job.deadline is None:
            base = math.inf
        elif job.remaining_seconds is not None:
            base = (job.deadline - now) - job.remaining_seconds
        else:
            base = job.deadline
        base -= self.aging_rate * job.waited(now)
        return (base, job.arrival_time, job.adapter_id)

    def keys(self, jobs: Sequence[JobView], now: float) -> list[tuple[float, ...]]:
        """Batch form of :meth:`key`; element ``i`` equals ``key(jobs[i], now)``.

        The per-job slack branches stay in Python (they are cheap and
        data-dependent); only the aging term is an array op.  With a
        zero rate the subtraction is skipped -- exact, since
        ``x - 0.0 == x`` (including ``+inf`` for deadline-free jobs).
        """
        base = np.fromiter(
            (self._base(job, now) for job in jobs), dtype=np.float64, count=len(jobs)
        )
        if self.aging_rate:
            base = base - self.aging_rate * _waited_array(jobs, now)
        return [
            (value, job.arrival_time, job.adapter_id)
            for value, job in zip(base.tolist(), jobs)
        ]

    @staticmethod
    def _base(job: JobView, now: float) -> float:
        """The un-aged slack term of :meth:`key` for one job."""
        if job.deadline is None:
            return math.inf
        if job.remaining_seconds is not None:
            return (job.deadline - now) - job.remaining_seconds
        return job.deadline


def policy_keys(
    policy: OrderingPolicy, jobs: Sequence[JobView], now: float
) -> list[tuple[float, ...]]:
    """Rank a whole candidate set at once; element ``i`` is ``key(jobs[i], now)``.

    The orchestrator's hot path: every wave plan ranks all pending and
    parked candidates.  Policies that implement a batch ``keys(jobs,
    now)`` method (all four shipped ones do, numpy-vectorized and
    bit-identical to their scalar ``key``) rank the set in one shot;
    any other :class:`OrderingPolicy` transparently falls back to
    per-job ``key`` calls, so custom policies keep working unchanged.
    """
    batch = getattr(policy, "keys", None)
    if batch is not None:
        return list(batch(jobs, now))
    return [policy.key(job, now) for job in jobs]


def validate_policy(policy: object) -> OrderingPolicy:
    """Check ``policy`` implements the protocol; return it typed.

    Raises:
        ScheduleError: When the object lacks ``key`` or ``preemptive``.
    """
    if not isinstance(policy, OrderingPolicy):
        raise ScheduleError(
            f"{type(policy).__name__} is not an OrderingPolicy (needs a "
            "key() method and a preemptive attribute)"
        )
    return policy
