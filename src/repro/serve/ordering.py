"""Ordering policies: who gets the next adapter slot (and who loses one).

FCFS admission is the fairness baseline, but it is JCT-pessimal under
skewed job sizes: a short tenant arriving behind a heavy one waits a full
wave for a slot.  Continuous-batching serving systems (Orca-style
iteration-level scheduling, S-LoRA's multi-adapter admission) showed that
shortest-remaining-work ordering and bounded preemption cut mean JCT
dramatically on heavy-tailed traces.  This module is that decision layer
for the online orchestrator: a pluggable :class:`OrderingPolicy` ranks
every slot candidate (pending arrivals, preempted-and-parked jobs, and --
for preemption -- the jobs currently holding slots) and the orchestrator
admits in rank order.

A policy is two things:

* :meth:`~OrderingPolicy.key` -- a total order over :class:`JobView`
  snapshots; **lower sorts first**.  Every shipped policy ends its key
  with ``(arrival_time, adapter_id)`` so ranking is deterministic.
* :attr:`~OrderingPolicy.preemptive` -- whether a candidate that ranks
  strictly ahead of a running job may evict it.  Eviction is lossless:
  the victim's executor state is exported at an optimizer-step boundary
  and parked, and the job re-enters the candidate pool with its progress
  intact (see :meth:`OnlineOrchestrator._admit_ready
  <repro.serve.orchestrator.OnlineOrchestrator>`).

Four policies ship: :class:`FCFSOrdering` (arrival order, the default),
:class:`SRPTOrdering` (shortest remaining batches first),
:class:`PriorityOrdering` (explicit classes, FCFS within a class), and
:class:`DeadlineOrdering` (earliest deadline first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ScheduleError

__all__ = [
    "JobView",
    "OrderingPolicy",
    "FCFSOrdering",
    "SRPTOrdering",
    "PriorityOrdering",
    "DeadlineOrdering",
    "validate_policy",
]


@dataclass(frozen=True)
class JobView:
    """A policy-facing snapshot of one job competing for an adapter slot.

    Attributes:
        adapter_id: The job.
        arrival_time: When the job became known (the universal
            tie-breaker; preemption and parking do not change it).
        priority: SLO class; larger is more urgent.
        deadline: Virtual time the job should finish by (``None`` = no
            deadline).
        remaining_batches: Optimizer steps still to be taken.  For a
            preempted job this reflects the progress already banked, so
            remaining-work policies rank resumption correctly.
        admitted: Whether the job currently holds an adapter slot
            (a preemption victim) rather than waiting for one.
    """

    adapter_id: int
    arrival_time: float
    priority: int
    deadline: float | None
    remaining_batches: int
    admitted: bool


@runtime_checkable
class OrderingPolicy(Protocol):
    """Ranks slot candidates; lower :meth:`key` is served first."""

    @property
    def preemptive(self) -> bool:
        """Whether a strictly better-ranked candidate may evict a job."""
        ...

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """The job's rank at virtual time ``now`` (lower sorts first)."""


@dataclass(frozen=True)
class FCFSOrdering:
    """Arrival order -- the fairness baseline and the default.

    Never preempts, so it reproduces the orchestrator's original
    first-come-first-served admission exactly.
    """

    preemptive: bool = False

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by arrival time."""
        return (job.arrival_time, job.adapter_id)


@dataclass(frozen=True)
class SRPTOrdering:
    """Shortest remaining processing time, measured in global batches.

    The mean-JCT workhorse on heavy-tailed traces: short jobs (and jobs
    that are nearly done -- remaining work, not total size) jump the
    queue.  With ``preemptive=True`` this is true SRPT: a shorter arrival
    evicts the running job with the most remaining work.  Long jobs can
    starve under sustained short-job pressure; bound that with
    :class:`PriorityOrdering` or admission capacity instead of relying on
    SRPT alone.

    Attributes:
        preemptive: Evict the longest-remaining running job for a
            strictly shorter candidate (default off: reorder the queue
            only).
    """

    preemptive: bool = False

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by remaining batches, then arrival."""
        return (job.remaining_batches, job.arrival_time, job.adapter_id)


@dataclass(frozen=True)
class PriorityOrdering:
    """Explicit SLO classes: higher :attr:`ServeJob.priority` first.

    Within a class, FCFS.  Preemptive by default -- the point of paying
    for a high class is not waiting behind a low one; a high-class
    arrival evicts the lowest-class running job when no slot is free.

    Attributes:
        preemptive: Allow class-based eviction (default on).
    """

    preemptive: bool = True

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by class (higher priority first), then arrival."""
        return (-job.priority, job.arrival_time, job.adapter_id)


@dataclass(frozen=True)
class DeadlineOrdering:
    """Earliest deadline first (EDF).

    Jobs without a deadline rank last (after every deadline-carrying
    job).  Preemptive by default, as EDF's optimality argument assumes.

    Attributes:
        preemptive: Allow deadline-based eviction (default on).
    """

    preemptive: bool = True

    def key(self, job: JobView, now: float) -> tuple[float, ...]:
        """Rank by deadline (missing deadline = +inf), then arrival."""
        deadline = math.inf if job.deadline is None else job.deadline
        return (deadline, job.arrival_time, job.adapter_id)


def validate_policy(policy: object) -> OrderingPolicy:
    """Check ``policy`` implements the protocol; return it typed.

    Raises:
        ScheduleError: When the object lacks ``key`` or ``preemptive``.
    """
    if not isinstance(policy, OrderingPolicy):
        raise ScheduleError(
            f"{type(policy).__name__} is not an OrderingPolicy (needs a "
            "key() method and a preemptive attribute)"
        )
    return policy
