"""The online multi-tenant orchestrator: continuous job serving.

The offline pipeline (schedule everything, then execute) assumes all jobs
are known upfront.  Production multi-tenant traffic is a stream: jobs
arrive over time, hold an adapter slot while training, and retire.  The
orchestrator closes that gap with an incremental schedule->splice->execute
loop over any :class:`~repro.serve.executors.Executor`:

1. **Admit** arrivals against the admission policy's adapter-slot budget
   (memory-derived or fixed), in arrival order.
2. **Plan a wave**: window each live job to its next ``window_batches``
   global batches (``batch_offset`` keeps optimizer-step indices
   absolute) and run the two-phase scheduler
   (:meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.plan_step` +
   :meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.assemble`) over
   live jobs only.
3. **Splice** the window into the in-flight stream: the
   :class:`~repro.serve.splice.StreamSplicer` inserts junction no-ops so
   the concatenated stream never violates the bubble lemma.
4. **Execute** the spliced microbatches; optimizer-step events update
   per-job records, and jobs whose final batch stepped retire
   immediately, freeing their slot for the next arrival.

When every live job is fully scheduled but pipeline work is still in
flight (or pending jobs wait on slots), the executor drains -- a pipeline
flush -- and the loop resumes with the freed slots.  Losslessness holds
throughout: window scheduling never reorders samples across global-batch
boundaries and the splicer preserves update ordering, so a job served
under churn trains exactly as it would alone.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler.bubble import find_violations
from repro.scheduler.scheduler import MultiLoRAScheduler, SchedulerConfig
from repro.scheduler.types import AdapterJob, Microbatch, Schedule
from repro.serve.admission import AdmissionPolicy
from repro.serve.executors import Executor, StepEvent
from repro.serve.jobs import ServeJob
from repro.serve.metrics import JobRecord, OrchestratorResult
from repro.serve.splice import StreamSplicer

__all__ = ["OrchestratorConfig", "MigrationTicket", "OnlineOrchestrator"]

#: Window scheduler stats accumulated across waves into the result stats.
_ACCUMULATED_STATS = ("merges", "noops_inserted", "milp_selected", "packing_tasks")


@dataclass(frozen=True)
class OrchestratorConfig:
    """Tunables of the online orchestrator.

    Attributes:
        scheduler: Per-wave scheduler configuration (capacity, stages,
            MILP/merge switches...).
        window_batches: Global batches per job per planning wave; ``None``
            schedules each job's whole remaining horizon in one wave
            (with all arrivals at time 0 this is the offline oracle).
        admission: Adapter-slot policy; ``None`` admits unboundedly.
    """

    scheduler: SchedulerConfig
    window_batches: int | None = 2
    admission: AdmissionPolicy | None = None

    def __post_init__(self) -> None:
        if self.window_batches is not None and self.window_batches <= 0:
            raise ScheduleError("window_batches must be positive (or None)")


@dataclass
class _ActiveJob:
    """Orchestrator-side state of one admitted job."""

    serve_job: ServeJob
    batches: list[list[Sample]]
    record: JobRecord
    next_batch: int = 0  # first not-yet-scheduled global batch
    steps_completed: int = 0

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def fully_scheduled(self) -> bool:
        return self.next_batch >= self.num_batches

    @property
    def finished(self) -> bool:
        return self.steps_completed >= self.num_batches


@dataclass(frozen=True)
class MigrationTicket:
    """A job in transit between two orchestrators (pipeline replicas).

    Produced by :meth:`OnlineOrchestrator.eject_job` and consumed by
    :meth:`OnlineOrchestrator.inject_job`.  A still-pending job travels
    without executor state (``payload is None``); an admitted job carries
    the opaque :meth:`~repro.serve.executors.Executor.export_job` payload
    that lets the destination executor continue it losslessly.

    Attributes:
        job: The serve job being moved (full dataset view).
        record: The job's lifecycle record, moved along with it.
        completed: Optimizer steps already taken when ejected.
        payload: Executor state snapshot (``None`` for pending jobs).
    """

    job: ServeJob
    record: JobRecord
    completed: int
    payload: object | None = None

    @property
    def adapter_id(self) -> int:
        """The migrating job's adapter identity."""
        return self.job.adapter_id


class OnlineOrchestrator:
    """Serves a stream of fine-tuning jobs on one executor.

    The orchestrator can be driven two ways: :meth:`run` serves a whole
    workload to completion (the single-pipeline path), or a coordinator
    such as :class:`~repro.serve.replicaset.ReplicaSet` calls
    :meth:`start` once and then interleaves :meth:`offer` (routed
    arrivals), :meth:`step` (one serving-loop iteration), and
    :meth:`eject_job`/:meth:`inject_job` (migration), finishing with
    :meth:`finish`.

    Args:
        executor: Execution backend (numeric engine or pipeline
            simulator).
        config: Orchestrator tunables.
        replica_id: Identity stamped onto every executed microbatch
            (:attr:`~repro.scheduler.types.Microbatch.replica`) so merged
            multi-replica traces stay attributable.
    """

    def __init__(
        self,
        executor: Executor,
        config: OrchestratorConfig,
        replica_id: int = 0,
    ) -> None:
        self.executor = executor
        self.config = config
        self.replica_id = replica_id
        self.stream: list[Microbatch] = []
        self._splicer = StreamSplicer(config.scheduler.num_stages)
        self._pending: list[ServeJob] = []
        self._active: dict[int, _ActiveJob] = {}
        self._records: dict[int, JobRecord] = {}
        self._replans = 0
        self._stats: dict[str, float] = {key: 0.0 for key in _ACCUMULATED_STATS}
        self._slot_budget = (
            config.admission.max_concurrent()
            if config.admission is not None else None
        )
        self._started = False

    # -- lifecycle ----------------------------------------------------------

    def _admit_ready(self) -> int:
        """Admit due arrivals while adapter slots are free."""
        admitted = 0
        while self._pending:
            job = self._pending[0]
            if job.arrival_time > self.executor.clock:
                break
            if (self._slot_budget is not None
                    and len(self._active) >= self._slot_budget):
                break
            self._pending.pop(0)
            record = self._records[job.adapter_id]
            record.admit_time = self.executor.clock
            self.executor.add_job(job)
            self._active[job.adapter_id] = _ActiveJob(
                serve_job=job,
                batches=job.job.dataset.global_batches(job.job.global_batch_size),
                record=record,
            )
            admitted += 1
        return admitted

    def _retire(self, adapter_id: int) -> None:
        self.executor.remove_job(adapter_id)
        self._splicer.retire(adapter_id)
        del self._active[adapter_id]

    def _handle_events(self, events: list[StepEvent]) -> int:
        """Record optimizer-step completions; retire finished jobs."""
        retired = 0
        for event in events:
            state = self._active.get(event.adapter_id)
            if state is None:
                raise ScheduleError(
                    f"step event for unknown job {event.adapter_id}"
                )
            state.steps_completed += 1
            if state.finished:
                state.record.finish_time = event.time
                self._retire(event.adapter_id)
                retired += 1
        return retired

    # -- planning -----------------------------------------------------------

    def _window_job(self, state: _ActiveJob) -> AdapterJob:
        """The job's next window as an offset-carrying scheduler job."""
        window = self.config.window_batches
        end = (
            state.num_batches
            if window is None
            else min(state.num_batches, state.next_batch + window)
        )
        batches = state.batches[state.next_batch : end]
        source_job = state.serve_job.job
        dataset = FinetuneDataset(
            adapter_id=source_job.adapter_id,
            samples=[sample for batch in batches for sample in batch],
            source=source_job.dataset.source,
        )
        job = AdapterJob(
            adapter_id=source_job.adapter_id,
            dataset=dataset,
            global_batch_size=source_job.global_batch_size,
            batch_offset=state.next_batch,
        )
        state.next_batch = end
        return job

    def _plan_wave(self) -> list[Microbatch]:
        """Schedule the live jobs' next windows and splice the result."""
        wave_jobs = [
            self._window_job(state)
            for state in self._active.values()
            if not state.fully_scheduled
        ]
        scheduler = MultiLoRAScheduler(wave_jobs, self.config.scheduler)
        window = scheduler.assemble(scheduler.plan_step())
        for key in _ACCUMULATED_STATS:
            self._stats[key] += window.stats.get(key, 0.0)
        spliced = self._splicer.splice(window.microbatches, plan_id=self._replans)
        for mb in spliced:
            mb.replica = self.replica_id
        self._replans += 1
        return spliced

    def _execute(self, microbatches: list[Microbatch]) -> None:
        for mb in microbatches:
            if not mb.is_noop:
                for adapter_id in {a.adapter_id for a in mb.assignments}:
                    record = self._records[adapter_id]
                    if record.first_scheduled_time is None:
                        record.first_scheduled_time = self.executor.clock
            self.stream.append(mb)
            self._handle_events(self.executor.submit(mb))

    # -- the serving loop ---------------------------------------------------

    def start(self, workload: list[ServeJob] | None = None) -> None:
        """Open the serving session and enqueue an initial workload.

        A session is single-shot (stream and metric state are per-run);
        construct a fresh orchestrator to serve again.

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.
                May be empty when a coordinator routes arrivals in later
                via :meth:`offer`.

        Raises:
            ScheduleError: On double-start or duplicate adapter ids.
        """
        if self._started:
            raise ScheduleError(
                "OnlineOrchestrator is single-shot (stream and metric "
                "state are per-run); construct a fresh orchestrator"
            )
        self._started = True
        workload = list(workload or [])
        ids = [job.adapter_id for job in workload]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids in workload: {ids}")
        for job in workload:
            self.offer(job)

    def offer(self, job: ServeJob, record: JobRecord | None = None) -> JobRecord:
        """Enqueue one arriving job (a coordinator's routed arrival).

        Args:
            job: The arriving job; its adapter id must be new here.
            record: Lifecycle record to adopt (a rerouted job keeps its
                original arrival timestamp); a fresh one is created when
                omitted.

        Returns:
            The job's lifecycle record (created or adopted).

        Raises:
            ScheduleError: Before :meth:`start`, or on a duplicate id.
        """
        if not self._started:
            raise ScheduleError("offer() requires start() first")
        if job.adapter_id in self._records:
            raise ScheduleError(
                f"adapter id {job.adapter_id} already known to this "
                "orchestrator"
            )
        if record is None:
            record = JobRecord(
                adapter_id=job.adapter_id,
                arrival_time=job.arrival_time,
                num_batches=job.job.num_global_batches(),
                total_tokens=job.job.dataset.total_tokens(),
            )
        self._records[job.adapter_id] = record
        insort(self._pending, job,
               key=lambda item: (item.arrival_time, item.adapter_id))
        return record

    def has_work(self) -> bool:
        """Whether any job is still pending or actively training."""
        return bool(self._pending or self._active)

    def step(self) -> bool:
        """Advance the serving loop by one iteration.

        One iteration admits due arrivals and then either plans+executes
        one scheduling wave, or (with nothing left to plan) drains the
        pipeline and fast-forwards the clock to the next arrival.

        Returns:
            ``True`` while work remains, ``False`` once the session is
            idle (pending and active sets both empty).

        Raises:
            ScheduleError: If the loop cannot make progress (an executor
                dropped step events).
        """
        if not self.has_work():
            return False
        progressed = self._admit_ready() > 0
        if any(not s.fully_scheduled for s in self._active.values()):
            self._execute(self._plan_wave())
            return True
        # Nothing left to plan: flush in-flight work, then either the
        # freed slots admit waiting jobs or the clock jumps to the
        # next arrival.
        progressed |= self._handle_events(self.executor.drain()) > 0
        if not self._active and self._pending:
            next_arrival = self._pending[0].arrival_time
            if next_arrival > self.executor.clock:
                self.executor.advance(next_arrival)
                progressed = True
        if not progressed and self._active:
            raise ScheduleError(
                "orchestrator stalled: active jobs are fully scheduled "
                "but never completed (executor dropped step events?)"
            )
        return True

    def finish(self) -> OrchestratorResult:
        """Drain in-flight work and report the session's result."""
        self._handle_events(self.executor.drain())
        return self._result()

    def run(self, workload: list[ServeJob]) -> OrchestratorResult:
        """Serve ``workload`` to completion (the single-pipeline path).

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.

        Returns:
            Per-job latency records plus stream-level statistics.
        """
        self.start(workload)
        while self.step():
            pass
        return self.finish()

    # -- migration ----------------------------------------------------------

    def eject_job(self, adapter_id: int) -> MigrationTicket:
        """Hand a job off for migration to another replica.

        Pending jobs travel freely; admitted jobs are snapshotted via the
        executor's ``export_job`` and must sit at an optimizer-step
        boundary (every scheduled batch stepped), which is exactly the
        state between two :meth:`step` calls -- in-flight waves are never
        broken.

        Args:
            adapter_id: A pending or active (not finished) job.

        Returns:
            The ticket to pass to another orchestrator's
            :meth:`inject_job`.

        Raises:
            ScheduleError: For unknown jobs or a job mid-wave (scheduled
                batches not yet stepped).
        """
        state = self._active.get(adapter_id)
        if state is not None:
            if state.steps_completed != state.next_batch:
                raise ScheduleError(
                    f"job {adapter_id} has scheduled-but-unstepped batches; "
                    "migrate only between waves"
                )
            payload = self.executor.export_job(adapter_id)
            self.executor.remove_job(adapter_id)
            self._splicer.retire(adapter_id)
            del self._active[adapter_id]
            return MigrationTicket(
                job=state.serve_job,
                record=self._records.pop(adapter_id),
                completed=state.steps_completed,
                payload=payload,
            )
        for index, job in enumerate(self._pending):
            if job.adapter_id == adapter_id:
                self._pending.pop(index)
                return MigrationTicket(
                    job=job,
                    record=self._records.pop(adapter_id),
                    completed=0,
                    payload=None,
                )
        raise ScheduleError(f"unknown job {adapter_id}")

    def inject_job(self, ticket: MigrationTicket) -> None:
        """Accept a migrated job from another replica.

        A pending ticket queues like a fresh arrival (keeping its original
        record, hence its original arrival time); an admitted ticket is
        restored onto the executor and resumes as an active job at its
        next global batch.

        Args:
            ticket: A ticket from another orchestrator's
                :meth:`eject_job`.

        Raises:
            ScheduleError: Before :meth:`start`, on a duplicate id, or
                when an admitted ticket arrives with no free adapter
                slot (the admission budget holds across migration too).
        """
        if not self._started:
            raise ScheduleError("inject_job() requires start() first")
        aid = ticket.adapter_id
        if aid in self._records:
            raise ScheduleError(
                f"adapter id {aid} already known to this orchestrator"
            )
        if ticket.payload is None:
            self.offer(ticket.job, record=ticket.record)
            return
        if self.slots_free == 0:
            raise ScheduleError(
                f"cannot inject job {aid}: no free adapter slot on this "
                "replica (admission budget applies to migrations too)"
            )
        self._records[aid] = ticket.record
        self.executor.import_job(ticket.job, ticket.payload)
        self._active[aid] = _ActiveJob(
            serve_job=ticket.job,
            batches=ticket.job.job.dataset.global_batches(
                ticket.job.job.global_batch_size
            ),
            record=ticket.record,
            next_batch=ticket.completed,
            steps_completed=ticket.completed,
        )

    # -- load introspection (router/rebalancer inputs) ----------------------

    @property
    def clock(self) -> float:
        """The executor's current virtual time."""
        return self.executor.clock

    @property
    def num_active(self) -> int:
        """Jobs currently holding adapter slots."""
        return len(self._active)

    @property
    def num_pending(self) -> int:
        """Jobs queued for a slot (or not yet due)."""
        return len(self._pending)

    @property
    def slots_free(self) -> int | None:
        """Free adapter slots (``None`` under unbounded admission)."""
        if self._slot_budget is None:
            return None
        return max(0, self._slot_budget - len(self._active))

    def outstanding_batches(self) -> int:
        """Not-yet-stepped global batches across pending and active jobs.

        This is the load measure routing and rebalancing compare across
        replicas: the work this pipeline still owes its tenants.
        """
        active = sum(
            state.num_batches - state.steps_completed
            for state in self._active.values()
        )
        pending = sum(job.job.num_global_batches() for job in self._pending)
        return active + pending

    def live_mean_lengths(self) -> list[float]:
        """Mean sample length of each active job (packing-affinity input)."""
        return [
            state.serve_job.job.mean_length()
            for state in self._active.values()
        ]

    def migratable_jobs(self) -> list[tuple[int, int, bool]]:
        """Jobs a rebalancer may move right now.

        Returns:
            ``(adapter_id, remaining_batches, is_pending)`` tuples:
            every pending job, plus every active unfinished job sitting
            at a wave boundary.
        """
        candidates = [
            (job.adapter_id, job.job.num_global_batches(), True)
            for job in self._pending
        ]
        for aid, state in self._active.items():
            if state.finished or state.steps_completed != state.next_batch:
                continue
            candidates.append(
                (aid, state.num_batches - state.steps_completed, False)
            )
        return candidates

    # -- reporting ----------------------------------------------------------

    def _result(self) -> OrchestratorResult:
        violations = find_violations(
            self.stream, self.config.scheduler.num_stages
        )
        return OrchestratorResult(
            records=self._records,
            makespan=self.executor.clock,
            total_tokens=sum(mb.real_tokens for mb in self.stream),
            total_microbatches=len(self.stream),
            noop_microbatches=sum(1 for mb in self.stream if mb.is_noop),
            replans=self._replans,
            splice_noops=self._splicer.noops_inserted,
            utilization=self.executor.utilization(),
            violations=len(violations),
            stats=dict(self._stats),
        )

    def stream_schedule(self) -> Schedule:
        """The full spliced stream as a dumpable :class:`Schedule`."""
        return Schedule(
            microbatches=list(self.stream),
            num_stages=self.config.scheduler.num_stages,
            stats={"replans": float(self._replans)},
        )
