"""The online multi-tenant orchestrator: continuous job serving.

The offline pipeline (schedule everything, then execute) assumes all jobs
are known upfront.  Production multi-tenant traffic is a stream: jobs
arrive over time, hold an adapter slot while training, and retire.  The
orchestrator closes that gap with an incremental schedule->splice->execute
loop over any :class:`~repro.serve.executors.Executor`:

1. **Admit** arrivals against the admission policy's adapter-slot budget
   (memory-derived or fixed), in the order the configured
   :class:`~repro.serve.ordering.OrderingPolicy` ranks them (FCFS,
   SRPT, priority classes, or earliest deadline first).  A preemptive
   policy may also *evict* a running job for a strictly better-ranked
   candidate: the victim's executor state is exported at an
   optimizer-step boundary and parked, and it re-enters the candidate
   pool with its progress intact -- losslessly.
2. **Plan a wave**: window each live job to its next ``window_batches``
   global batches (``batch_offset`` keeps optimizer-step indices
   absolute) and run the two-phase scheduler
   (:meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.plan_step` +
   :meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.assemble`) over
   live jobs only.
3. **Splice** the window into the in-flight stream: the
   :class:`~repro.serve.splice.StreamSplicer` inserts junction no-ops so
   the concatenated stream never violates the bubble lemma.
4. **Execute** the spliced microbatches; optimizer-step events update
   per-job records, and jobs whose final batch stepped retire
   immediately, freeing their slot for the next arrival.  With
   ``mid_wave_admission`` on, an urgent arrival (one the policy would
   admit or promote right now) cuts the wave at the next
   whole-global-batch point instead of waiting for the wave boundary:
   the pipeline flushes, the unsubmitted tail returns to the planning
   horizon, and the next wave includes the newcomer.

When every live job is fully scheduled but pipeline work is still in
flight (or pending jobs wait on slots), the executor drains -- a pipeline
flush -- and the loop resumes with the freed slots.  Losslessness holds
throughout: window scheduling never reorders samples across global-batch
boundaries, the splicer preserves update ordering, and preemption only
moves state at optimizer-step boundaries, so a job served under churn --
even evicted and resumed -- trains exactly as it would alone.
"""

from __future__ import annotations

import inspect
from bisect import insort
from collections import Counter
from dataclasses import dataclass

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler.bubble import find_violations
from repro.scheduler.grouping import StickyGrouper
from repro.scheduler.scheduler import MultiLoRAScheduler, SchedulerConfig
from repro.scheduler.types import AdapterJob, Microbatch, Schedule
from repro.serve.admission import AdmissionPolicy
from repro.serve.costing import CostEstimator, TenantProfile
from repro.serve.executors import Executor, StepEvent
from repro.serve.jobs import ServeJob
from repro.serve.metrics import JobRecord, OrchestratorResult
from repro.serve.ordering import (
    FCFSOrdering,
    JobView,
    OrderingPolicy,
    policy_keys,
    validate_policy,
)
from repro.serve.splice import StreamSplicer

__all__ = [
    "AdaptiveWindowConfig",
    "OrchestratorConfig",
    "MigrationTicket",
    "OnlineOrchestrator",
]

#: Wave-assembly schemes the orchestrator accepts: ``"arrival"``
#: recomputes head-tail groups per wave from arrival order (the
#: original behavior); ``"knapsack"`` assembles waves from sticky
#: token-mass knapsack groups
#: (:func:`~repro.scheduler.grouping.knapsack_groups` layouts pinned by
#: :class:`~repro.scheduler.grouping.StickyGrouper`).
_PACKING_MODES = ("arrival", "knapsack")

#: Cap on the merge discount folded into wave pricing: the merge pass
#: can at most halve a pair of microbatches, and pricing more than half
#: the steady-state bound away would let one lucky wave undercut the
#: serialization floor's protection.
_MAX_MERGE_DISCOUNT = 0.5

#: Window scheduler stats accumulated across waves into the result stats.
_ACCUMULATED_STATS = ("merges", "noops_inserted", "milp_selected", "packing_tasks")


@dataclass(frozen=True)
class AdaptiveWindowConfig:
    """The adaptive ``window_batches`` control loop.

    The window is the responsiveness/packing-quality dial: small windows
    let arrivals join (and retirements free slots) quickly but pay more
    replans and junction no-ops; large windows pack better.  No static
    value suits both a churning and a stable tenant set, so this loop
    adapts it between waves:

    * **Shrink under churn** -- any live-set change since the last wave
      (admission, retirement, preemption, rejection, migration, wave
      cut) halves the window down to ``min_batches``: the plan went
      stale, keep the next one short.
    * **Grow when stable** -- a wave with no churn grows the window by
      one up to ``max_batches``: the tenant set is settled, buy packing
      quality.
    * **Cap by expected wave time** -- with ``target_wave_seconds`` set
      (and the orchestrator carrying a
      :class:`~repro.serve.costing.CostEstimator`), the window also
      shrinks until the *predicted* wave time fits the target, so a
      wave never locks the pipeline beyond the responsiveness budget no
      matter how heavy the live tenants are.

    Attributes:
        min_batches: Window floor (>= 1).
        max_batches: Window ceiling (>= ``min_batches``).
        target_wave_seconds: Estimator-priced upper bound on one wave's
            expected execution seconds (``None`` = no time cap).
    """

    min_batches: int = 1
    max_batches: int = 8
    target_wave_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.min_batches <= 0:
            raise ScheduleError("min_batches must be positive")
        if self.max_batches < self.min_batches:
            raise ScheduleError("max_batches must be >= min_batches")
        if self.target_wave_seconds is not None and self.target_wave_seconds <= 0:
            raise ScheduleError("target_wave_seconds must be positive")


@dataclass(frozen=True)
class OrchestratorConfig:
    """Tunables of the online orchestrator.

    Attributes:
        scheduler: Per-wave scheduler configuration (capacity, stages,
            MILP/merge switches...).
        window_batches: Global batches per job per planning wave; ``None``
            schedules each job's whole remaining horizon in one wave
            (with all arrivals at time 0 this is the offline oracle).
            With ``adaptive_window`` set this is the *starting* window.
        admission: Adapter-slot policy; ``None`` admits unboundedly.  A
            :class:`~repro.serve.admission.DeadlineFeasibilityAdmission`
            additionally sheds due candidates whose deadline is no
            longer feasible (requires ``estimator``).
        ordering: Slot-candidate ranking (and preemption) policy;
            ``None`` is FCFS, the original arrival-order behavior.
        mid_wave_admission: Let an urgent arrival cut the running wave
            at the next whole-global-batch point (paying a pipeline
            flush) instead of waiting for the wave boundary.  Off by
            default: under steady traffic the flush bubbles cost more
            than the queueing they save.
        estimator: Cost estimator pricing candidates and waves in
            expected seconds.  When set, ordering policies see
            :attr:`~repro.serve.ordering.JobView.remaining_seconds`,
            per-wave predicted/observed calibration pairs are recorded
            (:attr:`~repro.serve.metrics.OrchestratorResult.wave_estimates`),
            and the replica exposes seconds-valued load to routing.
            Meaningful with cost-model-clocked executors
            (:class:`~repro.serve.executors.StreamingSimExecutor`); the
            numeric executor's token clock is a different unit.
        adaptive_window: Enable the window control loop (see
            :class:`AdaptiveWindowConfig`); ``None`` keeps the static
            ``window_batches``.
        packing: Wave-assembly scheme: ``"arrival"`` (default) rebuilds
            head-tail groups per wave from arrival order; ``"knapsack"``
            assembles waves from sticky token-mass knapsack groups, adds
            a length-interleaving tie-breaker to admission (when the
            admission policy exposes ``interleave_key`` and an estimator
            is set), and folds the observed merge fraction into wave
            pricing as a ``merge_discount``.
    """

    scheduler: SchedulerConfig
    window_batches: int | None = 2
    admission: AdmissionPolicy | None = None
    ordering: OrderingPolicy | None = None
    mid_wave_admission: bool = False
    estimator: CostEstimator | None = None
    adaptive_window: AdaptiveWindowConfig | None = None
    packing: str = "arrival"

    def __post_init__(self) -> None:
        if self.window_batches is not None and self.window_batches <= 0:
            raise ScheduleError("window_batches must be positive (or None)")
        if self.packing not in _PACKING_MODES:
            raise ScheduleError(
                f"unknown packing mode {self.packing!r}; "
                f"expected one of {_PACKING_MODES}"
            )
        if self.ordering is not None:
            validate_policy(self.ordering)
        if self.adaptive_window is not None and self.window_batches is None:
            raise ScheduleError(
                "adaptive_window needs a finite starting window_batches"
            )
        if (
            self.adaptive_window is not None
            and self.adaptive_window.target_wave_seconds is not None
            and self.estimator is None
        ):
            raise ScheduleError(
                "target_wave_seconds requires an estimator to price waves"
            )
        if hasattr(self.admission, "feasible") and self.estimator is None:
            raise ScheduleError(
                "deadline-feasibility admission requires an estimator to "
                "price remaining time"
            )


@dataclass
class _ActiveJob:
    """Orchestrator-side state of one admitted job."""

    serve_job: ServeJob
    batches: list[list[Sample]]
    record: JobRecord
    next_batch: int = 0  # first not-yet-scheduled global batch
    steps_completed: int = 0

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def fully_scheduled(self) -> bool:
        return self.next_batch >= self.num_batches

    @property
    def finished(self) -> bool:
        return self.steps_completed >= self.num_batches


@dataclass
class _ParkedJob:
    """A preempted job waiting (with its exported state) for a slot."""

    serve_job: ServeJob
    payload: object
    completed: int  # optimizer steps banked before eviction


@dataclass(frozen=True)
class MigrationTicket:
    """A job in transit between two orchestrators (pipeline replicas).

    Produced by :meth:`OnlineOrchestrator.eject_job` and consumed by
    :meth:`OnlineOrchestrator.inject_job`.  A still-pending job travels
    without executor state (``payload is None``); an admitted or parked
    (preempted) job carries the opaque
    :meth:`~repro.serve.executors.Executor.export_job` payload that lets
    the destination executor continue it losslessly.

    Attributes:
        job: The serve job being moved (full dataset view).
        record: The job's lifecycle record, moved along with it.
        completed: Optimizer steps already taken when ejected.
        payload: Executor state snapshot (``None`` for pending jobs).
    """

    job: ServeJob
    record: JobRecord
    completed: int
    payload: object | None = None

    @property
    def adapter_id(self) -> int:
        """The migrating job's adapter identity."""
        return self.job.adapter_id


class OnlineOrchestrator:
    """Serves a stream of fine-tuning jobs on one executor.

    The orchestrator can be driven two ways: :meth:`run` serves a whole
    workload to completion (the single-pipeline path), or a coordinator
    such as :class:`~repro.serve.replicaset.ReplicaSet` calls
    :meth:`start` once and then interleaves :meth:`offer` (routed
    arrivals), :meth:`step` (one serving-loop iteration), and
    :meth:`eject_job`/:meth:`inject_job` (migration), finishing with
    :meth:`finish`.

    Args:
        executor: Execution backend (numeric engine or pipeline
            simulator).
        config: Orchestrator tunables.
        replica_id: Identity stamped onto every executed microbatch
            (:attr:`~repro.scheduler.types.Microbatch.replica`) so merged
            multi-replica traces stay attributable.
    """

    def __init__(
        self,
        executor: Executor,
        config: OrchestratorConfig,
        replica_id: int = 0,
    ) -> None:
        self.executor = executor
        self.config = config
        self.replica_id = replica_id
        self.stream: list[Microbatch] = []
        self._splicer = StreamSplicer(config.scheduler.num_stages)
        self._policy: OrderingPolicy = config.ordering or FCFSOrdering()
        self._estimator: CostEstimator | None = config.estimator
        self._pending: list[ServeJob] = []
        self._parked: dict[int, _ParkedJob] = {}
        self._active: dict[int, _ActiveJob] = {}
        self._records: dict[int, JobRecord] = {}
        self._replans = 0
        self._preemptions = 0
        self._wave_cuts = 0
        self._stats: dict[str, float] = {key: 0.0 for key in _ACCUMULATED_STATS}
        # Knapsack-mode state: the sticky grouper pins group layouts per
        # live-set membership, and the merge/planned microbatch counters
        # feed the merge discount folded into wave pricing.
        self._grouper = (
            StickyGrouper() if config.packing == "knapsack" else None
        )
        self._merged_mbs = 0.0
        self._planned_mbs = 0.0
        # Admission interleave hook, resolved once like the gate: only
        # knapsack mode with an estimator consults it, and only when the
        # admission policy exposes it.
        self._interleave = (
            getattr(config.admission, "interleave_key", None)
            if self._grouper is not None and config.estimator is not None
            else None
        )
        self._slot_budget = (
            config.admission.max_concurrent()
            if config.admission is not None
            else None
        )
        # Feasibility-gate dispatch, resolved once (the gate is fixed at
        # construction): the backlog is part of the gate protocol -- any
        # feasible() that *accepts* a third parameter receives the
        # replica's expected wave backlog (the shipped gate charges it
        # only when its queueing_aware flag is on); legacy two-argument
        # gates keep working unchanged.
        self._gate = getattr(config.admission, "feasible", None)
        if self._gate is None:
            self._gate_takes_backlog = False
        else:
            try:
                self._gate_takes_backlog = (
                    len(inspect.signature(self._gate).parameters) >= 3
                )
            except (TypeError, ValueError):
                self._gate_takes_backlog = False
        self._started = False
        # Adaptive window state: the live window starts at the configured
        # value (clamped into the adaptive band) and churn since the last
        # wave drives shrink/grow decisions in _next_window.
        self._window = config.window_batches
        if config.adaptive_window is not None and self._window is not None:
            adaptive = config.adaptive_window
            self._window = min(
                adaptive.max_batches, max(adaptive.min_batches, self._window)
            )
        self._churn = 0
        # Calibration state: predicted seconds of the wave in flight, the
        # clock it started at, the idle time already accumulated, and the
        # tenants the wave serves -- observed time is clock delta minus
        # idle fast-forwards, finalized when the next wave starts (so
        # pipeline-tail spillover is attributed, approximately, to the
        # wave that caused it).  The tenant set feeds the estimator's
        # CalibrationTracker, when one is attached.
        self._idle_advanced = 0.0
        self._open_wave: tuple[float, float, float, tuple[int, ...]] | None = None
        self._wave_estimates: list[tuple[float, float]] = []

    # -- candidate ranking ---------------------------------------------------

    def _remaining_seconds(self, job: AdapterJob, batches: int) -> float | None:
        """Expected service seconds for ``batches`` more of ``job``."""
        if self._estimator is None:
            return None
        return self._estimator.job_seconds(job, batches, replica=self.replica_id)

    def _view(self, job: ServeJob, remaining: int, admitted: bool) -> JobView:
        return JobView(
            adapter_id=job.adapter_id,
            arrival_time=job.arrival_time,
            priority=job.priority,
            deadline=job.deadline,
            remaining_batches=remaining,
            admitted=admitted,
            remaining_seconds=self._remaining_seconds(job.job, remaining),
        )

    def _pending_view(self, job: ServeJob) -> JobView:
        return self._view(job, job.job.num_global_batches(), admitted=False)

    def _parked_view(self, parked: _ParkedJob) -> JobView:
        job = parked.serve_job
        remaining = job.job.num_global_batches() - parked.completed
        return self._view(job, remaining, admitted=False)

    def _active_view(self, state: _ActiveJob) -> JobView:
        remaining = state.num_batches - state.steps_completed
        return self._view(state.serve_job, remaining, admitted=True)

    def _due_candidates(self) -> list[tuple[tuple[float, ...], int]]:
        """Every job eligible for a slot now, best policy rank first.

        Candidates are due pending arrivals plus every parked
        (preempted) job; the returned pairs are ``(policy key,
        adapter id)``, sorted so index 0 is the next job to admit.
        The whole set is ranked in one :func:`~repro.serve.ordering
        .policy_keys` call -- vectorized for the shipped policies,
        per-job for custom ones -- with keys identical to the scalar
        path.

        In knapsack mode, when the admission policy exposes
        ``interleave_key`` (and an estimator is set), candidates the
        policy ranks *equal* are further ordered by how tightly their
        length profile packs with the live set's -- the policy's own
        ranking is never overridden, only its ties are broken by
        predicted post-pack waste before the adapter-id fallback.
        """
        now = self.executor.clock
        views: list[JobView] = []
        jobs: list[AdapterJob] = []
        for job in self._pending:
            if job.arrival_time > now:
                break  # _pending is arrival-sorted
            views.append(self._pending_view(job))
            jobs.append(job.job)
        for parked in self._parked.values():
            views.append(self._parked_view(parked))
            jobs.append(parked.serve_job.job)
        keys = policy_keys(self._policy, views, now)
        if self._interleave is None:
            return sorted(
                (key, view.adapter_id) for key, view in zip(keys, views)
            )
        # Live profiles in adapter-id order: pack_fragmentation sums
        # floats, and a deterministic summand order keeps the bias (and
        # therefore admission order) replay-identical across kernels.
        live = tuple(
            TenantProfile.from_job(self._active[aid].serve_job.job)
            for aid in sorted(self._active)
        )
        ranked = sorted(
            (
                key,
                self._interleave(
                    TenantProfile.from_job(job), live, self._estimator
                ),
                view.adapter_id,
            )
            for key, view, job in zip(keys, views, jobs)
        )
        return [(key, aid) for key, _bias, aid in ranked]

    def _preemption_victim(self, key: tuple[float, ...]) -> int | None:
        """The active job a candidate ranked ``key`` may evict.

        The worst-ranked (largest-key) active job, and only when the
        candidate strictly outranks it -- ties never preempt, which is
        what makes eviction/park/resume cycles terminate.
        """
        now = self.executor.clock
        worst: tuple[tuple[float, ...], int] | None = None
        for adapter_id, state in self._active.items():
            victim_key = self._policy.key(self._active_view(state), now)
            if victim_key > key and (worst is None or victim_key > worst[0]):
                worst = (victim_key, adapter_id)
        return None if worst is None else worst[1]

    def _shed_doomed(self) -> None:
        """Reject due candidates whose deadline is no longer feasible.

        Only with a :class:`~repro.serve.admission
        .DeadlineFeasibilityAdmission` gate: each due pending arrival is
        priced (expected remaining seconds vs time-to-deadline) and
        doomed ones move to the terminal ``rejected`` state instead of
        taking a slot.  Waiting candidates are re-evaluated every pass,
        so a job that becomes infeasible while queueing is shed then.
        With a ``queueing_aware`` gate the candidate is additionally
        charged this replica's expected wave-time backlog (the planned
        work ahead of it), shedding doomed-under-load work at arrival.
        Parked (preempted) jobs are never shed -- their banked progress
        already cost pipeline time, and eviction is the policy's call,
        not admission's.
        """
        gate = self._gate
        if gate is None:
            return
        now = self.executor.clock
        takes_backlog = self._gate_takes_backlog
        # Skip pricing the backlog when the gate would zero it anyway.
        wants_backlog = takes_backlog and bool(
            getattr(self.config.admission, "queueing_aware", True)
        )
        backlog = (self.expected_wave_seconds() or 0.0) if wants_backlog else 0.0

        def feasible(view: JobView) -> bool:
            if takes_backlog:
                return bool(gate(view, now, backlog))
            return bool(gate(view, now))

        survivors: list[ServeJob] = []
        for job in self._pending:
            if job.arrival_time <= now and not feasible(self._pending_view(job)):
                self._records[job.adapter_id].rejected_time = now
                self._churn += 1
            else:
                survivors.append(job)
        self._pending = survivors

    # -- lifecycle -----------------------------------------------------------

    def _admit(self, adapter_id: int) -> None:
        """Give ``adapter_id`` (pending or parked) an adapter slot."""
        self._churn += 1
        record = self._records[adapter_id]
        parked = self._parked.pop(adapter_id, None)
        if parked is not None:
            self.executor.import_job(parked.serve_job, parked.payload)
            self._active[adapter_id] = _ActiveJob(
                serve_job=parked.serve_job,
                batches=parked.serve_job.job.dataset.global_batches(
                    parked.serve_job.job.global_batch_size
                ),
                record=record,
                next_batch=parked.completed,
                steps_completed=parked.completed,
            )
            return
        index = next(
            i
            for i, job in enumerate(self._pending)
            if job.adapter_id == adapter_id
        )
        job = self._pending.pop(index)
        if record.admit_time is None:
            record.admit_time = self.executor.clock
        self.executor.add_job(job)
        self._active[adapter_id] = _ActiveJob(
            serve_job=job,
            batches=job.job.dataset.global_batches(job.job.global_batch_size),
            record=record,
        )

    def _preempt(self, adapter_id: int) -> None:
        """Evict an active job (at a step boundary) and park its state."""
        state = self._active[adapter_id]
        payload = self.executor.export_job(adapter_id)
        self.executor.remove_job(adapter_id)
        # The splicer's position bookkeeping is NOT retired: the job
        # resumes on this same stream, and its next batch must still be
        # spaced against the last one it trained here.
        del self._active[adapter_id]
        self._parked[adapter_id] = _ParkedJob(
            serve_job=state.serve_job,
            payload=payload,
            completed=state.steps_completed,
        )
        state.record.preemptions += 1
        self._preemptions += 1
        self._churn += 1

    def _admit_ready(self) -> int:
        """Admit due candidates in policy order; preempt where allowed.

        Runs until the best-ranked candidate can neither take a free
        slot nor (under a preemptive policy) evict a strictly
        worse-ranked active job.  Eviction requires every active job to
        sit at an optimizer-step boundary; when the pipeline is mid
        flight the orchestrator pays a flush first -- which may retire
        jobs and free the slot outright, so the loop re-evaluates after
        draining rather than evicting blindly.
        """
        self._shed_doomed()
        admitted = 0
        while True:
            candidates = self._due_candidates()
            if not candidates:
                break
            if self._slot_budget is None or len(self._active) < self._slot_budget:
                self._admit(candidates[0][1])
                admitted += 1
                continue
            if not self._policy.preemptive:
                break
            victim = self._preemption_victim(candidates[0][0])
            if victim is None:
                break
            if any(s.steps_completed != s.next_batch for s in self._active.values()):
                self._handle_events(self.executor.drain())
                continue
            self._preempt(victim)
        return admitted

    def _retire(self, adapter_id: int) -> None:
        self.executor.remove_job(adapter_id)
        self._splicer.retire(adapter_id)
        del self._active[adapter_id]
        self._churn += 1

    def _handle_events(self, events: list[StepEvent]) -> int:
        """Record optimizer-step completions; retire finished jobs."""
        retired = 0
        for event in events:
            state = self._active.get(event.adapter_id)
            if state is None:
                raise ScheduleError(f"step event for unknown job {event.adapter_id}")
            state.steps_completed += 1
            if state.finished:
                state.record.finish_time = event.time
                self._retire(event.adapter_id)
                retired += 1
        return retired

    # -- planning ------------------------------------------------------------

    def _next_window(self) -> int | None:
        """The window for the next wave, adapted to churn and wave cost.

        Static without :attr:`OrchestratorConfig.adaptive_window`.
        Otherwise: churn since the last wave halves the window (stale
        plans should be short), a churn-free wave grows it by one
        (stable tenant sets deserve packing quality), and -- with an
        estimator and a ``target_wave_seconds`` -- the window shrinks
        until the predicted wave time fits the responsiveness budget.
        """
        adaptive = self.config.adaptive_window
        if adaptive is None:
            return self.config.window_batches
        window = self._window if self._window is not None else adaptive.max_batches
        if self._replans == 0:
            # First wave: the configured window really is the starting
            # point -- initial admissions are arrivals, not a plan gone
            # stale, so they must not pre-shrink it.
            pass
        elif self._churn:
            window = max(adaptive.min_batches, window // 2)
        else:
            window = min(adaptive.max_batches, window + 1)
        self._churn = 0
        if adaptive.target_wave_seconds is not None and self._estimator is not None:
            while (
                window > adaptive.min_batches
                and self._wave_price(window) > adaptive.target_wave_seconds
            ):
                window -= 1
        self._window = window
        return window

    def _wave_entries(self, window: int | None) -> list[tuple[TenantProfile, int]]:
        """Estimator pricing entries for the next wave at ``window``."""
        entries = []
        for state in self._active.values():
            remaining = state.num_batches - state.next_batch
            if remaining <= 0:
                continue
            batches = remaining if window is None else min(window, remaining)
            entries.append((TenantProfile.from_job(state.serve_job.job), batches))
        return entries

    def _merge_discount(self) -> float:
        """The merge fraction folded into wave pricing (knapsack mode).

        The observed fraction of planned microbatches the merge pass has
        eliminated so far, capped at ``_MAX_MERGE_DISCOUNT``.  Only
        meaningful when groups are sticky -- a stable layout makes past
        merge luck predictive of the next wave's -- so it is 0.0 in
        arrival mode.  Also 0.0 with fewer than two live jobs: merging
        needs a head-tail pair, and keeping single-tenant waves
        undiscounted preserves the exact pricing identity the
        autotuner's single-tenant packing collapse relies on.
        """
        if self._grouper is None or len(self._active) < 2:
            return 0.0
        if self._planned_mbs <= 0:
            return 0.0
        return min(_MAX_MERGE_DISCOUNT, self._merged_mbs / self._planned_mbs)

    def _wave_price(self, window: int | None) -> float:
        """The estimator's price for the next wave (discount folded in)."""
        return self._estimator.wave_seconds(
            self._wave_entries(window),
            replica=self.replica_id,
            merge_discount=self._merge_discount(),
        )

    def _close_wave_estimate(self) -> None:
        """Finalize the in-flight wave's predicted/observed pair.

        Observed time is the executor-clock delta since the wave was
        submitted, minus idle fast-forwards -- so it covers the wave's
        execution plus however much of its pipeline tail drained before
        the next wave (the drain the wave itself caused).  With a
        :class:`~repro.serve.costing.CalibrationTracker` attached to the
        estimator, the pair is also folded into the per-tenant and
        per-replica correction factors -- the feedback step that lets
        future prices absorb this wave's error.
        """
        if self._open_wave is None:
            return
        predicted, start_clock, idle_start, tenants = self._open_wave
        observed = (self.executor.clock - start_clock) - (
            self._idle_advanced - idle_start
        )
        observed = max(0.0, observed)
        self._wave_estimates.append((predicted, observed))
        self._open_wave = None
        if self._estimator is not None and self._estimator.calibration is not None:
            self._estimator.calibration.observe(
                predicted, observed, tenants=tenants, replica=self.replica_id
            )

    def _window_job(self, state: _ActiveJob, window: int | None) -> AdapterJob:
        """The job's next window as an offset-carrying scheduler job."""
        end = (
            state.num_batches
            if window is None
            else min(state.num_batches, state.next_batch + window)
        )
        batches = state.batches[state.next_batch : end]
        source_job = state.serve_job.job
        dataset = FinetuneDataset(
            adapter_id=source_job.adapter_id,
            samples=[sample for batch in batches for sample in batch],
            source=source_job.dataset.source,
        )
        job = AdapterJob(
            adapter_id=source_job.adapter_id,
            dataset=dataset,
            global_batch_size=source_job.global_batch_size,
            batch_offset=state.next_batch,
        )
        state.next_batch = end
        return job

    def _plan_wave(self) -> list[Microbatch]:
        """Schedule the live jobs' next windows and splice the result.

        In knapsack mode the wave is assembled from the sticky grouper's
        pinned layout -- :meth:`~repro.scheduler.scheduler
        .MultiLoRAScheduler.plan_step` packs the given groups instead of
        recomputing head-tail groups from the wave's arrival order --
        and the wave's merge/planned microbatch counts feed the merge
        discount future waves are priced with.
        """
        self._close_wave_estimate()
        window_size = self._next_window()
        predicted = (
            self._wave_price(window_size)
            if self._estimator is not None
            else None
        )
        wave_jobs = [
            self._window_job(state, window_size)
            for state in self._active.values()
            if not state.fully_scheduled
        ]
        scheduler = MultiLoRAScheduler(wave_jobs, self.config.scheduler)
        if self._grouper is not None:
            groups = self._grouper.groups_for(
                wave_jobs,
                capacity=self.config.scheduler.capacity,
                padding_multiple=self.config.scheduler.padding_multiple,
            )
            window = scheduler.assemble(scheduler.plan_step(groups=groups))
        else:
            window = scheduler.assemble(scheduler.plan_step())
        for key in _ACCUMULATED_STATS:
            self._stats[key] += window.stats.get(key, 0.0)
        # Merge fraction inputs: merges eliminated that many microbatches
        # from the pre-merge stream, so the pre-merge total is the
        # emitted count plus the merges.
        self._merged_mbs += window.stats.get("merges", 0.0)
        self._planned_mbs += len(window.microbatches) + window.stats.get(
            "merges", 0.0
        )
        spliced = self._splicer.splice(window.microbatches, plan_id=self._replans)
        for mb in spliced:
            mb.replica = self.replica_id
        self._replans += 1
        if predicted is not None:
            self._open_wave = (
                predicted,
                self.executor.clock,
                self._idle_advanced,
                tuple(job.adapter_id for job in wave_jobs),
            )
        return spliced

    def _urgent_candidate(self) -> bool:
        """Whether a due candidate warrants cutting the running wave.

        True when the best-ranked due candidate could act right now:
        either a slot is free (admission would succeed) or the policy is
        preemptive and the candidate strictly outranks an active job.
        Doomed arrivals are shed first -- a deadline-infeasible job must
        not buy a pipeline flush it can never use.
        """
        self._shed_doomed()
        candidates = self._due_candidates()
        if not candidates:
            return False
        if self._slot_budget is None or len(self._active) < self._slot_budget:
            return True
        if not self._policy.preemptive:
            return False
        return self._preemption_victim(candidates[0][0]) is not None

    def _cut_wave(self) -> None:
        """Abandon the wave's unsubmitted tail and flush the pipeline.

        Called only at a whole-global-batch point: every batch touched
        so far is fully submitted, so the flush steps them all and
        leaves every active job at an optimizer-step boundary.
        Rewinding ``next_batch`` to ``steps_completed`` returns the
        abandoned batches to the planning horizon, and the splicer
        forgets the phantom tail positions; the next :meth:`step`
        re-admits (possibly preempting) and replans with the urgent
        arrival included.
        """
        self._wave_cuts += 1
        self._churn += 1
        # A cut wave is not a calibration sample: its prediction covered
        # batches that were just rewound (and will be predicted again),
        # so recording (full prediction, partial observation) would bias
        # the ratio upward.
        self._open_wave = None
        self._handle_events(self.executor.drain())
        self._splicer.truncate(len(self.stream))
        for state in self._active.values():
            state.next_batch = state.steps_completed

    def _execute(self, microbatches: list[Microbatch]) -> None:
        interruptible = self.config.mid_wave_admission
        if interruptible:
            # Cut-point bookkeeping: a wave may only be cut where every
            # global batch touched so far is fully submitted.
            totals: Counter[tuple[int, int]] = Counter(
                (a.adapter_id, a.global_batch)
                for mb in microbatches
                for a in mb.assignments
            )
            last_real = max(
                (i for i, mb in enumerate(microbatches) if not mb.is_noop),
                default=-1,
            )
            seen: Counter[tuple[int, int]] = Counter()
            open_batches: set[tuple[int, int]] = set()
        for index, mb in enumerate(microbatches):
            if not mb.is_noop:
                for adapter_id in {a.adapter_id for a in mb.assignments}:
                    record = self._records[adapter_id]
                    if record.first_scheduled_time is None:
                        record.first_scheduled_time = self.executor.clock
            self.stream.append(mb)
            self._handle_events(self.executor.submit(mb))
            if not interruptible:
                continue
            for assignment in mb.assignments:
                key = (assignment.adapter_id, assignment.global_batch)
                seen[key] += 1
                if seen[key] == totals[key]:
                    open_batches.discard(key)
                else:
                    open_batches.add(key)
            if index < last_real and not open_batches and self._urgent_candidate():
                self._cut_wave()
                return

    # -- the serving loop ----------------------------------------------------

    def start(self, workload: list[ServeJob] | None = None) -> None:
        """Open the serving session and enqueue an initial workload.

        A session is single-shot (stream and metric state are per-run);
        construct a fresh orchestrator to serve again.

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.
                May be empty when a coordinator routes arrivals in later
                via :meth:`offer`.

        Raises:
            ScheduleError: On double-start or duplicate adapter ids.
        """
        if self._started:
            raise ScheduleError(
                "OnlineOrchestrator is single-shot (stream and metric "
                "state are per-run); construct a fresh orchestrator"
            )
        self._started = True
        workload = list(workload or [])
        ids = [job.adapter_id for job in workload]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids in workload: {ids}")
        for job in workload:
            self.offer(job)

    def offer(self, job: ServeJob, record: JobRecord | None = None) -> JobRecord:
        """Enqueue one arriving job (a coordinator's routed arrival).

        Args:
            job: The arriving job; its adapter id must be new here.
            record: Lifecycle record to adopt (a rerouted job keeps its
                original arrival timestamp); a fresh one is created when
                omitted.

        Returns:
            The job's lifecycle record (created or adopted).

        Raises:
            ScheduleError: Before :meth:`start`, or on a duplicate id.
        """
        if not self._started:
            raise ScheduleError("offer() requires start() first")
        if job.adapter_id in self._records:
            raise ScheduleError(
                f"adapter id {job.adapter_id} already known to this "
                "orchestrator"
            )
        if record is None:
            record = JobRecord(
                adapter_id=job.adapter_id,
                arrival_time=job.arrival_time,
                num_batches=job.job.num_global_batches(),
                total_tokens=job.job.dataset.total_tokens(),
                priority=job.priority,
                deadline=job.deadline,
            )
        self._records[job.adapter_id] = record
        insort(
            self._pending,
            job,
            key=lambda item: (item.arrival_time, item.adapter_id),
        )
        return record

    def has_work(self) -> bool:
        """Whether any job is still pending, parked, or actively training."""
        return bool(self._pending or self._parked or self._active)

    def step(self) -> bool:
        """Advance the serving loop by one iteration.

        One iteration admits due arrivals (preempting under a
        preemptive policy) and then either plans+executes one scheduling
        wave, or (with nothing left to plan) drains the pipeline and
        fast-forwards the clock to the next arrival.

        Returns:
            ``True`` while work remains, ``False`` once the session is
            idle (pending, parked, and active sets all empty).

        Raises:
            ScheduleError: If the loop cannot make progress (an executor
                dropped step events).
        """
        if not self.has_work():
            return False
        progressed = self._admit_ready() > 0
        if any(not s.fully_scheduled for s in self._active.values()):
            self._execute(self._plan_wave())
            return True
        # Nothing left to plan: flush in-flight work, then either the
        # freed slots admit waiting jobs or the clock jumps to the
        # next arrival.
        progressed |= self._handle_events(self.executor.drain()) > 0
        if not self._active and not self._parked and self._pending:
            next_arrival = self._pending[0].arrival_time
            if next_arrival > self.executor.clock:
                # Idle fast-forward: excluded from per-wave observed time
                # (it is waiting, not execution).
                self._idle_advanced += next_arrival - self.executor.clock
                self.executor.advance(next_arrival)
                progressed = True
        if not progressed and self._active:
            raise ScheduleError(
                "orchestrator stalled: active jobs are fully scheduled "
                "but never completed (executor dropped step events?)"
            )
        return True

    def finish(self) -> OrchestratorResult:
        """Drain in-flight work and report the session's result."""
        self._handle_events(self.executor.drain())
        self._close_wave_estimate()
        return self._result()

    def run(self, workload: list[ServeJob]) -> OrchestratorResult:
        """Serve ``workload`` to completion (the single-pipeline path).

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.

        Returns:
            Per-job latency records plus stream-level statistics.
        """
        self.start(workload)
        while self.step():
            pass
        return self.finish()

    # -- migration -----------------------------------------------------------

    def eject_job(self, adapter_id: int) -> MigrationTicket:
        """Hand a job off for migration to another replica.

        Pending jobs travel freely; parked (preempted) jobs travel with
        the state exported at eviction time; admitted jobs are
        snapshotted via the executor's ``export_job`` and must sit at an
        optimizer-step boundary (every scheduled batch stepped), which
        is exactly the state between two :meth:`step` calls -- in-flight
        waves are never broken.

        Args:
            adapter_id: A pending, parked, or active (not finished) job.

        Returns:
            The ticket to pass to another orchestrator's
            :meth:`inject_job`.

        Raises:
            ScheduleError: For unknown jobs or a job mid-wave (scheduled
                batches not yet stepped).
        """
        state = self._active.get(adapter_id)
        if state is not None:
            if state.steps_completed != state.next_batch:
                raise ScheduleError(
                    f"job {adapter_id} has scheduled-but-unstepped batches; "
                    "migrate only between waves"
                )
            self._churn += 1
            payload = self.executor.export_job(adapter_id)
            self.executor.remove_job(adapter_id)
            # Splicer positions are kept, not retired: a ticket may be
            # re-injected into THIS orchestrator (checkpoint/restore,
            # a bounce), and its next batch must still be spaced
            # against the last one it trained on this stream.  On a
            # true cross-replica move the entries are simply unused.
            del self._active[adapter_id]
            return MigrationTicket(
                job=state.serve_job,
                record=self._records.pop(adapter_id),
                completed=state.steps_completed,
                payload=payload,
            )
        parked = self._parked.pop(adapter_id, None)
        if parked is not None:
            self._churn += 1
            return MigrationTicket(
                job=parked.serve_job,
                record=self._records.pop(adapter_id),
                completed=parked.completed,
                payload=parked.payload,
            )
        for index, job in enumerate(self._pending):
            if job.adapter_id == adapter_id:
                self._pending.pop(index)
                self._churn += 1
                return MigrationTicket(
                    job=job,
                    record=self._records.pop(adapter_id),
                    completed=0,
                    payload=None,
                )
        raise ScheduleError(f"unknown job {adapter_id}")

    def inject_job(self, ticket: MigrationTicket) -> None:
        """Accept a migrated job from another replica.

        A pending ticket queues like a fresh arrival (keeping its original
        record, hence its original arrival time); a state-carrying ticket
        (admitted or parked on the source) is restored onto the executor
        and resumes as an active job at its next global batch.

        Args:
            ticket: A ticket from another orchestrator's
                :meth:`eject_job`.

        Raises:
            ScheduleError: Before :meth:`start`, on a duplicate id, or
                when an admitted ticket arrives with no free adapter
                slot (the admission budget holds across migration too).
        """
        if not self._started:
            raise ScheduleError("inject_job() requires start() first")
        aid = ticket.adapter_id
        if aid in self._records:
            raise ScheduleError(f"adapter id {aid} already known to this orchestrator")
        if ticket.payload is None:
            self.offer(ticket.job, record=ticket.record)
            return
        if self.slots_free == 0:
            raise ScheduleError(
                f"cannot inject job {aid}: no free adapter slot on this "
                "replica (admission budget applies to migrations too)"
            )
        self._churn += 1
        self._records[aid] = ticket.record
        self.executor.import_job(ticket.job, ticket.payload)
        self._active[aid] = _ActiveJob(
            serve_job=ticket.job,
            batches=ticket.job.job.dataset.global_batches(
                ticket.job.job.global_batch_size
            ),
            record=ticket.record,
            next_batch=ticket.completed,
            steps_completed=ticket.completed,
        )

    # -- load introspection (router/rebalancer inputs) -----------------------

    @property
    def clock(self) -> float:
        """The executor's current virtual time."""
        return self.executor.clock

    @property
    def num_active(self) -> int:
        """Jobs currently holding adapter slots."""
        return len(self._active)

    @property
    def num_pending(self) -> int:
        """Jobs queued for a slot (or not yet due)."""
        return len(self._pending)

    @property
    def num_parked(self) -> int:
        """Preempted jobs waiting (with exported state) to resume."""
        return len(self._parked)

    @property
    def slots_free(self) -> int | None:
        """Free adapter slots (``None`` under unbounded admission)."""
        if self._slot_budget is None:
            return None
        return max(0, self._slot_budget - len(self._active))

    def outstanding_batches(self) -> int:
        """Not-yet-stepped global batches across all unfinished jobs.

        This is the load measure routing and rebalancing compare across
        replicas: the work this pipeline still owes its tenants --
        active, parked, and pending alike.
        """
        active = sum(
            state.num_batches - state.steps_completed
            for state in self._active.values()
        )
        parked = sum(
            p.serve_job.job.num_global_batches() - p.completed
            for p in self._parked.values()
        )
        pending = sum(job.job.num_global_batches() for job in self._pending)
        return active + parked + pending

    @property
    def wave_estimates(self) -> list[tuple[float, float]]:
        """Per-wave ``(predicted, observed)`` seconds recorded so far.

        A copy of the live record
        (:attr:`~repro.serve.metrics.OrchestratorResult.wave_estimates`
        carries the final one); lets a coordinator or a demo watch
        calibration converge mid-run without touching private state.
        """
        return list(self._wave_estimates)

    @property
    def current_window(self) -> int | None:
        """The live planning window in global batches.

        Equals the static ``window_batches`` without adaptive windowing;
        under :class:`AdaptiveWindowConfig` it is the value the control
        loop last settled on (``None`` = whole-horizon waves).
        """
        if self.config.adaptive_window is not None:
            return self._window
        return self.config.window_batches

    def expected_remaining_seconds(self) -> float | None:
        """Expected service seconds this replica still owes (all jobs).

        The seconds-valued counterpart of :meth:`outstanding_batches`:
        every unfinished job -- active, parked (preempted), and pending
        alike -- is priced by the estimator at its remaining batches.
        ``None`` without an estimator.
        """
        if self._estimator is None:
            return None
        total = 0.0
        for state in self._active.values():
            remaining = state.num_batches - state.steps_completed
            total += self._remaining_seconds(state.serve_job.job, remaining) or 0.0
        for parked in self._parked.values():
            remaining = parked.serve_job.job.num_global_batches() - parked.completed
            total += self._remaining_seconds(parked.serve_job.job, remaining) or 0.0
        for job in self._pending:
            remaining = job.job.num_global_batches()
            total += self._remaining_seconds(job.job, remaining) or 0.0
        return total

    def expected_wave_seconds(self) -> float | None:
        """Expected seconds of this replica's next planning wave.

        Window-clipped over the live jobs; ``None`` without an
        estimator, ``0.0`` when nothing is left to plan.
        """
        if self._estimator is None:
            return None
        return self._wave_price(self._window)

    def deadline_pressure(self) -> int:
        """Queued deadline jobs this replica can no longer serve in time.

        Counts the due pending arrivals and parked (preempted) jobs
        whose deadline the estimator already prices as missed from here:
        ``clock + remaining_seconds > deadline``.  Active jobs are
        excluded -- they hold a slot and adding capacity cannot speed
        them up; it is the *queued* misses that another replica could
        still save.  This is the SLO-pressure signal
        :class:`~repro.serve.autoscaler.FleetAutoscaler` sums across the
        fleet to force a scale-up even when the backlog alone sits below
        its threshold.  ``0`` without an estimator.
        """
        if self._estimator is None:
            return 0
        pressure = 0
        now = self.clock
        for job in self._pending:
            if job.arrival_time > now:
                break  # _pending is arrival-sorted; the rest are not due
            if job.deadline is None:
                continue
            remaining = job.job.num_global_batches()
            seconds = self._remaining_seconds(job.job, remaining)
            if seconds is not None and now + seconds > job.deadline:
                pressure += 1
        for parked in self._parked.values():
            job = parked.serve_job
            if job.deadline is None:
                continue
            remaining = job.job.num_global_batches() - parked.completed
            seconds = self._remaining_seconds(job.job, remaining)
            if seconds is not None and now + seconds > job.deadline:
                pressure += 1
        return pressure

    def live_mean_lengths(self) -> list[float]:
        """Mean sample length of each active job (packing-affinity input)."""
        return [state.serve_job.job.mean_length() for state in self._active.values()]

    def live_profiles(self) -> list[TenantProfile]:
        """Length profile of each active job (waste-affinity routing input).

        Adapter-id order, so downstream float sums over the profiles
        (:meth:`~repro.serve.costing.CostEstimator.pack_fragmentation`)
        are order-deterministic across kernels.
        """
        return [
            TenantProfile.from_job(self._active[aid].serve_job.job)
            for aid in sorted(self._active)
        ]

    def live_priorities(self) -> list[int]:
        """Priority class of each active job (headroom-routing input)."""
        return [state.serve_job.priority for state in self._active.values()]

    def migratable_jobs(self) -> list[tuple[int, int, float | None, bool]]:
        """Jobs a rebalancer may move right now, priced in both units.

        Returns:
            ``(adapter_id, remaining_batches, remaining_seconds,
            is_pending)`` tuples: every pending job, every parked
            (preempted) job, plus every active unfinished job sitting at
            a wave boundary.  ``remaining_seconds`` is the
            estimator-priced (calibration-corrected) expected service
            time of the remaining batches, ``None`` without an
            estimator -- the seconds-skew rebalancer picks migrants by
            it, the batch-skew one by the count.
        """
        candidates = []
        for job in self._pending:
            batches = job.job.num_global_batches()
            seconds = self._remaining_seconds(job.job, batches)
            candidates.append((job.adapter_id, batches, seconds, True))
        for aid, parked in self._parked.items():
            batches = parked.serve_job.job.num_global_batches() - parked.completed
            seconds = self._remaining_seconds(parked.serve_job.job, batches)
            candidates.append((aid, batches, seconds, False))
        for aid, state in self._active.items():
            if state.finished or state.steps_completed != state.next_batch:
                continue
            batches = state.num_batches - state.steps_completed
            seconds = self._remaining_seconds(state.serve_job.job, batches)
            candidates.append((aid, batches, seconds, False))
        return candidates

    def drainable_jobs(self) -> list[tuple[int, int, float | None]]:
        """Mid-flight active jobs a partial drain could unlock for moving.

        The complement of the active entries in :meth:`migratable_jobs`:
        jobs holding slots whose scheduled batches have not all stepped
        yet, so :meth:`eject_job` refuses them *now* but a
        :meth:`drain_for` on them would bring them to a boundary.

        Returns:
            ``(adapter_id, remaining_batches, remaining_seconds)``
            tuples, priced exactly like :meth:`migratable_jobs`
            (``remaining_seconds`` is ``None`` without an estimator).
        """
        candidates = []
        for aid, state in self._active.items():
            if state.finished or state.steps_completed == state.next_batch:
                continue
            batches = state.num_batches - state.steps_completed
            seconds = self._remaining_seconds(state.serve_job.job, batches)
            candidates.append((aid, batches, seconds))
        return candidates

    def drain_for(self, adapter_id: int) -> int:
        """Drain only until ``adapter_id``'s submitted batches step.

        The partial ``drain_then_migrate`` unlock: a full :meth:`flush`
        forces *every* in-flight microbatch to completion, paying
        cooldown bubbles for tenants nobody wants to move.  This drains
        the pipeline just far enough that the chosen migrant's last
        submitted batch has stepped -- the migrant reaches an
        optimizer-step boundary and becomes ejectable while the other
        tenants' pipeline tails stay in flight.  Executors that cannot
        drain partially (no ``drain_job`` method) fall back to the full
        drain, so the unlock always succeeds.  Retirements the drain
        completes are processed normally.

        Args:
            adapter_id: The mid-flight active job to bring to a
                boundary (from :meth:`drainable_jobs`).

        Returns:
            Scheduled-but-unstepped batches still in flight afterwards
            across all active jobs -- the optimizer steps a full flush
            would have forced early, i.e. the work the partial drain
            saved (0 under the full-drain fallback).
        """
        drain_job = getattr(self.executor, "drain_job", None)
        if drain_job is None:
            self._handle_events(self.executor.drain())
        else:
            self._handle_events(drain_job(adapter_id))
        return sum(
            state.next_batch - state.steps_completed
            for state in self._active.values()
        )

    def flush(self) -> int:
        """Drain the pipeline so every active job reaches a step boundary.

        The ``drain_then_migrate`` unlock: between :meth:`step` calls a
        deep pipeline usually still has the wave tail in flight, so
        active jobs sit with scheduled-but-unstepped batches and
        :meth:`eject_job` refuses them.  Draining completes every
        submitted microbatch (paying the flush bubbles), after which all
        active jobs are at optimizer-step boundaries and migratable.
        Retirements the drain completes are processed normally.  See
        :meth:`drain_for` for the partial variant that stops once one
        chosen job reaches its boundary.

        Returns:
            Jobs retired by the drain.
        """
        return self._handle_events(self.executor.drain())

    # -- reporting -----------------------------------------------------------

    def _result(self) -> OrchestratorResult:
        # Derived from the records, the single source of truth for the
        # rejected terminal state.
        rejected = sum(
            1 for r in self._records.values() if r.rejected_time is not None
        )
        if not self.stream:
            # Zero waves ran (nothing was ever admitted): an empty
            # result, not a utilization artifact of an idle executor.
            return OrchestratorResult(records=dict(self._records), rejected=rejected)
        violations = find_violations(self.stream, self.config.scheduler.num_stages)
        return OrchestratorResult(
            records=self._records,
            makespan=self.executor.clock,
            total_tokens=sum(mb.real_tokens for mb in self.stream),
            total_padded_tokens=sum(mb.padded_tokens for mb in self.stream),
            capacity=self.config.scheduler.capacity,
            total_microbatches=len(self.stream),
            noop_microbatches=sum(1 for mb in self.stream if mb.is_noop),
            replans=self._replans,
            splice_noops=self._splicer.noops_inserted,
            utilization=self.executor.utilization(),
            violations=len(violations),
            preemptions=self._preemptions,
            wave_cuts=self._wave_cuts,
            rejected=rejected,
            wave_estimates=list(self._wave_estimates),
            stats=dict(self._stats),
        )

    def stream_schedule(self) -> Schedule:
        """The full spliced stream as a dumpable :class:`Schedule`."""
        return Schedule(
            microbatches=list(self.stream),
            num_stages=self.config.scheduler.num_stages,
            stats={"replans": float(self._replans)},
        )
