"""The online multi-tenant orchestrator: continuous job serving.

The offline pipeline (schedule everything, then execute) assumes all jobs
are known upfront.  Production multi-tenant traffic is a stream: jobs
arrive over time, hold an adapter slot while training, and retire.  The
orchestrator closes that gap with an incremental schedule->splice->execute
loop over any :class:`~repro.serve.executors.Executor`:

1. **Admit** arrivals against the admission policy's adapter-slot budget
   (memory-derived or fixed), in arrival order.
2. **Plan a wave**: window each live job to its next ``window_batches``
   global batches (``batch_offset`` keeps optimizer-step indices
   absolute) and run the two-phase scheduler
   (:meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.plan_step` +
   :meth:`~repro.scheduler.scheduler.MultiLoRAScheduler.assemble`) over
   live jobs only.
3. **Splice** the window into the in-flight stream: the
   :class:`~repro.serve.splice.StreamSplicer` inserts junction no-ops so
   the concatenated stream never violates the bubble lemma.
4. **Execute** the spliced microbatches; optimizer-step events update
   per-job records, and jobs whose final batch stepped retire
   immediately, freeing their slot for the next arrival.

When every live job is fully scheduled but pipeline work is still in
flight (or pending jobs wait on slots), the executor drains -- a pipeline
flush -- and the loop resumes with the freed slots.  Losslessness holds
throughout: window scheduling never reorders samples across global-batch
boundaries and the splicer preserves update ordering, so a job served
under churn trains exactly as it would alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.scheduler.bubble import find_violations
from repro.scheduler.scheduler import MultiLoRAScheduler, SchedulerConfig
from repro.scheduler.types import AdapterJob, Microbatch, Schedule
from repro.serve.admission import AdmissionPolicy
from repro.serve.executors import Executor, StepEvent
from repro.serve.jobs import ServeJob
from repro.serve.metrics import JobRecord, OrchestratorResult
from repro.serve.splice import StreamSplicer

__all__ = ["OrchestratorConfig", "OnlineOrchestrator"]

#: Window scheduler stats accumulated across waves into the result stats.
_ACCUMULATED_STATS = ("merges", "noops_inserted", "milp_selected", "packing_tasks")


@dataclass(frozen=True)
class OrchestratorConfig:
    """Tunables of the online orchestrator.

    Attributes:
        scheduler: Per-wave scheduler configuration (capacity, stages,
            MILP/merge switches...).
        window_batches: Global batches per job per planning wave; ``None``
            schedules each job's whole remaining horizon in one wave
            (with all arrivals at time 0 this is the offline oracle).
        admission: Adapter-slot policy; ``None`` admits unboundedly.
    """

    scheduler: SchedulerConfig
    window_batches: int | None = 2
    admission: AdmissionPolicy | None = None

    def __post_init__(self) -> None:
        if self.window_batches is not None and self.window_batches <= 0:
            raise ScheduleError("window_batches must be positive (or None)")


@dataclass
class _ActiveJob:
    """Orchestrator-side state of one admitted job."""

    serve_job: ServeJob
    batches: list[list[Sample]]
    record: JobRecord
    next_batch: int = 0  # first not-yet-scheduled global batch
    steps_completed: int = 0

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def fully_scheduled(self) -> bool:
        return self.next_batch >= self.num_batches

    @property
    def finished(self) -> bool:
        return self.steps_completed >= self.num_batches


class OnlineOrchestrator:
    """Serves a stream of fine-tuning jobs on one executor.

    Args:
        executor: Execution backend (numeric engine or pipeline
            simulator).
        config: Orchestrator tunables.
    """

    def __init__(self, executor: Executor, config: OrchestratorConfig) -> None:
        self.executor = executor
        self.config = config
        self.stream: list[Microbatch] = []
        self._splicer = StreamSplicer(config.scheduler.num_stages)
        self._pending: list[ServeJob] = []
        self._active: dict[int, _ActiveJob] = {}
        self._records: dict[int, JobRecord] = {}
        self._replans = 0
        self._stats: dict[str, float] = {key: 0.0 for key in _ACCUMULATED_STATS}
        self._slot_budget = (
            config.admission.max_concurrent()
            if config.admission is not None else None
        )
        self._ran = False

    # -- lifecycle ----------------------------------------------------------

    def _admit_ready(self) -> int:
        """Admit due arrivals while adapter slots are free."""
        admitted = 0
        while self._pending:
            job = self._pending[0]
            if job.arrival_time > self.executor.clock:
                break
            if (self._slot_budget is not None
                    and len(self._active) >= self._slot_budget):
                break
            self._pending.pop(0)
            record = self._records[job.adapter_id]
            record.admit_time = self.executor.clock
            self.executor.add_job(job)
            self._active[job.adapter_id] = _ActiveJob(
                serve_job=job,
                batches=job.job.dataset.global_batches(job.job.global_batch_size),
                record=record,
            )
            admitted += 1
        return admitted

    def _retire(self, adapter_id: int) -> None:
        self.executor.remove_job(adapter_id)
        self._splicer.retire(adapter_id)
        del self._active[adapter_id]

    def _handle_events(self, events: list[StepEvent]) -> int:
        """Record optimizer-step completions; retire finished jobs."""
        retired = 0
        for event in events:
            state = self._active.get(event.adapter_id)
            if state is None:
                raise ScheduleError(
                    f"step event for unknown job {event.adapter_id}"
                )
            state.steps_completed += 1
            if state.finished:
                state.record.finish_time = event.time
                self._retire(event.adapter_id)
                retired += 1
        return retired

    # -- planning -----------------------------------------------------------

    def _window_job(self, state: _ActiveJob) -> AdapterJob:
        """The job's next window as an offset-carrying scheduler job."""
        window = self.config.window_batches
        end = (
            state.num_batches
            if window is None
            else min(state.num_batches, state.next_batch + window)
        )
        batches = state.batches[state.next_batch : end]
        source_job = state.serve_job.job
        dataset = FinetuneDataset(
            adapter_id=source_job.adapter_id,
            samples=[sample for batch in batches for sample in batch],
            source=source_job.dataset.source,
        )
        job = AdapterJob(
            adapter_id=source_job.adapter_id,
            dataset=dataset,
            global_batch_size=source_job.global_batch_size,
            batch_offset=state.next_batch,
        )
        state.next_batch = end
        return job

    def _plan_wave(self) -> list[Microbatch]:
        """Schedule the live jobs' next windows and splice the result."""
        wave_jobs = [
            self._window_job(state)
            for state in self._active.values()
            if not state.fully_scheduled
        ]
        scheduler = MultiLoRAScheduler(wave_jobs, self.config.scheduler)
        window = scheduler.assemble(scheduler.plan_step())
        for key in _ACCUMULATED_STATS:
            self._stats[key] += window.stats.get(key, 0.0)
        spliced = self._splicer.splice(window.microbatches, plan_id=self._replans)
        self._replans += 1
        return spliced

    def _execute(self, microbatches: list[Microbatch]) -> None:
        for mb in microbatches:
            if not mb.is_noop:
                for adapter_id in {a.adapter_id for a in mb.assignments}:
                    record = self._records[adapter_id]
                    if record.first_scheduled_time is None:
                        record.first_scheduled_time = self.executor.clock
            self.stream.append(mb)
            self._handle_events(self.executor.submit(mb))

    # -- the serving loop ---------------------------------------------------

    def run(self, workload: list[ServeJob]) -> OrchestratorResult:
        """Serve ``workload`` to completion.

        Args:
            workload: Jobs with distinct adapter ids, any arrival order.

        Returns:
            Per-job latency records plus stream-level statistics.
        """
        if self._ran:
            raise ScheduleError(
                "OnlineOrchestrator.run is single-shot (stream and metric "
                "state are per-run); construct a fresh orchestrator"
            )
        self._ran = True
        ids = [job.adapter_id for job in workload]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids in workload: {ids}")
        self._pending = sorted(workload, key=lambda job: (job.arrival_time,
                                                          job.adapter_id))
        self._records = {
            job.adapter_id: JobRecord(
                adapter_id=job.adapter_id,
                arrival_time=job.arrival_time,
                num_batches=job.job.num_global_batches(),
                total_tokens=job.job.dataset.total_tokens(),
            )
            for job in workload
        }

        while self._pending or self._active:
            progressed = self._admit_ready() > 0
            schedulable = [
                state for state in self._active.values()
                if not state.fully_scheduled
            ]
            if schedulable:
                self._execute(self._plan_wave())
                continue
            # Nothing left to plan: flush in-flight work, then either the
            # freed slots admit waiting jobs or the clock jumps to the
            # next arrival.
            progressed |= self._handle_events(self.executor.drain()) > 0
            if not self._active and self._pending:
                next_arrival = self._pending[0].arrival_time
                if next_arrival > self.executor.clock:
                    self.executor.advance(next_arrival)
                    progressed = True
            if not progressed and self._active:
                raise ScheduleError(
                    "orchestrator stalled: active jobs are fully scheduled "
                    "but never completed (executor dropped step events?)"
                )
        self._handle_events(self.executor.drain())
        return self._result()

    # -- reporting ----------------------------------------------------------

    def _result(self) -> OrchestratorResult:
        violations = find_violations(
            self.stream, self.config.scheduler.num_stages
        )
        return OrchestratorResult(
            records=self._records,
            makespan=self.executor.clock,
            total_tokens=sum(mb.real_tokens for mb in self.stream),
            total_microbatches=len(self.stream),
            noop_microbatches=sum(1 for mb in self.stream if mb.is_noop),
            replans=self._replans,
            splice_noops=self._splicer.noops_inserted,
            utilization=self.executor.utilization(),
            violations=len(violations),
            stats=dict(self._stats),
        )

    def stream_schedule(self) -> Schedule:
        """The full spliced stream as a dumpable :class:`Schedule`."""
        return Schedule(
            microbatches=list(self.stream),
            num_stages=self.config.scheduler.num_stages,
            stats={"replans": float(self._replans)},
        )
