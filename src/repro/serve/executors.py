"""The streaming executor protocol and its two implementations.

The online orchestrator is executor-agnostic: anything that can admit and
retire jobs and consume microbatches one at a time implements
:class:`Executor`.  Two executors ship:

* :class:`NumericExecutor` wraps the resumable
  :class:`~repro.runtime.engine.MultiLoRAEngine` -- real weights, real
  gradients, losslessness-testable.  Its virtual clock advances by padded
  tokens (the quantity a fixed-capacity microbatch slot is sized by).
* :class:`StreamingSimExecutor` is an *incremental* re-implementation of
  the 1F1B streaming pipeline simulator
  (:func:`repro.distsim.pipeline.simulate_stream`): microbatches are fed
  one at a time and per-stage op times resolve as submissions arrive,
  producing identical makespans/busy times while also reporting *when*
  each adapter's optimizer steps complete -- the signal job-completion
  metrics need.

Incrementality relies on the scheduler's dependency gap of ``S``: under
fwd-first 1F1B, stage ``s`` executes the backward of microbatch ``k``
while submission ``k + S - s - 1`` is being processed, so every
cross-batch dependency of a submitted forward already has its time
resolved.  A stream that violates the bubble lemma surfaces as a missing
dependency, exactly where ``simulate_stream`` would deadlock.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.distsim.pipeline import PipelineResult
from repro.distsim.systems import stage_times
from repro.errors import ScheduleError, SimulationError
from repro.models.layer_costs import LayerCostModel
from repro.runtime.engine import JobState, MultiLoRAEngine
from repro.scheduler.types import Microbatch
from repro.serve.jobs import ServeJob

__all__ = [
    "StepEvent",
    "Executor",
    "NumericExecutor",
    "StreamingSimExecutor",
]


@dataclass(frozen=True)
class StepEvent:
    """One completed optimizer step, with its (virtual) completion time.

    Attributes:
        adapter_id: The adapter that stepped.
        global_batch: The global batch whose gradient was applied.
        time: Executor clock at completion.
        loss: Summed batch loss (numeric executors only).
    """

    adapter_id: int
    global_batch: int
    time: float
    loss: float | None = None


@runtime_checkable
class Executor(Protocol):
    """What the orchestrator needs from an execution backend."""

    def add_job(self, job: ServeJob) -> None:
        """Admit a job before its microbatches are submitted."""

    def remove_job(self, adapter_id: int) -> None:
        """Retire a completed job's executor-side state."""

    def export_job(self, adapter_id: int) -> object:
        """Snapshot a live job's executor-side state for migration.

        The payload is opaque to the orchestrator: it is whatever the
        matching :meth:`import_job` on another executor of the same kind
        needs to continue the job (numeric training state for the engine,
        batch bookkeeping for the simulator).  Export does not retire the
        job; callers pair it with :meth:`remove_job`.
        """

    def import_job(self, job: ServeJob, payload: object) -> None:
        """Resume a migrated job from an :meth:`export_job` payload."""

    def submit(self, microbatch: Microbatch) -> list[StepEvent]:
        """Execute one microbatch; return optimizer steps it completed."""

    def drain(self) -> list[StepEvent]:
        """Finish all in-flight work; return the remaining step events."""

    def advance(self, time: float) -> None:
        """Fast-forward the clock over idle periods (never backwards)."""

    def utilization(self) -> float:
        """Useful-work fraction of the elapsed virtual time."""

    @property
    def clock(self) -> float:
        """Current virtual time."""


class NumericExecutor:
    """Numeric training behind the streaming protocol.

    The clock is token-based: each microbatch slot costs its padded
    tokens, and a no-op slot is charged the full capacity (the worst-case
    bubble it stands for).

    Args:
        engine: The resumable numeric engine (shared model/optimizers).
    """

    def __init__(self, engine: MultiLoRAEngine) -> None:
        self.engine = engine
        self._clock = 0.0
        self._real_tokens = 0

    def add_job(self, job: ServeJob) -> None:
        if job.numeric is None:
            raise ScheduleError(
                f"job {job.adapter_id} has no numeric payload; "
                "NumericExecutor requires ServeJob.numeric"
            )
        self.engine.add_job(job.numeric)

    def remove_job(self, adapter_id: int) -> None:
        self.engine.remove_job(adapter_id)

    def export_job(self, adapter_id: int) -> object:
        """Snapshot the engine's training state (weights, moments, progress)."""
        return self.engine.export_job_state(adapter_id)

    def import_job(self, job: ServeJob, payload: object) -> None:
        """Resume a migrated or preempted job on this executor's engine."""
        if job.numeric is None:
            raise ScheduleError(
                f"job {job.adapter_id} has no numeric payload; "
                "NumericExecutor requires ServeJob.numeric"
            )
        if not isinstance(payload, JobState):
            raise ScheduleError(
                f"job {job.adapter_id} payload is not an engine JobState "
                "snapshot; it was exported by a different executor kind"
            )
        self.engine.import_job_state(job.numeric, payload)

    def submit(self, microbatch: Microbatch) -> list[StepEvent]:
        completed = self.engine.submit(microbatch)
        cost = microbatch.capacity if microbatch.is_noop else microbatch.padded_tokens
        self._clock += float(cost)
        self._real_tokens += microbatch.real_tokens
        return [
            StepEvent(
                adapter_id=step.adapter_id,
                global_batch=step.global_batch,
                time=self._clock,
                loss=step.loss,
            )
            for step in completed
        ]

    def drain(self) -> list[StepEvent]:
        return []  # execution is synchronous; nothing is in flight

    def drain_job(self, adapter_id: int) -> list[StepEvent]:
        """Partial drain: a no-op here, since nothing is ever in flight.

        Provided so coordinators can call the partial-drain unlock
        uniformly; synchronous execution steps every batch at submit
        time, so there is never a pipeline tail to cut short.
        """
        return []

    def advance(self, time: float) -> None:
        self._clock = max(self._clock, time)

    def utilization(self) -> float:
        """Real-token fill fraction of the token clock."""
        return self._real_tokens / self._clock if self._clock else 0.0

    @property
    def clock(self) -> float:
        return self._clock


@dataclass
class _SimMicrobatch:
    """Per-stage times and batch bookkeeping of one submitted microbatch."""

    fwd: tuple[float, ...]
    bwd: tuple[float, ...]
    counts: dict[tuple[int, int], int]


class StreamingSimExecutor:
    """Incremental fwd-first 1F1B pipeline simulation.

    Args:
        cost: Layer cost model pricing each microbatch's stage times.
        num_stages: Pipeline depth.
    """

    def __init__(self, cost: LayerCostModel, num_stages: int) -> None:
        if num_stages <= 0:
            raise SimulationError("num_stages must be positive")
        self.cost = cost
        self.num_stages = num_stages
        # Keyed by absolute submission index; drained segments are pruned
        # at the boundary so state stays bounded over a long serving run.
        self._mbs: dict[int, _SimMicrobatch] = {}
        self._submitted = 0
        self._segment_start = 0  # first microbatch of the current 1F1B stream
        self._clock = [0.0] * num_stages
        self._busy = [0.0] * num_stages
        self._fwd_end: dict[tuple[int, int], float] = {}
        self._bwd_end: dict[tuple[int, int], float] = {}
        self._last_of_batch: dict[tuple[int, int], list[int]] = {}
        self._remaining: dict[tuple[int, int], int] = {}

    # -- protocol -----------------------------------------------------------

    def add_job(self, job: ServeJob) -> None:
        aid = job.adapter_id
        if any(key[0] == aid for key in self._remaining):
            raise SimulationError(f"job {aid} already registered")
        batches = job.job.dataset.global_batches(job.job.global_batch_size)
        for b, batch in enumerate(batches):
            self._remaining[(aid, b)] = len(batch)

    def remove_job(self, adapter_id: int) -> None:
        for key in [k for k in self._remaining if k[0] == adapter_id]:
            del self._remaining[key]
        for key in [k for k in self._last_of_batch if k[0] == adapter_id]:
            del self._last_of_batch[key]

    def export_job(self, adapter_id: int) -> object:
        """Snapshot the job's not-yet-stepped global-batch counters."""
        if not any(key[0] == adapter_id for key in self._remaining):
            raise SimulationError(f"job {adapter_id} is not registered")
        return {
            "remaining": {
                key[1]: count
                for key, count in self._remaining.items()
                if key[0] == adapter_id
            }
        }

    def import_job(self, job: ServeJob, payload: object) -> None:
        """Register a migrated job's remaining batches on this simulator."""
        aid = job.adapter_id
        if any(key[0] == aid for key in self._remaining):
            raise SimulationError(f"job {aid} already registered")
        if not isinstance(payload, dict) or "remaining" not in payload:
            raise SimulationError(
                f"job {aid} payload is not a simulator snapshot; it was "
                "exported by a different executor kind"
            )
        for batch, count in payload["remaining"].items():
            self._remaining[(aid, batch)] = count

    def submit(self, microbatch: Microbatch) -> list[StepEvent]:
        s_count = self.num_stages
        i = self._submitted
        local = i - self._segment_start
        if microbatch.is_noop:
            zeros = tuple(0.0 for _ in range(s_count))
            record = _SimMicrobatch(fwd=zeros, bwd=zeros, counts={})
        else:
            fwd, bwd = stage_times(self.cost, microbatch.shape(), s_count)
            counts = Counter(
                (a.adapter_id, a.global_batch) for a in microbatch.assignments
            )
            for key in counts:
                if key not in self._remaining:
                    raise SimulationError(
                        f"microbatch references adapter {key[0]} global "
                        f"batch {key[1]}, which no registered job owns; "
                        "call add_job first"
                    )
            record = _SimMicrobatch(fwd=fwd, bwd=bwd, counts=dict(counts))
        waits: list[int] = []
        for adapter_id, batch in record.counts:
            waits.extend(self._last_of_batch.get((adapter_id, batch - 1), ()))
        self._mbs[i] = record
        self._submitted += 1

        # Forwards, stage by stage down the pipeline.
        for s in range(s_count):
            deps = [self._fwd_end[(s - 1, i)]] if s > 0 else []
            for j in waits:
                end = self._bwd_end.get((s, j))
                if end is None:
                    raise SimulationError(
                        "pipeline schedule deadlocked: adapter batch "
                        "dependencies violate the bubble lemma for this "
                        "stage count"
                    )
                deps.append(end)
            begin = max([self._clock[s], *deps]) if deps else self._clock[s]
            self._finish("fwd", s, i, begin, record.fwd[s])

        # Backwards unlocked by this submission (1F1B pairing), last stage
        # first so each stage's dependency is already resolved.  A
        # partial drain (drain_job) may have forced some of these early;
        # they are done, not pending, so the pairing skips them.
        events: list[StepEvent] = []
        for s in reversed(range(s_count)):
            k_local = local - (s_count - s - 1)
            if k_local < 0:
                continue
            k = self._segment_start + k_local
            if (s, k) in self._bwd_end:
                continue
            events.extend(self._run_backward(s, k))
        for key in record.counts:
            self._last_of_batch.setdefault(key, []).append(i)
        return events

    def drain(self) -> list[StepEvent]:
        """Run the cooldown: execute every not-yet-issued backward."""
        events: list[StepEvent] = []
        n = self._submitted
        for k in range(max(self._segment_start, n - self.num_stages + 1), n):
            for s in reversed(range(self.num_stages)):
                if (s, k) not in self._bwd_end:
                    events.extend(self._run_backward(s, k))
        # Prune what the next segment can never reference, so state stays
        # bounded over a long serving run: forwards only gate same-index
        # ops (all executed), and of the backwards only those that
        # _last_of_batch still points at feed future dependency checks.
        for index in range(self._segment_start, n):
            del self._mbs[index]
        live = {index for indices in self._last_of_batch.values() for index in indices}
        self._fwd_end.clear()
        self._bwd_end = {
            key: end for key, end in self._bwd_end.items() if key[1] in live
        }
        self._segment_start = n
        return events

    def drain_job(self, adapter_id: int) -> list[StepEvent]:
        """Run the cooldown only through ``adapter_id``'s last microbatch.

        The partial counterpart of :meth:`drain`: backwards are forced
        in the same (microbatch-ascending, stage-descending) order, but
        only up to the last in-flight microbatch carrying ``adapter_id``
        -- once that one's stage-0 backward has run, every submitted
        batch of the adapter has stepped and it sits at an
        optimizer-step boundary.  Microbatches after it stay in flight:
        no bookkeeping is pruned and the 1F1B segment continues, with
        :meth:`submit`'s pairing skipping the backwards already forced
        here.  An adapter with nothing in flight drains nothing.

        Args:
            adapter_id: The adapter to bring to a step boundary.

        Returns:
            Optimizer steps the partial cooldown completed (any
            adapter's -- earlier microbatches may finish other tenants'
            batches on the way).
        """
        n = self._submitted
        start = max(self._segment_start, n - self.num_stages + 1)
        last = -1
        for index in range(start, n):
            if any(key[0] == adapter_id for key in self._mbs[index].counts):
                last = index
        events: list[StepEvent] = []
        for k in range(start, last + 1):
            for s in reversed(range(self.num_stages)):
                if (s, k) not in self._bwd_end:
                    events.extend(self._run_backward(s, k))
        return events

    def advance(self, time: float) -> None:
        for s in range(self.num_stages):
            self._clock[s] = max(self._clock[s], time)

    def utilization(self) -> float:
        """Busy fraction across stages (1 - bubble ratio).

        An executor that never ran a microbatch reports 0.0, not the
        1.0 a zero-makespan bubble ratio would degenerate to.
        """
        if not self._submitted:
            return 0.0
        return self.result().utilization

    @property
    def clock(self) -> float:
        return max(self._clock)

    # -- internals ----------------------------------------------------------

    def _finish(
        self, kind: str, stage: int, index: int, begin: float, duration: float
    ) -> float:
        end = begin + duration
        table = self._fwd_end if kind == "fwd" else self._bwd_end
        table[(stage, index)] = end
        self._clock[stage] = end
        self._busy[stage] += duration
        return end

    def _run_backward(self, stage: int, index: int) -> list[StepEvent]:
        if stage < self.num_stages - 1:
            dep = self._bwd_end[(stage + 1, index)]
        else:
            dep = self._fwd_end[(stage, index)]
        begin = max(self._clock[stage], dep)
        end = self._finish("bwd", stage, index, begin, self._mbs[index].bwd[stage])
        if stage > 0:
            return []
        # The stage-0 backward is the microbatch's last op: any global batch
        # it exhausts has now fully stepped.
        events = []
        for key, count in self._mbs[index].counts.items():
            self._remaining[key] -= count
            if self._remaining[key] == 0:
                events.append(
                    StepEvent(adapter_id=key[0], global_batch=key[1], time=end)
                )
        return events

    def result(self) -> PipelineResult:
        """Aggregate pipeline statistics (mirrors ``simulate_stream``)."""
        return PipelineResult(
            makespan=max(self._clock) if self._submitted else 0.0,
            busy=list(self._busy),
            num_stages=self.num_stages,
            num_microbatches=self._submitted,
        )
