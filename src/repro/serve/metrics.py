"""Serving metrics: per-job latency records and the run-level result.

Online systems are judged on latency distributions, not just makespan:
how long a job queued for an adapter slot, how long until its first
microbatch ran, and its job completion time (JCT).  The orchestrator
fills one :class:`JobRecord` per job and aggregates them, together with
stream-level utilization counters, into an :class:`OrchestratorResult`.

With SLO-aware ordering (:mod:`repro.serve.ordering`) the records also
carry each job's priority class, deadline, and preemption count, and the
aggregates slice by class: per-class JCT and queueing, total
preemptions, and the deadline-miss rate.

With a cost estimator (:mod:`repro.serve.costing`) two more signals
appear.  Deadline-feasibility admission can *reject* a doomed arrival --
a distinct terminal state (:attr:`JobRecord.outcome` =
:attr:`~repro.serve.jobs.JobOutcome.REJECTED`), counted separately from
misses so shedding is visible, not laundered into better-looking
latency.  And every planning wave records an estimate-vs-actual pair
(:attr:`OrchestratorResult.wave_estimates`), making the estimator's
calibration a first-class, gateable metric
(:meth:`OrchestratorResult.calibration_ratio`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.serve.jobs import JobOutcome

__all__ = ["GatewayStats", "JobRecord", "OrchestratorResult", "ReplicaSetResult"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 on an empty list).

    Deterministic and interpolation-free -- the convention latency
    dashboards use, chosen here so committed benchmark tables are
    byte-stable across numpy versions.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ScheduleError("a percentile rank must lie in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class GatewayStats:
    """Ingress-side ledger of one live gateway session.

    Counts every door decision the
    :class:`~repro.serve.gateway.ServeGateway` made, so overload
    shedding is auditable instead of silent.  The conservation identity
    -- ``submitted == accepted + shed_total()`` and ``accepted ==
    released + cancelled`` once the session is drained -- is asserted by
    ``tests/serve/test_gateway.py`` and gated (together with "zero
    admitted jobs lost") by ``benchmarks/bench_gateway.py``.

    Attributes:
        submitted: Submissions that reached the gateway door.
        accepted: Submissions that passed every door check (rate,
            quota, queue bound, deadline feasibility).
        released: Accepted submissions handed to the fleet (every
            accepted job is released unless cancelled first).
        cancelled: Accepted submissions cancelled inside their ingress
            hold window, before release.
        sheds: Refusals by reason (the
            :data:`~repro.serve.gateway.SHED_REASONS` taxonomy); the
            backpressure ledger.
        admission_latencies: Wall-clock seconds the gateway spent
            deciding each submission (accepted or shed) -- the real
            ingress overhead, not virtual time.
    """

    submitted: int = 0
    accepted: int = 0
    released: int = 0
    cancelled: int = 0
    sheds: dict[str, int] = field(default_factory=dict)
    admission_latencies: list[float] = field(default_factory=list)

    def shed_total(self) -> int:
        """Refused submissions across all reasons."""
        return sum(self.sheds.values())

    def admission_latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of the admission latencies, seconds."""
        return _percentile(self.admission_latencies, q)

    def admission_latency_percentiles(self) -> dict[str, float]:
        """The dashboard trio -- p50 / p90 / p99 -- in seconds."""
        return {
            "p50": self.admission_latency_percentile(50.0),
            "p90": self.admission_latency_percentile(90.0),
            "p99": self.admission_latency_percentile(99.0),
        }


@dataclass
class JobRecord:
    """Lifecycle timestamps and totals of one served job.

    All times are in the executor's virtual clock units.

    Attributes:
        adapter_id: The job.
        arrival_time: When the job became known.
        admit_time: When it first received an adapter slot (preemption
            and resumption do not move it).
        first_scheduled_time: Clock before its first microbatch ran.
        finish_time: When its last optimizer step completed.
        num_batches: Optimizer steps the job takes.
        total_tokens: Real (unpadded) tokens across its dataset.
        replica: Replica currently (or finally) serving the job, when a
            :class:`~repro.serve.replicaset.ReplicaSet` routed it
            (``None`` on a single pipeline).
        migrations: Times the job moved between replicas mid-training.
        priority: SLO class the job arrived with (larger = more urgent).
        deadline: Virtual time the job should have finished by
            (``None`` = no deadline).
        preemptions: Times an ordering policy evicted the job from its
            adapter slot mid-training (each one lossless).
        rejected_time: Virtual time deadline-feasibility admission shed
            the job (``None`` = never rejected).  Rejection is terminal:
            the job was never admitted and never trains.
    """

    adapter_id: int
    arrival_time: float
    admit_time: float | None = None
    first_scheduled_time: float | None = None
    finish_time: float | None = None
    num_batches: int = 0
    total_tokens: int = 0
    replica: int | None = None
    migrations: int = 0
    priority: int = 0
    deadline: float | None = None
    preemptions: int = 0
    rejected_time: float | None = None

    @property
    def outcome(self) -> JobOutcome:
        """The job's terminal (or so-far) state."""
        if self.rejected_time is not None:
            return JobOutcome.REJECTED
        if self.finish_time is not None:
            return JobOutcome.FINISHED
        return JobOutcome.UNFINISHED

    @property
    def queueing_delay(self) -> float | None:
        """Time spent waiting for an adapter slot."""
        if self.admit_time is None:
            return None
        return self.admit_time - self.arrival_time

    @property
    def completion_time(self) -> float | None:
        """Job completion time (arrival to last optimizer step)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def deadline_missed(self) -> bool | None:
        """Whether the job blew its deadline (``None`` without one).

        A job that never finished counts as a miss: by the time a result
        exists the session is over, so "not finished" is "not finished
        by the deadline" a fortiori.
        """
        if self.deadline is None:
            return None
        if self.finish_time is None:
            return True
        return self.finish_time > self.deadline


class _LatencyAggregates:
    """Latency/throughput/calibration views over shared result state
    (one definition for the single-pipeline and fleet results, so the
    two can never diverge).  Subclasses supply ``records`` and
    :meth:`_wave_pairs`."""

    records: dict[int, JobRecord]

    def _wave_pairs(self) -> list[tuple[float, float]]:
        """The per-wave ``(predicted, observed)`` pairs this result
        aggregates (every replica's, for a fleet)."""
        return []

    def calibration_ratio(self) -> float | None:
        """Predicted over observed wave seconds, summed across waves.

        1.0 is a perfectly honest estimator; ``None`` without an
        estimator (or when no wave consumed observable time).  The
        documented bounds:
        :data:`repro.serve.costing.CALIBRATION_TOLERANCE` for a priori
        runs, the tightened
        :data:`repro.serve.costing.CORRECTED_CALIBRATION_TOLERANCE`
        once a :class:`~repro.serve.costing.CalibrationTracker` feeds
        corrections back.
        """
        pairs = self._wave_pairs()
        predicted = sum(p for p, _ in pairs)
        observed = sum(o for _, o in pairs)
        if not observed:
            return None
        return predicted / observed

    def calibration_error(self) -> float | None:
        """``|log(calibration_ratio)|`` -- 0.0 is perfect, symmetric."""
        ratio = self.calibration_ratio()
        if ratio is None or ratio <= 0:
            return None
        return abs(math.log(ratio))

    def mean_wave_calibration_error(self) -> float | None:
        """Mean per-wave ``|log(predicted/observed)|`` (0.0 is perfect).

        The run-level :meth:`calibration_ratio` sums before dividing, so
        over- and under-predicted waves can cancel; this view charges
        every wave its own log error, making wave-to-wave drift visible
        even when the totals happen to balance.  ``None`` when no wave
        recorded a usable pair.
        """
        errors = [
            abs(math.log(p / o))
            for p, o in self._wave_pairs()
            if p > 0 and o > 0
        ]
        if not errors:
            return None
        return sum(errors) / len(errors)

    def _class_records(self, priority: int | None) -> list[JobRecord]:
        return [
            r
            for r in self.records.values()
            if priority is None or r.priority == priority
        ]

    def mean_completion_time(self, priority: int | None = None) -> float:
        """Mean JCT across finished jobs (optionally one SLO class)."""
        times = [
            r.completion_time
            for r in self._class_records(priority)
            if r.completion_time is not None
        ]
        return sum(times) / len(times) if times else 0.0

    def mean_queueing_delay(self, priority: int | None = None) -> float:
        """Mean slot-wait across admitted jobs (optionally one class)."""
        delays = [
            r.queueing_delay
            for r in self._class_records(priority)
            if r.queueing_delay is not None
        ]
        return sum(delays) / len(delays) if delays else 0.0

    def priority_classes(self) -> list[int]:
        """The SLO classes present, most urgent (largest) first."""
        return sorted({r.priority for r in self.records.values()}, reverse=True)

    def jct_by_class(self) -> dict[int, float]:
        """Mean JCT per priority class, most urgent first."""
        return {cls: self.mean_completion_time(cls) for cls in self.priority_classes()}

    def queueing_by_class(self) -> dict[int, float]:
        """Mean queueing delay per priority class, most urgent first."""
        return {cls: self.mean_queueing_delay(cls) for cls in self.priority_classes()}

    def total_preemptions(self) -> int:
        """Slot evictions across all jobs (each one losslessly resumed)."""
        return sum(r.preemptions for r in self.records.values())

    def rejections(self) -> int:
        """Arrivals shed by deadline-feasibility admission (terminal)."""
        rejected = JobOutcome.REJECTED
        return sum(1 for r in self.records.values() if r.outcome is rejected)

    def deadline_misses(self) -> int:
        """Deadline-carrying jobs that finished late (or not at all).

        A rejected job counts: it carries a deadline it will never meet.
        Use :meth:`served_deadline_miss_rate` for the served-only view.
        """
        return sum(1 for r in self.records.values() if r.deadline_missed is True)

    def deadline_miss_rate(self) -> float:
        """Missed fraction among deadline-carrying jobs (0.0 with none)."""
        carrying = [r for r in self.records.values() if r.deadline is not None]
        if not carrying:
            return 0.0
        return self.deadline_misses() / len(carrying)

    def served_deadline_miss_rate(self) -> float:
        """Missed fraction among deadline-carrying jobs actually served.

        Excludes rejected arrivals: shedding a doomed job is a refusal,
        not a miss, and the operator promise behind feasibility gating
        is that the jobs we *do* serve meet their deadlines.  Compare
        with :meth:`deadline_miss_rate` (which charges rejections) to
        see both sides of the trade.
        """
        served = [
            r
            for r in self.records.values()
            if r.deadline is not None and r.outcome is not JobOutcome.REJECTED
        ]
        if not served:
            return 0.0
        misses = sum(1 for r in served if r.deadline_missed is True)
        return misses / len(served)

    def deadline_goodput(self) -> int:
        """Deadline-carrying jobs that finished on time."""
        return sum(
            1
            for r in self.records.values()
            if r.deadline is not None and r.deadline_missed is False
        )


@dataclass
class OrchestratorResult(_LatencyAggregates):
    """Outcome of one online serving run.

    Attributes:
        records: Per-job lifecycle records, keyed by adapter id.
        makespan: Virtual time from 0 to the last completed work.
        total_tokens: Real tokens trained across all jobs.
        total_padded_tokens: Tokens actually computed across the stream
            (per-adapter padding to the tile granule included) -- the
            denominator of :meth:`padding_waste`.
        capacity: Microbatch token capacity the stream was packed
            against (0 when no wave ran) -- the per-slot budget
            :meth:`pack_efficiency` normalizes by.
        total_microbatches: Microbatch slots submitted (incl. no-ops).
        noop_microbatches: No-op slots (scheduler spacing + splice
            junctions).
        replans: Scheduler planning waves executed.
        splice_noops: No-ops inserted at window junctions specifically.
        utilization: Busy fraction reported by the executor (pipeline
            executors) or the real-token fill fraction (numeric).
        violations: Bubble-lemma violations found on the full spliced
            stream -- always 0 for a correct run; recorded so benchmarks
            and tests can assert it.
        preemptions: Slot evictions the ordering policy performed.
        wave_cuts: Planning waves cut short by mid-wave admission (an
            urgent arrival triggered early replanning).
        rejected: Arrivals shed by deadline-feasibility admission.
        wave_estimates: Per-wave ``(predicted, observed)`` execution
            seconds when the orchestrator carries a
            :class:`~repro.serve.costing.CostEstimator` (empty without
            one).  Predicted is the a priori, length-distribution-based
            estimate that routing/admission decisions actually used;
            observed is the executor clock the wave consumed (idle
            fast-forwards excluded), so the pair measures decision
            honesty, not hindsight.
        stats: Free-form counters (per-wave scheduler stats sums etc.).
    """

    records: dict[int, JobRecord] = field(default_factory=dict)
    makespan: float = 0.0
    total_tokens: int = 0
    total_padded_tokens: int = 0
    capacity: int = 0
    total_microbatches: int = 0
    noop_microbatches: int = 0
    replans: int = 0
    splice_noops: int = 0
    utilization: float = 0.0
    violations: int = 0
    preemptions: int = 0
    wave_cuts: int = 0
    rejected: int = 0
    wave_estimates: list[tuple[float, float]] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    def tokens_per_time(self) -> float:
        """Trained real tokens per unit of virtual time."""
        return self.total_tokens / self.makespan if self.makespan else 0.0

    def padding_waste(self) -> float:
        """Fraction of computed tokens that were padding.

        ``1 - total_tokens / total_padded_tokens`` -- the serving-layer
        counterpart of :func:`repro.data.packing.padding_waste`, over
        the run's whole spliced stream.  0.0 when nothing was computed.
        """
        if not self.total_padded_tokens:
            return 0.0
        return 1.0 - self.total_tokens / self.total_padded_tokens

    def bubble_rate(self) -> float:
        """Fraction of submitted microbatch slots that were no-ops.

        No-ops are the pipeline bubbles the bubble lemma and splice
        junctions insert; fewer means tighter waves.  0.0 when no slot
        was submitted.
        """
        if not self.total_microbatches:
            return 0.0
        return self.noop_microbatches / self.total_microbatches

    def pack_efficiency(self) -> float:
        """Real tokens per unit of non-noop slot capacity.

        ``total_tokens / (capacity * real slots)`` -- how full the bin
        packer kept the microbatches it emitted (1.0 = every real slot
        packed to capacity with zero padding).  Complements
        :meth:`padding_waste` (which charges only padding) by also
        charging capacity left unfilled.  0.0 when no real slot ran.
        """
        real_slots = self.total_microbatches - self.noop_microbatches
        if not self.capacity or real_slots <= 0:
            return 0.0
        return self.total_tokens / (self.capacity * real_slots)

    def _wave_pairs(self) -> list[tuple[float, float]]:
        return self.wave_estimates


@dataclass
class ReplicaSetResult(_LatencyAggregates):
    """Outcome of one multi-replica serving run.

    Per-replica :class:`OrchestratorResult` objects stay available for
    drill-down; the aggregate views below are defined so they equal the
    corresponding per-replica sums (tokens, microbatches) or duration- /
    count-weighted means (utilization, latency) -- the identities
    ``tests/serve/test_replicaset.py`` asserts.

    Attributes:
        replicas: Per-replica results, in replica-index order.  A job
            appears in exactly one replica's records: the one serving it
            when it finished (migrations move the record).
        records: All jobs' lifecycle records merged across replicas.
        migrations: Active jobs moved between replicas (state transfers).
        reroutes: Pending jobs moved between replicas (queue moves only).
        rebalance_drains: Pipeline drains the rebalancer paid to bring
            a deep pipeline's active jobs to step boundaries
            (``drain_then_migrate``); each one bought the chance to
            migrate, at the price of drain bubbles.
        drain_steps_saved: Optimizer steps the *partial* drains among
            those left un-forced: scheduled-but-unstepped batches still
            in flight after each
            :meth:`~repro.serve.orchestrator.OnlineOrchestrator.drain_for`,
            i.e. work a full flush would have dragged to completion
            early.  0 when every drain fell back to a full flush.
        events_processed: Events the discrete-event fleet kernel
            processed, by :class:`~repro.serve.events.EventKind` name
            (empty under the lockstep reference loop) -- the numerator
            of the events/sec throughput
            ``benchmarks/bench_fleet_kernel.py`` gates.
        joins: Replicas the autoscaler added mid-run (scale-up landings).
        retires: Replicas that left the fleet mid-run, gracefully or by
            reclamation.
        reclaims: Replicas a spot :class:`~repro.serve.autoscaler.ReclamationNotice`
            took back (a subset of ``retires``).
        forced_evacuations: Reclaimed replicas that still held jobs when
            their grace deadline expired and had to be force-drained --
            0 means every reclaim evacuated within its window.
        reclaim_latencies: Seconds from each reclamation notice to that
            replica's last job leaving it, one entry per reclaimed
            replica (the evacuation-latency distribution the autoscale
            bench reports).
        replica_intervals: Each replica's active ``(joined, left)``
            virtual-time interval, in replica-index order.  Populated
            only by autoscaled runs; empty means every replica lived
            the whole run and the aggregates below fall back to
            makespan weighting.
        gpu_seconds: GPU-time bought, summed over replica active
            intervals (a replica is billed from its buy decision to its
            retirement, idle or not).
        dollars_spent: ``gpu_seconds`` priced at each replica's
            $/GPU-hour pool rate.
        gateway: The ingress ledger (:class:`GatewayStats`) when the run
            was served through the live gateway
            (:class:`~repro.serve.gateway.ServeGateway`), folding
            admission-latency percentiles and shed counts into the fleet
            result; ``None`` for sim runs.
    """

    replicas: list[OrchestratorResult] = field(default_factory=list)
    records: dict[int, JobRecord] = field(default_factory=dict)
    migrations: int = 0
    reroutes: int = 0
    rebalance_drains: int = 0
    drain_steps_saved: int = 0
    events_processed: dict[str, int] = field(default_factory=dict)
    joins: int = 0
    retires: int = 0
    reclaims: int = 0
    forced_evacuations: int = 0
    reclaim_latencies: list[float] = field(default_factory=list)
    replica_intervals: list[tuple[float, float]] = field(default_factory=list)
    gpu_seconds: float = 0.0
    dollars_spent: float = 0.0
    gateway: GatewayStats | None = None

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ScheduleError("a replica-set result needs >= 1 replica")
        if self.replica_intervals and len(self.replica_intervals) != len(
            self.replicas
        ):
            raise ScheduleError(
                "replica_intervals must be empty or name every replica"
            )

    def _interval_weights(self) -> list[float]:
        """Each replica's aggregation weight: active span, else makespan.

        The fix for elastic fleets: a replica that joined at t=200 of a
        300-second run must weight fleet means by its 100 active
        seconds, not by a full-run makespan it never served.  Fixed
        fleets (no intervals recorded) keep the original
        makespan weighting, so the legacy identities hold unchanged.
        """
        if self.replica_intervals:
            return [end - start for start, end in self.replica_intervals]
        return [r.makespan for r in self.replicas]

    @property
    def num_replicas(self) -> int:
        """Pipeline replicas that served the run."""
        return len(self.replicas)

    @property
    def makespan(self) -> float:
        """Virtual time until the last replica finished its last work."""
        return max(r.makespan for r in self.replicas)

    @property
    def total_tokens(self) -> int:
        """Real tokens trained, summed over replicas."""
        return sum(r.total_tokens for r in self.replicas)

    @property
    def total_padded_tokens(self) -> int:
        """Computed tokens (padding included), summed over replicas."""
        return sum(r.total_padded_tokens for r in self.replicas)

    @property
    def total_microbatches(self) -> int:
        """Microbatch slots submitted across replicas (incl. no-ops)."""
        return sum(r.total_microbatches for r in self.replicas)

    @property
    def noop_microbatches(self) -> int:
        """No-op slots across replicas."""
        return sum(r.noop_microbatches for r in self.replicas)

    def padding_waste(self) -> float:
        """Fleet padding-waste fraction, weighted by stream volume.

        ``1 - sum(tokens) / sum(padded tokens)`` over all replicas --
        identical to recomputing
        :meth:`OrchestratorResult.padding_waste` on the merged stream,
        so each replica's contribution is weighted by the padded tokens
        it computed (``tests/serve/test_metrics.py`` asserts the
        identity).  0.0 when the fleet computed nothing.
        """
        padded = self.total_padded_tokens
        if not padded:
            return 0.0
        return 1.0 - self.total_tokens / padded

    def bubble_rate(self) -> float:
        """Fleet no-op fraction, weighted by submitted slots.

        ``sum(noops) / sum(slots)`` -- the merged-stream identity again:
        equal to each replica's :meth:`OrchestratorResult.bubble_rate`
        weighted by its slot count.  0.0 when no slot was submitted.
        """
        total = self.total_microbatches
        if not total:
            return 0.0
        return self.noop_microbatches / total

    def pack_efficiency(self) -> float:
        """Fleet pack efficiency, weighted by non-noop slot capacity.

        ``sum(tokens) / sum(capacity_i * real slots_i)`` -- replicas may
        in principle run different capacities, so each one's budget is
        priced per replica; with a uniform capacity this reduces to the
        merged-stream :meth:`OrchestratorResult.pack_efficiency`.  0.0
        when no real slot ran anywhere.
        """
        budget = sum(
            r.capacity * (r.total_microbatches - r.noop_microbatches)
            for r in self.replicas
        )
        if budget <= 0:
            return 0.0
        return self.total_tokens / budget

    @property
    def violations(self) -> int:
        """Bubble-lemma violations across all replica streams (0 = correct)."""
        return sum(r.violations for r in self.replicas)

    @property
    def preemptions(self) -> int:
        """Slot evictions across all replicas."""
        return sum(r.preemptions for r in self.replicas)

    @property
    def rejected(self) -> int:
        """Deadline-infeasible arrivals shed across all replicas."""
        return sum(r.rejected for r in self.replicas)

    @property
    def replans(self) -> int:
        """Scheduler planning waves executed across all replicas."""
        return sum(r.replans for r in self.replicas)

    def _wave_pairs(self) -> list[tuple[float, float]]:
        # Every replica's waves pooled, so the fleet calibration views
        # are wave-weighted exactly like the single-pipeline ones.
        return [pair for r in self.replicas for pair in r.wave_estimates]

    def tokens_per_time(self) -> float:
        """Trained real tokens per unit of virtual time (fleet-wide)."""
        return self.total_tokens / self.makespan if self.makespan else 0.0

    def utilization(self) -> float:
        """Busy fraction of the fleet, weighted by each replica's lifetime.

        The numerator is always true busy seconds
        (``util_i * makespan_i`` -- each replica's utilization is
        busy/clock, so the product recovers the busy time).  The
        denominator is each replica's *active interval* when the run
        recorded them (elastic fleets: a mid-run joiner is only on the
        hook for the span it was actually in the fleet), else its
        makespan -- the fixed-fleet identity
        ``sum(util_i * makespan_i) / sum(makespan_i)`` the replica-set
        tests assert.
        """
        weighted = sum(r.utilization * r.makespan for r in self.replicas)
        total = sum(self._interval_weights())
        return weighted / total if total else 0.0

    def fleet_calibration_error(self) -> float | None:
        """Lifetime-weighted mean of per-replica wave calibration error.

        Each replica's :meth:`mean_wave_calibration_error` weighted by
        its active span (interval when recorded, makespan otherwise), so
        a slow spot replica that served ten minutes of a ten-hour run
        cannot dominate the fleet's honesty number -- nor vanish from
        it.  Replicas that recorded no usable wave pair carry no weight.
        ``None`` when no replica recorded one.
        """
        weighted = 0.0
        total = 0.0
        for result, weight in zip(self.replicas, self._interval_weights()):
            error = result.mean_wave_calibration_error()
            if error is None:
                continue
            weighted += error * weight
            total += weight
        return weighted / total if total else None

    def mean_reclaim_latency(self) -> float | None:
        """Mean seconds from reclamation notice to empty replica.

        ``None`` when the run reclaimed nothing.
        """
        if not self.reclaim_latencies:
            return None
        return sum(self.reclaim_latencies) / len(self.reclaim_latencies)

    def jobs_per_time(self) -> float:
        """Finished jobs per unit of virtual time (job throughput)."""
        finished = sum(1 for r in self.records.values() if r.finish_time is not None)
        return finished / self.makespan if self.makespan else 0.0
