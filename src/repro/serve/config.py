"""Declarative serve configs: the whole control plane as one flat bundle.

Every knob the serving layer exposes -- router, ordering policy,
admission gate, planning window, rebalancer trigger, fleet size,
autoscaler budget -- lives on some constructor somewhere: a routing
policy object here, an :class:`~repro.serve.orchestrator.OrchestratorConfig`
there, a :class:`~repro.serve.replicaset.ReplicaSetConfig` wrapping both.
That is the right shape for *running* one configuration and the wrong
shape for *searching over* configurations: an autotuner needs candidates
it can enumerate, hash, serialize into an artifact, and rebuild
bit-identically.  :class:`ServeConfig` is that form -- a frozen, flat,
JSON-round-trippable bundle of policy *names* and scalar knobs, with
:meth:`ServeConfig.build` as the single place the names are turned back
into live policy objects, fresh executors, and a
:class:`~repro.serve.replicaset.ReplicaSetConfig`.

The offline autotuner (:mod:`repro.tune`) enumerates these bundles,
prunes them with :class:`~repro.serve.costing.CostEstimator` bounds, and
replays traces through the survivors; ``docs/tuning.md`` documents the
search space axis by axis.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Mapping

from repro.errors import ScheduleError
from repro.models.layer_costs import LayerCostModel
from repro.scheduler.scheduler import SchedulerConfig
from repro.serve.admission import DeadlineFeasibilityAdmission, SlotAdmission
from repro.serve.autoscaler import CapacityPool, FleetAutoscaler
from repro.serve.costing import CalibrationTracker, CostEstimator
from repro.serve.executors import Executor, StreamingSimExecutor
from repro.serve.gateway import GatewayLimits, ServeGateway, VirtualClock
from repro.serve.orchestrator import AdaptiveWindowConfig, OrchestratorConfig
from repro.serve.ordering import (
    DeadlineOrdering,
    FCFSOrdering,
    OrderingPolicy,
    PriorityOrdering,
    SRPTOrdering,
)
from repro.serve.replicaset import ReplicaSetConfig
from repro.serve.router import (
    CostAwareRouting,
    LeastLoadedRouting,
    PackingAffinityRouting,
    PriorityHeadroomRouting,
    RoundRobinRouting,
    RoutingPolicy,
)

__all__ = [
    "GPU_HOURLY_RATE",
    "ROUTING_POLICIES",
    "ORDERING_POLICIES",
    "PACKING_SCHEMES",
    "ServeConfig",
]

#: Reference $/GPU-hour an on-demand replica is priced at when a run is
#: converted to dollars (the same rate the autoscale benchmark's
#: on-demand H100 pool charges), so fixed-fleet and autoscaled candidates
#: land on one comparable cost axis.
GPU_HOURLY_RATE = 6.0

#: Routing-policy names :attr:`ServeConfig.routing` accepts, in the order
#: they are documented (``docs/serving.md`` section "Many pipelines").
ROUTING_POLICIES = (
    "round_robin",
    "least_loaded",
    "packing_affinity",
    "priority_headroom",
    "cost_aware",
)

#: Ordering-policy names :attr:`ServeConfig.ordering` accepts
#: (``docs/serving.md`` section "SLO & fairness").
ORDERING_POLICIES = ("fcfs", "srpt", "priority", "deadline")

#: Wave-packing scheme names :attr:`ServeConfig.packing` accepts
#: (``docs/serving.md`` section "Length-aware packing"): ``"arrival"``
#: plans waves in admission order, ``"knapsack"`` assembles them from
#: deterministic token-mass knapsacks with sticky head-tail groups.
PACKING_SCHEMES = ("arrival", "knapsack")

#: Autoscaler control constants used when :attr:`ServeConfig.autoscale_budget`
#: is set: hysteresis band (seconds of backlog), provisioning latency, and
#: decision cooldown, sized for the short virtual-time traces the tuner
#: replays (the library defaults assume wall-clock-scale runs).
AUTOSCALE_UP_BACKLOG = 1.0
AUTOSCALE_DOWN_BACKLOG = 0.25
AUTOSCALE_PROVISION_DELAY = 0.2
AUTOSCALE_COOLDOWN = 0.5
#: Replica headroom the autoscaled pool offers beyond the initial fleet.
AUTOSCALE_POOL_LIMIT = 8


@dataclass(frozen=True)
class ServeConfig:
    """One serve configuration as a flat, serializable bundle.

    Policies are named, not instantiated: a :class:`ServeConfig` is a
    *value* (hashable, comparable, JSON-round-trippable through
    :meth:`to_dict`/:meth:`from_dict`), and :meth:`build` is the one
    function that turns the value into live executors and a
    :class:`~repro.serve.replicaset.ReplicaSetConfig`.  Two equal
    bundles build behaviorally identical fleets, which is what lets the
    autotuner (:mod:`repro.tune`) deduplicate, cache, and commit them
    into artifacts.

    Attributes:
        num_replicas: Pipeline replicas the fleet starts with (the whole
            fleet, when no autoscaler runs).
        routing: Tenant-placement policy name, one of
            :data:`ROUTING_POLICIES`.
        ordering: Slot-candidate ranking policy name, one of
            :data:`ORDERING_POLICIES`.
        preemptive: Whether the ordering policy may evict a running job
            for a strictly better-ranked one (lossless either way).
        aging_rate: Starvation bound of the non-FCFS orderings; 0
            disables aging.  FCFS takes none, so it must stay 0 there.
        slots: Adapter-slot budget per replica
            (:class:`~repro.serve.admission.SlotAdmission`).
        deadline_gate: Wrap the slot budget in
            :class:`~repro.serve.admission.DeadlineFeasibilityAdmission`,
            shedding arrivals whose expected remaining time no longer
            fits their deadline.
        gate_slack: Feasibility slack of the gate (1.0 = shed only
            provably-doomed arrivals).
        queueing_aware: Charge the replica's planned backlog in the
            feasibility test too (requires ``deadline_gate``).
        window_batches: Global batches planned per live job each wave.
        adaptive_window: Replace the static window with the
            :class:`~repro.serve.orchestrator.AdaptiveWindowConfig`
            control loop (library defaults).
        migration_time_threshold: Completion-horizon skew, in expected
            **seconds**, beyond which the fleet rebalances; ``None``
            disables rebalancing.
        drain_then_migrate: Pay (partial) pipeline drains to unlock
            deep-pipeline migrations; requires a migration trigger.
        autoscale_budget: $/GPU-hour budget of a
            :class:`~repro.serve.autoscaler.FleetAutoscaler` over one
            on-demand pool priced at :data:`GPU_HOURLY_RATE`; ``None``
            keeps the fleet fixed at ``num_replicas``.
        calibrated: Attach a fresh
            :class:`~repro.serve.costing.CalibrationTracker` so prices
            are feedback-corrected as the run unfolds.
        packing: Wave-packing scheme name, one of
            :data:`PACKING_SCHEMES`.  ``"knapsack"`` turns on
            length-aware streaming packing end to end: knapsack wave
            assembly with sticky groups in the orchestrator,
            fragmentation-biased admission ties, and (with the
            ``packing_affinity`` routing) estimator-priced replica
            placement.
        gateway_rate: Per-tenant token-bucket refill of the live
            gateway's door (submissions per virtual second); ``None``
            disables rate limiting.  The gateway knobs parameterize
            :meth:`build_gateway` only -- they are deliberately *not* an
            autotuner axis (the tuner replays traces, and a trace never
            meets the door), but they live on the bundle so a deployed
            gateway's limits serialize, label, and round-trip with the
            rest of its configuration.
        gateway_burst: Token-bucket capacity of the door.
        gateway_queue_bound: Maximum in-flight submissions per tenant at
            the door; ``None`` disables the bound.
        gateway_fairness: Maximum fraction of the total ingress backlog
            one tenant may hold while others wait; ``None`` disables the
            quota.
        gateway_hold: Virtual seconds an accepted submission stays held
            (cancellable) at the door before release into the fleet.
    """

    num_replicas: int = 1
    routing: str = "least_loaded"
    ordering: str = "fcfs"
    preemptive: bool = False
    aging_rate: float = 0.0
    slots: int = 2
    deadline_gate: bool = False
    gate_slack: float = 1.0
    queueing_aware: bool = False
    window_batches: int = 2
    adaptive_window: bool = False
    migration_time_threshold: float | None = None
    drain_then_migrate: bool = False
    autoscale_budget: float | None = None
    calibrated: bool = False
    packing: str = "arrival"
    gateway_rate: float | None = None
    gateway_burst: float = 4.0
    gateway_queue_bound: int | None = None
    gateway_fairness: float | None = None
    gateway_hold: float = 0.0

    def __post_init__(self) -> None:
        if self.packing not in PACKING_SCHEMES:
            raise ScheduleError(f"unknown packing scheme '{self.packing}'")
        if self.num_replicas < 1:
            raise ScheduleError("num_replicas must be at least 1")
        if self.routing not in ROUTING_POLICIES:
            raise ScheduleError(f"unknown routing policy '{self.routing}'")
        if self.ordering not in ORDERING_POLICIES:
            raise ScheduleError(f"unknown ordering policy '{self.ordering}'")
        if self.aging_rate < 0:
            raise ScheduleError("aging_rate must be non-negative")
        if self.ordering == "fcfs" and self.aging_rate:
            raise ScheduleError("FCFS ordering takes no aging_rate")
        if self.slots < 1:
            raise ScheduleError("slots must be at least 1")
        if self.gate_slack <= 0:
            raise ScheduleError("gate_slack must be positive")
        if self.queueing_aware and not self.deadline_gate:
            raise ScheduleError("queueing_aware requires deadline_gate")
        if self.window_batches < 1:
            raise ScheduleError("window_batches must be at least 1")
        if (
            self.migration_time_threshold is not None
            and self.migration_time_threshold <= 0
        ):
            raise ScheduleError("migration_time_threshold must be positive")
        if self.drain_then_migrate and self.migration_time_threshold is None:
            raise ScheduleError("drain_then_migrate requires a migration trigger")
        if self.autoscale_budget is not None:
            if self.autoscale_budget <= 0:
                raise ScheduleError("autoscale_budget must be positive")
            committed = self.num_replicas * GPU_HOURLY_RATE
            if self.autoscale_budget < committed:
                raise ScheduleError(
                    "autoscale_budget cannot cover the initial fleet "
                    f"({self.autoscale_budget} < {committed} $/hour)"
                )
        # GatewayLimits owns the gateway-knob invariants; constructing it
        # here validates the bundle's gateway fields in one place.
        self.gateway_limits()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The bundle as a JSON-ready dict (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeConfig":
        """Rebuild a bundle serialized by :meth:`to_dict` (validated)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ScheduleError(f"unknown ServeConfig fields {sorted(unknown)}")
        return cls(**dict(data))

    def label(self) -> str:
        """A compact human-readable tag for tables and progress lines."""
        parts = [f"x{self.num_replicas}", self.routing, self.ordering]
        if self.preemptive:
            parts.append("preempt")
        if self.aging_rate:
            parts.append(f"age{self.aging_rate:g}")
        parts.append(f"s{self.slots}")
        if self.deadline_gate:
            parts.append("qgate" if self.queueing_aware else "gate")
        parts.append("adaptive" if self.adaptive_window else f"w{self.window_batches}")
        if self.migration_time_threshold is not None:
            parts.append(f"mig{self.migration_time_threshold:g}")
            if self.drain_then_migrate:
                parts.append("drain")
        if self.autoscale_budget is not None:
            parts.append(f"auto${self.autoscale_budget:g}")
        if self.calibrated:
            parts.append("cal")
        if self.packing == "knapsack":
            parts.append("knap")
        if self.gateway_rate is not None:
            parts.append(f"gwr{self.gateway_rate:g}b{self.gateway_burst:g}")
        if self.gateway_queue_bound is not None:
            parts.append(f"gwq{self.gateway_queue_bound}")
        if self.gateway_fairness is not None:
            parts.append(f"gwf{self.gateway_fairness:g}")
        if self.gateway_hold:
            parts.append(f"gwh{self.gateway_hold:g}")
        return "-".join(parts)

    # -- construction -------------------------------------------------------

    def _ordering(self) -> OrderingPolicy:
        """The live ordering policy the bundle names."""
        if self.ordering == "fcfs":
            return FCFSOrdering(preemptive=self.preemptive)
        if self.ordering == "srpt":
            return SRPTOrdering(preemptive=self.preemptive, aging_rate=self.aging_rate)
        if self.ordering == "priority":
            return PriorityOrdering(
                preemptive=self.preemptive, aging_rate=self.aging_rate
            )
        return DeadlineOrdering(preemptive=self.preemptive, aging_rate=self.aging_rate)

    def _routing(self, estimator: CostEstimator) -> RoutingPolicy:
        """The live routing policy the bundle names.

        Under ``packing="knapsack"`` the ``packing_affinity`` policy is
        built in its estimator-priced mode: replicas are scored by the
        predicted post-pack waste of their live set with the tenant
        added, not by mean-length distance.
        """
        if self.routing == "round_robin":
            return RoundRobinRouting()
        if self.routing == "least_loaded":
            return LeastLoadedRouting()
        if self.routing == "packing_affinity":
            if self.packing == "knapsack":
                return PackingAffinityRouting(estimator=estimator)
            return PackingAffinityRouting()
        if self.routing == "priority_headroom":
            return PriorityHeadroomRouting()
        return CostAwareRouting(estimator)

    def _autoscaler(self) -> FleetAutoscaler | None:
        """The autoscaler the bundle names (``None`` for fixed fleets)."""
        if self.autoscale_budget is None:
            return None
        pool = CapacityPool(
            "on-demand",
            "h100",
            hourly_rate=GPU_HOURLY_RATE,
            limit=max(AUTOSCALE_POOL_LIMIT, self.num_replicas),
        )
        return FleetAutoscaler(
            pools=(pool,),
            budget_per_hour=self.autoscale_budget,
            initial_pools=("on-demand",) * self.num_replicas,
            scale_up_backlog=AUTOSCALE_UP_BACKLOG,
            scale_down_backlog=AUTOSCALE_DOWN_BACKLOG,
            provision_delay=AUTOSCALE_PROVISION_DELAY,
            cooldown=AUTOSCALE_COOLDOWN,
        )

    def build(
        self, cost: LayerCostModel, scheduler: SchedulerConfig
    ) -> tuple[list[Executor], ReplicaSetConfig]:
        """Materialize the bundle against a cost model and scheduler.

        Returns fresh streaming executors (one per initial replica) and
        the :class:`~repro.serve.replicaset.ReplicaSetConfig` that wires
        the named policies together.  Every call builds independent
        state -- estimator, calibration tracker, autoscaler, executors
        -- so repeated replays of one bundle cannot leak state into each
        other (equal bundles replay bit-identically).
        """
        tracker = CalibrationTracker() if self.calibrated else None
        estimator = CostEstimator.for_scheduler(cost, scheduler, calibration=tracker)
        admission: SlotAdmission | DeadlineFeasibilityAdmission
        admission = SlotAdmission(self.slots)
        if self.deadline_gate:
            admission = DeadlineFeasibilityAdmission(
                admission,
                slack=self.gate_slack,
                queueing_aware=self.queueing_aware,
            )
        orchestrator = OrchestratorConfig(
            scheduler=scheduler,
            window_batches=self.window_batches,
            admission=admission,
            ordering=self._ordering(),
            estimator=estimator,
            adaptive_window=AdaptiveWindowConfig() if self.adaptive_window else None,
            packing=self.packing,
        )
        factory: Callable[[CapacityPool], Executor] | None = None
        autoscaler = self._autoscaler()
        if autoscaler is not None:

            def factory(pool: CapacityPool) -> Executor:
                return StreamingSimExecutor(cost, scheduler.num_stages)

        config = ReplicaSetConfig(
            orchestrator=orchestrator,
            routing=self._routing(estimator),
            migration_time_threshold=self.migration_time_threshold,
            drain_then_migrate=self.drain_then_migrate,
            autoscaler=autoscaler,
            executor_factory=factory,
        )
        executors: list[Executor] = [
            StreamingSimExecutor(cost, scheduler.num_stages)
            for _ in range(self.num_replicas)
        ]
        return executors, config

    def gateway_limits(self) -> GatewayLimits:
        """The bundle's gateway knobs as a
        :class:`~repro.serve.gateway.GatewayLimits` (validated there)."""
        return GatewayLimits(
            queue_bound=self.gateway_queue_bound,
            rate=self.gateway_rate,
            burst=self.gateway_burst,
            fairness_share=self.gateway_fairness,
            ingress_hold=self.gateway_hold,
        )

    def build_gateway(
        self,
        cost: LayerCostModel,
        scheduler: SchedulerConfig,
        clock: VirtualClock | None = None,
    ) -> ServeGateway:
        """Materialize the bundle as a live serving gateway.

        :meth:`build` plus the front door: constructs the fleet exactly
        as :meth:`build` would (the event kernel; a gateway needs the
        incremental loop), wraps it in a fresh
        :class:`~repro.serve.replicaset.ReplicaSet`, and opens a
        :class:`~repro.serve.gateway.ServeGateway` on it with this
        bundle's :meth:`gateway_limits`.

        Args:
            cost: Stage-cost model the executors simulate against.
            scheduler: Intra-replica scheduler configuration.
            clock: Virtual-time source for the gateway; a 1:1
                :class:`~repro.serve.gateway.WallClock` when omitted.
        """
        from repro.serve.replicaset import ReplicaSet

        executors, config = self.build(cost, scheduler)
        replica_set = ReplicaSet(executors=executors, config=config)
        if clock is None:
            return ServeGateway(replica_set, limits=self.gateway_limits())
        return ServeGateway(
            replica_set, limits=self.gateway_limits(), clock=clock
        )
