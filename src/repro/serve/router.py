"""Tenant routing: which pipeline replica serves an arriving job.

With several independent pipeline replicas (each its own
:class:`~repro.serve.orchestrator.OnlineOrchestrator`), every arriving
:class:`~repro.serve.jobs.ServeJob` must be assigned to exactly one of
them.  The assignment shapes both *load balance* (job throughput, JCT)
and *packing quality*: the per-replica scheduler's head-tail grouping and
microbatch packing work best over tenants with compatible sample-length
profiles, so where a tenant lands matters beyond raw load.

Five pluggable policies ship:

* :class:`RoundRobinRouting` -- cycle over replicas; the stateless
  baseline.
* :class:`LeastLoadedRouting` -- send each job to the replica owing the
  fewest outstanding global batches; the latency-oriented default when
  no cost estimator is configured.
* :class:`PackingAffinityRouting` -- among replicas within a bounded load
  gap of the least loaded, prefer the one already serving tenants with
  the most similar mean sample length, so microbatch shapes stay
  groupable and the merge pass keeps finding head-tail pairs.
* :class:`PriorityHeadroomRouting` -- SLO-aware placement: high-class
  jobs go to the replica with the most free adapter slots, while
  best-effort jobs avoid eating a replica's last reserved slots, so a
  high-class arrival can usually land without waiting (or preempting).
* :class:`CostAwareRouting` -- place each arrival where the fleet's
  expected backlog, **in seconds**, grows least: the replica's expected
  remaining time (:attr:`ReplicaView.expected_remaining_time`, priced by
  each orchestrator's :class:`~repro.serve.costing.CostEstimator`) plus
  the arriving job's marginal expected service time there.  Sharpens
  least-loaded decisions whenever tenants are heterogeneous -- two
  replicas owing the same *batch count* can owe very different amounts
  of *time*.

**Units.**  :class:`ReplicaView` carries both batch-count and
seconds-valued load fields; each field documents its unit, and policies
must not mix them (a batch is not a second).  Seconds-valued fields are
``None`` unless the replica's orchestrator carries a cost estimator;
cost-aware policies fall back to batch counts then.

The :class:`TenantRouter` wraps a policy, validates its choices, and
keeps the adapter-to-replica assignment log that migrations update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ScheduleError
from repro.serve.costing import CostEstimator, TenantProfile
from repro.serve.jobs import ServeJob

__all__ = [
    "FleetArrays",
    "ReplicaView",
    "RoutingPolicy",
    "RoundRobinRouting",
    "LeastLoadedRouting",
    "PackingAffinityRouting",
    "PriorityHeadroomRouting",
    "CostAwareRouting",
    "TenantRouter",
]


@dataclass(frozen=True)
class ReplicaView:
    """A routing-time snapshot of one replica's load.

    Load appears in two units -- **global batches** (counts, always
    available) and **expected seconds** (cost-model-priced, ``None``
    without an estimator).  Every outstanding/remaining field counts
    *all* unfinished work the replica owes: active, **parked
    (preempted)**, and pending jobs alike, so a parked-heavy replica is
    never mistaken for an idle one.

    Attributes:
        index: The replica's position in the set.
        clock: The replica's current virtual time.
        outstanding_batches: Not-yet-stepped global batches the replica
            owes across active, parked, and pending jobs.  Unit:
            batches (a count, not a duration).
        num_active: Jobs currently holding adapter slots.
        num_pending: Jobs queued for a slot.
        num_parked: Preempted jobs waiting (with exported state) to
            resume on this replica.  They hold no slot but their
            remaining work is owed here and is included in
            ``outstanding_batches`` / ``expected_remaining_time``.
        slots_free: Free adapter slots (``None`` = unbounded admission).
        live_mean_lengths: Mean sample length of each active job, in
            tokens (packing-affinity input).
        live_priorities: Priority class of each active job
            (headroom-routing input).
        expected_remaining_time: Expected seconds of service the replica
            still owes across active, parked, and pending jobs, priced
            by its orchestrator's
            :class:`~repro.serve.costing.CostEstimator`.  Unit: virtual
            seconds.  ``None`` without an estimator.
        expected_wave_time: Expected seconds the replica's *next*
            planning wave will take (window-clipped).  Unit: virtual
            seconds.  ``None`` without an estimator.
        live_profiles: Full :class:`~repro.serve.costing.TenantProfile`
            per active job (same order as ``live_mean_lengths``).
            Estimator-mode :class:`PackingAffinityRouting` scores
            candidate replicas by the predicted post-pack waste of the
            live set plus the arrival; empty when the replica's
            orchestrator predates the field or has no live jobs.
    """

    index: int
    clock: float
    outstanding_batches: int
    num_active: int
    num_pending: int
    slots_free: int | None
    live_mean_lengths: tuple[float, ...] = ()
    live_priorities: tuple[int, ...] = ()
    num_parked: int = 0
    expected_remaining_time: float | None = None
    expected_wave_time: float | None = None
    live_profiles: tuple = ()


@dataclass
class FleetArrays:
    """Column-oriented mirror of the fleet's :class:`ReplicaView` rows.

    The event kernel (:class:`~repro.serve.replicaset.ReplicaSet` with
    ``kernel="event"``) keeps one of these fresh with the same dirty-set
    discipline as its cached views: when an event touches replica ``i``,
    row ``i`` is refilled from the rebuilt view; untouched rows keep
    their floats.  Passing it to :meth:`TenantRouter.route` lets an
    array-aware policy (:meth:`CostAwareRouting.choose_arrays`) score a
    1000-replica fleet without re-extracting per-view attributes on
    every arrival -- the values are the *same* float64s the scalar path
    would read, so the decision is bit-identical.

    Attributes:
        backlogs: ``expected_remaining_time`` per replica, in index
            order (0.0 where the view reports ``None``; see
            ``missing``).  Unit: virtual seconds.
        num_active: Jobs holding adapter slots, per replica.
        indices: Replica indices, in view order.
        missing: True where the view's ``expected_remaining_time`` is
            ``None`` -- any True row forces the scalar fallback path.
    """

    backlogs: np.ndarray
    num_active: np.ndarray
    indices: np.ndarray
    missing: np.ndarray

    @classmethod
    def for_fleet(cls, num_replicas: int) -> "FleetArrays":
        """All-stale arrays for a fleet of ``num_replicas`` replicas."""
        return cls(
            backlogs=np.zeros(num_replicas, dtype=np.float64),
            num_active=np.zeros(num_replicas, dtype=np.int64),
            indices=np.arange(num_replicas, dtype=np.int64),
            missing=np.ones(num_replicas, dtype=bool),
        )

    def refill(self, index: int, view: ReplicaView) -> None:
        """Refresh row ``index`` from a freshly rebuilt view."""
        remaining = view.expected_remaining_time
        self.backlogs[index] = 0.0 if remaining is None else remaining
        self.num_active[index] = view.num_active
        self.missing[index] = remaining is None

    def grow(self) -> int:
        """Append one all-stale row (a replica joining the fleet).

        The new row is marked ``missing`` until its first
        :meth:`refill`, so array-aware scoring falls back to the scalar
        path rather than reading zeros for a replica it has never seen.

        Returns:
            The new row's replica index.
        """
        index = len(self.indices)
        self.backlogs = np.append(self.backlogs, 0.0)
        self.num_active = np.append(self.num_active, 0)
        self.indices = np.append(self.indices, index)
        self.missing = np.append(self.missing, True)
        return index


@runtime_checkable
class RoutingPolicy(Protocol):
    """Chooses the replica an arriving job is assigned to."""

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the index of the replica that should serve ``job``."""


@dataclass
class RoundRobinRouting:
    """Cycle over replicas in index order, ignoring load."""

    _next: int = 0

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the next replica in the cycle.

        The cycle walks *positions* in the offered view list but
        returns the view's :attr:`ReplicaView.index` -- under an
        elastic fleet the routable views are a subset of the fleet, so
        a position is not a replica identity.
        """
        view = replicas[self._next % len(replicas)]
        self._next += 1
        return view.index


class LeastLoadedRouting:
    """Send each job to the replica owing the fewest outstanding batches.

    Load is :attr:`ReplicaView.outstanding_batches` -- a **batch count**
    (active + parked + pending), not a duration.  With heterogeneous
    tenants equal counts can hide large wall-clock differences; use
    :class:`CostAwareRouting` (seconds-valued) when an estimator is
    available.
    """

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the least-loaded replica (lowest index breaks ties)."""
        best = min(replicas, key=lambda r: (r.outstanding_batches, r.index))
        return best.index


@dataclass(frozen=True)
class PackingAffinityRouting:
    """Co-locate jobs with similar microbatch shapes, load permitting.

    Among replicas whose outstanding-batch load is within ``load_slack``
    of the least loaded, pick the one whose closest live tenant has the
    most similar mean sample length to the arriving job.  A replica with
    no live tenants counts as a perfect fit (it starts a fresh group), so
    under light load this degrades gracefully to spreading.

    Both the load floor and the slack are in **global batches**
    (:attr:`ReplicaView.outstanding_batches` counts, not seconds);
    length similarity is in **tokens** (mean sample length).

    With an ``estimator`` attached the similarity heuristic is replaced
    by a direct waste prediction: each eligible replica is scored by
    :meth:`~repro.serve.costing.CostEstimator.pack_fragmentation` over
    its live tenant profiles (:attr:`ReplicaView.live_profiles`) *plus*
    the arrival -- the fraction of bin capacity the post-placement
    co-resident set would leave unfilled -- and the lowest predicted
    waste wins.  Mean-length distance can prefer a twin tenant whose
    combined mass straddles a capacity boundary; the fragmentation score
    sees the boundary.

    Attributes:
        load_slack: How many extra outstanding global batches (a count,
            not a duration) a better-fitting replica may carry before
            load wins.
        estimator: Prices predicted post-pack waste per candidate
            replica; ``None`` keeps the legacy mean-length-distance
            rule.
    """

    load_slack: int = 4
    estimator: CostEstimator | None = None

    def __post_init__(self) -> None:
        if self.load_slack < 0:
            raise ScheduleError("load_slack must be non-negative")

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the best shape-affine replica within the load slack."""
        floor = min(r.outstanding_batches for r in replicas)
        eligible = [
            r for r in replicas
            if r.outstanding_batches <= floor + self.load_slack
        ]
        if self.estimator is not None:
            profile = TenantProfile.from_job(job.job)
            best = min(
                eligible,
                key=lambda r: (
                    self.estimator.pack_fragmentation(
                        (*r.live_profiles, profile)
                    ),
                    r.outstanding_batches,
                    r.index,
                ),
            )
            return best.index
        length = job.job.mean_length()

        def distance(view: ReplicaView) -> float:
            if not view.live_mean_lengths:
                return 0.0
            return min(abs(length - other) for other in view.live_mean_lengths)

        best = min(
            eligible,
            key=lambda r: (distance(r), r.outstanding_batches, r.index),
        )
        return best.index


@dataclass(frozen=True)
class PriorityHeadroomRouting:
    """Reserve per-replica slot headroom for high SLO classes.

    High-class jobs (``priority >= high_class``) are placed where the
    most adapter slots are free (then least loaded), so they start
    immediately instead of queueing or preempting.  Best-effort jobs
    prefer replicas with free slots beyond the ``reserve`` (taking one
    still leaves at least the reserve), and among those the replica
    serving the fewest high-class tenants
    (:attr:`ReplicaView.live_priorities`) -- the one where a preemptive
    policy is least likely to evict them.  Only when every replica is
    down to its reserve do they fall back to plain least-loaded
    placement: the reserve is headroom, not a hard partition, so
    low-class work is never unroutable.

    Attributes:
        high_class: Priority at or above which a job is "high class".
        reserve: Free slots per replica kept for high-class arrivals.
    """

    high_class: int = 1
    reserve: int = 1

    def __post_init__(self) -> None:
        if self.reserve < 0:
            raise ScheduleError("reserve must be non-negative")

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the replica respecting the high-class headroom."""
        if job.priority >= self.high_class:
            best = min(
                replicas,
                key=lambda r: (
                    -math.inf if r.slots_free is None else -r.slots_free,
                    r.outstanding_batches,
                    r.index,
                ),
            )
            return best.index
        roomy = [
            r
            for r in replicas
            if r.slots_free is None or r.slots_free > self.reserve
        ]
        if not roomy:
            best = min(replicas, key=lambda r: (r.outstanding_batches, r.index))
            return best.index

        def high_actives(view: ReplicaView) -> int:
            return sum(1 for p in view.live_priorities if p >= self.high_class)

        best = min(
            roomy,
            key=lambda r: (high_actives(r), r.outstanding_batches, r.index),
        )
        return best.index


@dataclass(frozen=True)
class CostAwareRouting:
    """Place where the fleet's expected backlog (seconds) grows least.

    For each replica the score is its expected remaining service time
    (:attr:`ReplicaView.expected_remaining_time`, **seconds**) plus the
    arriving job's *marginal* expected service time there
    (:meth:`~repro.serve.costing.CostEstimator.placement_seconds`,
    priced at the concurrency the job would run at -- a crowded replica
    is charged the multi-adapter kernel overhead the newcomer would
    actually pay).  The replica with the lowest post-placement backlog
    wins; lowest index breaks ties.

    This is the cost-model-foresight upgrade of
    :class:`LeastLoadedRouting`: two replicas owing the same *batch
    count* can owe 5-10x different amounts of *time* once tenant length
    distributions diverge.  It never picks a strictly dominated replica
    (one no better on expected remaining time or concurrency and
    strictly worse on expected remaining time) -- the property
    ``tests/serve/test_costing.py`` asserts.

    When any view lacks ``expected_remaining_time`` (its orchestrator
    has no estimator), the policy falls back to
    :class:`LeastLoadedRouting`'s batch-count rule rather than mixing
    units.

    Attributes:
        estimator: Prices the arriving job's marginal service time per
            candidate replica.  ``None`` drops the marginal term and
            routes on expected remaining time alone (still
            seconds-valued).
    """

    estimator: CostEstimator | None = None

    def choose(self, job: ServeJob, replicas: Sequence[ReplicaView]) -> int:
        """Return the replica whose expected backlog grows least.

        All candidates are priced in one
        :meth:`~repro.serve.costing.CostEstimator.placement_seconds_batch`
        call -- the distinct-concurrency sweep makes a 1000-replica
        decision cost a handful of estimator evaluations, and the array
        arithmetic is bit-identical to pricing each replica alone.
        """
        if any(r.expected_remaining_time is None for r in replicas):
            best = min(replicas, key=lambda r: (r.outstanding_batches, r.index))
            return best.index
        count = len(replicas)
        backlogs = np.fromiter(
            (view.expected_remaining_time or 0.0 for view in replicas),
            dtype=np.float64,
            count=count,
        )
        if self.estimator is not None:
            marginals = self.estimator.placement_seconds_batch(
                job.job,
                [view.num_active for view in replicas],
                [view.index for view in replicas],
            )
            totals = backlogs + marginals
        else:
            totals = backlogs
        indices = np.fromiter(
            (view.index for view in replicas), dtype=np.int64, count=count
        )
        # Secondary key: when the marginal term's float magnitude swamps
        # a small backlog difference, the smaller raw backlog still wins
        # -- a dominated replica is never chosen.  lexsort's last key is
        # primary, so this is min() over (total, backlog, index) tuples.
        order = np.lexsort((indices, backlogs, totals))
        return int(indices[order[0]])

    def choose_arrays(
        self,
        job: ServeJob,
        replicas: Sequence[ReplicaView],
        arrays: FleetArrays,
    ) -> int:
        """:meth:`choose` over pre-extracted fleet columns.

        ``arrays`` holds the same float64 backlogs and activity counts
        the views carry (the event kernel refills rows with its
        dirty-set discipline), so this path returns the same replica as
        :meth:`choose` while skipping the per-arrival attribute
        extraction -- the one O(fleet) Python loop left on the arrival
        hot path.
        """
        if bool(arrays.missing.any()):
            return self.choose(job, replicas)
        backlogs = arrays.backlogs
        if self.estimator is not None:
            marginals = self.estimator.placement_seconds_batch(
                job.job, arrays.num_active, arrays.indices
            )
            totals = backlogs + marginals
        else:
            totals = backlogs
        order = np.lexsort((arrays.indices, backlogs, totals))
        return int(arrays.indices[order[0]])


class TenantRouter:
    """Applies a routing policy and keeps the tenant-to-replica map.

    Args:
        policy: The placement policy consulted per arrival.

    Attributes:
        assignments: Current replica index per routed adapter id
            (updated on migration via :meth:`reassign`).
    """

    def __init__(self, policy: RoutingPolicy) -> None:
        self.policy = policy
        self.assignments: dict[int, int] = {}

    def route(
        self,
        job: ServeJob,
        replicas: Sequence[ReplicaView],
        arrays: FleetArrays | None = None,
    ) -> int:
        """Assign ``job`` to a replica and record the assignment.

        Args:
            job: The arriving job.
            replicas: One view per replica, in index order.
            arrays: Optional column mirror of ``replicas`` (same order,
                same values).  Policies exposing ``choose_arrays`` score
                from it instead of re-walking the views; others ignore
                it.

        Returns:
            The chosen replica index.

        Raises:
            ScheduleError: With no replicas, or when the policy returns
                an index naming none of the offered views.
        """
        if not replicas:
            raise ScheduleError("cannot route with zero replicas")
        chooser = getattr(self.policy, "choose_arrays", None)
        if arrays is not None and chooser is not None:
            index = chooser(job, replicas, arrays)
        else:
            index = self.policy.choose(job, replicas)
        # Validate against the views' identities, not their positions:
        # under an elastic fleet the offered views can be a routable
        # subset.  The positional probe keeps the contiguous full-fleet
        # case O(1); the membership scan only runs for subsets.
        if not (
            0 <= index < len(replicas) and replicas[index].index == index
        ) and not any(view.index == index for view in replicas):
            raise ScheduleError(
                f"routing policy chose replica {index}, not one of the "
                f"{len(replicas)} offered views"
            )
        self.assignments[job.adapter_id] = index
        return index

    def reassign(self, adapter_id: int, replica: int) -> None:
        """Update the map after a migration moved ``adapter_id``."""
        self.assignments[adapter_id] = replica
