"""The cost estimator: price serving decisions in expected seconds.

Every control-plane decision the serving layer makes -- where to route a
tenant, who gets the next adapter slot, whether a deadline is still
feasible, how many batches to plan per wave -- needs a notion of "how
much work is that?".  Counting global batches is the obvious proxy, but
multi-tenant LoRA fleets are heterogeneous by construction: two jobs
with equal outstanding-batch counts can differ 5-10x in wall-clock cost
once sample lengths, attention quadratics, and packing density enter.
The :class:`CostEstimator` closes that gap by pricing jobs, placements,
and planning waves in **expected seconds**, using the same calibrated
:class:`~repro.models.layer_costs.LayerCostModel` the pipeline
simulator executes against, plus each tenant's observed length
distribution (:class:`TenantProfile`).

The estimate starts out *a priori*: it is computed from the tenant's
length distribution before the scheduler has packed a single
microbatch, because that is the information available at routing and
admission time.  Packing fragmentation, head-tail merging, and pipeline
stalls therefore perturb the observed time; the orchestrator records
per-wave predicted/observed pairs
(:attr:`~repro.serve.metrics.OrchestratorResult.wave_estimates`) so the
estimator's honesty is itself a tested, benchmarked quantity.  The
documented tolerance is :data:`CALIBRATION_TOLERANCE`: the
predicted/observed ratio stays within ``[1/tol, tol]`` on the shipped
executors (``tests/serve/test_costing.py`` asserts it property-style
over random tenant mixes, ``benchmarks/bench_cost_routing.py`` gates
the committed numbers).

The estimate does not have to *stay* a priori.  A
:class:`CalibrationTracker` closes the loop: the orchestrator feeds
every wave's ``(predicted, observed)`` pair back in, the tracker folds
the ratio into smoothed per-tenant and per-replica correction factors,
and the estimator multiplies future job/placement/wave prices by them.
With the feedback active the honesty band tightens to
:data:`CORRECTED_CALIBRATION_TOLERANCE` (``benchmarks/
bench_calibration.py`` gates the win on a drifting trace where the a
priori moments go stale mid-run).

No serving module is imported here (only models/scheduler/distsim), so
ordering, admission, routing, and orchestration are all free to build
on the estimator without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.distsim.systems import stage_times
from repro.errors import ScheduleError
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.scheduler.scheduler import SchedulerConfig
from repro.scheduler.types import AdapterJob, Microbatch

__all__ = [
    "CALIBRATION_TOLERANCE",
    "CORRECTED_CALIBRATION_TOLERANCE",
    "TenantProfile",
    "CalibrationTracker",
    "CostEstimator",
]

#: Documented honesty bound for the **uncorrected** (a priori) estimator:
#: the per-run predicted/observed wave-time ratio stays within
#: ``[1/CALIBRATION_TOLERANCE, CALIBRATION_TOLERANCE]`` on the streaming
#: pipeline simulator.  The slack covers what the a priori estimate
#: cannot see: packing fragmentation and per-adapter padding (observed >
#: predicted), head-tail merging (observed < predicted), and pipeline
#: fill/stall effects.
CALIBRATION_TOLERANCE = 2.0

#: Tightened honesty bound once feedback correction is active: with a
#: :class:`CalibrationTracker` folding observed/predicted ratios back
#: into the estimator, the per-run ratio must stay within
#: ``[1/CORRECTED_CALIBRATION_TOLERANCE, CORRECTED_CALIBRATION_TOLERANCE]``
#: -- the correction absorbs the persistent component of the error the
#: wide band existed for, so a corrected run is held to the narrow one.
CORRECTED_CALIBRATION_TOLERANCE = 1.5


@dataclass(frozen=True)
class TenantProfile:
    """A tenant's observed sample-length distribution, as pricing input.

    Attributes:
        mean_length: Mean sample token length (first moment -- drives the
            linear kernel terms).
        mean_sq_length: Mean *squared* sample length (second moment --
            drives the quadratic attention term; a long-sample tenant
            costs more attention time than its token count suggests).
        batch_samples: Average samples per global batch (the dataset's
            sample count over its batch count, so a short final batch is
            priced pro rata).
    """

    mean_length: float
    mean_sq_length: float
    batch_samples: float

    def __post_init__(self) -> None:
        if self.mean_length <= 0 or self.batch_samples <= 0:
            raise ScheduleError("TenantProfile moments must be positive")
        if self.mean_sq_length < self.mean_length**2:
            raise ScheduleError(
                "mean_sq_length below mean_length^2 is not a distribution"
            )

    @classmethod
    def from_job(cls, job: AdapterJob) -> "TenantProfile":
        """Profile of one job's dataset (its observed length stream).

        Cheap to call in hot decision loops: the dataset caches its
        length moments
        (:meth:`~repro.data.dataset.FinetuneDataset.length_moments`),
        and the built profile itself is cached on the dataset (keyed by
        the batch size, the only other input) so repeated pricing of
        the same tenant skips construction and validation entirely.
        """
        dataset = job.dataset
        cached = dataset.__dict__.get("_tenant_profile")
        if cached is not None and cached[0] == job.global_batch_size:
            return cached[1]
        mean, mean_sq = dataset.length_moments()
        profile = cls(
            mean_length=mean,
            mean_sq_length=mean_sq,
            batch_samples=len(dataset) / job.num_global_batches(),
        )
        dataset.__dict__["_tenant_profile"] = (job.global_batch_size, profile)
        return profile


@dataclass
class CalibrationTracker:
    """Feedback-corrected calibration: smoothed observed/predicted factors.

    The orchestrator already records every wave's ``(predicted,
    observed)`` seconds pair; this tracker turns that record into a
    *correction*.  Each :meth:`observe` call folds the wave's
    observed/predicted ratio into an exponentially-weighted moving
    factor -- one per tenant that ran in the wave and one per replica
    the wave ran on -- and :meth:`correction` returns the multiplier the
    :class:`CostEstimator` applies to future prices.

    The update is geometric (EWMA in log space), the natural smoothing
    for a multiplicative quantity: with corrected predictions fed back
    in, ``factor *= ratio**alpha`` is an integral controller on the log
    error, algebraically identical to a geometric EWMA of the *raw*
    observed/predicted ratio with weight ``alpha``.  A perfectly honest
    estimator therefore keeps every factor at 1.0; a tenant whose waves
    keep running 2x longer than priced converges to a factor of 2.0 at
    rate ``alpha`` per wave, and a drift back re-converges the same way.

    What it corrects -- and what it cannot: the tracker removes the
    *persistent, per-tenant/per-replica* component of the estimator's
    error (stale length moments, systematic packing-density bias, a
    replica's constant overhead).  Per-wave noise (merge luck, stall
    alignment) is zero-mean by construction and stays inside the
    residual band, which is why the corrected contract is
    :data:`CORRECTED_CALIBRATION_TOLERANCE`, not 1.0.

    Attributes:
        alpha: EWMA weight of the newest wave's ratio, in ``(0, 1]``
            (1.0 = trust only the latest wave; small = smooth slowly).
        max_correction: Clamp on every factor: corrections stay within
            ``[1/max_correction, max_correction]`` so one pathological
            wave (or a mispriced empty one) cannot poison future
            decisions.
    """

    alpha: float = 0.4
    max_correction: float = 4.0
    _tenant: dict[int, float] = field(default_factory=dict, repr=False)
    _replica: dict[int, float] = field(default_factory=dict, repr=False)
    _version: int = field(default=0, repr=False)
    _last_tenants: tuple[int, ...] = field(default=(), repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ScheduleError("alpha must be in (0, 1]")
        if self.max_correction < 1:
            raise ScheduleError("max_correction must be at least 1")

    def _fold(self, table: dict[int, float], key: int, ratio: float) -> None:
        updated = table.get(key, 1.0) * ratio**self.alpha
        table[key] = min(self.max_correction, max(1 / self.max_correction, updated))

    def observe(
        self,
        predicted: float,
        observed: float,
        tenants: Iterable[int] = (),
        replica: int | None = None,
    ) -> None:
        """Fold one wave's outcome into the correction factors.

        Args:
            predicted: The wave price the control plane actually used
                (corrected, when correction was already active -- the
                update then smooths the *residual* error).
            observed: Executor seconds the wave consumed (idle excluded).
            tenants: Adapter ids that ran in the wave (each one's factor
                absorbs the ratio).
            replica: Replica the wave ran on (its factor absorbs it too).

        Non-positive pairs are ignored: a wave that consumed no
        observable time (or was never priced) carries no signal.
        """
        if predicted <= 0 or observed <= 0:
            return
        tenants = tuple(tenants)
        ratio = observed / predicted
        for adapter_id in tenants:
            self._fold(self._tenant, adapter_id, ratio)
        if replica is not None:
            self._fold(self._replica, replica, ratio)
        self._version += 1
        self._last_tenants = tenants

    def seed_replica(self, replica: int, factor: float) -> None:
        """Install a prior per-replica factor before any wave runs.

        A replica joining the fleet on *slower hardware* would otherwise
        be priced as if it were the reference GPU until enough waves
        close on it for :meth:`observe` to converge -- and during that
        window :class:`~repro.serve.router.CostAwareRouting` and
        deadline admission over-commit it.  Seeding writes the known
        speed ratio (e.g. an L40S joining an A100 fleet seeds the
        L40S/A100 step-time ratio) straight into the per-replica table;
        later observations refine it exactly as if it had been learned.

        Bumps :attr:`version` with an empty
        :attr:`last_observed_tenants`, so version-watching caches
        invalidate the seeded replica's prices without touching any
        tenant's.

        Args:
            replica: Replica index receiving the prior.
            factor: Expected observed/predicted ratio (> 0; > 1 means
                slower than the reference hardware the
                :class:`CostEstimator`'s cost model was built for).
                Clamped to the tracker's correction band.
        """
        if factor <= 0:
            raise ScheduleError("seed factor must be positive")
        self._replica[replica] = min(
            self.max_correction, max(1 / self.max_correction, factor)
        )
        self._version += 1
        self._last_tenants = ()

    @property
    def version(self) -> int:
        """Observations folded so far (a cache-invalidation stamp).

        Corrections change only inside :meth:`observe`, so a caller
        caching prices derived from this tracker can compare versions
        instead of snapshotting factor tables -- the event-driven fleet
        kernel uses it to notice when a wave close on one replica
        repriced a tenant that has since migrated elsewhere.
        """
        return self._version

    @property
    def last_observed_tenants(self) -> tuple[int, ...]:
        """Tenants whose factors the most recent :meth:`observe` folded.

        Paired with :attr:`version`: when exactly one observation
        landed since a caller's snapshot, these are the only tenants
        whose prices can have changed (plus the observing replica's own
        fallback factor).
        """
        return self._last_tenants

    def correction(
        self, adapter_id: int | None = None, replica: int | None = None
    ) -> float:
        """The price multiplier for a decision about one job or wave.

        The most specific signal wins: a tracked per-tenant factor, else
        the tracked per-replica factor, else 1.0 (never both -- each
        factor already absorbed the full wave ratio, so stacking them
        would double-correct).
        """
        if adapter_id is not None and adapter_id in self._tenant:
            return self._tenant[adapter_id]
        if replica is not None and replica in self._replica:
            return self._replica[replica]
        return 1.0

    def tracks_tenant(self, adapter_id: int) -> bool:
        """Whether a per-tenant factor exists for ``adapter_id``.

        When it does, :meth:`correction` returns that factor regardless
        of the ``replica`` argument -- the batched pricing paths use
        this to collapse a per-replica correction gather into one scalar
        multiply.
        """
        return adapter_id in self._tenant

    def tenant_corrections(self) -> dict[int, float]:
        """Current per-tenant factors (a copy; introspection/reporting)."""
        return dict(self._tenant)

    def replica_corrections(self) -> dict[int, float]:
        """Current per-replica factors (a copy; introspection/reporting)."""
        return dict(self._replica)


class CostEstimator:
    """Prices jobs, placements, and waves in expected seconds.

    All estimates reduce to one primitive: the bottleneck-stage
    forward+backward time of a microbatch slot under fwd-first 1F1B
    (:meth:`microbatch_seconds`).  In steady state the pipeline retires
    one microbatch per bottleneck-stage period, so a stream of ``M``
    microbatches costs ``sum of bottleneck times`` plus a fill term of
    ``num_stages - 1`` slots -- the same arithmetic the streaming
    simulator's makespan converges to.

    With a :class:`CalibrationTracker` attached, every identity-carrying
    price (:meth:`job_seconds`, :meth:`placement_seconds`,
    :meth:`wave_seconds`) is additionally multiplied by the tracked
    correction factor -- per tenant when the job is known, per replica
    otherwise -- so the feedback the orchestrator records flows back
    into the next decision.  One estimator (and one tracker) may be
    shared across replicas: corrections are keyed by the ``replica``
    argument the caller passes, not by estimator instance.

    Args:
        cost: The calibrated layer cost model (shared with the
            executor, so predictions and observations price kernels
            identically).
        num_stages: Pipeline depth.
        capacity: Microbatch token budget (packing density input).
        padding_multiple: Per-adapter padding granule ``P``.
        calibration: Feedback correction state; ``None`` keeps the
            estimator purely a priori (the pre-feedback behavior).
    """

    def __init__(
        self,
        cost: LayerCostModel,
        num_stages: int,
        capacity: int,
        padding_multiple: int = 64,
        calibration: CalibrationTracker | None = None,
    ) -> None:
        if num_stages <= 0:
            raise ScheduleError("num_stages must be positive")
        if capacity <= 0 or padding_multiple <= 0:
            raise ScheduleError("capacity and padding_multiple must be positive")
        self.cost = cost
        self.num_stages = num_stages
        self.capacity = capacity
        self.padding_multiple = padding_multiple
        self.calibration = calibration
        # Hot-path memos.  Every entry is a pure function of its key
        # (profiles are frozen, the cost model is fixed at construction),
        # so memoization changes no price -- it only collapses the
        # per-decision stage-time arithmetic that otherwise dominates
        # fleet-scale control loops.
        self._terms_cache: dict[tuple[TenantProfile, int], tuple[int, float]] = {}
        self._wave_terms_cache: dict[TenantProfile, tuple[int, float, float]] = {}
        self._step_cache: float | None = None

    @classmethod
    def for_scheduler(
        cls,
        cost: LayerCostModel,
        scheduler: SchedulerConfig,
        calibration: CalibrationTracker | None = None,
    ) -> "CostEstimator":
        """An estimator matching a scheduler's packing parameters."""
        return cls(
            cost,
            num_stages=scheduler.num_stages,
            capacity=scheduler.capacity,
            padding_multiple=scheduler.padding_multiple,
            calibration=calibration,
        )

    def _correction(
        self, adapter_id: int | None = None, replica: int | None = None
    ) -> float:
        """The tracked price multiplier (1.0 without a tracker)."""
        if self.calibration is None:
            return 1.0
        return self.calibration.correction(adapter_id=adapter_id, replica=replica)

    # -- primitives ---------------------------------------------------------

    def microbatch_seconds(self, shape: MicrobatchShape) -> float:
        """Bottleneck-stage fwd+bwd seconds of one microbatch slot.

        Under fwd-first 1F1B every stage runs one forward and one
        backward per slot, so the slowest stage's fwd+bwd sum is the
        steady-state period per microbatch.
        """
        if shape.tokens <= 0:
            return 0.0
        fwd, bwd = stage_times(self.cost, shape, self.num_stages)
        return max(f + b for f, b in zip(fwd, bwd))

    def roundtrip_seconds(self, shape: MicrobatchShape) -> float:
        """Full pipeline traversal (all stages, fwd+bwd) of one microbatch.

        The per-global-batch *serialization* floor: a tenant's batch
        ``j+1`` cannot start before batch ``j``'s last backward (the
        bubble lemma), so a lone microbatch pays the whole pipeline
        round trip, not just the bottleneck stage.
        """
        if shape.tokens <= 0:
            return 0.0
        fwd, bwd = stage_times(self.cost, shape, self.num_stages)
        return sum(fwd) + sum(bwd)

    def _batch_shape(
        self, profile: TenantProfile, num_adapters: int
    ) -> tuple[int, MicrobatchShape]:
        """``(microbatches, microbatch shape)`` of one global batch."""
        tokens = profile.batch_samples * profile.mean_length
        padded = math.ceil(tokens / self.padding_multiple) * self.padding_multiple
        num_mbs = max(1, math.ceil(padded / self.capacity))
        shape = MicrobatchShape(
            tokens=max(1, round(padded / num_mbs)),
            sum_sq_len=profile.batch_samples / num_mbs * profile.mean_sq_length,
            num_adapters=max(1, num_adapters),
        )
        return num_mbs, shape

    def _batch_terms(
        self, profile: TenantProfile, num_adapters: int
    ) -> tuple[int, float]:
        """``(microbatches, seconds per microbatch)`` of one global batch.

        Memoized per ``(profile, concurrency)``: the stage-time sweep
        behind :meth:`microbatch_seconds` is the expensive part of every
        job/placement price, and fleets re-price the same tenants
        constantly.
        """
        key = (profile, num_adapters)
        terms = self._terms_cache.get(key)
        if terms is None:
            num_mbs, shape = self._batch_shape(profile, num_adapters)
            terms = (num_mbs, self.microbatch_seconds(shape))
            self._terms_cache[key] = terms
        return terms

    def _wave_terms(self, profile: TenantProfile) -> tuple[int, float, float]:
        """``(microbatches, bottleneck seconds, roundtrip seconds)`` memo.

        The per-profile terms :meth:`wave_seconds` combines (waves price
        every tenant at concurrency 1), cached like :meth:`_batch_terms`.
        """
        terms = self._wave_terms_cache.get(profile)
        if terms is None:
            num_mbs, shape = self._batch_shape(profile, 1)
            terms = (
                num_mbs,
                self.microbatch_seconds(shape),
                self.roundtrip_seconds(shape),
            )
            self._wave_terms_cache[profile] = terms
        return terms

    def _step_seconds(self) -> float:
        """The (fixed) optimizer-step price, computed once."""
        if self._step_cache is None:
            self._step_cache = self.cost.optimizer_step_time()
        return self._step_cache

    # -- decision prices ----------------------------------------------------

    def batch_seconds(self, profile: TenantProfile, num_adapters: int = 1) -> float:
        """Expected seconds one global batch of ``profile`` costs.

        Args:
            profile: The tenant's length distribution.
            num_adapters: Adapters sharing the tenant's microbatches
                (prices the multi-adapter kernel; 1 = the tenant packs
                alone, the scheduler's common case).
        """
        num_mbs, mb_seconds = self._batch_terms(profile, num_adapters)
        return num_mbs * mb_seconds + self._step_seconds()

    def job_seconds(
        self,
        job: AdapterJob,
        remaining_batches: int | None = None,
        num_adapters: int = 1,
        replica: int | None = None,
    ) -> float:
        """Expected seconds of service a job still needs.

        Args:
            job: The job (its dataset supplies the length profile).
            remaining_batches: Global batches left (``None`` = the whole
                job; pass banked progress for preempted/active jobs).
            num_adapters: Concurrency the job's kernels are priced at.
            replica: Replica the price is for -- the calibration
                fallback key when the tenant itself is untracked.
        """
        batches = (
            job.num_global_batches()
            if remaining_batches is None
            else remaining_batches
        )
        if batches <= 0:
            return 0.0
        raw = batches * self.batch_seconds(TenantProfile.from_job(job), num_adapters)
        return raw * self._correction(adapter_id=job.adapter_id, replica=replica)

    def placement_seconds(
        self, job: AdapterJob, num_active: int, replica: int | None = None
    ) -> float:
        """Marginal expected seconds ``job`` adds to a replica's backlog.

        Prices the job's whole service at the concurrency it would run
        at after placement (``num_active + 1`` adapters), so a crowded
        replica is charged the multi-adapter kernel overhead the
        newcomer would actually pay there.  Calibration-corrected like
        :meth:`job_seconds` (pass ``replica`` for the per-replica
        fallback factor).
        """
        return self.job_seconds(job, num_adapters=num_active + 1, replica=replica)

    # -- batched prices (candidate sets) ------------------------------------

    def job_seconds_batch(
        self,
        jobs: Sequence[AdapterJob],
        remaining_batches: Sequence[int | None] | None = None,
        num_adapters: int = 1,
        replica: int | None = None,
    ) -> np.ndarray:
        """Price many jobs at once; element ``i`` equals
        ``job_seconds(jobs[i], remaining_batches[i], num_adapters,
        replica)`` **exactly** (bit-for-bit -- the property
        ``tests/serve/test_vectorized.py`` asserts).

        The per-job raw prices come from the same memoized batch terms
        the scalar path uses, and the calibration corrections are
        applied as one elementwise array multiply -- IEEE-754 double
        multiplication either way, so vectorization cannot perturb a
        ranking.

        Args:
            jobs: The candidate jobs.
            remaining_batches: Per-job batches left (``None`` entries --
                or ``None`` for the whole argument -- price the full
                job).
            num_adapters: Concurrency every candidate is priced at.
            replica: Calibration fallback key, as in :meth:`job_seconds`.

        Returns:
            A float64 array of expected seconds, one per job.
        """
        raw = np.empty(len(jobs), dtype=np.float64)
        for i, job in enumerate(jobs):
            left = remaining_batches[i] if remaining_batches is not None else None
            batches = job.num_global_batches() if left is None else left
            if batches <= 0:
                raw[i] = 0.0
                continue
            num_mbs, mb_seconds = self._batch_terms(
                TenantProfile.from_job(job), num_adapters
            )
            raw[i] = batches * (num_mbs * mb_seconds + self._step_seconds())
        if self.calibration is None:
            return raw
        corrections = np.fromiter(
            (
                self.calibration.correction(adapter_id=job.adapter_id, replica=replica)
                for job in jobs
            ),
            dtype=np.float64,
            count=len(jobs),
        )
        return raw * corrections

    def placement_seconds_batch(
        self,
        job: AdapterJob,
        num_active: "Sequence[int] | np.ndarray",
        replicas: "Sequence[int | None] | np.ndarray | None" = None,
    ) -> np.ndarray:
        """Price one arrival against many candidate replicas at once.

        Element ``i`` equals ``placement_seconds(job, num_active[i],
        replicas[i])`` **exactly** -- this is the array op that turns a
        1000-replica routing decision from a thousand estimator calls
        into one distinct-concurrency sweep (fleets concentrate on few
        distinct ``num_active`` values, each priced once) plus an
        elementwise correction multiply.

        Args:
            job: The arriving job.
            num_active: Per-candidate active-job counts (the job would
                run at ``num_active[i] + 1`` adapters there).
            replicas: Per-candidate replica ids for the calibration
                fallback factor (``None`` skips it).

        Returns:
            A float64 array of marginal expected seconds, one per
            candidate.
        """
        batches = job.num_global_batches()
        raw = np.empty(len(num_active), dtype=np.float64)
        if batches <= 0:
            raw.fill(0.0)
        else:
            profile = TenantProfile.from_job(job)
            active = np.asarray(num_active, dtype=np.int64)
            for value in np.unique(active):
                num_mbs, mb_seconds = self._batch_terms(profile, int(value) + 1)
                price = batches * (num_mbs * mb_seconds + self._step_seconds())
                raw[active == value] = price
        if self.calibration is None:
            return raw
        if self.calibration.tracks_tenant(job.adapter_id):
            # The tenant factor shadows every replica factor: one scalar
            # multiply replaces the per-candidate gather.
            return raw * self.calibration.correction(adapter_id=job.adapter_id)
        if replicas is None:
            replicas = [None] * len(num_active)
        corrections = np.fromiter(
            (
                self.calibration.correction(
                    adapter_id=job.adapter_id, replica=replica
                )
                for replica in replicas
            ),
            dtype=np.float64,
            count=len(num_active),
        )
        return raw * corrections

    def pack_fragmentation(self, profiles: Sequence[TenantProfile]) -> float:
        """Predicted post-pack waste of co-residing these tenants.

        The fraction of bin capacity the co-resident set's per-step
        padded token masses would leave unfilled: each profile
        contributes one global batch's padded tokens, the set needs
        ``ceil(sum / capacity)`` bins, and the returned value is
        ``1 - sum / (bins * capacity)``.  Zero for an empty set and for
        sets whose masses land exactly on a capacity multiple.  A pure
        function of the profiles and the packing parameters -- no
        calibration, no replica identity -- so admission interleaving
        and routing affinity can share it and stay deterministic.
        """
        tokens = 0.0
        for profile in profiles:
            raw = profile.batch_samples * profile.mean_length
            tokens += math.ceil(raw / self.padding_multiple) * self.padding_multiple
        if tokens <= 0:
            return 0.0
        bins = max(1, math.ceil(tokens / self.capacity))
        return 1.0 - tokens / (bins * self.capacity)

    def wave_seconds(
        self,
        entries: list[tuple[TenantProfile, int]],
        replica: int | None = None,
        merge_discount: float = 0.0,
    ) -> float:
        """Expected seconds one planning wave takes to execute.

        Args:
            entries: ``(profile, window batches)`` per live job in the
                wave.
            replica: Replica the wave would run on; with a
                :class:`CalibrationTracker` the whole wave price is
                multiplied by that replica's correction factor (wave
                entries carry no tenant identity, so the replica factor
                is the most specific signal available).
            merge_discount: Fraction of the steady-state bound the merge
                pass is expected to recover, in ``[0, 1)``.  Only
                meaningful when grouping is *sticky* (the same layout
                replays wave after wave), which is what makes the
                observed merge fraction a predictor of the next wave's;
                the serialization bound is never discounted -- merging
                shares microbatches, it cannot shorten one tenant's
                batch chain.

        Returns:
            The larger of two lower bounds: the steady-state bound (sum
            of bottleneck-stage microbatch times plus ``num_stages - 1``
            pipeline-fill slots) and the serialization bound (the
            longest single tenant's batch chain -- consecutive global
            batches of one adapter cannot overlap, so a tenant whose
            batches fill fewer microbatches than the pipeline has
            stages pays full round trips, not bottleneck periods).
            With ``merge_discount`` the steady-state bound is scaled by
            ``1 - merge_discount`` before the max.
        """
        if not 0.0 <= merge_discount < 1.0:
            raise ScheduleError(
                f"merge_discount must be in [0, 1), got {merge_discount}"
            )
        total = 0.0
        total_mbs = 0
        longest_chain = 0.0
        for profile, batches in entries:
            if batches <= 0:
                continue
            num_mbs, mb_seconds, roundtrip = self._wave_terms(profile)
            step = self._step_seconds()
            total += batches * (num_mbs * mb_seconds + step)
            total_mbs += batches * num_mbs
            chain = batches * (
                (num_mbs - 1) * mb_seconds
                + roundtrip
                + step
            )
            longest_chain = max(longest_chain, chain)
        if total_mbs:
            total += (self.num_stages - 1) * (total / total_mbs)
        total *= 1.0 - merge_discount
        return max(total, longest_chain) * self._correction(replica=replica)

    def schedule_seconds(self, microbatches: list[Microbatch]) -> float:
        """Price an already-planned microbatch stream (no-ops are free).

        The a posteriori companion of :meth:`wave_seconds`: exact
        shapes instead of distribution moments.  Useful for comparing a
        plan against the simulator without running it.
        """
        return sum(
            self.microbatch_seconds(mb.shape())
            for mb in microbatches
            if not mb.is_noop
        )
