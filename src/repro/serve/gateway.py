"""The live serving gateway: an asyncio front door onto the virtual fleet.

Everything below this module consumes *complete traces*: a list of
:class:`~repro.serve.jobs.ServeJob` arrivals handed to
:meth:`~repro.serve.replicaset.ReplicaSet.run` and replayed inside a sim
loop.  :class:`ServeGateway` is the piece that turns that simulator into
a system: callers ``await submit(...)`` as requests actually happen, and
the gateway maps each submission's wall-clock instant onto the fleet's
virtual time -- a monotone stamp from a :class:`WallClock` (or a
:class:`ManualClock` in tests), an ingress event
(:attr:`~repro.serve.events.EventKind.GATEWAY_INGRESS`) at that stamp,
and a bounded pump of the event kernel up to it.  The fleet never runs
ahead of the door, and the door never reorders time.

**The door is where overload dies.**  Every submission passes four
checks, in a fixed, documented order, before it may enter the fleet:

1. *Per-tenant token-bucket rate limiting* (:attr:`GatewayLimits.rate` /
   :attr:`GatewayLimits.burst`): sustained submission rate above the
   refill rate drains the bucket and sheds with reason
   ``"rate_limited"`` (plus a ``retry_after`` hint, the 429 idiom).
2. *Bounded per-tenant ingress queue* (:attr:`GatewayLimits.queue_bound`):
   a tenant's in-flight backlog -- submissions still held at the door
   plus released jobs the fleet has not yet admitted -- may not exceed
   the bound; beyond it the door sheds with ``"queue_full"`` --
   backpressure, not buffering.
3. *Fairness quota* (:attr:`GatewayLimits.fairness_share`): while other
   tenants are waiting, no tenant may hold more than its share of the
   total ingress backlog (``"quota"``).
4. *Admission at the door*: deadline-carrying submissions are priced by
   the fleet's :class:`~repro.serve.costing.CostEstimator` and tested
   against the same
   :class:`~repro.serve.admission.DeadlineFeasibilityAdmission` gate the
   orchestrator uses (:meth:`~repro.serve.admission
   .DeadlineFeasibilityAdmission.feasible_arrival`) -- a doomed request
   is refused with ``"infeasible"`` before it costs the fleet anything.

A refusal is a value, not an exception: :meth:`ServeGateway.submit`
returns a :class:`GatewayOverload` (the ``429``-style result) and the
shed is counted in the session's :class:`~repro.serve.metrics
.GatewayStats` ledger; an acceptance returns a :class:`GatewayTicket`.
Accepted submissions may sit in a cancellable hold window
(:attr:`GatewayLimits.ingress_hold`) before release; once released into
the fleet a job is owned by the orchestrators and can no longer be
cancelled from the door.

**Conformance is the contract.**  A gateway session records every job it
releases (:meth:`ServeGateway.recorded_trace`, arrival-stamped in
release order); replaying that trace through a fresh
:meth:`~repro.serve.replicaset.ReplicaSet.run` -- on either fleet kernel
-- reproduces the live session's fleet result **bit-identically**,
because the session and the batch loop share every line of event
dispatch (``tests/integration/test_gateway_conformance.py`` asserts it
under hypothesis-randomized submit/cancel/overload interleavings).
``benchmarks/bench_gateway.py`` gates the operational claims: sustained
arrivals/sec, bounded p99 admission latency under a 10x overload burst,
zero admitted jobs lost, and a shed count equal to the backpressure
ledger.
"""

from __future__ import annotations

import asyncio
import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, AsyncIterator, Protocol

from repro.errors import ScheduleError
from repro.scheduler.types import AdapterJob
from repro.serve.admission import DeadlineFeasibilityAdmission
from repro.serve.jobs import ServeJob
from repro.serve.metrics import GatewayStats, JobRecord, ReplicaSetResult
from repro.serve.replicaset import FleetSession, ReplicaSet

if TYPE_CHECKING:
    from repro.runtime.engine import NumericJob
    from repro.serve.costing import CostEstimator

__all__ = [
    "SHED_REASONS",
    "GatewayLimits",
    "GatewayTicket",
    "GatewayOverload",
    "GatewayResult",
    "ManualClock",
    "WallClock",
    "ServeGateway",
]

#: The door's refusal taxonomy, in check order: token bucket, queue
#: bound, fairness quota, deadline feasibility.  Every shed is counted
#: under exactly one of these in :attr:`~repro.serve.metrics
#: .GatewayStats.sheds`.
SHED_REASONS = ("rate_limited", "queue_full", "quota", "infeasible")

#: Slack under which a token bucket still honors a submission, absorbing
#: float refill rounding (a bucket refilled to 0.9999999999999 is full).
_BUCKET_EPSILON = 1e-9

#: Job states :meth:`ServeGateway.stream_progress` treats as terminal.
_TERMINAL_STATUSES = frozenset(
    {"finished", "rejected", "cancelled", "shed", "unknown"}
)


class VirtualClock(Protocol):
    """Anything that can stamp submissions with virtual time."""

    def now(self) -> float:
        """Current virtual time (need not be monotone; the gateway
        clamps its stamps monotone itself)."""
        ...


class WallClock:
    """Virtual time driven by the wall clock.

    The live deployment's clock: virtual zero is the clock's
    construction instant and virtual seconds advance at ``time_scale``
    times wall seconds -- scale above 1.0 to compress a long virtual
    trace into a short wall-clock demo (``examples/gateway_serving.py``
    runs hours of virtual serving in seconds).
    """

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ScheduleError("time_scale must be positive")
        self._scale = time_scale
        self._origin = _time.monotonic()

    def now(self) -> float:
        """Virtual seconds since construction."""
        return (_time.monotonic() - self._origin) * self._scale


class ManualClock:
    """Virtual time advanced explicitly by the caller.

    The deterministic clock tests and benchmarks drive: stamps are
    script-controlled, so a recorded session is reproducible
    byte-for-byte -- the property the conformance suite needs to compare
    a live run against its trace replay.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ScheduleError("a clock cannot start before virtual zero")
        self._now = start

    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (never backward); returns
        the new time."""
        if seconds < 0:
            raise ScheduleError("time only moves forward")
        self._now += seconds
        return self._now


@dataclass(frozen=True)
class GatewayLimits:
    """The door's protection knobs, one frozen bundle.

    Every limit defaults to "off", so a default-constructed gateway
    accepts everything -- protection is opted into per deployment (and
    wired from a :class:`~repro.serve.config.ServeConfig` via
    :meth:`~repro.serve.config.ServeConfig.gateway_limits`).

    Attributes:
        queue_bound: Maximum in-flight submissions per tenant -- held at
            the door plus released but not yet admitted by the fleet;
            beyond it the door sheds ``"queue_full"``.  ``None`` = no
            bound.
        rate: Token-bucket refill, submissions per virtual second per
            tenant; a tenant sustaining more is shed ``"rate_limited"``.
            ``None`` = no rate limit.
        burst: Token-bucket capacity: submissions a tenant may land
            back-to-back before the refill rate binds.
        fairness_share: Maximum fraction of the *total* ingress backlog
            one tenant may occupy while other tenants are waiting
            (``"quota"`` beyond it).  A lone tenant is never
            quota-limited -- fairness has no victim.  ``None`` = no
            quota.
        ingress_hold: Virtual seconds an accepted submission stays held
            (and cancellable) at the door before its release into the
            fleet.  0.0 releases at the submission stamp itself, closing
            the cancellation window.
    """

    queue_bound: int | None = None
    rate: float | None = None
    burst: float = 4.0
    fairness_share: float | None = None
    ingress_hold: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_bound is not None and self.queue_bound < 1:
            raise ScheduleError("queue_bound must admit at least one job")
        if self.rate is not None and self.rate <= 0:
            raise ScheduleError("rate must be positive")
        if self.burst < 1:
            raise ScheduleError("burst must allow at least one submission")
        if self.fairness_share is not None and not 0 < self.fairness_share <= 1:
            raise ScheduleError("fairness_share must lie in (0, 1]")
        if self.ingress_hold < 0:
            raise ScheduleError("ingress_hold must be non-negative")


@dataclass(frozen=True)
class GatewayTicket:
    """A submission the door accepted.

    Attributes:
        adapter_id: The submitted job's adapter identity -- the handle
            for :meth:`ServeGateway.status`, :meth:`ServeGateway.cancel`
            and :meth:`ServeGateway.stream_progress`.
        tenant: Billing identity the submission was admitted under.
        submit_time: Virtual stamp of the submission instant.
        release_time: Virtual stamp the job leaves (or left) the door's
            hold window and enters the fleet; equals ``submit_time``
            when :attr:`GatewayLimits.ingress_hold` is 0.
    """

    adapter_id: int
    tenant: str
    submit_time: float
    release_time: float


@dataclass(frozen=True)
class GatewayOverload:
    """A ``429``-style refusal: the door shed the submission.

    Returned (not raised) by :meth:`ServeGateway.submit` -- overload is
    an expected operating regime, not an error -- and counted in the
    session's :class:`~repro.serve.metrics.GatewayStats` ledger.

    Attributes:
        adapter_id: The refused job's adapter identity (free to
            resubmit later; nothing entered the fleet).
        tenant: Tenant the refusal is billed to.
        time: Virtual stamp of the refusal.
        reason: Which door check refused, one of :data:`SHED_REASONS`.
        retry_after: For ``"rate_limited"`` sheds, virtual seconds until
            the tenant's bucket holds a full token again; ``None`` for
            the other reasons (retrying is pointless until state
            changes).
    """

    adapter_id: int
    tenant: str
    time: float
    reason: str
    retry_after: float | None = None


@dataclass(frozen=True)
class GatewayResult:
    """One drained gateway session: the fleet result plus the door ledger.

    Attributes:
        fleet: The :class:`~repro.serve.metrics.ReplicaSetResult` the
            session's released jobs produced (its ``gateway`` field
            carries the same ledger, so fleet-level consumers see the
            ingress story too).
        stats: The door's :class:`~repro.serve.metrics.GatewayStats`:
            accept/shed/cancel counts and wall-clock admission
            latencies.
    """

    fleet: ReplicaSetResult
    stats: GatewayStats

    @property
    def records(self) -> dict[int, JobRecord]:
        """The fleet's per-job lifecycle records, keyed by adapter id."""
        return self.fleet.records

    def admission_latency_percentiles(self) -> dict[str, float]:
        """The door's p50 / p90 / p99 wall-clock admission latencies."""
        return self.stats.admission_latency_percentiles()


@dataclass
class _HeldJob:
    """One accepted submission sitting in the door's hold window."""

    job: ServeJob  # arrival-stamped at submit time; restamped on release
    release_due: float
    seq: int
    ticket: GatewayTicket


@dataclass
class ServeGateway:
    """The asyncio front door: live submissions onto the virtual fleet.

    Owns a :class:`~repro.serve.replicaset.FleetSession` (opened from
    ``replica_set`` at construction, which consumes the set's single
    shot) and serializes all door work behind one asyncio lock, so
    concurrent ``submit()`` coroutines see a consistent ledger and the
    fleet sees a single deterministic operation order.

    Determinism contract: given the same sequence of (operation, virtual
    stamp) pairs -- which a :class:`ManualClock` scripts exactly -- a
    session is bit-reproducible, and its :meth:`recorded_trace` replays
    bit-identically through the sim path.  Under a :class:`WallClock`
    the stamps come from the machine, so two live runs differ; each
    single run still satisfies the conformance property against its own
    recorded trace.

    Args:
        replica_set: The fleet to serve on; must be freshly constructed
            (single-shot) and configured with ``kernel="event"``.
        limits: Door protection knobs; default accepts everything.
        clock: Virtual-time source; a 1:1 :class:`WallClock` when
            omitted.
    """

    replica_set: ReplicaSet
    limits: GatewayLimits = field(default_factory=GatewayLimits)
    clock: VirtualClock = field(default_factory=WallClock)

    def __post_init__(self) -> None:
        self._session: FleetSession = self.replica_set.open_session()
        orchestrator = self.replica_set.config.orchestrator
        self._estimator: CostEstimator | None = orchestrator.estimator
        admission = orchestrator.admission
        self._gate: DeadlineFeasibilityAdmission | None = (
            admission if isinstance(admission, DeadlineFeasibilityAdmission) else None
        )
        self._lock = asyncio.Lock()
        self.stats = GatewayStats(sheds={reason: 0 for reason in SHED_REASONS})
        self._stamp = 0.0
        self._seq = 0
        self._held: dict[int, _HeldJob] = {}
        self._released: dict[int, str] = {}  # adapter id -> tenant
        self._tenant_released: dict[str, list[int]] = {}
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, at)
        self._tickets: dict[int, GatewayTicket] = {}
        self._overloads: dict[int, GatewayOverload] = {}
        self._cancelled: set[int] = set()
        self._trace: list[ServeJob] = []
        self._result: GatewayResult | None = None

    # -- the door -----------------------------------------------------------

    async def submit(
        self,
        job: AdapterJob,
        tenant: str = "default",
        priority: int = 0,
        deadline: float | None = None,
        numeric: NumericJob | None = None,
    ) -> GatewayTicket | GatewayOverload:
        """Submit one fine-tuning request at the current virtual instant.

        Stamps the submission from the gateway clock (clamped monotone),
        releases any due held jobs, pumps the fleet up to the stamp, and
        runs the four door checks (see the module docstring).  Returns a
        :class:`GatewayTicket` on acceptance or a
        :class:`GatewayOverload` on refusal -- never raises for
        overload; raises only for caller errors (a duplicate in-flight
        adapter id, an invalid payload, a closed gateway).

        Args:
            job: The scheduling view of the request (``batch_offset``
                0; the orchestrator windows it).
            tenant: Billing identity rate/quota/queue checks run under.
            priority: SLO class (larger = more urgent).
            deadline: Absolute virtual finish-by time; gates the
                submission through deadline-feasibility admission at the
                door.
            numeric: Token-level payload for numeric execution.
        """
        async with self._lock:
            return self._submit(job, tenant, priority, deadline, numeric)

    def _submit(
        self,
        job: AdapterJob,
        tenant: str,
        priority: int,
        deadline: float | None,
        numeric: NumericJob | None,
    ) -> GatewayTicket | GatewayOverload:
        started = _time.perf_counter()
        self._require_open()
        adapter_id = job.adapter_id
        if adapter_id in self._held or adapter_id in self._released:
            raise ScheduleError(
                f"adapter {adapter_id} is already in flight; one submission "
                "per adapter id at a time"
            )
        stamp = self._advance_stamp()
        self.stats.submitted += 1
        self._release_due(stamp)
        self._session.advance(stamp)
        serve_job: ServeJob | None = None
        if deadline is not None and deadline <= stamp:
            # Already expired at the door: shed before anything else
            # runs (ServeJob itself would reject the stamp ordering).
            refusal: GatewayOverload | None = GatewayOverload(
                adapter_id=adapter_id,
                tenant=tenant,
                time=stamp,
                reason="infeasible",
            )
        else:
            # Constructing the ServeJob up front also validates the
            # payload (numeric consistency, batch_offset 0) before any
            # check runs.
            serve_job = ServeJob(
                job=job,
                arrival_time=stamp,
                numeric=numeric,
                priority=priority,
                deadline=deadline,
                tenant=tenant,
            )
            refusal = self._door(serve_job, tenant, stamp)
        if refusal is not None:
            self.stats.sheds[refusal.reason] += 1
            self._overloads[adapter_id] = refusal
            self._tickets.pop(adapter_id, None)
            self.stats.admission_latencies.append(_time.perf_counter() - started)
            return refusal
        assert serve_job is not None  # refusal covered the expired case
        self.stats.accepted += 1
        release_due = stamp + self.limits.ingress_hold
        ticket = GatewayTicket(
            adapter_id=adapter_id,
            tenant=tenant,
            submit_time=stamp,
            release_time=release_due,
        )
        self._tickets[adapter_id] = ticket
        self._overloads.pop(adapter_id, None)
        self._cancelled.discard(adapter_id)
        entry = _HeldJob(
            job=serve_job, release_due=release_due, seq=self._seq, ticket=ticket
        )
        self._seq += 1
        if self.limits.ingress_hold > 0:
            self._held[adapter_id] = entry
        else:
            self._release(entry, at=stamp)
            self._session.advance(stamp)
        self.stats.admission_latencies.append(_time.perf_counter() - started)
        return ticket

    def _door(
        self, serve_job: ServeJob, tenant: str, stamp: float
    ) -> GatewayOverload | None:
        """Run the four door checks; a refusal or ``None`` (accept)."""
        limits = self.limits
        adapter_id = serve_job.adapter_id
        if limits.rate is not None:
            tokens, at = self._buckets.get(tenant, (limits.burst, stamp))
            tokens = min(limits.burst, tokens + (stamp - at) * limits.rate)
            if tokens < 1.0 - _BUCKET_EPSILON:
                self._buckets[tenant] = (tokens, stamp)
                return GatewayOverload(
                    adapter_id=adapter_id,
                    tenant=tenant,
                    time=stamp,
                    reason="rate_limited",
                    retry_after=(1.0 - tokens) / limits.rate,
                )
            # A spent token stays spent even if a later check sheds:
            # refusals bill the tenant's rate too, or retry storms
            # against a full queue would be free.
            self._buckets[tenant] = (tokens - 1.0, stamp)
        mine = self._occupancy(tenant)
        if limits.queue_bound is not None and mine >= limits.queue_bound:
            return GatewayOverload(
                adapter_id=adapter_id,
                tenant=tenant,
                time=stamp,
                reason="queue_full",
            )
        if limits.fairness_share is not None:
            total = sum(self._occupancy(t) for t in self._known_tenants())
            others = total - mine
            allowed = max(1, math.ceil(limits.fairness_share * (total + 1)))
            if others > 0 and mine + 1 > allowed:
                return GatewayOverload(
                    adapter_id=adapter_id,
                    tenant=tenant,
                    time=stamp,
                    reason="quota",
                )
        if serve_job.deadline is not None:
            doomed = serve_job.deadline <= stamp + limits.ingress_hold
            if not doomed and self._gate is not None:
                doomed = not self._gate.feasible_arrival(
                    serve_job, stamp, self._estimator
                )
            if doomed:
                return GatewayOverload(
                    adapter_id=adapter_id,
                    tenant=tenant,
                    time=stamp,
                    reason="infeasible",
                )
        return None

    def _known_tenants(self) -> set[str]:
        tenants = {entry.job.tenant or "default" for entry in self._held.values()}
        tenants.update(self._tenant_released)
        return tenants

    def _occupancy(self, tenant: str) -> int:
        """A tenant's in-flight backlog: held plus released-unadmitted."""
        held = sum(
            1
            for entry in self._held.values()
            if (entry.job.tenant or "default") == tenant
        )
        pending = 0
        for adapter_id in self._tenant_released.get(tenant, ()):
            record = self._session.record(adapter_id)
            if record is None:
                pending += 1  # ingress event still queued
            elif (
                record.admit_time is None
                and record.rejected_time is None
                and record.finish_time is None
            ):
                pending += 1
        return held + pending

    def _advance_stamp(self) -> float:
        """Read the clock, clamped monotone over the session."""
        self._stamp = max(self._stamp, float(self.clock.now()))
        return self._stamp

    def _release_due(self, stamp: float) -> None:
        """Release every held job whose hold window has closed."""
        due = sorted(
            (
                entry
                for entry in self._held.values()
                if entry.release_due <= stamp
            ),
            key=lambda entry: (entry.release_due, entry.seq),
        )
        for entry in due:
            del self._held[entry.job.adapter_id]
            self._release(entry, at=entry.release_due)

    def _release(self, entry: _HeldJob, at: float) -> None:
        """Hand one accepted job to the fleet, arrival-stamped ``at``.

        ``at`` is never behind a frontier the fleet was already pumped
        to -- held jobs release at their hold expiry, which monotone
        stamping keeps at or after every earlier pump -- so the ingested
        event replays in the same global order it runs live.
        """
        job = entry.job
        if job.arrival_time != at:
            job = replace(job, arrival_time=at)
        tenant = job.tenant or "default"
        self._session.ingest(job)
        self._trace.append(job)
        self._released[job.adapter_id] = tenant
        self._tenant_released.setdefault(tenant, []).append(job.adapter_id)
        self.stats.released += 1

    # -- job control --------------------------------------------------------

    async def cancel(self, adapter_id: int) -> bool:
        """Cancel a submission still held at the door.

        Only jobs inside their ingress hold window can be cancelled:
        once released, a job belongs to the fleet (its outcome is
        whatever the orchestrators decide).  Returns ``True`` when the
        job was withdrawn, ``False`` otherwise (already released, shed,
        unknown, or the window was 0).  A cancelled adapter id may be
        resubmitted -- nothing of it ever reached the fleet.
        """
        async with self._lock:
            self._require_open()
            entry = self._held.pop(adapter_id, None)
            if entry is None:
                return False
            self._cancelled.add(adapter_id)
            self.stats.cancelled += 1
            return True

    async def status(self, adapter_id: int) -> str:
        """One job's current state, as a stable lowercase token.

        ``"held"`` (cancellable, inside the hold window), ``"queued"``
        (released; ingress event not yet processed), ``"pending"``
        (in the fleet, awaiting an adapter slot), ``"running"``
        (admitted), ``"finished"``, ``"rejected"`` (shed by in-fleet
        admission), ``"cancelled"``, ``"shed"`` (refused at the door),
        or ``"unknown"``.  Status reads do not advance virtual time --
        the fleet only moves on ``submit`` and ``drain``.
        """
        async with self._lock:
            return self._status(adapter_id)

    def _status(self, adapter_id: int) -> str:
        if adapter_id in self._held:
            return "held"
        if adapter_id in self._released:
            record = self._session.record(adapter_id)
            if record is None:
                return "queued"
            if record.rejected_time is not None:
                return "rejected"
            if record.finish_time is not None:
                return "finished"
            if record.admit_time is not None:
                return "running"
            return "pending"
        if adapter_id in self._cancelled:
            return "cancelled"
        if adapter_id in self._overloads:
            return "shed"
        return "unknown"

    async def stream_progress(
        self, adapter_id: int, poll: float = 0.0
    ) -> AsyncIterator[str]:
        """Yield a job's status on every change until it is terminal.

        An async generator: yields the current status immediately, then
        re-checks after each ``poll``-second sleep (0.0 = yield to the
        event loop only) and emits every transition, ending after a
        terminal status (``finished`` / ``rejected`` / ``cancelled`` /
        ``shed`` / ``unknown``).  Progress only happens while other
        coroutines drive the gateway -- run it concurrently with the
        submitting/draining task, as ``examples/gateway_serving.py``
        does.
        """
        last: str | None = None
        while True:
            async with self._lock:
                current = self._status(adapter_id)
            if current != last:
                yield current
                last = current
            if current in _TERMINAL_STATUSES:
                return
            await asyncio.sleep(poll)

    # -- session end --------------------------------------------------------

    async def drain(self) -> GatewayResult:
        """Release everything held, run the fleet dry, fold the result.

        Held jobs whose windows are still open release at their own
        ``release_due`` stamps (the fleet sees them arrive then); the
        kernel is then pumped to exhaustion and every replica finished.
        Idempotent: later calls return the same result.  After a drain
        the gateway is closed to new submissions.
        """
        async with self._lock:
            if self._result is None:
                stamp = self._advance_stamp()
                self._release_due(stamp)
                for entry in sorted(
                    self._held.values(),
                    key=lambda entry: (entry.release_due, entry.seq),
                ):
                    self._release(entry, at=entry.release_due)
                self._held.clear()
                fleet = self._session.finish()
                fleet.gateway = self.stats
                self._result = GatewayResult(fleet=fleet, stats=self.stats)
            return self._result

    def recorded_trace(self) -> list[ServeJob]:
        """The session's released jobs, arrival-stamped in release order.

        The conformance artifact: running this trace through a fresh
        :meth:`~repro.serve.replicaset.ReplicaSet.run` (either kernel)
        reproduces the live session's fleet result bit-identically.
        Shed and cancelled submissions never appear -- they never
        reached the fleet.
        """
        return list(self._trace)

    def _require_open(self) -> None:
        if self._result is not None:
            raise ScheduleError("the gateway is drained; construct a fresh one")
