"""Elastic fleet sizing: scale decisions priced in seconds and dollars.

The fleet built by :class:`~repro.serve.replicaset.ReplicaSet` was a
fixed N of identical replicas; this module makes N a *decision*.  A
:class:`FleetAutoscaler` watches the calibrated seconds-valued backlog
(:meth:`~repro.serve.orchestrator.OnlineOrchestrator.expected_remaining_seconds`)
and the queued SLO-miss pressure
(:meth:`~repro.serve.orchestrator.OnlineOrchestrator.deadline_pressure`)
and answers one question per probe: should a replica join, should one
retire, or is the fleet the right size?  Capacity comes from
:class:`CapacityPool` entries -- named slices of the
:mod:`repro.gpu.specs` hardware table with a $/GPU-hour price, a size
limit, and (for spot pools) reclaimability -- and every join is charged
against a fleet-wide $/hour budget ceiling, so the autoscaler can never
buy its way out of backlog past what the operator priced in.

Three design rules keep scaling inside the deterministic kernel rather
than a second loop around it:

**Decisions are data, actions are events.**  :meth:`FleetAutoscaler.plan`
only *returns* ``("join", pool)`` or ``("retire", index)``; the fleet
loop turns that into a :attr:`~repro.serve.events.EventKind.REPLICA_JOIN`
heap event (landing ``provision_delay`` virtual seconds later -- capacity
is never instant) or an immediate
:attr:`~repro.serve.events.EventKind.REPLICA_RETIRE`.  Scale actions
therefore pop in the same ``(time, (kind, lane), seq)`` total order as
every other event, and reruns stay byte-identical.

**Heterogeneity is a correction factor, not a special case.**  A pool's
:attr:`CapacityPool.speed_factor` (its step-time ratio versus the
hardware the estimator's cost model was built for) is seeded into the
:class:`~repro.serve.costing.CalibrationTracker` the moment the replica
joins (:meth:`~repro.serve.costing.CalibrationTracker.seed_replica`),
so cost-aware routing and deadline admission price an L40S honestly
from its first wave instead of converging to the truth over several.

**Reclamation is a deadline, not a kill.**  A
:class:`ReclamationNotice` marks spot replicas draining at notice time
and schedules a
:attr:`~repro.serve.events.EventKind.RECLAIM_DEADLINE`; within the
grace window jobs leave losslessly (free movers immediately, in-flight
ones at wave boundaries), and whatever is still resident at the
deadline is force-drained to a step boundary and evacuated with full
state -- parked for re-admission elsewhere, never lost.

The module deliberately imports nothing from the fleet loop (no
``replicaset``), mirroring :mod:`repro.serve.events`: the autoscaler is
a policy object the loop *consults*, testable on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.gpu.specs import get_gpu

__all__ = ["CapacityPool", "FleetAutoscaler", "ReclamationNotice"]


@dataclass(frozen=True)
class CapacityPool:
    """A named, priced slice of acquirable capacity.

    The capacity-as-config record the autoscaler buys replicas from: a
    hardware type out of the :mod:`repro.gpu.specs` registry, a
    $/GPU-hour price, a size limit, and whether the provider may
    reclaim it (spot).  Heterogeneous fleets are just several pools --
    e.g. a small on-demand A100 pool for the baseline plus a cheap spot
    L40S pool for burst -- and the :attr:`speed_factor` carries each
    pool's honest price in *time* (the estimator's correction seed), so
    a cheap-but-slow pool is cheap in dollars and expensive in seconds,
    never silently both cheap.

    Attributes:
        name: Unique pool id (also the unit of the size limit).
        gpu: :mod:`repro.gpu.specs` registry key (``"a100-sxm"``,
            ``"l40s"``...); resolved at construction so typos fail fast.
        hourly_rate: $/GPU-hour charged while a replica from this pool
            is in the fleet (provisioning time included -- capacity is
            billed from the buy decision, like real clouds do).
        limit: Most replicas this pool can supply at once.
        speed_factor: Expected observed/predicted step-time ratio versus
            the reference hardware the fleet's cost model was built for
            (> 1 means slower).  Seeded per-replica into the
            :class:`~repro.serve.costing.CalibrationTracker` on join.
        spot: Whether a :class:`ReclamationNotice` may take replicas of
            this pool back.  On-demand pools are never reclaimed.
    """

    name: str
    gpu: str
    hourly_rate: float
    limit: int
    speed_factor: float = 1.0
    spot: bool = False

    def __post_init__(self) -> None:
        get_gpu(self.gpu)  # unknown hardware fails at construction
        if not self.name:
            raise ScheduleError("pool name must be non-empty")
        if self.hourly_rate < 0:
            raise ScheduleError("hourly_rate must be non-negative")
        if self.limit < 1:
            raise ScheduleError("pool limit must be at least 1")
        if self.speed_factor <= 0:
            raise ScheduleError("speed_factor must be positive")


@dataclass(frozen=True)
class ReclamationNotice:
    """A provider taking spot capacity back, with a grace window.

    Fires as a :attr:`~repro.serve.events.EventKind.REPLICA_RETIRE`
    heap event at :attr:`time`; the fleet loop marks the chosen victims
    draining (unroutable) and schedules each one's
    :attr:`~repro.serve.events.EventKind.RECLAIM_DEADLINE` at
    ``time + deadline``.  Jobs that cannot leave losslessly within the
    window are force-drained to a step boundary at the deadline and
    evacuated with full state -- the forced path costs latency, never
    data.

    Attributes:
        time: Virtual time the notice arrives.
        count: Replicas the provider takes back (clamped to the spot
            replicas actually live; a notice can never take the last
            routable replica).
        deadline: Grace seconds between the notice and the forced kill.
    """

    time: float
    count: int
    deadline: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ScheduleError("notice time must be non-negative")
        if self.count < 1:
            raise ScheduleError("notice count must be at least 1")
        if self.deadline < 0:
            raise ScheduleError("reclamation deadline must be non-negative")


@dataclass
class FleetAutoscaler:
    """Sizes the fleet against backlog, SLO pressure, and a $ budget.

    Pure policy: the fleet loop
    (:class:`~repro.serve.replicaset.ReplicaSet` with
    ``kernel="event"``) probes :meth:`plan` after load-changing events,
    turns its decision into kernel events, and reports landings back
    through :meth:`on_joined` / :meth:`on_retired`.  All state lives in
    plain dicts keyed by replica index; nothing here depends on wall
    time or hashing order, so autoscaled runs rerun byte-identically.

    Scaling logic, in one paragraph: let ``per`` be the fleet's summed
    estimator-priced backlog seconds divided by the number of routable
    replicas.  Scale **up** when ``per`` exceeds
    :attr:`scale_up_backlog` *or* any queued deadline job is already
    priced as missed (``pressure > 0``), buying from the cheapest pool
    with free limit whose rate still fits under
    :attr:`budget_per_hour`.  Scale **down** when ``per`` falls below
    :attr:`scale_down_backlog` *and* pressure is zero *and* more than
    :attr:`min_replicas` replicas are routable, retiring the emptiest
    replica (ties: most expensive first, then youngest).  The two
    thresholds form a hysteresis band so a backlog hovering at one
    value cannot flap the fleet, and :attr:`cooldown` spaces actions so
    a burst of arrival events buys at most one replica per window.

    Attributes:
        pools: Capacity on offer (order is the cheapest-first
            tie-break: equal-rate pools are bought in declaration
            order).
        budget_per_hour: Ceiling on the fleet's committed $/hour (live
            plus in-flight replicas); joins that would cross it are
            refused no matter the backlog.
        initial_pools: Pool name per *initial* replica, parallel to the
            executor list handed to the fleet -- the starting fleet is
            billed and limited like autoscaled capacity.
        scale_up_backlog: Backlog seconds per routable replica above
            which the fleet grows.
        scale_down_backlog: Backlog seconds per routable replica below
            which the fleet shrinks (must sit strictly below the up
            threshold -- the hysteresis band).
        provision_delay: Virtual seconds between the buy decision and
            the replica becoming routable (its
            :attr:`~repro.serve.events.EventKind.REPLICA_JOIN` landing).
        cooldown: Minimum virtual seconds between scale decisions.
        min_replicas: Routable-replica floor scale-down respects.
        reclamations: Spot-reclamation notices to inject into the run
            (the fleet loop schedules one
            :attr:`~repro.serve.events.EventKind.REPLICA_RETIRE` per
            notice at its time).
    """

    pools: tuple[CapacityPool, ...]
    budget_per_hour: float
    initial_pools: tuple[str, ...]
    scale_up_backlog: float = 60.0
    scale_down_backlog: float = 10.0
    provision_delay: float = 5.0
    cooldown: float = 10.0
    min_replicas: int = 1
    reclamations: tuple[ReclamationNotice, ...] = ()
    _by_name: dict[str, CapacityPool] = field(
        default_factory=dict, repr=False, init=False
    )
    _pool_of: dict[int, CapacityPool] = field(
        default_factory=dict, repr=False, init=False
    )
    _live: dict[str, int] = field(default_factory=dict, repr=False, init=False)
    _committed_rate: float = field(default=0.0, repr=False, init=False)
    _last_action: float = field(default=float("-inf"), repr=False, init=False)

    def __post_init__(self) -> None:
        self.pools = tuple(self.pools)
        self.initial_pools = tuple(self.initial_pools)
        self.reclamations = tuple(self.reclamations)
        if not self.pools:
            raise ScheduleError("autoscaler needs at least one capacity pool")
        for pool in self.pools:
            if pool.name in self._by_name:
                raise ScheduleError(f"duplicate pool name {pool.name!r}")
            self._by_name[pool.name] = pool
            self._live[pool.name] = 0
        if self.budget_per_hour <= 0:
            raise ScheduleError("budget_per_hour must be positive")
        if not 0 <= self.scale_down_backlog < self.scale_up_backlog:
            raise ScheduleError(
                "scale_down_backlog must sit in [0, scale_up_backlog) -- "
                "the thresholds are a hysteresis band"
            )
        if self.provision_delay < 0 or self.cooldown < 0:
            raise ScheduleError("delays must be non-negative")
        if self.min_replicas < 1:
            raise ScheduleError("min_replicas must be at least 1")
        for name in self.initial_pools:
            if name not in self._by_name:
                raise ScheduleError(f"initial pool {name!r} is not a pool")

    # -- fleet bookkeeping ---------------------------------------------------

    def attach(self, index: int, name: str) -> CapacityPool:
        """Bind an *initial* replica to its pool; bill and count it.

        Called once per starting executor by the fleet loop (in index
        order, using :attr:`initial_pools`).  Enforces the same limit
        and budget discipline autoscaled joins face, so a starting
        fleet the operator could not afford fails at construction, not
        mid-run.

        Returns:
            The pool, so the caller can read its rate and seed factor.
        """
        pool = self._by_name[name]
        self._commit(pool)
        self._pool_of[index] = pool
        return pool

    def _commit(self, pool: CapacityPool) -> None:
        if self._live[pool.name] >= pool.limit:
            raise ScheduleError(f"pool {pool.name!r} is at its limit")
        if self._committed_rate + pool.hourly_rate > self.budget_per_hour:
            raise ScheduleError(
                f"pool {pool.name!r} would exceed the "
                f"${self.budget_per_hour}/h budget"
            )
        self._live[pool.name] += 1
        self._committed_rate += pool.hourly_rate

    def on_joined(self, index: int, pool: CapacityPool) -> None:
        """Record a scale-up landing: ``index`` now runs on ``pool``.

        The pool was already billed and counted when :meth:`plan`
        committed the buy (capacity bills from the decision, not the
        landing); this only binds the new replica index.
        """
        self._pool_of[index] = pool

    def on_retired(self, index: int) -> None:
        """Release a retired/reclaimed replica's budget and pool slot."""
        pool = self._pool_of.pop(index)
        self._live[pool.name] -= 1
        self._committed_rate -= pool.hourly_rate

    def pool_of(self, index: int) -> CapacityPool:
        """The pool a live replica was bought from (rate, spot-ness)."""
        return self._pool_of[index]

    @property
    def committed_rate(self) -> float:
        """Current fleet $/hour (live plus in-flight replicas)."""
        return self._committed_rate

    # -- decisions -----------------------------------------------------------

    def ready(self, now: float) -> bool:
        """Whether the cooldown window since the last action has passed.

        The fleet loop checks this *before* computing the (fleet-wide,
        O(jobs)) backlog and pressure signals, so a cold autoscaler
        costs nothing on the event hot path.
        """
        return now - self._last_action >= self.cooldown

    def plan(
        self,
        now: float,
        loads: list[tuple[int, float]],
        pressure: int,
    ) -> tuple[str, CapacityPool | int] | None:
        """One scaling decision from the current fleet signals.

        Args:
            now: The probing event's virtual time.
            loads: ``(replica index, backlog seconds)`` per *routable*
                replica -- draining and retired replicas are excluded;
                their leftover work shows up in nobody's backlog until
                it lands somewhere routable.
            pressure: Fleet-wide sum of queued already-priced-as-missed
                deadline jobs (see
                :meth:`~repro.serve.orchestrator.OnlineOrchestrator.deadline_pressure`).

        Returns:
            ``("join", pool)`` -- the caller schedules a
            :attr:`~repro.serve.events.EventKind.REPLICA_JOIN` at
            ``now + provision_delay``; the pool is already billed.
            ``("retire", index)`` -- the caller begins a graceful
            drain-then-retire of that replica.  ``None`` -- fleet is
            the right size (or cooling down / out of budget).
        """
        if not self.ready(now):
            return None
        routable = len(loads)
        per = sum(backlog for _, backlog in loads) / routable if routable else 0.0
        starving = routable == 0
        if starving or per > self.scale_up_backlog or pressure > 0:
            pool = self._cheapest_available()
            if pool is None:
                return None
            self._commit(pool)
            self._last_action = now
            return ("join", pool)
        if (
            per < self.scale_down_backlog
            and pressure == 0
            and routable > self.min_replicas
        ):
            # Emptiest replica; ties go to the most expensive pool,
            # then the youngest replica (highest index) -- all total
            # orders, so the victim is deterministic.
            index, _ = min(
                loads,
                key=lambda item: (
                    item[1],
                    -self._pool_of[item[0]].hourly_rate,
                    -item[0],
                ),
            )
            self._last_action = now
            return ("retire", index)
        return None

    def _cheapest_available(self) -> CapacityPool | None:
        best: CapacityPool | None = None
        for pool in self.pools:
            if self._live[pool.name] >= pool.limit:
                continue
            if self._committed_rate + pool.hourly_rate > self.budget_per_hour:
                continue
            if best is None or pool.hourly_rate < best.hourly_rate:
                best = pool
        return best

    def pick_reclaim_victims(self, count: int, candidates: list[int]) -> list[int]:
        """The spot replicas a reclamation notice takes back.

        Providers reclaim their own (spot) hardware: only candidates
        bought from ``spot=True`` pools qualify, newest (highest index)
        first -- the replicas bought for burst go back first.  At least
        one candidate always survives, so a notice can shrink the fleet
        to one routable replica but never to zero.

        Args:
            count: Replicas the notice asks for.
            candidates: Routable replica indices at notice time.

        Returns:
            Victim indices, possibly fewer than ``count`` (no spot
            capacity left to take), possibly empty.
        """
        spot = sorted(
            (i for i in candidates if self._pool_of[i].spot), reverse=True
        )
        ceiling = min(count, len(candidates) - 1)
        return spot[: max(0, ceiling)]
