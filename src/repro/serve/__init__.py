"""Online multi-tenant serving: continuous scheduling over live jobs.

This layer turns the offline schedule->execute pipeline into a serving
system: jobs arrive over virtual time, are admitted against an
adapter-slot budget, scheduled window by window, spliced into the
in-flight microbatch stream, and retired on completion -- with the same
losslessness guarantee the offline path has.

Admission is SLO-aware: a pluggable :class:`OrderingPolicy` ranks slot
candidates (FCFS, SRPT on remaining batches, priority classes, or
earliest deadline first), preemptive policies evict running jobs
losslessly (state exported at an optimizer-step boundary, parked, and
resumed bit-identically), and ``mid_wave_admission`` lets an urgent
arrival cut the running wave instead of waiting for its boundary.

The control plane is cost-model-driven and **closed-loop**: a
:class:`CostEstimator` (:mod:`repro.serve.costing`) prices jobs,
placements, and planning waves in expected seconds; every executed wave
records a predicted/observed pair; and a :class:`CalibrationTracker`
folds those pairs back into smoothed per-tenant/per-replica correction
factors, so routing, ordering, admission, window sizing, and
rebalancing all act on time that keeps itself honest.  The full
estimator math, units discipline, and calibration contract live in
``docs/costing.md``; the operator-facing guide is ``docs/serving.md``;
the module map is ``docs/architecture.md``.

Exported API, by concern (one line each; the class docstrings carry the
contracts):

**Jobs & executors** (``docs/serving.md``)
  * :class:`ServeJob` -- one tenant's request: scheduling view, arrival
    time, optional numeric payload, SLO metadata.
  * :class:`JobOutcome` -- terminal state enum: finished / rejected /
    unfinished.
  * :func:`poisson_workload` -- wrap offline jobs into Poisson arrivals.
  * :class:`Executor` -- the streaming execution protocol (submit /
    drain / export / import).
  * :class:`NumericExecutor` -- real weights behind the protocol
    (losslessness-testable).
  * :class:`StreamingSimExecutor` -- incremental 1F1B pipeline
    simulation (cost-model time).
  * :class:`StepEvent` -- one completed optimizer step, timestamped.
  * :class:`StreamSplicer` -- bubble-safe junctions between planning
    windows.

**Orchestration** (``docs/serving.md``)
  * :class:`OnlineOrchestrator` -- the serving loop over one executor:
    admit, plan, splice, execute, retire.
  * :class:`OrchestratorConfig` -- its tunables (window, admission,
    ordering, estimator, adaptive window, packing scheme).
  * :class:`AdaptiveWindowConfig` -- the window control loop: shrink
    under churn, grow when stable, cap by predicted wave seconds.
  * :class:`MigrationTicket` -- a job in transit between orchestrators.

**Admission** (``docs/costing.md`` section "Choosing policies")
  * :class:`AdmissionPolicy` -- the slot-budget protocol.
  * :class:`SlotAdmission` -- a fixed adapter-slot budget.
  * :class:`MemoryAdmission` -- the budget the GPU memory model derives.
  * :class:`DeadlineFeasibilityAdmission` -- shed deadline-infeasible
    arrivals; optionally queueing-aware (charge the planned backlog).

**Ordering** (``docs/serving.md`` section "SLO & fairness")
  * :class:`OrderingPolicy` -- the slot-candidate ranking protocol.
  * :class:`JobView` -- the policy-facing candidate snapshot.
  * :class:`FCFSOrdering` / :class:`SRPTOrdering` /
    :class:`PriorityOrdering` / :class:`DeadlineOrdering` -- arrival
    order, shortest-remaining (batches or priced seconds), SLO classes,
    EDF/least-laxity; all but FCFS take an aging starvation bound.
  * :func:`policy_keys` -- rank a whole candidate set at once
    (vectorized for shipped policies, scalar fallback for custom ones).

**Fleet kernel** (``docs/architecture.md`` section "The fleet kernel")
  * :class:`EventKernel` -- the discrete-event heart of
    :class:`ReplicaSet`: one global clock, a deterministic event heap,
    an immediate control lane.
  * :class:`Event` -- one scheduled occurrence (time, kind, lane, seq;
    lazily cancellable).
  * :class:`EventKind` -- the event taxonomy: arrival, wave close,
    rebalance, migration, flush, plus the scale events (replica join /
    retire, reclaim deadline).
  * :class:`FleetArrays` -- column mirror of the fleet's routing views,
    kept fresh by the kernel's dirty-set caching so array-aware routing
    skips per-arrival attribute extraction.

**Costing** (``docs/costing.md``)
  * :class:`CostEstimator` -- prices jobs/placements/waves in expected
    seconds from the layer cost model + tenant length moments.
  * :class:`TenantProfile` -- a tenant's length moments, as pricing
    input.
  * :class:`CalibrationTracker` -- the feedback loop: smoothed
    observed/predicted correction factors per tenant and replica.
  * :data:`CALIBRATION_TOLERANCE` -- the a priori honesty band.
  * :data:`CORRECTED_CALIBRATION_TOLERANCE` -- the tightened band once
    correction is active.

**Routing & scale-out** (``docs/serving.md`` section "Many pipelines")
  * :class:`ReplicaSet` / :class:`ReplicaSetConfig` -- N orchestrators,
    one tenant stream; skew-triggered (batches or seconds) lossless
    migration, optional drain-then-migrate unlock.
  * :class:`TenantRouter` -- applies a routing policy, keeps the
    tenant-to-replica map.
  * :class:`RoutingPolicy` -- the placement protocol.
  * :class:`ReplicaView` -- a replica's load snapshot, in both units
    (batch counts and expected seconds).
  * :class:`RoundRobinRouting` / :class:`LeastLoadedRouting` /
    :class:`PackingAffinityRouting` / :class:`PriorityHeadroomRouting` /
    :class:`CostAwareRouting` -- cycle, fewest batches, shape affinity,
    SLO headroom, least seconds-valued backlog growth.

**Autoscaling** (``docs/serving.md`` section "Elastic fleets")
  * :class:`FleetAutoscaler` -- scales the replica count against the
    seconds-valued backlog within a $/GPU-hour budget; scale actions
    are kernel events, spot reclamation is deadline-driven lossless
    evacuation.
  * :class:`CapacityPool` -- one procurable capacity tier: GPU kind,
    hourly price, replica limit, relative speed, spot flag.
  * :class:`ReclamationNotice` -- a scripted spot reclamation: notice
    time, replicas taken, evacuation grace period.

**Live gateway** (``docs/serving.md`` section "Live gateway")
  * :class:`ServeGateway` -- the asyncio front door: wall-clock
    submissions stamped onto virtual time, four door checks (rate,
    queue bound, fairness quota, deadline feasibility), cancellable
    hold window, and a recorded trace that replays bit-identically
    through the sim path.
  * :class:`GatewayLimits` -- the door's protection knobs (all off by
    default).
  * :class:`GatewayTicket` / :class:`GatewayOverload` -- the two submit
    outcomes: accepted, or shed ``429``-style with a reason from
    :data:`SHED_REASONS`.
  * :class:`GatewayResult` -- a drained session: the fleet result plus
    the door's ledger.
  * :class:`GatewayStats` -- that ledger: accept/shed/cancel counts and
    wall-clock admission latencies.
  * :class:`FleetSession` -- the incremental fleet loop under the
    gateway (ingest / advance / finish on the event kernel).
  * :class:`WallClock` / :class:`ManualClock` -- virtual-time sources:
    scaled wall clock for live runs, scripted clock for deterministic
    tests.

**Metrics** (``docs/serving.md`` section "Metrics")
  * :class:`JobRecord` -- one job's lifecycle timestamps and totals.
  * :class:`OrchestratorResult` -- one pipeline's run: latency views,
    calibration views, counters.
  * :class:`ReplicaSetResult` -- the fleet aggregate (sums and weighted
    means that match per-replica drill-down), including the billing
    view: per-replica active ``replica_intervals``, the ``gpu_seconds``
    they sum to, and the ``dollars_spent`` they price to.

**Declarative config** (``docs/tuning.md``)
  * :class:`ServeConfig` -- the whole control plane as one frozen,
    JSON-round-trippable bundle of policy names and scalar knobs; the
    candidate form the autotuner (:mod:`repro.tune`) searches over.
  * :data:`ROUTING_POLICIES` / :data:`ORDERING_POLICIES` /
    :data:`PACKING_SCHEMES` -- the policy and scheme names a bundle
    accepts, in documented order.
  * :data:`GPU_HOURLY_RATE` -- the reference $/GPU-hour that prices
    fixed-fleet runs onto the same dollars axis autoscaled runs bill
    on.
"""

from repro.serve.admission import (
    AdmissionPolicy,
    DeadlineFeasibilityAdmission,
    MemoryAdmission,
    SlotAdmission,
)
from repro.serve.autoscaler import (
    CapacityPool,
    FleetAutoscaler,
    ReclamationNotice,
)
from repro.serve.config import (
    GPU_HOURLY_RATE,
    ORDERING_POLICIES,
    PACKING_SCHEMES,
    ROUTING_POLICIES,
    ServeConfig,
)
from repro.serve.costing import (
    CALIBRATION_TOLERANCE,
    CORRECTED_CALIBRATION_TOLERANCE,
    CalibrationTracker,
    CostEstimator,
    TenantProfile,
)
from repro.serve.events import Event, EventKernel, EventKind
from repro.serve.gateway import (
    SHED_REASONS,
    GatewayLimits,
    GatewayOverload,
    GatewayResult,
    GatewayTicket,
    ManualClock,
    ServeGateway,
    WallClock,
)
from repro.serve.executors import (
    Executor,
    NumericExecutor,
    StepEvent,
    StreamingSimExecutor,
)
from repro.serve.jobs import JobOutcome, ServeJob, poisson_workload
from repro.serve.metrics import (
    GatewayStats,
    JobRecord,
    OrchestratorResult,
    ReplicaSetResult,
)
from repro.serve.orchestrator import (
    AdaptiveWindowConfig,
    MigrationTicket,
    OnlineOrchestrator,
    OrchestratorConfig,
)
from repro.serve.ordering import (
    DeadlineOrdering,
    FCFSOrdering,
    JobView,
    OrderingPolicy,
    PriorityOrdering,
    SRPTOrdering,
    policy_keys,
)
from repro.serve.replicaset import FleetSession, ReplicaSet, ReplicaSetConfig
from repro.serve.router import (
    CostAwareRouting,
    FleetArrays,
    LeastLoadedRouting,
    PackingAffinityRouting,
    PriorityHeadroomRouting,
    ReplicaView,
    RoundRobinRouting,
    RoutingPolicy,
    TenantRouter,
)
from repro.serve.splice import StreamSplicer

__all__ = [
    "AdaptiveWindowConfig",
    "AdmissionPolicy",
    "CALIBRATION_TOLERANCE",
    "CORRECTED_CALIBRATION_TOLERANCE",
    "CalibrationTracker",
    "CapacityPool",
    "CostAwareRouting",
    "CostEstimator",
    "DeadlineFeasibilityAdmission",
    "DeadlineOrdering",
    "Event",
    "EventKernel",
    "EventKind",
    "Executor",
    "FCFSOrdering",
    "FleetArrays",
    "FleetAutoscaler",
    "FleetSession",
    "GPU_HOURLY_RATE",
    "GatewayLimits",
    "GatewayOverload",
    "GatewayResult",
    "GatewayStats",
    "GatewayTicket",
    "JobOutcome",
    "JobRecord",
    "JobView",
    "LeastLoadedRouting",
    "ManualClock",
    "MemoryAdmission",
    "MigrationTicket",
    "NumericExecutor",
    "ORDERING_POLICIES",
    "OnlineOrchestrator",
    "OrchestratorConfig",
    "OrchestratorResult",
    "OrderingPolicy",
    "PACKING_SCHEMES",
    "PackingAffinityRouting",
    "PriorityHeadroomRouting",
    "PriorityOrdering",
    "ROUTING_POLICIES",
    "ReclamationNotice",
    "ReplicaSet",
    "ReplicaSetConfig",
    "ReplicaSetResult",
    "ReplicaView",
    "RoundRobinRouting",
    "RoutingPolicy",
    "SHED_REASONS",
    "SRPTOrdering",
    "ServeConfig",
    "ServeGateway",
    "ServeJob",
    "SlotAdmission",
    "StepEvent",
    "StreamSplicer",
    "StreamingSimExecutor",
    "TenantProfile",
    "TenantRouter",
    "WallClock",
    "poisson_workload",
    "policy_keys",
]
