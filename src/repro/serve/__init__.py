"""Online multi-tenant serving: continuous scheduling over live jobs.

This layer turns the offline schedule->execute pipeline into a serving
system: jobs arrive over virtual time, are admitted against an
adapter-slot budget, scheduled window by window, spliced into the
in-flight microbatch stream, and retired on completion -- with the same
losslessness guarantee the offline path has.
"""

from repro.serve.admission import AdmissionPolicy, MemoryAdmission, SlotAdmission
from repro.serve.executors import (
    Executor,
    NumericExecutor,
    StepEvent,
    StreamingSimExecutor,
)
from repro.serve.jobs import ServeJob, poisson_workload
from repro.serve.metrics import JobRecord, OrchestratorResult
from repro.serve.orchestrator import OnlineOrchestrator, OrchestratorConfig
from repro.serve.splice import StreamSplicer

__all__ = [
    "AdmissionPolicy",
    "Executor",
    "JobRecord",
    "MemoryAdmission",
    "NumericExecutor",
    "OnlineOrchestrator",
    "OrchestratorConfig",
    "OrchestratorResult",
    "ServeJob",
    "SlotAdmission",
    "StepEvent",
    "StreamSplicer",
    "StreamingSimExecutor",
    "poisson_workload",
]
