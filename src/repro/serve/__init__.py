"""Online multi-tenant serving: continuous scheduling over live jobs.

This layer turns the offline schedule->execute pipeline into a serving
system: jobs arrive over virtual time, are admitted against an
adapter-slot budget, scheduled window by window, spliced into the
in-flight microbatch stream, and retired on completion -- with the same
losslessness guarantee the offline path has.

Admission is SLO-aware: a pluggable :class:`OrderingPolicy` ranks slot
candidates (FCFS, SRPT on remaining batches, priority classes, or
earliest deadline first), preemptive policies evict running jobs
losslessly (state exported at an optimizer-step boundary, parked, and
resumed bit-identically), and ``mid_wave_admission`` lets an urgent
arrival cut the running wave instead of waiting for its boundary.

The control plane is cost-model-driven: a :class:`CostEstimator`
(:mod:`repro.serve.costing`) prices jobs, placements, and planning
waves in expected seconds, so routing (:class:`CostAwareRouting`),
ordering (time-based SRPT, least-laxity EDF, aging bounds), admission
(:class:`DeadlineFeasibilityAdmission` sheds deadline-infeasible
arrivals into the terminal ``rejected`` state), and window sizing
(:class:`AdaptiveWindowConfig`) act on time, not batch counts -- with
per-wave predicted/observed calibration recorded in the result.

Two deployment shapes ship.  A single pipeline is an
:class:`OnlineOrchestrator` over one :class:`Executor`.  Scale-out is a
:class:`ReplicaSet`: N independent orchestrators, a :class:`TenantRouter`
assigning each arriving :class:`ServeJob` to one of them (round-robin,
least-loaded, packing-affinity, or priority-headroom), and
threshold-triggered job migration that moves mid-training state between
replicas losslessly.

See ``docs/architecture.md`` for the module map and ``docs/serving.md``
for the operator-facing guide (including the SLO & fairness section).
"""

from repro.serve.admission import (
    AdmissionPolicy,
    DeadlineFeasibilityAdmission,
    MemoryAdmission,
    SlotAdmission,
)
from repro.serve.costing import CALIBRATION_TOLERANCE, CostEstimator, TenantProfile
from repro.serve.executors import (
    Executor,
    NumericExecutor,
    StepEvent,
    StreamingSimExecutor,
)
from repro.serve.jobs import JobOutcome, ServeJob, poisson_workload
from repro.serve.metrics import JobRecord, OrchestratorResult, ReplicaSetResult
from repro.serve.orchestrator import (
    AdaptiveWindowConfig,
    MigrationTicket,
    OnlineOrchestrator,
    OrchestratorConfig,
)
from repro.serve.ordering import (
    DeadlineOrdering,
    FCFSOrdering,
    JobView,
    OrderingPolicy,
    PriorityOrdering,
    SRPTOrdering,
)
from repro.serve.replicaset import ReplicaSet, ReplicaSetConfig
from repro.serve.router import (
    CostAwareRouting,
    LeastLoadedRouting,
    PackingAffinityRouting,
    PriorityHeadroomRouting,
    ReplicaView,
    RoundRobinRouting,
    RoutingPolicy,
    TenantRouter,
)
from repro.serve.splice import StreamSplicer

__all__ = [
    "AdaptiveWindowConfig",
    "AdmissionPolicy",
    "CALIBRATION_TOLERANCE",
    "CostAwareRouting",
    "CostEstimator",
    "DeadlineFeasibilityAdmission",
    "DeadlineOrdering",
    "Executor",
    "FCFSOrdering",
    "JobOutcome",
    "JobRecord",
    "JobView",
    "LeastLoadedRouting",
    "MemoryAdmission",
    "MigrationTicket",
    "NumericExecutor",
    "OnlineOrchestrator",
    "OrchestratorConfig",
    "OrchestratorResult",
    "OrderingPolicy",
    "PackingAffinityRouting",
    "PriorityHeadroomRouting",
    "PriorityOrdering",
    "ReplicaSet",
    "ReplicaSetConfig",
    "ReplicaSetResult",
    "ReplicaView",
    "RoundRobinRouting",
    "RoutingPolicy",
    "SRPTOrdering",
    "ServeJob",
    "SlotAdmission",
    "StepEvent",
    "StreamSplicer",
    "StreamingSimExecutor",
    "TenantProfile",
    "TenantRouter",
    "poisson_workload",
]
