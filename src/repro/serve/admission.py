"""Admission control: how many adapters may train concurrently.

Every live adapter costs optimizer/accumulator state on the training
devices (Section 2.1's ``32r(n+k)``-byte model states, times the 16-byte
mixed-precision multiplier), so an online orchestrator must bound the
number of concurrently-admitted jobs.  :class:`SlotAdmission` takes an
explicit slot count; :class:`MemoryAdmission` derives it from the
:mod:`repro.distsim.memory` model -- the largest adapter count whose peak
memory estimate still fits the device with the pipeline's worst-case
tokens in flight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.distsim.memory import estimate_memory, fits_on_gpu
from repro.errors import ScheduleError
from repro.gpu.specs import GPUSpec
from repro.models.config import ModelConfig

__all__ = ["AdmissionPolicy", "SlotAdmission", "MemoryAdmission"]

#: Upper bound on the adapter-slot search (beyond this, adapter states are
#: never the binding constraint in practice).
_MAX_SLOTS = 256


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides how many jobs may hold adapter slots at once."""

    def max_concurrent(self) -> int:
        """The adapter-slot budget (must be at least 1)."""


@dataclass(frozen=True)
class SlotAdmission:
    """A fixed adapter-slot budget.

    Attributes:
        slots: Maximum concurrently-admitted jobs.
    """

    slots: int

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ScheduleError("admission needs at least one adapter slot")

    def max_concurrent(self) -> int:
        return self.slots


@dataclass(frozen=True)
class MemoryAdmission:
    """Adapter slots derived from the GPU memory model.

    Attributes:
        model: Architecture being fine-tuned.
        gpu: Device the stages run on.
        capacity: Microbatch token budget (one microbatch in flight per
            stage under 1F1B, so stage 0 holds ``capacity * num_stages``
            activation tokens at peak).
        num_stages: Pipeline depth.
        lora_rank: Adapter rank (sizes the per-adapter states).
        dtype: Training dtype.
        saving: Activation recompute regime.
    """

    model: ModelConfig
    gpu: GPUSpec
    capacity: int
    num_stages: int = 1
    lora_rank: int = 16
    dtype: str = "bf16"
    saving: str = "selective"

    def fits(self, num_adapters: int) -> bool:
        """Whether ``num_adapters`` concurrent adapters fit the device."""
        estimate = estimate_memory(
            self.model,
            self.gpu,
            tokens_in_flight=self.capacity * self.num_stages,
            num_stages=self.num_stages,
            lora_rank=self.lora_rank,
            num_adapters=num_adapters,
            dtype=self.dtype,
            saving=self.saving,
        )
        return fits_on_gpu(estimate, self.gpu)

    def max_concurrent(self) -> int:
        """Largest adapter count that fits (memory is monotone in it).

        Raises:
            ScheduleError: When even a single adapter does not fit -- the
                configuration cannot serve this model at all.
        """
        if not self.fits(1):
            raise ScheduleError(
                f"{self.model.name} with capacity {self.capacity} and "
                f"{self.num_stages} stage(s) does not fit a single adapter "
                f"on {self.gpu.name}; shard further or shrink the capacity"
            )
        lo, hi = 1, _MAX_SLOTS
        if self.fits(hi):
            return hi
        while hi - lo > 1:  # invariant: fits(lo), not fits(hi)
            mid = (lo + hi) // 2
            if self.fits(mid):
                lo = mid
            else:
                hi = mid
        return lo
