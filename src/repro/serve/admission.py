"""Admission control: how many adapters may train concurrently -- and
whether an arrival should be admitted at all.

Every live adapter costs optimizer/accumulator state on the training
devices (Section 2.1's ``32r(n+k)``-byte model states, times the 16-byte
mixed-precision multiplier), so an online orchestrator must bound the
number of concurrently-admitted jobs.  :class:`SlotAdmission` takes an
explicit slot count; :class:`MemoryAdmission` derives it from the
:mod:`repro.distsim.memory` model -- the largest adapter count whose peak
memory estimate still fits the device with the pipeline's worst-case
tokens in flight.

:class:`DeadlineFeasibilityAdmission` adds the *whether* dimension: EDF
orders the queue but never refuses, so an arrival whose deadline is
already infeasible still takes a slot and burns pipeline time on work
that cannot succeed.  The gate compares each due deadline-carrying
candidate's expected remaining service time (priced by the
orchestrator's :class:`~repro.serve.costing.CostEstimator`) against its
time-to-deadline and sheds the doomed ones into the distinct
``rejected`` terminal state (:class:`~repro.serve.jobs.JobOutcome`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.distsim.memory import estimate_memory, fits_on_gpu
from repro.errors import ScheduleError
from repro.gpu.specs import GPUSpec
from repro.models.config import ModelConfig
from repro.serve.ordering import JobView

if TYPE_CHECKING:
    from repro.serve.costing import CostEstimator, TenantProfile
    from repro.serve.jobs import ServeJob

__all__ = [
    "AdmissionPolicy",
    "SlotAdmission",
    "MemoryAdmission",
    "DeadlineFeasibilityAdmission",
]

#: Upper bound on the adapter-slot search (beyond this, adapter states are
#: never the binding constraint in practice).
_MAX_SLOTS = 256


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Decides how many jobs may hold adapter slots at once."""

    def max_concurrent(self) -> int:
        """The adapter-slot budget (must be at least 1)."""


@dataclass(frozen=True)
class SlotAdmission:
    """A fixed adapter-slot budget.

    Attributes:
        slots: Maximum concurrently-admitted jobs.
    """

    slots: int

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ScheduleError("admission needs at least one adapter slot")

    def max_concurrent(self) -> int:
        return self.slots

    def interleave_key(
        self,
        candidate: "TenantProfile",
        live: "Sequence[TenantProfile]",
        estimator: "CostEstimator",
    ) -> float:
        """How poorly ``candidate``'s lengths interleave with the live set.

        The knapsack-admission tie-breaker: the predicted post-pack
        waste (:meth:`~repro.serve.costing.CostEstimator
        .pack_fragmentation`) of the live profiles *with the candidate
        added*.  Lower is better -- among candidates an
        :class:`~repro.serve.ordering.OrderingPolicy` ranks equal, the
        orchestrator admits the one whose length distribution fills the
        co-resident set's bins tightest.  Deterministic (a pure function
        of frozen profiles), so admission order stays replayable.
        """
        return estimator.pack_fragmentation((*live, candidate))


@dataclass(frozen=True)
class MemoryAdmission:
    """Adapter slots derived from the GPU memory model.

    Attributes:
        model: Architecture being fine-tuned.
        gpu: Device the stages run on.
        capacity: Microbatch token budget (one microbatch in flight per
            stage under 1F1B, so stage 0 holds ``capacity * num_stages``
            activation tokens at peak).
        num_stages: Pipeline depth.
        lora_rank: Adapter rank (sizes the per-adapter states).
        dtype: Training dtype.
        saving: Activation recompute regime.
    """

    model: ModelConfig
    gpu: GPUSpec
    capacity: int
    num_stages: int = 1
    lora_rank: int = 16
    dtype: str = "bf16"
    saving: str = "selective"

    def fits(self, num_adapters: int) -> bool:
        """Whether ``num_adapters`` concurrent adapters fit the device."""
        estimate = estimate_memory(
            self.model,
            self.gpu,
            tokens_in_flight=self.capacity * self.num_stages,
            num_stages=self.num_stages,
            lora_rank=self.lora_rank,
            num_adapters=num_adapters,
            dtype=self.dtype,
            saving=self.saving,
        )
        return fits_on_gpu(estimate, self.gpu)

    def max_concurrent(self) -> int:
        """Largest adapter count that fits (memory is monotone in it).

        Raises:
            ScheduleError: When even a single adapter does not fit -- the
                configuration cannot serve this model at all.
        """
        if not self.fits(1):
            raise ScheduleError(
                f"{self.model.name} with capacity {self.capacity} and "
                f"{self.num_stages} stage(s) does not fit a single adapter "
                f"on {self.gpu.name}; shard further or shrink the capacity"
            )
        lo, hi = 1, _MAX_SLOTS
        if self.fits(hi):
            return hi
        while hi - lo > 1:  # invariant: fits(lo), not fits(hi)
            mid = (lo + hi) // 2
            if self.fits(mid):
                lo = mid
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class DeadlineFeasibilityAdmission:
    """A slot budget plus a deadline-feasibility gate.

    Wraps an inner slot policy (the *how many* decision is unchanged)
    and adds :meth:`feasible`, which the orchestrator consults for every
    due deadline-carrying candidate: an arrival whose expected remaining
    service time -- priced in seconds by the orchestrator's
    :class:`~repro.serve.costing.CostEstimator` -- no longer fits its
    time-to-deadline is shed immediately (terminal ``rejected`` state)
    instead of occupying a slot it cannot use.

    By default the estimate is *service* time only: it ignores queueing
    for a slot and pipeline sharing with other tenants, so it is
    optimistic and the gate only sheds certainly-doomed work.  Raise
    ``slack`` above 1.0 to shed earlier (a job is rejected once
    ``slack * remaining_seconds`` exceeds its time-to-deadline); the
    orchestrator re-evaluates waiting candidates every admission pass,
    so a job that becomes infeasible *while queueing* is shed then, not
    served late.

    ``queueing_aware=True`` removes the optimism: the orchestrator also
    charges each candidate the replica's expected wave-time backlog --
    the work already planned ahead of it
    (:meth:`~repro.serve.orchestrator.OnlineOrchestrator
    .expected_wave_seconds`) -- so a job that could finish on an idle
    pipeline but not behind the current queue is shed *at arrival*
    instead of after burning queueing time.  The trade-off is
    pessimism: a lucky schedule (a retirement freeing the pipeline
    early, head-tail merges) can occasionally save a job the backlog
    test sheds, so the mode trades a few salvageable jobs for earlier
    shedding; ``benchmarks/bench_calibration.py`` measures both sides
    under overload.  Off by default.

    **Heterogeneous fleets** need no extra configuration here: the
    remaining-seconds estimate the gate compares is priced *per
    replica* -- the orchestrator passes its ``replica_id`` to the
    estimator, and the
    :class:`~repro.serve.costing.CalibrationTracker`'s per-replica
    correction (seeded from the capacity pool's speed factor when an
    autoscaled replica joins, refined by its observed waves) scales the
    estimate to that hardware.  The same job can therefore be feasible
    on an A100 replica and shed on an L40S one, which is the honest
    answer: slow hardware sheds work it cannot finish in time instead
    of serving it late.

    Attributes:
        slots: Inner slot policy (the concurrency budget).
        slack: Safety multiplier on the remaining-time estimate
            (>= how much of the estimate must fit; 1.0 = shed only
            provably-late arrivals under the optimistic estimate).
        queueing_aware: Also charge the replica's expected wave-time
            backlog ahead of the candidate (see above); the backlog is
            *not* multiplied by ``slack`` -- it is already someone
            else's priced work, not this job's estimate.
    """

    slots: AdmissionPolicy
    slack: float = 1.0
    queueing_aware: bool = False

    def __post_init__(self) -> None:
        if self.slack <= 0:
            raise ScheduleError("slack must be positive")

    def max_concurrent(self) -> int:
        """Delegate the concurrency budget to the inner policy."""
        return self.slots.max_concurrent()

    def interleave_key(
        self,
        candidate: "TenantProfile",
        live: "Sequence[TenantProfile]",
        estimator: "CostEstimator",
    ) -> float:
        """Delegate length-interleaving scoring to the inner policy.

        Inner policies without the hook (e.g. :class:`MemoryAdmission`)
        score every candidate 0.0 -- the tie-breaker is then inert and
        admission falls back to pure policy order.
        """
        key = getattr(self.slots, "interleave_key", None)
        if key is None:
            return 0.0
        return key(candidate, live, estimator)

    def feasible(self, view: JobView, now: float, backlog: float = 0.0) -> bool:
        """Whether ``view`` can still meet its deadline.

        Deadline-free candidates are always feasible; so are unpriced
        ones (no estimator stamped ``remaining_seconds``), because the
        gate refuses to shed on a quantity it cannot measure.

        Args:
            view: The candidate, as priced by the orchestrator.
            now: Current virtual time.
            backlog: Expected seconds of already-planned work ahead of
                the candidate; charged only with ``queueing_aware`` on
                (callers may always pass it).
        """
        if view.deadline is None or view.remaining_seconds is None:
            return True
        queued = backlog if self.queueing_aware else 0.0
        return now + queued + self.slack * view.remaining_seconds <= view.deadline

    def feasible_arrival(
        self,
        job: "ServeJob",
        now: float,
        estimator: "CostEstimator | None",
        backlog: float = 0.0,
    ) -> bool:
        """Price a raw arrival at the door and test its feasibility.

        The gateway-facing form of :meth:`feasible`: the live gateway
        (:class:`~repro.serve.gateway.ServeGateway`) holds a
        :class:`~repro.serve.jobs.ServeJob`, not an orchestrator-priced
        :class:`~repro.serve.ordering.JobView`, so this builds the view
        itself -- full remaining batches, expected service seconds from
        ``estimator`` -- and delegates.  With no estimator (or no
        deadline on the job) the arrival is feasible: the door never
        sheds on a quantity it cannot measure, matching
        :meth:`feasible`'s refusal to guess.

        Args:
            job: The raw submission (its ``deadline`` and full batch
                count are read off the job itself).
            now: Current virtual time (the submission stamp).
            estimator: The fleet's pricing model, or ``None``.
            backlog: Seconds of work already queued ahead of the
                arrival; charged only with ``queueing_aware`` on.
        """
        if job.deadline is None or estimator is None:
            return True
        view = JobView(
            adapter_id=job.adapter_id,
            arrival_time=job.arrival_time,
            priority=job.priority,
            deadline=job.deadline,
            remaining_batches=job.job.num_global_batches(),
            admitted=False,
            remaining_seconds=estimator.job_seconds(job.job),
        )
        return self.feasible(view, now, backlog)
