"""The discrete-event fleet kernel: one heap, one global clock.

The lockstep fleet loop in :class:`~repro.serve.replicaset.ReplicaSet`
re-derives "who acts next" from scratch every iteration: it scans every
replica's virtual clock, advances the furthest-behind one, and recomputes
every replica's load after every single step.  That is O(replicas) work
per event and O(replicas x jobs) work per rebalance check -- fine for 4
pipelines, hopeless for 1000.  This module is the replacement control
structure: a classic discrete-event kernel with a global binary heap of
typed, timestamped events, so finding the next actor is O(log n) and
state is recomputed only for replicas an event actually touched.

Three properties the serving layer needs shape the design:

**Deterministic total order.**  Events pop in ``(time, priority, seq)``
order, where ``priority`` is the pair ``(kind, lane)`` and ``seq`` is a
monotone creation counter.  Equal-time events therefore resolve by kind
first (:attr:`EventKind.ARRIVAL` before :attr:`EventKind.WAVE_CLOSE` --
a replica whose clock has exactly reached an arrival's timestamp waits
for the routing decision, matching the lockstep loop's strict
``clock < next_arrival`` test), then by lane (replicas tie-break in
index order, arrivals in adapter-id order), then by creation order.
Nothing about the order depends on hashing, wall time, or heap
internals, so two runs of the same trace are byte-identical
(``tests/serve/test_events.py`` asserts it).

**An immediate lane for control events.**  The lockstep loop runs its
rebalance pass *synchronously* after every iteration; a faithful event
translation must therefore run rebalance/migration/flush work before any
other timed event gets in, even one carrying an earlier timestamp (the
fleet frontier and a lagging replica clock are different axes of
"now").  :meth:`EventKernel.post` queues an event on a FIFO lane that
:meth:`EventKernel.pop` always drains before touching the heap --
the same device asyncio's ``call_soon`` is.

**Lazy cancellation.**  A replica's next wave-close event is scheduled
at its current clock; any mutation (an offer, a migration, a drain)
moves that clock, so the fleet loop cancels and reschedules.  Removing
an arbitrary heap entry is O(n); flagging it cancelled and skipping it
at pop time is O(1) amortized, the standard discrete-event-simulation
trick (``heapq`` documents it as the recommended pattern).

The kernel is deliberately generic -- it knows event *kinds* but not the
serving layer (no serve module is imported here), so the fleet loop in
:class:`~repro.serve.replicaset.ReplicaSet`, tests, and future
subsystems (autoscalers, trace replayers) can all drive it.  Clock
semantics: :attr:`EventKernel.now` is the timestamp of the most recently
popped *heap* event.  It is **not monotone**: replica-local clocks lag
the fleet's arrival frontier, so a handler may legitimately schedule --
and the kernel then pops -- work behind the last popped time.  Handlers
must treat each event's own ``time`` as its clock, never ``now``.
"""

from __future__ import annotations

import enum
import heapq
import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event", "EventKernel"]


class EventKind(enum.IntEnum):
    """The typed events the fleet kernel processes.

    The integer values double as the kind component of the heap
    priority, so at equal timestamps arrivals beat wave closes --
    exactly the lockstep loop's strict ``clock < next_arrival`` rule.
    The three control kinds (rebalance, migration, flush) never enter
    the heap: the fleet loop posts them on the immediate lane
    (:meth:`EventKernel.post`), mirroring the synchronous rebalance
    call the lockstep loop makes after every iteration.

    The three scale kinds (replica join / retire / reclaim deadline)
    are **appended after** the original five, so traces without scale
    events keep byte-identical pop order and at equal timestamps every
    pre-existing kind still resolves first -- an arrival landing at the
    same instant a replica joins is routed over the fleet as it was
    *before* the join took effect.

    The gateway kind (:attr:`GATEWAY_INGRESS`) follows the same append
    discipline: it comes **after** the original eight, so every trace
    that never touches the live gateway -- every sim run, every
    committed benchmark -- replays with byte-identical pop order.
    """

    #: A job reaching the fleet: route it, offer it to a replica.
    ARRIVAL = 0
    #: A replica with work has reached its next actionable instant:
    #: advance its serving loop by one iteration (one planning wave,
    #: or a drain/fast-forward when nothing is left to plan).
    WAVE_CLOSE = 1
    #: Run one load-skew check of the rebalance pass in flight.
    REBALANCE = 2
    #: Apply one chosen migration (source, target, adapter).
    MIGRATION = 3
    #: Pay a pipeline drain on an overloaded replica to unlock a
    #: migration (the ``drain_then_migrate`` leg).
    FLUSH = 4
    #: A provisioned replica comes online and becomes routable (the
    #: autoscaler's scale-up landing after its provisioning delay).
    REPLICA_JOIN = 5
    #: A replica starts leaving the fleet: graceful scale-down or a
    #: spot reclamation notice; evacuation begins here.
    REPLICA_RETIRE = 6
    #: A reclaimed replica's grace period expires: whatever is still
    #: resident is force-evacuated at a step boundary (never lost).
    RECLAIM_DEADLINE = 7
    #: A live submission the serving gateway released into the fleet:
    #: routed and offered exactly like an :attr:`ARRIVAL`, but carrying
    #: its own kind so a recorded gateway session is distinguishable
    #: from a pre-generated trace (and so non-gateway traces, which
    #: never create this kind, replay byte-identical).
    GATEWAY_INGRESS = 8


@dataclass
class Event:
    """One scheduled (or posted) kernel event.

    Attributes:
        time: Virtual timestamp the event fires at.  For immediate-lane
            events this is the kernel's ``now`` at post time (they fire
            "now" by construction).
        kind: What the event means (see :class:`EventKind`).
        lane: Second priority component, breaking equal-time ties
            *within* a kind deterministically: the replica index for
            wave closes, the adapter id for arrivals.
        seq: Monotone creation counter; the final tie-breaker, so the
            pop order is a total order independent of heap internals.
        payload: Opaque handler data (the kernel never inspects it).
        cancelled: Lazily-deleted marker; cancelled events are skipped
            at pop time (see :meth:`EventKernel.cancel`).
    """

    time: float
    kind: EventKind
    lane: int
    seq: int
    payload: Any = None
    cancelled: bool = False

    @property
    def priority(self) -> tuple[int, int]:
        """The ``(kind, lane)`` pair ordering equal-time events."""
        return (int(self.kind), self.lane)

    def sort_key(self) -> tuple[float, tuple[int, int], int]:
        """The full ``(time, priority, seq)`` heap key."""
        return (self.time, self.priority, self.seq)


@dataclass
class EventKernel:
    """A deterministic discrete-event heap with an immediate FIFO lane.

    Two queues, one total order:

    * :meth:`schedule` puts a timed event on the binary heap, keyed by
      ``(time, (kind, lane), seq)``.
    * :meth:`post` puts a control event on the immediate lane, a FIFO
      that :meth:`pop` fully drains before the heap is consulted --
      posted work runs "now", ahead of any timed event.

    The kernel counts processed events per kind
    (:attr:`processed`) so throughput benchmarks
    (``benchmarks/bench_fleet_kernel.py``) can report events/sec
    without instrumenting handlers.

    Attributes:
        now: Timestamp of the most recently popped heap event.  Not
            monotone -- see the module docstring's clock semantics.
        processed: Events handed out by :meth:`pop` so far, per kind
            (cancelled events are skipped, not counted).
    """

    now: float = 0.0
    processed: Counter[EventKind] = field(default_factory=Counter)
    _heap: list[tuple[float, tuple[int, int], int, Event]] = field(
        default_factory=list, repr=False
    )
    _soon: deque[Event] = field(default_factory=deque, repr=False)
    _seq: int = 0
    _live: int = 0

    def schedule(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        lane: int = 0,
    ) -> Event:
        """Enqueue a timed event on the heap.

        Scheduling *behind* :attr:`now` is legal and intended: replica
        clocks lag the fleet's arrival frontier, so a routing decision
        made at the frontier schedules the receiving replica's next
        wave at its own (earlier) clock.

        Args:
            time: Virtual timestamp to fire at.
            kind: Event type (also the leading tie-break component).
            payload: Opaque handler data.
            lane: Within-kind tie-break (replica index, adapter id...).

        Returns:
            The event, kept by callers that may need to
            :meth:`cancel` it.
        """
        event = Event(time=time, kind=kind, lane=lane, seq=self._seq, payload=payload)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, event.priority, event.seq, event))
        return event

    def post(self, kind: EventKind, payload: Any = None, lane: int = 0) -> Event:
        """Enqueue an immediate event, ahead of every timed one.

        Posted events fire in FIFO order before :meth:`pop` touches the
        heap, regardless of any heap event's timestamp -- the event
        translation of "run this synchronously, now".  Their ``time``
        is :attr:`now` at post time.
        """
        event = Event(
            time=self.now, kind=kind, lane=lane, seq=self._seq, payload=payload
        )
        self._seq += 1
        self._live += 1
        self._soon.append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Lazily delete a pending event (idempotent).

        The event stays queued but is skipped (uncounted) when it
        surfaces -- O(1) instead of an O(n) heap removal.
        """
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Event | None:
        """The next live event in ``(immediate lane, heap)`` order.

        Drains the immediate FIFO first; otherwise pops the heap and
        advances :attr:`now` to the popped event's time.  Cancelled
        events are discarded silently.

        Returns:
            The next event, or ``None`` when nothing live remains.
        """
        return self.pop_until(math.inf)

    def pop_until(self, frontier: float = math.inf) -> Event | None:
        """The next live event whose timestamp is at or before ``frontier``.

        The incremental form of :meth:`pop`, for drivers that interleave
        event processing with live ingestion (the serving gateway pumps
        the fleet only up to each submission's wall-clock-derived
        stamp).  The immediate lane always drains -- posted control work
        runs "now" regardless of any frontier -- but a timed event is
        handed out only when its timestamp is ``<= frontier``; later
        events stay queued for a future call, and :attr:`now` does not
        advance until one of them is actually popped.

        Returns:
            The next live event at or before ``frontier``, or ``None``
            when none is due yet (or nothing live remains).
        """
        while self._soon:
            event = self._soon.popleft()
            if event.cancelled:
                continue
            self._live -= 1
            self.processed[event.kind] += 1
            return event
        while self._heap:
            if self._heap[0][3].cancelled:
                heapq.heappop(self._heap)
                continue
            time = self._heap[0][0]
            if time > frontier:
                return None
            _, _, _, event = heapq.heappop(self._heap)
            self._live -= 1
            self.now = time
            self.processed[event.kind] += 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, without popping it.

        A live immediate-lane event reports :attr:`now` (posted work
        fires "now" by construction).  Cancelled heap heads are pruned
        in passing.  ``None`` when nothing live remains.
        """
        for event in self._soon:
            if not event.cancelled:
                return self.now
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0][0]
        return None

    def __len__(self) -> int:
        """Live (non-cancelled) events still queued."""
        return self._live

    def total_processed(self) -> int:
        """Events handed out by :meth:`pop` so far, across all kinds."""
        return sum(self.processed.values())
