"""Cluster description for the distributed-training simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.specs import GPUSpec

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster.

    Attributes:
        gpu: Device type of every GPU.
        num_gpus: Total GPUs.
        gpus_per_node: GPUs sharing the fast intra-node interconnect
            (NVLink on H100 nodes, PCIe on L40S servers).
        collective_efficiency: Achieved fraction of the link's peak
            bandwidth for NCCL collectives (ring algorithm bandwidth plus
            protocol overhead; ~0.45 is typical for all-gather on a
            4-8 GPU NVLink group).
    """

    gpu: GPUSpec
    num_gpus: int
    gpus_per_node: int = 8
    collective_efficiency: float = 0.45

    def __post_init__(self) -> None:
        if self.num_gpus <= 0 or self.gpus_per_node <= 0:
            raise SimulationError("cluster sizes must be positive")

    @property
    def num_nodes(self) -> int:
        """Nodes needed to host ``num_gpus``."""
        return -(-self.num_gpus // self.gpus_per_node)

    def collective_bandwidth(self, group_size: int) -> float:
        """Per-rank algorithm bandwidth (bytes/s) for a collective.

        Groups that fit inside one node ride the intra-node link; groups
        spanning nodes are limited by the inter-node link.
        """
        if group_size <= self.gpus_per_node:
            return self.gpu.intra_node_gbps * 1e9 * self.collective_efficiency
        return self.gpu.inter_node_gbps * 1e9 * self.collective_efficiency
