"""FSDP (ZeRO-3) step-time simulation with compute/communication overlap.

Under FSDP every rank holds a shard of the frozen base weights; each layer's
full weights are all-gathered just-in-time for its forward and again for its
backward, then freed.  With prefetching, the gather of layer ``l+1``
overlaps the compute of layer ``l``, so the per-layer cost is
``max(compute, gather)``; whichever is larger is the bottleneck.  This is
why Figure 5 shows FSDP throughput rising steeply with global batch size:
more tokens per rank grow compute linearly while the gather cost is fixed,
so overlap improves until communication is fully hidden.

LoRA changes the gradient side: base weights are frozen, so there is *no*
reduce-scatter of base gradients -- only the tiny adapter gradients
all-reduce, which we price but which is negligible.

DP ranks process different microbatches but synchronise at every layer's
collective, so the step time follows the *slowest* rank -- the load
imbalance of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distsim.cluster import ClusterSpec
from repro.errors import SimulationError
from repro.gpu.specs import BYTES_PER_ELEMENT
from repro.models.config import ModelConfig
from repro.models.layer_costs import LayerCostModel, MicrobatchShape

__all__ = ["FSDPStepResult", "simulate_fsdp_step"]

#: Fixed per-layer dispatch/synchronisation latency (seconds): collective
#: launch, stream sync, and CPU overhead that dominates tiny microbatches.
LAYER_SYNC_LATENCY = 30e-6


@dataclass
class FSDPStepResult:
    """Timing of one FSDP training step (all microbatches, one optimizer
    step).

    Attributes:
        step_time: Wall-clock seconds for the step.
        compute_time: Pure compute seconds of the slowest rank.
        exposed_comm: Communication seconds not hidden by compute.
    """

    step_time: float
    compute_time: float
    exposed_comm: float


def _layer_param_bytes(model: ModelConfig, dtype: str) -> float:
    """Frozen parameter bytes of one decoder layer."""
    elem = BYTES_PER_ELEMENT[dtype]
    params = sum(k * n for k, n in model.linear_shapes().values())
    params += 2 * model.hidden_size
    return params * elem


def simulate_fsdp_step(
    per_rank_shapes: list[list[MicrobatchShape]],
    cost: LayerCostModel,
    cluster: ClusterSpec,
    recompute: bool = False,
) -> FSDPStepResult:
    """Simulate one FSDP step over ``dp = len(per_rank_shapes)`` ranks.

    Args:
        per_rank_shapes: For each rank, the microbatches it processes this
            step (gradient accumulation re-gathers per microbatch).
        cost: Layer cost model (model + GPU + kernel strategy).
        cluster: Cluster description (link bandwidths).
        recompute: Full activation checkpointing (backward re-runs the
            layer forward, ~1.33x compute).  Off by default: LoRA stores
            far fewer activations than full fine-tuning, and the paper's
            measured FSDP-faster-than-PP ordering matches the
            no-recompute regime.

    Returns:
        Step timing; ranks synchronise at every collective, so all times
        follow the slowest rank.
    """
    dp = len(per_rank_shapes)
    if dp == 0:
        raise SimulationError("FSDP needs at least one rank")
    model = cost.model
    gather_bytes = _layer_param_bytes(model, cost.dtype) * (dp - 1) / dp
    gather_time = (
        gather_bytes / cluster.collective_bandwidth(dp) if dp > 1 else 0.0
    )

    step_time = 0.0
    compute_total = 0.0
    exposed_total = 0.0
    num_microbatches = max(len(shapes) for shapes in per_rank_shapes)
    for index in range(num_microbatches):
        # All ranks walk layers in lockstep; each layer's time is the max
        # over ranks of max(compute, gather) -- the imbalance penalty.
        for direction in ("forward", "backward"):
            slowest_compute = 0.0
            for shapes in per_rank_shapes:
                if index < len(shapes) and shapes[index].tokens > 0:
                    t = cost.layer_time(shapes[index], direction)
                    if direction == "backward" and recompute:
                        t += cost.layer_time(shapes[index], "forward")
                    slowest_compute = max(slowest_compute, t)
            per_layer = max(slowest_compute, gather_time) + LAYER_SYNC_LATENCY
            step_time += model.num_layers * per_layer
            compute_total += model.num_layers * slowest_compute
            exposed_total += model.num_layers * (
                per_layer - LAYER_SYNC_LATENCY - slowest_compute
            )
        # Embedding + head/loss work of this microbatch (slowest rank).
        head = 0.0
        for shapes in per_rank_shapes:
            if index < len(shapes) and shapes[index].tokens > 0:
                tokens = shapes[index].tokens
                t = (
                    cost.embedding_time(tokens)
                    + cost.head_time(tokens, "forward")
                    + cost.head_time(tokens, "backward")
                )
                head = max(head, t)
        step_time += head
        compute_total += head
    # The first gather of each pass cannot be prefetched behind compute.
    step_time += 2 * gather_time
    exposed_total += 2 * gather_time
    # Adapter gradient all-reduce + optimizer step (tiny).
    step_time += cost.optimizer_step_time()
    return FSDPStepResult(
        step_time=step_time,
        compute_time=compute_total,
        exposed_comm=exposed_total,
    )
