"""GPU memory model: model states plus activations, with OOM detection.

Section 2.1 derives LoRA's memory advantage (``2nk + 32r(n+k)`` bytes per
adapted linear vs ``16nk`` for full fine-tuning); Section 6.2 notes that
on WikiSum "the baseline methods suffer from out-of-memory errors, [while]
LoRAFusion achieves stable packing".  This module prices both terms so the
planner can reject infeasible configurations and the benches can reproduce
the OOM observations.

Activation accounting (half precision, per token per decoder layer):
the attention block stores the two norms' inputs, q/k/v/o activations and
the flash-attention output; the MLP stores gate/up/act/down.  LoRA adds
the rank-sized ``S`` and the dropout masks.  Pipeline stages hold up to
``S`` microbatches of activations in flight (1F1B); FSDP holds one
microbatch but the full gathered layer during compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.specs import BYTES_PER_ELEMENT, GPUSpec
from repro.models.config import ModelConfig

__all__ = ["MemoryEstimate", "activation_bytes_per_token", "estimate_memory",
           "fits_on_gpu"]


@dataclass(frozen=True)
class MemoryEstimate:
    """Predicted peak memory of one GPU (bytes)."""

    weights: float
    adapter_states: float
    activations: float
    workspace: float

    @property
    def total(self) -> float:
        """Peak bytes."""
        return (self.weights + self.adapter_states + self.activations
                + self.workspace)

    def total_gb(self) -> float:
        """Peak gigabytes."""
        return self.total / 1e9


def activation_bytes_per_token(
    model: ModelConfig,
    lora_rank: int = 16,
    dtype: str = "bf16",
    saving: str = "selective",
) -> float:
    """Saved-activation bytes per token per decoder layer.

    Args:
        saving: Recompute regime. ``"full"`` keeps every intermediate
            (naive autograd); ``"selective"`` recomputes attention
            internals, keeping ~34h bytes/token (Megatron's selective
            activation recomputation); ``"checkpoint"`` keeps only layer
            boundary activations and recomputes everything else -- the
            regime that lets 70B pipeline stages hold several in-flight
            microbatches on 80GB devices.
    """
    e = BYTES_PER_ELEMENT[dtype]
    h, kv, ffn = model.hidden_size, model.kv_dim, model.intermediate_size
    lora = (7 * lora_rank + 2 * h) * e  # S buffers + dropout masks approx
    if saving == "full":
        attention = 2 * h + 2 * (h + 2 * kv) + h  # norms + qkv + attn out
        mlp = h + 3 * ffn + h  # norm + gate/up/act + down input
        return (attention + mlp) * e + lora
    if saving == "selective":
        return 34 * h / 2 * e + lora
    if saving == "checkpoint":
        return 2 * h * e + lora / 8
    raise ValueError(f"unknown activation saving regime {saving!r}")


def estimate_memory(
    model: ModelConfig,
    gpu: GPUSpec,
    tokens_in_flight: int,
    num_stages: int = 1,
    dp_shard: int = 1,
    lora_rank: int = 16,
    num_adapters: int = 1,
    dtype: str = "bf16",
    saving: str = "selective",
) -> MemoryEstimate:
    """Peak memory of one GPU under a parallel configuration.

    Args:
        model: Architecture.
        gpu: Device (for workspace sizing only).
        tokens_in_flight: Activation-holding tokens on this GPU: for
            pipeline parallelism, up to ``num_stages`` microbatches on
            stage 0; for FSDP/single-GPU, one microbatch.
        num_stages: Pipeline stages (weights split across them).
        dp_shard: FSDP shard count (weights divided, one layer gathered).
        lora_rank: Adapter rank.
        num_adapters: Concurrent adapters (multi-LoRA states).
        dtype: Training dtype.
        saving: Activation recompute regime (see
            :func:`activation_bytes_per_token`).
    """
    e = BYTES_PER_ELEMENT[dtype]
    layer_params = sum(k * n for k, n in model.linear_shapes().values())
    layer_params += 2 * model.hidden_size
    embed_params = 2 * model.vocab_size * model.hidden_size
    total_params = model.num_layers * layer_params + embed_params

    weights = total_params * e / (num_stages * dp_shard)
    if dp_shard > 1:
        weights += layer_params * e  # one gathered layer resident
    # 16 bytes per adapter parameter (fp16 w+grad, fp32 master + moments).
    adapter_params = (
        model.num_layers * sum(lora_rank * (k + n)
                               for k, n in model.linear_shapes().values())
    ) / num_stages
    adapter_states = 16.0 * adapter_params * num_adapters

    layers_here = model.num_layers / num_stages
    activations = (
        tokens_in_flight
        * layers_here
        * activation_bytes_per_token(model, lora_rank, dtype, saving)
    )
    # Logits + CUDA context + fragmentation reserve.
    workspace = 2e9 + tokens_in_flight * model.vocab_size * e / max(
        1, num_stages
    )
    return MemoryEstimate(
        weights=weights,
        adapter_states=adapter_states,
        activations=activations,
        workspace=workspace,
    )


def fits_on_gpu(estimate: MemoryEstimate, gpu: GPUSpec) -> bool:
    """Whether the estimate fits the device (with a 5% safety margin)."""
    return estimate.total <= gpu.mem_capacity_gb * 1e9 * 0.95
