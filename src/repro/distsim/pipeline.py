"""Dependency-driven pipeline-parallel simulation (1F1B and zero-bubble).

Two execution modes reproduce the paper's pipeline baselines and system:

* **Flushed 1F1B** (Megatron-LM): each global batch runs a full 1F1B
  schedule and the pipeline drains before the next batch starts.  Bubbles
  come from warmup/cooldown ramps every batch.
* **Streaming** (mLoRA / LoRAFusion): one continuous 1F1B stream over all
  microbatches from all jobs.  Cross-batch dependencies (an adapter's batch
  ``j+1`` needs batch ``j``'s backward + optimizer step on every stage) are
  modelled as explicit edges; the scheduler's bubble-lemma spacing makes
  them satisfiable without stalling -- exactly the paper's "near-zero
  pipeline bubbles" mechanism.

The simulator executes each stage's ops strictly in 1F1B order (warmup
``S - s - 1`` forwards, then backward-forward pairs, then cooldown), with
op start times resolved against cross-stage dependency completion.  This
mirrors how Megatron's static schedule behaves on real GPUs, including the
stalls that variable microbatch sizes introduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["PipelineMicrobatch", "PipelineResult", "simulate_stream",
           "simulate_flushed"]


@dataclass(frozen=True)
class PipelineMicrobatch:
    """One microbatch's per-stage work and dependency metadata.

    Attributes:
        fwd_times: Forward seconds per stage (length = pipeline depth).
        bwd_times: Backward seconds per stage.
        adapter_batches: ``(adapter_id, global_batch)`` pairs whose samples
            this microbatch carries (empty for no-ops).
        tag: Free-form label (used for flush grouping / traces).
    """

    fwd_times: tuple[float, ...]
    bwd_times: tuple[float, ...]
    adapter_batches: frozenset[tuple[int, int]] = frozenset()
    tag: str = ""


@dataclass
class PipelineResult:
    """Outcome of a pipeline simulation.

    Attributes:
        makespan: End-to-end seconds.
        busy: Per-stage busy seconds.
        num_stages: Pipeline depth.
        num_microbatches: Microbatches executed (including no-ops).
    """

    makespan: float
    busy: list[float]
    num_stages: int
    num_microbatches: int

    @property
    def bubble_ratio(self) -> float:
        """Idle fraction across all stages (the paper's Figure 20 metric)."""
        if self.makespan == 0:
            return 0.0
        total = self.makespan * self.num_stages
        return (total - sum(self.busy)) / total

    @property
    def utilization(self) -> float:
        """1 - bubble ratio."""
        return 1.0 - self.bubble_ratio


def _stage_order(stage: int, num_stages: int, num_mbs: int):
    """The 1F1B op order of one stage: ('F'|'B', microbatch index) pairs.

    Megatron's schedule: ``min(S - s - 1, M)`` warmup forwards, then
    forward-backward pairs in steady state, then a cooldown draining the
    remaining backwards.  Under this order, stage ``s`` issues ``F(i)``
    before ``B(i - warmup)``, so a forward may only depend on the backward
    of a microbatch at least ``S`` slots earlier -- hence the scheduler's
    dependency gap of ``S`` (one more than the paper's ``S - 1`` lemma,
    the price of a static fwd-first slot order).
    """
    warmup = min(num_stages - stage - 1, num_mbs)
    order: list[tuple[str, int]] = [("F", i) for i in range(warmup)]
    for i in range(warmup, num_mbs):
        order.append(("F", i))
        order.append(("B", i - warmup))
    for i in range(num_mbs - warmup, num_mbs):
        order.append(("B", i))
    return order


def simulate_stream(
    microbatches: list[PipelineMicrobatch],
    num_stages: int,
    start_time: float = 0.0,
) -> PipelineResult:
    """Simulate one continuous 1F1B stream over ``microbatches``.

    Cross-batch adapter dependencies are enforced: the forward of a
    microbatch carrying ``(a, j)`` waits, on every stage, for the backward
    of every earlier microbatch carrying ``(a, j-1)`` on that stage.

    Raises:
        SimulationError: If the in-order schedule deadlocks, i.e. the
            microbatch stream violates the bubble lemma for this depth.
    """
    num_mbs = len(microbatches)
    if num_mbs == 0:
        return PipelineResult(0.0, [0.0] * num_stages, num_stages, 0)
    for mb in microbatches:
        if len(mb.fwd_times) != num_stages or len(mb.bwd_times) != num_stages:
            raise SimulationError(
                f"microbatch has {len(mb.fwd_times)} stage times, "
                f"pipeline has {num_stages} stages"
            )

    # Precompute, per microbatch, the earlier microbatches whose backward
    # must complete first (previous global batch of any adapter it carries).
    waits_for: list[list[int]] = [[] for _ in range(num_mbs)]
    last_of_batch: dict[tuple[int, int], list[int]] = {}
    for i, mb in enumerate(microbatches):
        for adapter_id, batch in mb.adapter_batches:
            for j in last_of_batch.get((adapter_id, batch - 1), ()):
                waits_for[i].append(j)
        for adapter_id, batch in mb.adapter_batches:
            last_of_batch.setdefault((adapter_id, batch), []).append(i)

    orders = [_stage_order(s, num_stages, num_mbs) for s in range(num_stages)]
    position = [0] * num_stages
    fwd_end: dict[tuple[int, int], float] = {}  # (stage, mb) -> end time
    bwd_end: dict[tuple[int, int], float] = {}
    clock = [start_time] * num_stages
    busy = [0.0] * num_stages

    total_ops = sum(len(order) for order in orders)
    scheduled = 0
    while scheduled < total_ops:
        progressed = False
        for s in range(num_stages):
            while position[s] < len(orders[s]):
                kind, i = orders[s][position[s]]
                if kind == "F":
                    deps: list[float] = []
                    if s > 0:
                        if (s - 1, i) not in fwd_end:
                            break
                        deps.append(fwd_end[(s - 1, i)])
                    ready = True
                    for j in waits_for[i]:
                        if (s, j) not in bwd_end:
                            ready = False
                            break
                        deps.append(bwd_end[(s, j)])
                    if not ready:
                        break
                    duration = microbatches[i].fwd_times[s]
                    begin = max([clock[s], *deps]) if deps else clock[s]
                    fwd_end[(s, i)] = begin + duration
                    clock[s] = begin + duration
                    busy[s] += duration
                else:
                    deps = []
                    if s < num_stages - 1:
                        if (s + 1, i) not in bwd_end:
                            break
                        deps.append(bwd_end[(s + 1, i)])
                    else:
                        if (s, i) not in fwd_end:
                            break
                        deps.append(fwd_end[(s, i)])
                    duration = microbatches[i].bwd_times[s]
                    begin = max([clock[s], *deps])
                    bwd_end[(s, i)] = begin + duration
                    clock[s] = begin + duration
                    busy[s] += duration
                position[s] += 1
                scheduled += 1
                progressed = True
        if not progressed:
            raise SimulationError(
                "pipeline schedule deadlocked: adapter batch dependencies "
                "violate the bubble lemma for this stage count"
            )
    makespan = max(clock) - start_time
    return PipelineResult(makespan, busy, num_stages, num_mbs)


def simulate_flushed(
    batches: list[list[PipelineMicrobatch]],
    num_stages: int,
) -> PipelineResult:
    """Megatron-style execution: full pipeline flush between global batches.

    Each batch runs its own 1F1B schedule; batch ``g+1`` starts only after
    batch ``g`` drains.  Busy time aggregates across batches, which is how
    the warmup/cooldown bubbles of every batch accumulate into the ~49%
    idle fraction of Figure 20.
    """
    makespan = 0.0
    busy = [0.0] * num_stages
    count = 0
    for batch in batches:
        result = simulate_stream(batch, num_stages)
        makespan += result.makespan
        for s in range(num_stages):
            busy[s] += result.busy[s]
        count += result.num_microbatches
    return PipelineResult(makespan, busy, num_stages, count)
