"""End-to-end system models: Megatron-LM (FSDP/PP), mLoRA, LoRAFusion.

Each ``run_*`` function executes a set of fine-tuning jobs under one
system's strategy and returns a :class:`SystemReport` with the paper's
primary metric -- trained tokens per second -- plus bubble statistics.

System differences, matching Section 6.1's baselines:

* ``run_megatron_*``: no multi-LoRA support, so the jobs train
  *sequentially*; unfused ("torch") LoRA kernels; on-the-fly packing with a
  fixed sample count per microbatch.
* ``run_mlora``: jobs train jointly; uniform adapter filling (each
  microbatch holds samples of a single adapter; adapters round-robin);
  naive LoRA kernels (the paper's optimistic assumption); zero-bubble
  streaming pipeline.
* ``run_lorafusion``: jobs train jointly under the full scheduler
  (grouping + two-stage MILP packing + merging), FusedLoRA /
  FusedMultiLoRA kernels, zero-bubble streaming pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.data.dataset import Sample
from repro.distsim.cluster import ClusterSpec
from repro.distsim.fsdp import simulate_fsdp_step
from repro.distsim.pipeline import (
    PipelineMicrobatch,
    PipelineResult,
    simulate_flushed,
    simulate_stream,
)
from repro.errors import SimulationError
from repro.models.config import ModelConfig
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.scheduler.bubble import insert_noops
from repro.scheduler.scheduler import MultiLoRAScheduler, SchedulerConfig
from repro.scheduler.types import AdapterJob, Assignment, Microbatch

__all__ = [
    "SystemReport",
    "stage_times",
    "to_pipeline_microbatch",
    "run_single_gpu_sequential",
    "run_megatron_fsdp",
    "run_megatron_pp",
    "run_mlora",
    "run_lorafusion",
]


@dataclass
class SystemReport:
    """Outcome of one end-to-end run.

    Attributes:
        system: System name.
        tokens_per_second: Trained (real, unpadded) tokens per second --
            the paper's headline metric.
        total_tokens: Real tokens processed.
        total_time: Simulated wall-clock seconds.
        bubble_ratio: Pipeline idle fraction (None for non-pipeline runs).
        num_microbatches: Microbatches executed.
    """

    system: str
    tokens_per_second: float
    total_tokens: int
    total_time: float
    bubble_ratio: float | None = None
    num_microbatches: int = 0


def stage_times(
    cost: LayerCostModel, shape: MicrobatchShape, num_stages: int
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Per-stage forward/backward seconds for one microbatch."""
    layers = cost.model.num_layers / num_stages
    fwd = tuple(
        cost.stage_time(shape, "forward", layers, first_stage=(s == 0),
                        last_stage=(s == num_stages - 1))
        for s in range(num_stages)
    )
    bwd = tuple(
        cost.stage_time(shape, "backward", layers, first_stage=(s == 0),
                        last_stage=(s == num_stages - 1))
        for s in range(num_stages)
    )
    return fwd, bwd


def to_pipeline_microbatch(
    mb: Microbatch, cost: LayerCostModel, num_stages: int
) -> PipelineMicrobatch:
    """Convert a scheduled microbatch into its pipeline work description."""
    if mb.is_noop:
        zeros = tuple(0.0 for _ in range(num_stages))
        return PipelineMicrobatch(fwd_times=zeros, bwd_times=zeros)
    fwd, bwd = stage_times(cost, mb.shape(), num_stages)
    pairs = frozenset(
        (adapter_id, batch)
        for adapter_id, batches in mb.batches_by_adapter().items()
        for batch in batches
    )
    return PipelineMicrobatch(fwd_times=fwd, bwd_times=bwd, adapter_batches=pairs)


def onthefly_microbatches_for_batch(
    batch: list[Sample], microbatch_samples: int, step: int,
    capacity: int, padding_multiple: int,
) -> list[Microbatch]:
    """Fixed-sample-count on-the-fly packing of one global batch (Fig. 2c)."""
    result = []
    for i in range(0, len(batch), microbatch_samples):
        mb = Microbatch(capacity=capacity, padding_multiple=padding_multiple,
                        step=step)
        for sample in batch[i : i + microbatch_samples]:
            mb.assignments.append(Assignment(sample=sample, global_batch=step))
        result.append(mb)
    return result


def default_microbatch_samples(
    jobs: list[AdapterJob], capacity: int, num_stages: int = 1
) -> int:
    """Default samples per microbatch for the fixed-count baselines.

    Respects both constraints the baselines face: the average microbatch
    should fit the token capacity, and a global batch should yield at
    least ``num_stages`` microbatches so 1F1B has work to overlap.
    """
    mean = sum(j.dataset.mean_length() for j in jobs) / len(jobs)
    by_capacity = max(1, round(capacity / mean))
    min_gbs = min(j.global_batch_size for j in jobs)
    by_stages = max(1, min_gbs // max(1, num_stages))
    return max(1, min(by_capacity, by_stages))


def _report(
    system: str, total_tokens: int, result: PipelineResult
) -> SystemReport:
    return SystemReport(
        system=system,
        tokens_per_second=total_tokens / result.makespan if result.makespan else 0.0,
        total_tokens=total_tokens,
        total_time=result.makespan,
        bubble_ratio=result.bubble_ratio,
        num_microbatches=result.num_microbatches,
    )


def run_single_gpu_sequential(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    capacity: int = 8192,
    microbatch_samples: int | None = None,
    strategy: str = "torch",
) -> SystemReport:
    """Sequential single-GPU training (the 8B baseline of Figure 14)."""
    cost = LayerCostModel(model, cluster.gpu, strategy=strategy)
    total_tokens = 0
    total_time = 0.0
    count = 0
    mbs = microbatch_samples or default_microbatch_samples(jobs, capacity)
    for job in jobs:
        for step, batch in enumerate(job.dataset.global_batches(
                job.global_batch_size)):
            for mb in onthefly_microbatches_for_batch(batch, mbs, step,
                                                      capacity, 64):
                shape = mb.shape()
                total_time += cost.stage_time(shape, "forward", model.num_layers,
                                              True, True)
                total_time += cost.stage_time(shape, "backward", model.num_layers,
                                              True, True)
                total_tokens += mb.real_tokens
                count += 1
            total_time += cost.optimizer_step_time()
    return SystemReport(
        system=f"single-gpu-{strategy}",
        tokens_per_second=total_tokens / total_time if total_time else 0.0,
        total_tokens=total_tokens,
        total_time=total_time,
        bubble_ratio=None,
        num_microbatches=count,
    )


def run_megatron_fsdp(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    strategy: str = "torch",
) -> SystemReport:
    """Megatron-LM with FSDP: sequential jobs, DP = all GPUs.

    Each global batch is split evenly across ranks; every rank packs its
    share into one microbatch (on-the-fly packing).
    """
    dp = cluster.num_gpus
    cost = LayerCostModel(model, cluster.gpu, strategy=strategy)
    total_tokens = 0
    total_time = 0.0
    steps = 0
    for job in jobs:
        for batch in job.dataset.global_batches(job.global_batch_size):
            share = math.ceil(len(batch) / dp)
            per_rank = []
            for r in range(dp):
                lengths = [s.length for s in batch[r * share : (r + 1) * share]]
                per_rank.append(
                    [MicrobatchShape.from_lengths(lengths)] if lengths else []
                )
            result = simulate_fsdp_step(per_rank, cost, cluster)
            total_time += result.step_time
            total_tokens += sum(s.length for s in batch)
            steps += 1
    return SystemReport(
        system="megatron-fsdp",
        tokens_per_second=total_tokens / total_time if total_time else 0.0,
        total_tokens=total_tokens,
        total_time=total_time,
        bubble_ratio=None,
        num_microbatches=steps,
    )


def run_megatron_pp(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    capacity: int = 8192,
    microbatch_samples: int | None = None,
    strategy: str = "torch",
) -> SystemReport:
    """Megatron-LM with 1F1B pipeline parallelism: sequential jobs, flush
    between every global batch."""
    num_stages = cluster.num_gpus
    cost = LayerCostModel(model, cluster.gpu, strategy=strategy)
    mbs = microbatch_samples or default_microbatch_samples(jobs, capacity,
                                                           num_stages)
    batches: list[list[PipelineMicrobatch]] = []
    total_tokens = 0
    for job in jobs:
        for step, batch in enumerate(job.dataset.global_batches(
                job.global_batch_size)):
            mb_list = onthefly_microbatches_for_batch(batch, mbs, step,
                                                      capacity, 64)
            batches.append(
                [to_pipeline_microbatch(mb, cost, num_stages) for mb in mb_list]
            )
            total_tokens += sum(s.length for s in batch)
    result = simulate_flushed(batches, num_stages)
    return _report("megatron-pp", total_tokens, result)


def run_mlora(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    capacity: int = 8192,
    microbatch_samples: int | None = None,
) -> SystemReport:
    """mLoRA: joint multi-LoRA training with uniform adapter filling.

    Every global-batch step, each adapter's samples are packed into
    single-adapter microbatches (fixed sample count) and the adapters'
    microbatches interleave round-robin, filling each other's pipeline
    gaps.  Kernels are the naive unfused ones (the paper's optimistic
    assumption for mLoRA's BatchLoRA).
    """
    num_stages = cluster.num_gpus
    cost = LayerCostModel(model, cluster.gpu, strategy="torch")
    # Unlike Megatron-PP, mLoRA does not need many microbatches per global
    # batch: other adapters fill the pipeline.  mLoRA batches each adapter
    # by memory capacity, so the sample count is per job: a long-sample
    # job packs fewer samples per microbatch than a short-sample one.
    per_job_mbs = {
        job.adapter_id: microbatch_samples
        or max(1, round(capacity / job.dataset.mean_length()))
        for job in jobs
    }
    per_job = {
        job.adapter_id: job.dataset.global_batches(job.global_batch_size)
        for job in jobs
    }
    num_steps = max(len(b) for b in per_job.values())
    stream: list[Microbatch] = []
    total_tokens = 0
    for step in range(num_steps):
        round_robin: list[list[Microbatch]] = []
        for job in jobs:
            batches = per_job[job.adapter_id]
            if step < len(batches):
                round_robin.append(
                    onthefly_microbatches_for_batch(
                        batches[step], per_job_mbs[job.adapter_id], step,
                        capacity, 64)
                )
                total_tokens += sum(s.length for s in batches[step])
        for i in range(max(len(r) for r in round_robin)):
            for job_mbs in round_robin:
                if i < len(job_mbs):
                    stream.append(job_mbs[i])
    stream, _ = insert_noops(stream, num_stages)
    pipeline = [to_pipeline_microbatch(mb, cost, num_stages) for mb in stream]
    result = simulate_stream(pipeline, num_stages)
    return _report("mlora", total_tokens, result)


def run_lorafusion(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    scheduler_config: SchedulerConfig | None = None,
    capacity: int = 8192,
    use_fused_kernels: bool = True,
    use_scheduler: bool = True,
    microbatch_samples: int | None = None,
) -> SystemReport:
    """LoRAFusion: scheduled multi-LoRA training with fused kernels.

    The ablation switches reproduce Figure 22's breakdown: disabling
    ``use_fused_kernels`` falls back to naive kernels on the balanced
    schedule; disabling ``use_scheduler`` keeps fused kernels but uses
    mLoRA-style uniform filling.
    """
    num_stages = cluster.num_gpus
    strategy = "fused_multi" if use_fused_kernels else "torch"
    cost = LayerCostModel(model, cluster.gpu, strategy=strategy)
    if use_scheduler:
        config = scheduler_config or SchedulerConfig(
            capacity=capacity, num_stages=num_stages, milp_timeout=1.0
        )
        schedule = MultiLoRAScheduler(jobs, config).schedule()
        stream = schedule.microbatches
    else:
        # Fair comparison with mLoRA: capacity-driven microbatch size.
        mbs = microbatch_samples or default_microbatch_samples(jobs, capacity)
        per_job = {
            job.adapter_id: job.dataset.global_batches(job.global_batch_size)
            for job in jobs
        }
        num_steps = max(len(b) for b in per_job.values())
        stream = []
        for step in range(num_steps):
            rr = []
            for job in jobs:
                batches = per_job[job.adapter_id]
                if step < len(batches):
                    rr.append(onthefly_microbatches_for_batch(
                        batches[step], mbs, step, capacity, 64))
            for i in range(max(len(r) for r in rr)):
                for job_mbs in rr:
                    if i < len(job_mbs):
                        stream.append(job_mbs[i])
        stream, _ = insert_noops(stream, num_stages)
    total_tokens = sum(mb.real_tokens for mb in stream)
    pipeline = [to_pipeline_microbatch(mb, cost, num_stages) for mb in stream]
    result = simulate_stream(pipeline, num_stages)
    name = "lorafusion" if use_fused_kernels and use_scheduler else (
        "lorafusion-nofuse" if use_scheduler else "lorafusion-nosched"
    )
    return _report(name, total_tokens, result)
