"""Distributed-training simulation: pipelines, FSDP, end-to-end systems."""

from repro.distsim.cluster import ClusterSpec
from repro.distsim.fsdp import FSDPStepResult, simulate_fsdp_step
from repro.distsim.memory import (
    MemoryEstimate,
    activation_bytes_per_token,
    estimate_memory,
    fits_on_gpu,
)
from repro.distsim.pipeline import (
    PipelineMicrobatch,
    PipelineResult,
    simulate_flushed,
    simulate_stream,
)
from repro.distsim.systems import (
    SystemReport,
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
    run_single_gpu_sequential,
    stage_times,
    to_pipeline_microbatch,
)

__all__ = [
    "ClusterSpec",
    "FSDPStepResult",
    "MemoryEstimate",
    "activation_bytes_per_token",
    "estimate_memory",
    "fits_on_gpu",
    "PipelineMicrobatch",
    "PipelineResult",
    "SystemReport",
    "run_lorafusion",
    "run_megatron_fsdp",
    "run_megatron_pp",
    "run_mlora",
    "run_single_gpu_sequential",
    "simulate_flushed",
    "simulate_fsdp_step",
    "simulate_stream",
    "stage_times",
    "to_pipeline_microbatch",
]
