"""Numeric training runtime: engine, optimizer, job descriptions."""

from repro.runtime.engine import (
    CompletedStep,
    JobState,
    MultiLoRAEngine,
    NumericJob,
    TrainResult,
)
from repro.runtime.optimizer import AdamWConfig, AdapterOptimizer

__all__ = [
    "AdamWConfig",
    "AdapterOptimizer",
    "CompletedStep",
    "JobState",
    "MultiLoRAEngine",
    "NumericJob",
    "TrainResult",
]
