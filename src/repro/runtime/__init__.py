"""Numeric training runtime: engine, optimizer, job descriptions."""

from repro.runtime.engine import (
    CompletedStep,
    MultiLoRAEngine,
    NumericJob,
    TrainResult,
)
from repro.runtime.optimizer import AdamWConfig, AdapterOptimizer

__all__ = [
    "AdamWConfig",
    "AdapterOptimizer",
    "CompletedStep",
    "MultiLoRAEngine",
    "NumericJob",
    "TrainResult",
]
