"""Numeric multi-LoRA training engine: executes schedules on real weights.

This is the executor of Figure 8 at numeric fidelity.  It runs a
:class:`~repro.scheduler.types.Schedule` over a
:class:`~repro.models.transformer.TinyLoRATransformer`: every microbatch
becomes one packed FusedMultiLoRA forward/backward; gradients route to
per-adapter accumulators; an adapter's optimizer steps the moment its
global batch completes -- and the engine *asserts* that no later-batch
sample is ever seen before that step ("a multi-adapter runtime coordinator
ensures token-to-adapter consistency ... and tracks gradients across job
boundaries").

Combined with :mod:`repro.baselines.sequential`, this demonstrates the
paper's losslessness guarantee end to end: joint scheduled training yields
the same per-adapter updates as training each job alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lora import LoRAConfig
from repro.errors import ScheduleError
from repro.models.transformer import PackedBatch, TinyLoRATransformer
from repro.runtime.optimizer import AdamWConfig, AdapterOptimizer
from repro.scheduler.types import Schedule

__all__ = ["NumericJob", "TrainResult", "MultiLoRAEngine"]


@dataclass
class NumericJob:
    """A numeric fine-tuning job: adapter config plus token sequences.

    Attributes:
        adapter_id: Job identity.
        lora: Adapter hyper-parameters.
        token_streams: Ordered training samples (integer token arrays).
        global_batch_size: Samples per optimizer step.
    """

    adapter_id: int
    lora: LoRAConfig
    token_streams: list[np.ndarray]
    global_batch_size: int

    def __post_init__(self) -> None:
        if self.lora.adapter_id != self.adapter_id:
            raise ScheduleError("lora.adapter_id must equal adapter_id")
        if not self.token_streams:
            raise ScheduleError("job needs at least one sample")

    def num_global_batches(self) -> int:
        """Optimizer steps this job takes."""
        return -(-len(self.token_streams) // self.global_batch_size)

    def batch_indices(self, batch: int) -> list[int]:
        """Sample indices belonging to global batch ``batch``."""
        lo = batch * self.global_batch_size
        hi = min(len(self.token_streams), lo + self.global_batch_size)
        return list(range(lo, hi))

    def batch_predicted_tokens(self, batch: int) -> int:
        """Loss-bearing (next-token) positions in global batch ``batch``."""
        return sum(
            max(0, len(self.token_streams[i]) - 1)
            for i in self.batch_indices(batch)
        )


@dataclass
class TrainResult:
    """Outcome of an engine run.

    Attributes:
        losses: Per-adapter, per-global-batch mean training loss.
        steps: Optimizer steps taken per adapter.
        microbatches_executed: Non-noop microbatches processed.
    """

    losses: dict[int, list[float]] = field(default_factory=dict)
    steps: dict[int, int] = field(default_factory=dict)
    microbatches_executed: int = 0


class MultiLoRAEngine:
    """Executes a scheduled microbatch stream on the numeric model.

    Args:
        model: The shared-base transformer (adapters are added here).
        jobs: Numeric jobs keyed by the adapter ids used in the schedule.
        optimizer_config: AdamW hyper-parameters (shared by all jobs).
    """

    def __init__(
        self,
        model: TinyLoRATransformer,
        jobs: list[NumericJob],
        optimizer_config: AdamWConfig | None = None,
    ) -> None:
        ids = [job.adapter_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids: {ids}")
        self.model = model
        self.jobs = {job.adapter_id: job for job in jobs}
        opt_cfg = optimizer_config or AdamWConfig()
        for job in jobs:
            if job.adapter_id not in model.adapters:
                model.add_adapter(job.lora)
        self.optimizers = {
            adapter_id: AdapterOptimizer(model.adapter_state(adapter_id), opt_cfg)
            for adapter_id in self.jobs
        }

    def _zero_grads(self, adapter_id: int):
        params = self.model.adapter_state(adapter_id)
        return {
            key: {"a": np.zeros_like(w.a), "b": np.zeros_like(w.b)}
            for key, w in params.items()
        }

    def run(self, schedule: Schedule) -> TrainResult:
        """Execute ``schedule`` to completion.

        Raises:
            ScheduleError: If the schedule would make an adapter see a
                batch-``j`` sample before its batch-``j-1`` optimizer step
                (the correctness property the bubble lemma protects).
        """
        jobs = self.jobs
        accumulators = {aid: self._zero_grads(aid) for aid in jobs}
        remaining = {
            (aid, b): len(job.batch_indices(b))
            for aid, job in jobs.items()
            for b in range(job.num_global_batches())
        }
        loss_sums: dict[tuple[int, int], float] = {}
        steps_done = {aid: 0 for aid in jobs}
        result = TrainResult(
            losses={aid: [] for aid in jobs}, steps={aid: 0 for aid in jobs}
        )

        for mb in schedule.microbatches:
            if mb.is_noop:
                continue
            samples: list[tuple[int, np.ndarray]] = []
            weights: list[float] = []
            keys: list[tuple[int, int]] = []
            for assignment in mb.assignments:
                aid = assignment.adapter_id
                if aid not in jobs:
                    raise ScheduleError(f"schedule references unknown job {aid}")
                if steps_done[aid] != assignment.global_batch:
                    raise ScheduleError(
                        f"adapter {aid} batch {assignment.global_batch} sample "
                        f"arrived after {steps_done[aid]} optimizer steps: "
                        "schedule violates update ordering"
                    )
                job = jobs[aid]
                tokens = job.token_streams[assignment.sample.index]
                denom = job.batch_predicted_tokens(assignment.global_batch)
                samples.append((aid, tokens))
                weights.append(1.0 / denom if denom else 0.0)
                keys.append((aid, assignment.global_batch))
            batch = PackedBatch.from_samples(samples, weights)
            _, per_sample_losses, grads = self.model.loss_and_grads(batch)
            result.microbatches_executed += 1

            # Route losses and gradients to their adapters, then step any
            # adapter whose global batch just completed.
            for key, sample_loss in zip(keys, per_sample_losses):
                loss_sums[key] = loss_sums.get(key, 0.0) + sample_loss
            for aid, adapter_grads in grads.items():
                if aid not in accumulators:
                    continue
                acc = accumulators[aid]
                for pkey, grad in adapter_grads.items():
                    acc[pkey]["a"] += grad["a"]
                    acc[pkey]["b"] += grad["b"]
            for aid, gb in set(keys):
                remaining[(aid, gb)] -= keys.count((aid, gb))
                if remaining[(aid, gb)] == 0:
                    self.optimizers[aid].step(accumulators[aid])
                    accumulators[aid] = self._zero_grads(aid)
                    steps_done[aid] += 1
                    result.steps[aid] = steps_done[aid]
                    result.losses[aid].append(loss_sums.get((aid, gb), 0.0))
        return result
