"""Numeric multi-LoRA training engine: executes schedules on real weights.

This is the executor of Figure 8 at numeric fidelity.  It runs
:class:`~repro.scheduler.types.Microbatch` streams over a
:class:`~repro.models.transformer.TinyLoRATransformer`: every microbatch
becomes one packed FusedMultiLoRA forward/backward; gradients route to
per-adapter accumulators; an adapter's optimizer steps the moment its
global batch completes -- and the engine *asserts* that no later-batch
sample is ever seen before that step ("a multi-adapter runtime coordinator
ensures token-to-adapter consistency ... and tracks gradients across job
boundaries").

The engine is *resumable*: :meth:`~MultiLoRAEngine.submit` consumes one
microbatch at a time against persistent accumulator/optimizer state, and
:meth:`~MultiLoRAEngine.add_job` / :meth:`~MultiLoRAEngine.remove_job`
admit and retire jobs mid-run, which is what the online orchestrator in
:mod:`repro.serve` drives.  :meth:`~MultiLoRAEngine.run` executes a whole
offline schedule through the same path.

Combined with :mod:`repro.baselines.sequential`, this demonstrates the
paper's losslessness guarantee end to end: joint scheduled training yields
the same per-adapter updates as training each job alone.  With
``exact_accumulation=True`` the engine computes gradients sample by sample
and folds them in sample-index order at optimizer-step time, making the
joint updates *bit-identical* to sequential training regardless of how the
scheduler packed or reordered samples within a global batch.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.lora import LoRAConfig
from repro.errors import ScheduleError
from repro.models.transformer import PackedBatch, TinyLoRATransformer
from repro.runtime.optimizer import AdamWConfig, AdapterOptimizer
from repro.scheduler.types import Microbatch, Schedule

__all__ = [
    "NumericJob",
    "TrainResult",
    "CompletedStep",
    "JobState",
    "MultiLoRAEngine",
]


@dataclass
class NumericJob:
    """A numeric fine-tuning job: adapter config plus token sequences.

    Attributes:
        adapter_id: Job identity.
        lora: Adapter hyper-parameters.
        token_streams: Ordered training samples (integer token arrays).
        global_batch_size: Samples per optimizer step.
    """

    adapter_id: int
    lora: LoRAConfig
    token_streams: list[np.ndarray]
    global_batch_size: int

    def __post_init__(self) -> None:
        if self.lora.adapter_id != self.adapter_id:
            raise ScheduleError("lora.adapter_id must equal adapter_id")
        if not self.token_streams:
            raise ScheduleError("job needs at least one sample")

    def num_global_batches(self) -> int:
        """Optimizer steps this job takes."""
        return -(-len(self.token_streams) // self.global_batch_size)

    def batch_indices(self, batch: int) -> list[int]:
        """Sample indices belonging to global batch ``batch``."""
        lo = batch * self.global_batch_size
        hi = min(len(self.token_streams), lo + self.global_batch_size)
        return list(range(lo, hi))

    def batch_predicted_tokens(self, batch: int) -> int:
        """Loss-bearing (next-token) positions in global batch ``batch``."""
        return sum(
            max(0, len(self.token_streams[i]) - 1)
            for i in self.batch_indices(batch)
        )


@dataclass
class TrainResult:
    """Outcome of an engine run.

    Attributes:
        losses: Per-adapter, per-global-batch mean training loss.
        steps: Optimizer steps taken per adapter.
        microbatches_executed: Non-noop microbatches processed.
    """

    losses: dict[int, list[float]] = field(default_factory=dict)
    steps: dict[int, int] = field(default_factory=dict)
    microbatches_executed: int = 0


@dataclass(frozen=True)
class CompletedStep:
    """One optimizer step the engine just applied.

    Attributes:
        adapter_id: The adapter that stepped.
        global_batch: The global batch whose gradient was applied.
        loss: Summed training loss of that global batch.
    """

    adapter_id: int
    global_batch: int
    loss: float


@dataclass
class JobState:
    """Portable mid-training state of one job, at a step boundary.

    This is what moves when a job migrates between engines (multi-replica
    rebalancing) or is checkpointed to disk: the adapter parameters, the
    AdamW moments, and the training progress counters.  The token streams
    themselves are *not* part of the state -- the receiving side supplies
    the same :class:`NumericJob` -- so the state stays rank-sized.

    Attributes:
        adapter_id: The job the state belongs to.
        steps_done: Optimizer steps already applied.
        losses: Per-global-batch losses recorded so far.
        weights: ``(a, b)`` adapter tensors per parameter key.
        optimizer: :meth:`AdapterOptimizer.state_dict` snapshot.
    """

    adapter_id: int
    steps_done: int
    losses: list[float]
    weights: dict[tuple[int, str], tuple[np.ndarray, np.ndarray]]
    optimizer: dict

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint files, cross-host moves)."""
        def key_str(key: tuple[int, str]) -> str:
            return f"{key[0]}:{key[1]}"

        return {
            "adapter_id": self.adapter_id,
            "steps_done": self.steps_done,
            "losses": list(self.losses),
            "dtype": str(next(iter(self.weights.values()))[0].dtype),
            "weights": {
                key_str(key): {"a": a.tolist(), "b": b.tolist()}
                for key, (a, b) in self.weights.items()
            },
            "optimizer": {
                "step_count": self.optimizer["step_count"],
                "moments": {
                    f"{key_str(pkey)}:{which}": {"m": m.tolist(), "v": v.tolist()}
                    for (pkey, which), (m, v) in self.optimizer["moments"].items()
                },
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobState":
        """Rebuild a state dumped by :meth:`to_dict`."""
        def key_tuple(text: str) -> tuple[int, str]:
            layer, name = text.split(":", 1)
            return (int(layer), name)

        dtype = payload["dtype"]
        moments = {}
        for text, pair in payload["optimizer"]["moments"].items():
            head, which = text.rsplit(":", 1)  # "layer:name:which"
            moments[(key_tuple(head), which)] = (
                np.array(pair["m"], dtype=dtype),
                np.array(pair["v"], dtype=dtype),
            )
        return cls(
            adapter_id=payload["adapter_id"],
            steps_done=payload["steps_done"],
            losses=list(payload["losses"]),
            weights={
                key_tuple(text): (
                    np.array(pair["a"], dtype=dtype),
                    np.array(pair["b"], dtype=dtype),
                )
                for text, pair in payload["weights"].items()
            },
            optimizer={
                "step_count": payload["optimizer"]["step_count"],
                "moments": moments,
            },
        )


class MultiLoRAEngine:
    """Executes a scheduled microbatch stream on the numeric model.

    Args:
        model: The shared-base transformer (adapters are added here).
        jobs: Numeric jobs keyed by the adapter ids used in the schedule
            (more may be added later via :meth:`add_job`).
        optimizer_config: AdamW hyper-parameters (shared by all jobs).
        exact_accumulation: Compute gradients one sample at a time and sum
            them in sample-index order at step time.  Slower, but makes
            joint training bit-identical to
            :func:`repro.baselines.sequential.train_job_sequentially`
            (which accumulates sample by sample in dataset order) instead
            of identical only up to float summation order.
    """

    def __init__(
        self,
        model: TinyLoRATransformer,
        jobs: list[NumericJob] | None = None,
        optimizer_config: AdamWConfig | None = None,
        exact_accumulation: bool = False,
    ) -> None:
        self.model = model
        self.exact_accumulation = exact_accumulation
        self.optimizer_config = optimizer_config or AdamWConfig()
        self.jobs: dict[int, NumericJob] = {}
        self.optimizers: dict[int, AdapterOptimizer] = {}
        self.microbatches_executed = 0
        self._accumulators: dict[int, dict] = {}
        # (adapter, batch) -> [(sample_index, grads)] in arrival order;
        # only populated under exact accumulation.
        self._sample_grads: dict[tuple[int, int], list] = {}
        self._remaining: dict[tuple[int, int], int] = {}
        self._loss_sums: dict[tuple[int, int], float] = {}
        self._sample_losses: dict[tuple[int, int], list] = {}
        self._steps_done: dict[int, int] = {}
        self._losses: dict[int, list[float]] = {}
        for job in jobs or []:
            self.add_job(job)

    # -- job lifecycle ------------------------------------------------------

    def add_job(self, job: NumericJob) -> None:
        """Admit a job mid-run: attach its adapter, optimizer, and counters.

        Adapter ids are tenant identities: one training lifecycle per id
        per engine.  Re-admitting a retired id would silently restart an
        already-trained adapter (stale weights, reset Adam moments, wiped
        history), so it is rejected -- resubmissions take a fresh id.
        """
        if job.adapter_id in self.jobs:
            raise ScheduleError(f"duplicate adapter ids: {job.adapter_id}")
        if job.adapter_id in self._steps_done:
            raise ScheduleError(
                f"adapter {job.adapter_id} was already trained by this "
                "engine; resubmit the job under a fresh adapter id"
            )
        if job.adapter_id not in self.model.adapters:
            self.model.add_adapter(job.lora)
        else:
            existing = next(
                iter(self.model.adapter_state(job.adapter_id).values())
            ).config
            if existing != job.lora:
                raise ScheduleError(
                    f"adapter {job.adapter_id} already exists on the model "
                    f"with config {existing}; submit a matching config or "
                    "use a fresh adapter id"
                )
        self.jobs[job.adapter_id] = job
        self.optimizers[job.adapter_id] = AdapterOptimizer(
            self.model.adapter_state(job.adapter_id), self.optimizer_config
        )
        self._accumulators[job.adapter_id] = self._zero_grads(job.adapter_id)
        for b in range(job.num_global_batches()):
            self._remaining[(job.adapter_id, b)] = len(job.batch_indices(b))
        self._steps_done[job.adapter_id] = 0
        self._losses[job.adapter_id] = []

    def remove_job(self, adapter_id: int) -> None:
        """Retire a job: release its optimizer/accumulator state.

        The adapter's trained weights stay on the model.  Any
        not-yet-stepped accumulated gradient is discarded, so retire jobs
        only after their final optimizer step (the orchestrator does).
        """
        if adapter_id not in self.jobs:
            raise ScheduleError(f"unknown job {adapter_id}")
        del self.jobs[adapter_id]
        del self.optimizers[adapter_id]
        del self._accumulators[adapter_id]
        # _steps_done and _losses survive retirement as training history.
        for key in [k for k in self._remaining if k[0] == adapter_id]:
            del self._remaining[key]
        for store in (self._loss_sums, self._sample_losses, self._sample_grads):
            for key in [k for k in store if k[0] == adapter_id]:
                del store[key]

    def export_job_state(self, adapter_id: int) -> JobState:
        """Snapshot a live job's mid-training state at a step boundary.

        The snapshot (adapter weights, AdamW moments, progress counters)
        is a deep copy: the engine may keep training afterwards without
        perturbing it.  Together with :meth:`import_job_state` this is the
        migration/checkpoint primitive -- a job exported here and imported
        into another engine whose model shares the same frozen base
        weights continues training bit-identically.

        Args:
            adapter_id: A currently-live job.

        Returns:
            The job's portable :class:`JobState`.

        Raises:
            ScheduleError: For unknown jobs, or when the job has a
                partially-accumulated global batch in flight (export is
                only defined at optimizer-step boundaries).
        """
        if adapter_id not in self.jobs:
            raise ScheduleError(f"unknown job {adapter_id}")
        pending = [
            key
            for store in (self._loss_sums, self._sample_grads,
                          self._sample_losses)
            for key in store
            if key[0] == adapter_id
        ]
        if pending:
            raise ScheduleError(
                f"job {adapter_id} has a partially-accumulated global "
                "batch; export state only at optimizer-step boundaries"
            )
        params = self.model.adapter_state(adapter_id)
        return JobState(
            adapter_id=adapter_id,
            steps_done=self._steps_done[adapter_id],
            losses=list(self._losses[adapter_id]),
            weights={
                key: (w.a.copy(), w.b.copy()) for key, w in params.items()
            },
            optimizer=self.optimizers[adapter_id].state_dict(),
        )

    def import_job_state(self, job: NumericJob, state: JobState) -> None:
        """Resume a job from a :meth:`export_job_state` snapshot.

        The adapter is (re)created on the model with the snapshot's
        weights, the optimizer is rebuilt with the snapshot's moments, and
        batch bookkeeping starts at ``state.steps_done`` -- only the
        not-yet-trained global batches remain.  Unlike :meth:`add_job`,
        re-importing an id this engine has seen before is allowed: restore
        is explicit, so overwriting is intended (the migration path A ->
        B -> A, resuming a preempted job on the engine that parked it,
        and restarts from a checkpoint all need it).  The one overwrite
        refused is a *regression*: a snapshot claiming fewer steps than
        this engine already applied for the adapter is stale, and
        resuming from it would silently repeat optimizer steps.

        Args:
            job: The job definition (token streams, batch size) -- must be
                the same job the state was exported from.
            state: The snapshot to resume from.

        Raises:
            ScheduleError: When the job is still live here, the snapshot
                belongs to another adapter, the adapter exists with a
                different LoRA config, the snapshot's parameter layout
                does not match, or the snapshot claims more steps than the
                job has batches -- or fewer than this engine already
                applied for the adapter (a stale snapshot).
        """
        aid = job.adapter_id
        if aid in self.jobs:
            raise ScheduleError(
                f"job {aid} is still live on this engine; remove it before "
                "importing a snapshot"
            )
        if state.adapter_id != aid:
            raise ScheduleError(
                f"snapshot belongs to adapter {state.adapter_id}, "
                f"job is adapter {aid}"
            )
        if state.steps_done > job.num_global_batches():
            raise ScheduleError(
                f"snapshot has {state.steps_done} steps but the job only "
                f"has {job.num_global_batches()} global batches"
            )
        if state.steps_done < self._steps_done.get(aid, 0):
            raise ScheduleError(
                f"snapshot for job {aid} is stale: it holds "
                f"{state.steps_done} steps but this engine already applied "
                f"{self._steps_done[aid]}; resuming would repeat optimizer "
                "steps"
            )
        if aid not in self.model.adapters:
            self.model.add_adapter(job.lora)
        else:
            existing = next(
                iter(self.model.adapter_state(aid).values())
            ).config
            if existing != job.lora:
                raise ScheduleError(
                    f"adapter {aid} already exists on the model with "
                    f"config {existing}; snapshot import needs a matching "
                    "config"
                )
        params = self.model.adapter_state(aid)
        if set(params) != set(state.weights):
            raise ScheduleError(
                "snapshot parameter layout does not match the model "
                "(different depth or projection set)"
            )
        for key, weights in params.items():
            a, b = state.weights[key]
            if a.shape != weights.a.shape or b.shape != weights.b.shape:
                raise ScheduleError(
                    f"snapshot shape mismatch at {key} (different rank?)"
                )
            weights.a = a.copy()
            weights.b = b.copy()
        self.jobs[aid] = job
        optimizer = AdapterOptimizer(params, self.optimizer_config)
        optimizer.load_state_dict(state.optimizer)
        self.optimizers[aid] = optimizer
        self._accumulators[aid] = self._zero_grads(aid)
        for key in [k for k in self._remaining if k[0] == aid]:
            del self._remaining[key]
        for b in range(state.steps_done, job.num_global_batches()):
            self._remaining[(aid, b)] = len(job.batch_indices(b))
        self._steps_done[aid] = state.steps_done
        self._losses[aid] = list(state.losses)

    def steps_done(self, adapter_id: int) -> int:
        """Optimizer steps taken so far for ``adapter_id``."""
        return self._steps_done[adapter_id]

    def losses(self, adapter_id: int) -> list[float]:
        """Per-global-batch losses recorded so far for ``adapter_id``."""
        return list(self._losses[adapter_id])

    # -- execution ----------------------------------------------------------

    def _zero_grads(self, adapter_id: int):
        params = self.model.adapter_state(adapter_id)
        return {
            key: {"a": np.zeros_like(w.a), "b": np.zeros_like(w.b)}
            for key, w in params.items()
        }

    def _validate(self, mb: Microbatch) -> None:
        for assignment in mb.assignments:
            aid = assignment.adapter_id
            if aid not in self.jobs:
                raise ScheduleError(f"schedule references unknown job {aid}")
            if assignment.global_batch >= self.jobs[aid].num_global_batches():
                raise ScheduleError(
                    f"adapter {aid} has no global batch "
                    f"{assignment.global_batch} (job has "
                    f"{self.jobs[aid].num_global_batches()})"
                )
            if self._steps_done[aid] != assignment.global_batch:
                raise ScheduleError(
                    f"adapter {aid} batch {assignment.global_batch} sample "
                    f"arrived after {self._steps_done[aid]} optimizer steps: "
                    "schedule violates update ordering"
                )

    def _execute_packed(self, mb: Microbatch) -> list[tuple[int, int]]:
        """One fused forward/backward over the whole microbatch."""
        samples: list[tuple[int, np.ndarray]] = []
        weights: list[float] = []
        keys: list[tuple[int, int]] = []
        for assignment in mb.assignments:
            aid = assignment.adapter_id
            job = self.jobs[aid]
            tokens = job.token_streams[assignment.sample.index]
            denom = job.batch_predicted_tokens(assignment.global_batch)
            samples.append((aid, tokens))
            weights.append(1.0 / denom if denom else 0.0)
            keys.append((aid, assignment.global_batch))
        batch = PackedBatch.from_samples(samples, weights)
        _, per_sample_losses, grads = self.model.loss_and_grads(batch)
        for key, sample_loss in zip(keys, per_sample_losses):
            self._loss_sums[key] = self._loss_sums.get(key, 0.0) + sample_loss
        for aid, adapter_grads in grads.items():
            if aid not in self._accumulators:
                continue
            acc = self._accumulators[aid]
            for pkey, grad in adapter_grads.items():
                acc[pkey]["a"] += grad["a"]
                acc[pkey]["b"] += grad["b"]
        return keys

    def _execute_exact(self, mb: Microbatch) -> list[tuple[int, int]]:
        """One forward/backward per sample, deferring accumulation order."""
        keys: list[tuple[int, int]] = []
        for assignment in mb.assignments:
            aid = assignment.adapter_id
            job = self.jobs[aid]
            tokens = job.token_streams[assignment.sample.index]
            denom = job.batch_predicted_tokens(assignment.global_batch)
            weight = 1.0 / denom if denom else 0.0
            batch = PackedBatch.from_samples([(aid, tokens)], [weight])
            _, per_sample_losses, grads = self.model.loss_and_grads(batch)
            key = (aid, assignment.global_batch)
            self._sample_grads.setdefault(key, []).append(
                (assignment.sample.index, grads[aid])
            )
            self._sample_losses.setdefault(key, []).append(
                (assignment.sample.index, per_sample_losses[0])
            )
            keys.append(key)
        return keys

    def _step(self, aid: int, gb: int) -> CompletedStep:
        """Apply the optimizer step for a just-completed global batch."""
        if self.exact_accumulation:
            # Fold per-sample gradients in sample-index order from a fresh
            # zero accumulator -- the exact association sequential training
            # uses, independent of the schedule's packing order.
            acc = self._zero_grads(aid)
            for _, grads in sorted(
                self._sample_grads.pop((aid, gb)), key=lambda item: item[0]
            ):
                for pkey, grad in grads.items():
                    acc[pkey]["a"] += grad["a"]
                    acc[pkey]["b"] += grad["b"]
            loss = 0.0
            for _, sample_loss in sorted(
                self._sample_losses.pop((aid, gb)), key=lambda item: item[0]
            ):
                loss += sample_loss
        else:
            acc = self._accumulators[aid]
            loss = self._loss_sums.pop((aid, gb), 0.0)
        self.optimizers[aid].step(acc)
        self._accumulators[aid] = self._zero_grads(aid)
        self._steps_done[aid] += 1
        self._losses[aid].append(loss)
        return CompletedStep(adapter_id=aid, global_batch=gb, loss=loss)

    def submit(self, mb: Microbatch) -> list[CompletedStep]:
        """Execute one microbatch against the persistent training state.

        Returns:
            The optimizer steps this microbatch completed (an adapter
            steps the moment its global batch's last sample is consumed).

        Raises:
            ScheduleError: If the microbatch would make an adapter see a
                batch-``j`` sample before its batch-``j-1`` optimizer step
                (the correctness property the bubble lemma protects).
        """
        if mb.is_noop:
            return []
        self._validate(mb)
        keys = (
            self._execute_exact(mb)
            if self.exact_accumulation
            else self._execute_packed(mb)
        )
        self.microbatches_executed += 1
        completed: list[CompletedStep] = []
        for key, count in Counter(keys).items():
            self._remaining[key] -= count
            if self._remaining[key] == 0:
                completed.append(self._step(*key))
        return completed

    def run(self, schedule: Schedule) -> TrainResult:
        """Execute ``schedule`` to completion (the offline path).

        The result covers *this call only*: on an engine that already
        trained (training state persists across calls), losses and step
        counts are the deltas this schedule produced.  A schedule's batch
        indices must continue from the engine's current optimizer-step
        counts -- replaying the same schedule twice is an update-ordering
        error, not an epoch.
        """
        executed_before = self.microbatches_executed
        steps_before = dict(self._steps_done)
        losses_before = {aid: len(losses) for aid, losses in self._losses.items()}
        for mb in schedule.microbatches:
            self.submit(mb)
        return TrainResult(
            losses={
                aid: losses[losses_before.get(aid, 0):]
                for aid, losses in self._losses.items()
            },
            steps={
                aid: steps - steps_before.get(aid, 0)
                for aid, steps in self._steps_done.items()
            },
            microbatches_executed=self.microbatches_executed - executed_before,
        )
