"""AdamW optimizer for LoRA adapter parameters.

Only the adapter matrices ``A``/``B`` train (base weights are frozen), so
the optimizer state is rank-sized -- the memory argument of Section 2.1.
The implementation is deterministic: the same gradient sequence always
produces the same parameters, which the losslessness tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lora import LoRAWeights

__all__ = ["AdamWConfig", "AdapterOptimizer"]


@dataclass(frozen=True)
class AdamWConfig:
    """AdamW hyper-parameters (PyTorch defaults, fp32-style epsilon)."""

    lr: float = 1e-4
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0


@dataclass
class _MomentPair:
    m: np.ndarray
    v: np.ndarray


@dataclass
class AdapterOptimizer:
    """AdamW over one adapter's parameter mapping.

    Args:
        params: Mapping from parameter key (e.g. ``(layer, "q_proj")``) to
            :class:`~repro.core.lora.LoRAWeights`, updated in place.
        config: Optimizer hyper-parameters.
    """

    params: dict[tuple[int, str], LoRAWeights]
    config: AdamWConfig = field(default_factory=AdamWConfig)
    step_count: int = 0

    def __post_init__(self) -> None:
        self._state: dict[tuple[tuple[int, str], str], _MomentPair] = {}
        for key, weights in self.params.items():
            for which, tensor in (("a", weights.a), ("b", weights.b)):
                self._state[(key, which)] = _MomentPair(
                    m=np.zeros_like(tensor), v=np.zeros_like(tensor)
                )

    def state_dict(self) -> dict:
        """Snapshot the optimizer state (moments plus step count).

        Returns:
            A mapping with ``step_count`` and per-parameter ``moments``
            keyed by ``(param_key, "a"|"b")``; arrays are copies, so the
            snapshot is immune to further training.
        """
        return {
            "step_count": self.step_count,
            "moments": {
                key: (pair.m.copy(), pair.v.copy())
                for key, pair in self._state.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        Args:
            state: The snapshot; its moment keys and shapes must match
                this optimizer's parameters exactly.

        Raises:
            KeyError: When the snapshot's parameter keys disagree with
                this optimizer's (different adapter layout or rank).
        """
        moments = state["moments"]
        if set(moments) != set(self._state):
            raise KeyError(
                "optimizer snapshot parameter keys do not match this "
                "adapter's parameters"
            )
        self.step_count = int(state["step_count"])
        for key, (m, v) in moments.items():
            pair = self._state[key]
            if m.shape != pair.m.shape or v.shape != pair.v.shape:
                raise KeyError(f"optimizer snapshot shape mismatch at {key}")
            pair.m = m.copy()
            pair.v = v.copy()

    def step(self, grads: dict[tuple[int, str], dict[str, np.ndarray]]) -> None:
        """Apply one AdamW update from accumulated gradients."""
        cfg = self.config
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - cfg.beta1**t
        bias2 = 1.0 - cfg.beta2**t
        for key, weights in self.params.items():
            for which, tensor in (("a", weights.a), ("b", weights.b)):
                grad = grads[key][which]
                state = self._state[(key, which)]
                state.m = cfg.beta1 * state.m + (1.0 - cfg.beta1) * grad
                state.v = cfg.beta2 * state.v + (1.0 - cfg.beta2) * grad * grad
                m_hat = state.m / bias1
                v_hat = state.v / bias2
                if cfg.weight_decay:
                    tensor *= 1.0 - cfg.lr * cfg.weight_decay
                tensor -= cfg.lr * m_hat / (np.sqrt(v_hat) + cfg.eps)
