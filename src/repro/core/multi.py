"""FusedMultiLoRA: tile-level routing of multiple adapters (Figure 11).

A microbatch produced by the multi-LoRA scheduler concatenates token
segments that belong to different fine-tuning jobs.  The FusedMultiLoRA
kernel processes all of them in a single launch: the token dimension is cut
into M-tiles of ``block_m`` rows, and a precomputed lookup table maps every
tile to the adapter that owns its tokens.  The frozen base GEMM is shared by
all tokens; the adapter-specific low-rank math (with per-adapter rank,
scaling, and dropout) is applied per tile.

The numpy implementation below literally iterates M-tiles and routes
per-tile adapter weights, mirroring the Triton kernel's structure.  It is
validated against per-adapter :mod:`repro.core.fused` calls: outputs and
gradients must match exactly.

Alignment rule: a tile must never straddle two adapters, so every segment
length must be a multiple of ``block_m``.  The scheduler guarantees this via
the padding multiple ``P`` (Section 5.2); :func:`pack_segments` provides the
same padding for direct kernel users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lora import LoRAWeights, apply_dropout, dropout_mask
from repro.errors import KernelConfigError

__all__ = [
    "PAD_ADAPTER_ID",
    "Segment",
    "MultiLoRABatch",
    "MultiLoRAContext",
    "MultiLoRAGrads",
    "build_tile_table",
    "pack_segments",
    "fused_multi_lora_forward",
    "fused_multi_lora_backward",
]

#: Adapter id used for padding tiles that carry no real tokens.
PAD_ADAPTER_ID = -1


@dataclass(frozen=True)
class Segment:
    """A contiguous run of tokens owned by one adapter."""

    adapter_id: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise KernelConfigError(f"segment length must be positive: {self}")


def build_tile_table(segments: list[Segment], block_m: int) -> np.ndarray:
    """Build the tile -> adapter lookup table for a microbatch.

    Args:
        segments: Token segments in layout order.
        block_m: Tile height in tokens.

    Returns:
        Integer array of length ``total_tokens / block_m`` whose ``i``-th
        entry is the adapter id owning tile ``i``.

    Raises:
        KernelConfigError: If any segment is not ``block_m``-aligned (a tile
            would straddle two adapters).
    """
    if block_m <= 0:
        raise KernelConfigError(f"block_m must be positive, got {block_m}")
    table: list[int] = []
    for seg in segments:
        if seg.length % block_m != 0:
            raise KernelConfigError(
                f"segment {seg} is not aligned to block_m={block_m}; "
                "pad with pack_segments() or the scheduler's padding multiple"
            )
        table.extend([seg.adapter_id] * (seg.length // block_m))
    return np.asarray(table, dtype=np.int64)


@dataclass
class MultiLoRABatch:
    """Descriptor of a mixed-adapter microbatch for the fused kernel.

    Attributes:
        segments: Token segments in layout order (block-aligned).
        block_m: Tile height used for routing.
        tile_table: Lookup table from :func:`build_tile_table`.
    """

    segments: list[Segment]
    block_m: int = 64
    tile_table: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.tile_table = build_tile_table(self.segments, self.block_m)

    @property
    def total_tokens(self) -> int:
        """Total (padded) token rows in the microbatch."""
        return sum(seg.length for seg in self.segments)

    @property
    def num_tiles(self) -> int:
        """Number of M-tiles."""
        return len(self.tile_table)

    @property
    def adapter_ids(self) -> list[int]:
        """Distinct real adapter ids present, in first-appearance order."""
        seen: list[int] = []
        for seg in self.segments:
            if seg.adapter_id != PAD_ADAPTER_ID and seg.adapter_id not in seen:
                seen.append(seg.adapter_id)
        return seen

    def tile_bounds(self, tile: int) -> tuple[int, int]:
        """Row range ``[start, end)`` of tile ``tile``."""
        start = tile * self.block_m
        return start, start + self.block_m


def pack_segments(
    inputs: list[tuple[int, np.ndarray]], block_m: int = 64
) -> tuple[np.ndarray, MultiLoRABatch, list[slice]]:
    """Concatenate per-adapter inputs into one block-aligned batch.

    Each input is padded with zero rows up to the next multiple of
    ``block_m``; padding rows are tagged :data:`PAD_ADAPTER_ID` so the
    kernel skips adapter math for them.

    Args:
        inputs: List of ``(adapter_id, x_i)`` pairs, each ``x_i`` of shape
            ``(m_i, k)``.
        block_m: Tile height.

    Returns:
        ``(x, batch, views)`` where ``x`` is the packed ``(M, k)`` input,
        ``batch`` the routing descriptor, and ``views[i]`` the row slice of
        input ``i`` inside ``x`` (use it to un-pad outputs).
    """
    if not inputs:
        raise KernelConfigError("pack_segments requires at least one input")
    k = inputs[0][1].shape[1]
    rows: list[np.ndarray] = []
    segments: list[Segment] = []
    views: list[slice] = []
    offset = 0
    for adapter_id, x_i in inputs:
        if x_i.ndim != 2 or x_i.shape[1] != k:
            raise KernelConfigError(
                f"all inputs must be (m_i, {k}); got {x_i.shape}"
            )
        m_i = x_i.shape[0]
        pad = (-m_i) % block_m
        rows.append(x_i)
        views.append(slice(offset, offset + m_i))
        if m_i + pad > 0:
            segments.append(Segment(adapter_id, m_i + pad))
        if pad:
            rows.append(np.zeros((pad, k), dtype=x_i.dtype))
        offset += m_i + pad
    x = np.concatenate(rows, axis=0)
    return x, MultiLoRABatch(segments=segments, block_m=block_m), views


@dataclass
class MultiLoRAContext:
    """Saved tensors from a FusedMultiLoRA forward pass."""

    x: np.ndarray
    x_hat: np.ndarray
    s: np.ndarray  # (m, max_rank); tile rows use the owning adapter's rank
    mask: np.ndarray | None
    batch: MultiLoRABatch


@dataclass
class MultiLoRAGrads:
    """Gradients from a FusedMultiLoRA backward pass, routed per adapter."""

    dx: np.ndarray
    da: dict[int, np.ndarray]
    db: dict[int, np.ndarray]


def _check_adapters(
    adapters: dict[int, LoRAWeights], batch: MultiLoRABatch, k: int
) -> int:
    """Validate adapter availability/shapes; return the maximum rank."""
    max_rank = 1
    for adapter_id in batch.adapter_ids:
        if adapter_id not in adapters:
            raise KernelConfigError(f"batch references unknown adapter {adapter_id}")
        weights = adapters[adapter_id]
        if weights.in_features != k:
            raise KernelConfigError(
                f"adapter {adapter_id} expects k={weights.in_features}, "
                f"input has k={k}"
            )
        max_rank = max(max_rank, weights.config.rank)
    return max_rank


def fused_multi_lora_forward(
    x: np.ndarray,
    w: np.ndarray,
    adapters: dict[int, LoRAWeights],
    batch: MultiLoRABatch,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, MultiLoRAContext]:
    """FusedMultiLoRA forward pass with tile-level adapter routing.

    Per M-tile, the kernel looks up the owning adapter, applies that
    adapter's dropout, down-projects with its ``A``, and fuses the base GEMM
    with its scaled up-projection -- exactly kernels 1-2 of Figure 10, but
    with per-tile weights selected through the lookup table.

    Args:
        x: Packed input of shape ``(M, k)`` with ``M = batch.total_tokens``.
        w: Shared frozen base weight ``(k, n)``.
        adapters: Mapping from adapter id to weights.
        batch: Tile routing descriptor.
        rng: Generator for dropout masks (per-tile, per-adapter rate).
        mask: Optional pre-sampled full ``(M, k)`` keep mask.

    Returns:
        ``(y, ctx)``.
    """
    m, k = x.shape
    if m != batch.total_tokens:
        raise KernelConfigError(
            f"input rows {m} != batch tokens {batch.total_tokens}"
        )
    max_rank = _check_adapters(adapters, batch, k)
    n = w.shape[1]

    y = np.empty((m, n), dtype=x.dtype)
    x_hat = np.zeros_like(x)
    s = np.zeros((m, max_rank), dtype=x.dtype)
    full_mask: np.ndarray | None = mask
    needs_mask = full_mask is None and any(
        adapters[i].config.dropout > 0.0 for i in batch.adapter_ids
    )
    if needs_mask:
        if rng is None:
            raise KernelConfigError("dropout > 0 requires an rng or explicit mask")
        full_mask = np.ones((m, k), dtype=bool)

    for tile, adapter_id in enumerate(batch.tile_table):
        lo, hi = batch.tile_bounds(tile)
        x_tile = x[lo:hi]
        if adapter_id == PAD_ADAPTER_ID:
            y[lo:hi] = x_tile @ w
            continue
        weights = adapters[adapter_id]
        cfg = weights.config
        keep_prob = 1.0 - cfg.dropout
        if mask is not None:
            tile_mask = mask[lo:hi] if cfg.dropout > 0.0 else None
        elif cfg.dropout > 0.0:
            tile_mask = dropout_mask(x_tile.shape, cfg.dropout, rng)
            full_mask[lo:hi] = tile_mask
        else:
            tile_mask = None
        xh_tile = apply_dropout(x_tile, tile_mask, keep_prob)
        s_tile = xh_tile @ weights.a
        x_hat[lo:hi] = xh_tile
        s[lo:hi, : cfg.rank] = s_tile
        y[lo:hi] = x_tile @ w + cfg.alpha * (s_tile @ weights.b)

    ctx = MultiLoRAContext(x=x, x_hat=x_hat, s=s, mask=full_mask, batch=batch)
    return y, ctx


def fused_multi_lora_backward(
    dy: np.ndarray,
    w: np.ndarray,
    adapters: dict[int, LoRAWeights],
    ctx: MultiLoRAContext,
) -> MultiLoRAGrads:
    """FusedMultiLoRA backward pass with per-tile gradient routing.

    Tile gradients are accumulated into per-adapter ``dA``/``dB`` buffers
    (the real kernel uses atomics / split accumulation, which is the slight
    backward overhead the paper reports for FusedMultiLoRA).
    """
    batch = ctx.batch
    m, k = ctx.x.shape
    if dy.shape[0] != m:
        raise KernelConfigError(f"dy rows {dy.shape[0]} != input rows {m}")

    dx = np.empty((m, k), dtype=dy.dtype)
    da = {
        adapter_id: np.zeros_like(adapters[adapter_id].a)
        for adapter_id in batch.adapter_ids
    }
    db = {
        adapter_id: np.zeros_like(adapters[adapter_id].b)
        for adapter_id in batch.adapter_ids
    }

    for tile, adapter_id in enumerate(batch.tile_table):
        lo, hi = batch.tile_bounds(tile)
        dy_tile = dy[lo:hi]
        if adapter_id == PAD_ADAPTER_ID:
            dx[lo:hi] = dy_tile @ w.T
            continue
        weights = adapters[adapter_id]
        cfg = weights.config
        keep_prob = 1.0 - cfg.dropout
        s_tile = ctx.s[lo:hi, : cfg.rank]
        tile_mask = ctx.mask[lo:hi] if (ctx.mask is not None and cfg.dropout) else None
        # Kernel 3 (fused_multi_lora_dys_dyb): dB and dS from one dY pass.
        db[adapter_id] += cfg.alpha * (s_tile.T @ dy_tile)
        ds_tile = cfg.alpha * (dy_tile @ weights.b.T)
        # Kernel 4: dA accumulation.
        da[adapter_id] += ctx.x_hat[lo:hi].T @ ds_tile
        # Kernel 5 (fused_multi_lora_dyw_dsa): dX with LoRA epilogue.
        dx_lora = apply_dropout(ds_tile @ weights.a.T, tile_mask, keep_prob)
        dx[lo:hi] = dy_tile @ w.T + dx_lora

    return MultiLoRAGrads(dx=dx, da=da, db=db)
