"""Kernel-level contribution of the paper: FusedLoRA and FusedMultiLoRA.

Layout:

* :mod:`repro.core.lora` -- LoRA math and the unfused reference path.
* :mod:`repro.core.fused` -- the split-graph FusedLoRA kernels (Figure 10).
* :mod:`repro.core.multi` -- FusedMultiLoRA tile routing (Figure 11).
* :mod:`repro.core.traffic` -- analytical DRAM-traffic/kernel-profile model.
* :mod:`repro.core.module` -- the plug-and-play ``LoRALinear`` layer.
"""

from repro.core.fused import (
    fused_dropout_matmul,
    fused_dys_dyb,
    fused_dyw_dsa,
    fused_lora_backward,
    fused_lora_forward,
    fused_xw_sb,
    matmul_da,
)
from repro.core.lora import (
    LoRAConfig,
    LoRAContext,
    LoRAGrads,
    LoRAWeights,
    frozen_linear_backward,
    frozen_linear_forward,
    init_lora_weights,
    lora_backward_reference,
    lora_forward_reference,
)
from repro.core.module import LoRALinear, TrafficLedger
from repro.core.multi import (
    PAD_ADAPTER_ID,
    MultiLoRABatch,
    MultiLoRAContext,
    MultiLoRAGrads,
    Segment,
    build_tile_table,
    fused_multi_lora_backward,
    fused_multi_lora_forward,
    pack_segments,
)
from repro.core.variants import (
    QuantizedWeight,
    VeRAWeights,
    dequantize_nf4,
    dora_forward,
    qlora_forward,
    quantize_nf4,
    variant_forward_profiles,
    vera_backward_scales,
    vera_forward,
)
from repro.core.traffic import (
    STRATEGIES,
    LoRAShape,
    lora_profiles,
    total_traffic,
    traffic_ratio,
)

__all__ = [
    "LoRAConfig",
    "LoRAContext",
    "LoRAGrads",
    "LoRALinear",
    "LoRAShape",
    "LoRAWeights",
    "MultiLoRABatch",
    "MultiLoRAContext",
    "MultiLoRAGrads",
    "PAD_ADAPTER_ID",
    "QuantizedWeight",
    "STRATEGIES",
    "VeRAWeights",
    "Segment",
    "TrafficLedger",
    "build_tile_table",
    "dequantize_nf4",
    "dora_forward",
    "frozen_linear_backward",
    "frozen_linear_forward",
    "fused_dropout_matmul",
    "fused_dys_dyb",
    "fused_dyw_dsa",
    "fused_lora_backward",
    "fused_lora_forward",
    "fused_multi_lora_backward",
    "fused_multi_lora_forward",
    "fused_xw_sb",
    "init_lora_weights",
    "lora_backward_reference",
    "lora_forward_reference",
    "lora_profiles",
    "matmul_da",
    "pack_segments",
    "qlora_forward",
    "quantize_nf4",
    "total_traffic",
    "variant_forward_profiles",
    "vera_backward_scales",
    "vera_forward",
    "traffic_ratio",
]
