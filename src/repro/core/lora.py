"""LoRA linear-layer math: configuration and the unfused reference path.

This module implements the computation of Equation 1 of the paper,

    Y = X @ W + alpha * (dropout(X) @ A) @ B

and its backward pass, exactly as the stock PyTorch/PEFT implementation
("Torch LoRA" in the paper's figures) executes it: one kernel per operation.
The fused implementations in :mod:`repro.core.fused` and
:mod:`repro.core.multi` are validated against this reference -- they must
produce numerically identical outputs and gradients (the paper's
"losslessness" guarantee in Section 6).

Shapes follow Table 1 of the paper:

===========  =========================================
``x``        input, ``(m, k)``
``w``        frozen base weight, ``(k, n)``
``a``        LoRA down-projection, ``(k, r)``
``b``        LoRA up-projection, ``(r, n)``
``y``        output, ``(m, n)``
===========  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelConfigError

__all__ = [
    "LoRAConfig",
    "LoRAWeights",
    "LoRAContext",
    "LoRAGrads",
    "apply_dropout",
    "dropout_mask",
    "lora_forward_reference",
    "lora_backward_reference",
    "frozen_linear_forward",
    "frozen_linear_backward",
    "init_lora_weights",
]


@dataclass(frozen=True)
class LoRAConfig:
    """Hyper-parameters of one LoRA adapter.

    Attributes:
        rank: Low-rank dimension ``r`` (paper uses 16 and 32).
        alpha: Scaling constant applied to the low-rank branch.  Many
            implementations use ``alpha / rank`` as the effective scale; we
            store the *effective* multiplier directly for clarity.
        dropout: Dropout probability applied to the adapter input.
        adapter_id: Identifier used by multi-LoRA routing and the scheduler.
    """

    rank: int = 16
    alpha: float = 2.0
    dropout: float = 0.1
    adapter_id: int = 0

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise KernelConfigError(f"LoRA rank must be positive, got {self.rank}")
        if not 0.0 <= self.dropout < 1.0:
            raise KernelConfigError(
                f"dropout must be in [0, 1), got {self.dropout}"
            )


@dataclass
class LoRAWeights:
    """Parameter tensors of one LoRA adapter (``a`` down, ``b`` up)."""

    a: np.ndarray
    b: np.ndarray
    config: LoRAConfig = field(default_factory=LoRAConfig)

    def __post_init__(self) -> None:
        if self.a.ndim != 2 or self.b.ndim != 2:
            raise KernelConfigError("LoRA weights must be 2-D matrices")
        if self.a.shape[1] != self.config.rank or self.b.shape[0] != self.config.rank:
            raise KernelConfigError(
                f"weight shapes {self.a.shape}/{self.b.shape} do not match "
                f"rank {self.config.rank}"
            )

    @property
    def in_features(self) -> int:
        """Input dimension ``k``."""
        return self.a.shape[0]

    @property
    def out_features(self) -> int:
        """Output dimension ``n``."""
        return self.b.shape[1]


@dataclass
class LoRAContext:
    """Saved tensors from a forward pass, consumed by the backward pass."""

    x: np.ndarray
    x_hat: np.ndarray
    s: np.ndarray
    mask: np.ndarray | None
    keep_prob: float


@dataclass
class LoRAGrads:
    """Gradients produced by a LoRA backward pass (``w`` is frozen)."""

    dx: np.ndarray
    da: np.ndarray
    db: np.ndarray


def init_lora_weights(
    k: int,
    n: int,
    config: LoRAConfig,
    rng: np.random.Generator,
    dtype: np.dtype = np.float64,
) -> LoRAWeights:
    """Standard LoRA initialisation: Kaiming-style ``A``, zero ``B``.

    With ``B = 0`` the adapter starts as an exact no-op, which is the
    conventional initialisation from the original LoRA paper.
    """
    a = (rng.standard_normal((k, config.rank)) / np.sqrt(k)).astype(dtype)
    b = np.zeros((config.rank, n), dtype=dtype)
    return LoRAWeights(a=a, b=b, config=config)


def dropout_mask(
    shape: tuple[int, ...], dropout: float, rng: np.random.Generator
) -> np.ndarray | None:
    """Sample a boolean keep-mask, or ``None`` when dropout is disabled."""
    if dropout == 0.0:
        return None
    return rng.random(shape) >= dropout


def apply_dropout(
    x: np.ndarray, mask: np.ndarray | None, keep_prob: float
) -> np.ndarray:
    """Apply inverted dropout: zero dropped entries, rescale kept ones."""
    if mask is None:
        return x
    return x * mask / keep_prob


def frozen_linear_forward(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Forward of the frozen base linear layer: ``y = x @ w``."""
    return x @ w


def frozen_linear_backward(dy: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Backward of the frozen base layer: only ``dx`` (``w`` has no grad)."""
    return dy @ w.T


def lora_forward_reference(
    x: np.ndarray,
    w: np.ndarray,
    weights: LoRAWeights,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, LoRAContext]:
    """Unfused LoRA forward pass (the paper's "Torch LoRA" baseline).

    Executes the five distinct kernels of Figure 4: dropout, ``X @ W``,
    ``X_hat @ A``, ``S @ B``, and the final scale-and-add.

    Args:
        x: Input of shape ``(m, k)``.
        w: Frozen base weight of shape ``(k, n)``.
        weights: Adapter parameters and config.
        rng: Generator used to sample the dropout mask.  Required when
            ``config.dropout > 0`` and ``mask`` is not supplied.
        mask: Pre-sampled keep mask; overrides ``rng`` when given.

    Returns:
        ``(y, ctx)`` where ``ctx`` carries the saved tensors for backward.
    """
    cfg = weights.config
    if mask is None:
        if cfg.dropout > 0.0 and rng is None:
            raise KernelConfigError("dropout > 0 requires an rng or explicit mask")
        mask = dropout_mask(x.shape, cfg.dropout, rng) if cfg.dropout else None
    keep_prob = 1.0 - cfg.dropout
    x_hat = apply_dropout(x, mask, keep_prob)  # kernel 1: dropout
    y1 = x @ w  # kernel 2: base GEMM
    s = x_hat @ weights.a  # kernel 3: down-projection GEMM
    y2 = s @ weights.b  # kernel 4: up-projection GEMM
    y = y1 + cfg.alpha * y2  # kernel 5: scale-and-add
    ctx = LoRAContext(x=x, x_hat=x_hat, s=s, mask=mask, keep_prob=keep_prob)
    return y, ctx


def lora_backward_reference(
    dy: np.ndarray,
    w: np.ndarray,
    weights: LoRAWeights,
    ctx: LoRAContext,
) -> LoRAGrads:
    """Unfused LoRA backward pass matching Figure 4's kernel list.

    Computes gradients for the adapter weights and the layer input; the base
    weight ``w`` is frozen and receives no gradient.
    """
    cfg = weights.config
    dy_hat = cfg.alpha * dy  # kernel: Mul
    db = ctx.s.T @ dy_hat  # kernel: S.T @ dY
    ds = dy_hat @ weights.b.T  # kernel: dY @ B
    da = ctx.x_hat.T @ ds  # kernel: X_hat.T @ dS
    dx_hat = ds @ weights.a.T  # kernel: dS @ A
    dx_base = dy @ w.T  # kernel: dY @ W
    dx_lora = apply_dropout(dx_hat, ctx.mask, ctx.keep_prob)  # kernel: DropoutBwd
    dx = dx_base + dx_lora  # kernel: Add
    return LoRAGrads(dx=dx, da=da, db=db)
