"""LoRA variants via prologue/epilogue hooks (Section 7 of the paper).

The paper argues its fusion design "is extensible to other popular LoRA
variants like DoRA and VeRA: these methods typically add pre- or
post-processing functions around the core LoRA computation ... users can
define prologue/epilogue functions to extend our kernels."  This module
implements that extension mechanism and three variants on top of it:

* **QLoRA** -- the frozen weight is stored 4-bit-quantized and
  dequantized before the base GEMM (a prologue on ``W``).  Following the
  paper's discussion, dequantisation stays a separate step (two-step
  execution beats fused dequant at fine-tuning token counts).
* **VeRA** -- frozen shared random ``A``/``B`` with trainable per-layer
  scaling vectors ``d`` (rank-sized) and ``b`` (output-sized): an
  epilogue on the branch output plus a diagonal scale on ``S``.
* **DoRA** -- weight-decomposed LoRA: the merged weight ``W + alpha A B``
  is renormalised column-wise to a trainable magnitude vector.  Only the
  forward (and its cost profile) is modelled; DoRA's backward touches the
  merged-weight norm and is out of scope here, as in the paper.

Each variant reuses the FusedLoRA split-graph plan, so its kernel cost is
the FusedLoRA cost plus the prologue/epilogue's own traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fused import fused_dropout_matmul, fused_xw_sb
from repro.core.lora import LoRAConfig, LoRAContext, LoRAWeights
from repro.core.traffic import LoRAShape, lora_profiles
from repro.errors import KernelConfigError
from repro.gpu.roofline import KernelProfile

__all__ = [
    "QuantizedWeight",
    "quantize_nf4",
    "dequantize_nf4",
    "qlora_forward",
    "VeRAWeights",
    "vera_forward",
    "vera_backward_scales",
    "dora_forward",
    "variant_forward_profiles",
]

#: Block size for the 4-bit quantizer (QLoRA uses 64).
NF4_BLOCK = 64

#: The 16 NF4 quantile levels (normalised normal-float code book).
NF4_LEVELS = np.array([
    -1.0, -0.6962, -0.5251, -0.3949, -0.2844, -0.1848, -0.0911, 0.0,
    0.0796, 0.1609, 0.2461, 0.3379, 0.4407, 0.5626, 0.7230, 1.0,
])


@dataclass
class QuantizedWeight:
    """A 4-bit block-quantized frozen weight (NF4-style).

    Attributes:
        codes: Integer code indices, same shape as the original weight.
        scales: Per-block absmax scales, one per ``NF4_BLOCK`` elements of
            the flattened weight.
        shape: Original weight shape.
    """

    codes: np.ndarray
    scales: np.ndarray
    shape: tuple[int, int]


def quantize_nf4(w: np.ndarray) -> QuantizedWeight:
    """Block-quantize a weight matrix to 4-bit NF4 codes."""
    if w.ndim != 2:
        raise KernelConfigError("quantize_nf4 expects a matrix")
    flat = w.reshape(-1)
    pad = (-flat.size) % NF4_BLOCK
    padded = np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])
    blocks = padded.reshape(-1, NF4_BLOCK)
    scales = np.abs(blocks).max(axis=1)
    scales[scales == 0] = 1.0
    normalised = blocks / scales[:, None]
    codes = np.abs(normalised[..., None] - NF4_LEVELS).argmin(axis=-1)
    return QuantizedWeight(
        codes=codes.astype(np.uint8), scales=scales, shape=w.shape
    )


def dequantize_nf4(q: QuantizedWeight, dtype=np.float64) -> np.ndarray:
    """Reconstruct the half-precision weight from NF4 codes."""
    values = NF4_LEVELS[q.codes] * q.scales[:, None]
    flat = values.reshape(-1)[: q.shape[0] * q.shape[1]]
    return flat.reshape(q.shape).astype(dtype)


def qlora_forward(
    x: np.ndarray,
    qweight: QuantizedWeight,
    weights: LoRAWeights,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, LoRAContext]:
    """QLoRA forward: dequantize prologue + the FusedLoRA plan.

    Matches the paper's §7 recommendation: dequantize to half precision
    first (one memory-bound kernel), then run the unmodified fused path.
    """
    w = dequantize_nf4(qweight, dtype=x.dtype)
    cfg = weights.config
    x_hat, s, mask = fused_dropout_matmul(x, weights.a, cfg.dropout, rng, mask)
    y = fused_xw_sb(x, w, s, weights.b, cfg.alpha)
    ctx = LoRAContext(x=x, x_hat=x_hat, s=s, mask=mask,
                      keep_prob=1.0 - cfg.dropout)
    return y, ctx


@dataclass
class VeRAWeights:
    """VeRA parameters: frozen shared ``A``/``B``, trainable scales.

    ``y = x @ w + alpha * ((x_hat @ A) * d) @ B * b`` with ``d`` of length
    ``r`` and ``b`` of length ``n`` trainable; ``A``/``B`` frozen and
    shared across layers.
    """

    a: np.ndarray
    b: np.ndarray
    d: np.ndarray
    b_vec: np.ndarray
    config: LoRAConfig

    def __post_init__(self) -> None:
        if self.d.shape != (self.config.rank,):
            raise KernelConfigError("d must have shape (rank,)")
        if self.b_vec.shape != (self.b.shape[1],):
            raise KernelConfigError("b_vec must have shape (n,)")


def vera_forward(
    x: np.ndarray,
    w: np.ndarray,
    weights: VeRAWeights,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, LoRAContext]:
    """VeRA forward through the fused plan: diagonal scales fold into the
    rank-sized intermediate (prologue on S) and the epilogue (on Y2)."""
    cfg = weights.config
    pseudo = LoRAWeights(a=weights.a, b=weights.b, config=cfg)
    __ = pseudo  # shape validation only
    x_hat, s, mask = fused_dropout_matmul(x, weights.a, cfg.dropout, rng, mask)
    s_scaled = s * weights.d  # rank-sized prologue: negligible cost
    y2 = (s_scaled @ weights.b) * weights.b_vec  # epilogue scale
    y = x @ w + cfg.alpha * y2
    ctx = LoRAContext(x=x, x_hat=x_hat, s=s, mask=mask,
                      keep_prob=1.0 - cfg.dropout)
    return y, ctx


def vera_backward_scales(
    dy: np.ndarray, weights: VeRAWeights, ctx: LoRAContext
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of VeRA's trainable scaling vectors ``d`` and ``b_vec``."""
    cfg = weights.config
    # dL/db_vec: epilogue is elementwise on columns of (s*d) @ B.
    y2_pre = (ctx.s * weights.d) @ weights.b
    db_vec = cfg.alpha * np.sum(dy * y2_pre, axis=0)
    # dL/dd: route through B and the column scale.
    ds_scaled = cfg.alpha * (dy * weights.b_vec) @ weights.b.T
    dd = np.sum(ds_scaled * ctx.s, axis=0)
    return dd, db_vec


def dora_forward(
    x: np.ndarray,
    w: np.ndarray,
    weights: LoRAWeights,
    magnitude: np.ndarray,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """DoRA forward: column-normalised merged weight times a magnitude.

    ``W' = m * (W + alpha A B) / ||W + alpha A B||_col``.  The norm is a
    per-column (output-feature) prologue over the merged weight.
    """
    cfg = weights.config
    if magnitude.shape != (w.shape[1],):
        raise KernelConfigError("magnitude must have shape (n,)")
    merged = w + cfg.alpha * (weights.a @ weights.b)
    col_norm = np.linalg.norm(merged, axis=0)
    col_norm[col_norm == 0] = 1.0
    scale = magnitude / col_norm
    # Executed as the fused plan with the scale folded into the epilogue:
    # y = ((x @ W) + alpha (x_hat @ A) @ B) * scale, with dropout omitted
    # from the directional norm as in the DoRA paper's inference form.
    x_hat, s, mask = fused_dropout_matmul(x, weights.a, cfg.dropout, rng, mask)
    y = (x @ w + cfg.alpha * (s @ weights.b)) * scale
    return y


def variant_forward_profiles(
    variant: str, shape: LoRAShape
) -> list[KernelProfile]:
    """Kernel profiles of a variant's forward pass.

    All variants run the FusedLoRA plan plus their own prologue/epilogue:

    * ``qlora``: + one dequantize kernel (read 0.5 B/elt codes + scales,
      write 2 B/elt weights).
    * ``vera``: + rank- and n-sized vector loads (negligible).
    * ``dora``: + a column-norm pass over the merged weight.
    """
    base = lora_profiles("fused", "forward", shape)
    e = shape.elem_bytes
    kn = shape.k * shape.n
    if variant == "qlora":
        extra = [KernelProfile(
            "dequantize_nf4",
            flops=2.0 * kn,
            bytes_read=kn * 0.5 + kn / NF4_BLOCK * 2,
            bytes_written=kn * e,
            uses_tensor_cores=False,
            category="elementwise",
        )]
    elif variant == "vera":
        extra = [KernelProfile(
            "vera_scales",
            flops=shape.m * (shape.r + shape.n),
            bytes_read=(shape.r + shape.n) * e,
            bytes_written=0.0,
            uses_tensor_cores=False,
            category="elementwise",
        )]
    elif variant == "dora":
        extra = [KernelProfile(
            "dora_column_norm",
            flops=3.0 * kn,
            bytes_read=kn * e,
            bytes_written=shape.n * e,
            uses_tensor_cores=False,
            category="elementwise",
        )]
    else:
        raise KernelConfigError(f"unknown variant {variant!r}")
    return base + extra
