"""Analytical DRAM-traffic and kernel-profile model for LoRA strategies.

For every kernel strategy the paper discusses, this module produces the list
of :class:`~repro.gpu.roofline.KernelProfile` records that a forward or
backward pass launches, with the bytes each kernel moves through DRAM.
Feeding the profiles to the roofline model yields the runtimes behind
Figures 3, 4, 17 and 18; summing traffic yields Figure 19 and the 2.64x
claim of Section 3.1.

Strategies:

``frozen``
    The plain frozen linear layer (no adapter): one GEMM each direction.
``torch``
    Unfused "Torch LoRA" (PEFT-style): one kernel per op (Figure 4).
``compile``
    ``torch.compile``: identical kernel set (pointwise ops cannot fuse into
    the cuBLAS GEMMs), minus a little launch overhead in backward from CUDA
    graphs -- reproducing the paper's "zero benefit forward, negligible
    backward" observation.
``fused``
    FusedLoRA split-graph plan (Figure 10).
``fused_multi``
    FusedMultiLoRA with tile routing (Figure 11): forward matches ``fused``
    up to adapter-table loads; backward adds atomic gradient accumulation.
``full_fusion_recompute`` / ``full_fusion_sync``
    The two rejected designs of Figure 9 (forward only), used by ablation
    benches to show why the split-graph choice wins.

Traffic accounting notes:

* GEMM operand reloads: a GEMM ``C[M,N] = A[M,K] @ B[K,N]`` streams each
  operand from DRAM once per L2-resident pass over the opposite dimension.
  We model passes of :data:`L2_PASS_ROWS` rows; operands smaller than
  :data:`L2_RESIDENT_BYTES` stay cached and are read once.  This matches
  NCU-measured traffic for large GEMMs far better than minimal counts.
* Dropout masks are stored as one byte per element (PyTorch bool masks).
* The forward dropout kernel runs well below peak bandwidth because of
  Philox RNG overhead (:data:`DROPOUT_RNG_EFFICIENCY`), which is why the
  paper's Figure 4 shows dropout at 19% of forward time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import KernelConfigError
from repro.gpu.roofline import KernelProfile
from repro.gpu.specs import BYTES_PER_ELEMENT

__all__ = [
    "LoRAShape",
    "STRATEGIES",
    "L2_PASS_ROWS",
    "L2_RESIDENT_BYTES",
    "DROPOUT_RNG_EFFICIENCY",
    "gemm_profile",
    "lora_profiles",
    "total_traffic",
    "traffic_ratio",
]

#: Rows per L2-resident GEMM pass (panel height before operands re-stream).
L2_PASS_ROWS = 2048

#: Operands smaller than this stay resident in L2 and are read once.
L2_RESIDENT_BYTES = 25 * 1024 * 1024

#: Effective-bandwidth scale of the RNG-heavy forward dropout kernel.
DROPOUT_RNG_EFFICIENCY = 0.55

#: Tiling degradation of the Figure 9 "option 1" fully-fused kernel.
FULL_FUSION_RECOMPUTE_EFF = 0.90

#: Tiling degradation of the Figure 9 "option 2" synchronising kernel.
FULL_FUSION_SYNC_EFF = 0.85

#: Per-M-tile semaphore wait of the Figure 9 "option 2" kernel (us).
FULL_FUSION_SYNC_US_PER_TILE = 0.5

#: Per-M-tile atomic serialisation in the FusedMultiLoRA backward (us).
MULTI_ATOMIC_US_PER_TILE = 0.25

#: N-tile width assumed for the Figure 9 "option 1" recompute analysis.
RECOMPUTE_BLOCK_N = 64

STRATEGIES = (
    "frozen",
    "torch",
    "compile",
    "fused",
    "fused_multi",
)


@dataclass(frozen=True)
class LoRAShape:
    """Problem shape of one LoRA linear layer invocation (Table 1).

    Attributes:
        m: Number of tokens (batch size x sequence length).
        k: Input feature dimension.
        n: Output feature dimension.
        r: LoRA rank.
        dtype: Storage dtype of activations and weights.
        dropout: Whether the adapter applies dropout (affects kernel count).
        num_adapters: Distinct adapters in the microbatch (multi-LoRA only).
        block_m: M-tile height used by the fused kernels.
    """

    m: int
    k: int
    n: int
    r: int = 16
    dtype: str = "fp16"
    dropout: bool = True
    num_adapters: int = 1
    block_m: int = 64

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.r) <= 0:
            raise KernelConfigError(f"all shape dims must be positive: {self}")
        if self.dtype not in BYTES_PER_ELEMENT:
            raise KernelConfigError(f"unknown dtype {self.dtype!r}")

    @property
    def elem_bytes(self) -> int:
        """Bytes per activation/weight element."""
        return BYTES_PER_ELEMENT[self.dtype]

    @property
    def num_tiles(self) -> int:
        """Number of M-tiles at ``block_m`` granularity."""
        return math.ceil(self.m / self.block_m)


def _reload_factor(operand_bytes: float, opposite_dim: int) -> int:
    """How many times a GEMM operand streams from DRAM.

    Small operands stay L2-resident (one read).  Large operands are re-read
    once per :data:`L2_PASS_ROWS`-row pass over the opposite output
    dimension.
    """
    if operand_bytes <= L2_RESIDENT_BYTES:
        return 1
    return max(1, math.ceil(opposite_dim / L2_PASS_ROWS))


def gemm_profile(
    name: str,
    m: int,
    k: int,
    n: int,
    elem_bytes: int,
    category: str,
    extra_read: float = 0.0,
    extra_write: float = 0.0,
    extra_flops: float = 0.0,
    gemm_efficiency_scale: float = 1.0,
    extra_latency_us: float = 0.0,
) -> KernelProfile:
    """Profile of a GEMM ``C[m,n] = A[m,k] @ B[k,n]`` with optional epilogue.

    ``extra_*`` fold fused epilogue/prologue costs (e.g. the LoRA branch of
    ``fused_xw_sb``) into the same kernel.
    """
    a_bytes = m * k * elem_bytes
    b_bytes = k * n * elem_bytes
    reads = (
        a_bytes * _reload_factor(a_bytes, n)
        + b_bytes * _reload_factor(b_bytes, m)
        + extra_read
    )
    writes = m * n * elem_bytes + extra_write
    return KernelProfile(
        name=name,
        flops=2.0 * m * k * n + extra_flops,
        bytes_read=reads,
        bytes_written=writes,
        uses_tensor_cores=True,
        category=category,
        gemm_efficiency_scale=gemm_efficiency_scale,
        extra_latency_us=extra_latency_us,
    )


def _elementwise(
    name: str,
    bytes_read: float,
    bytes_written: float,
    flops: float,
    mem_efficiency_scale: float = 1.0,
) -> KernelProfile:
    """Profile of a pointwise kernel (runs on CUDA cores)."""
    return KernelProfile(
        name=name,
        flops=flops,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        uses_tensor_cores=False,
        category="elementwise",
        mem_efficiency_scale=mem_efficiency_scale,
    )


# ---------------------------------------------------------------------------
# Frozen linear (no adapter)
# ---------------------------------------------------------------------------


def _frozen_forward(s: LoRAShape) -> list[KernelProfile]:
    return [gemm_profile("gemm_xw", s.m, s.k, s.n, s.elem_bytes, "base_gemm")]


def _frozen_backward(s: LoRAShape) -> list[KernelProfile]:
    # dX = dY @ W.T -- same cost structure as the forward GEMM.
    return [gemm_profile("gemm_dy_w", s.m, s.n, s.k, s.elem_bytes, "base_gemm")]


# ---------------------------------------------------------------------------
# Unfused "Torch LoRA"
# ---------------------------------------------------------------------------


def _torch_forward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    mk, mn = s.m * s.k * e, s.m * s.n * e
    profiles: list[KernelProfile] = []
    if s.dropout:
        profiles.append(
            _elementwise(
                "dropout",
                bytes_read=mk,
                bytes_written=mk + s.m * s.k,  # X_hat + bool mask
                flops=3.0 * s.m * s.k,
                mem_efficiency_scale=DROPOUT_RNG_EFFICIENCY,
            )
        )
    profiles.append(gemm_profile("gemm_xw", s.m, s.k, s.n, e, "base_gemm"))
    profiles.append(gemm_profile("gemm_xa", s.m, s.k, s.r, e, "lora_gemm"))
    profiles.append(gemm_profile("gemm_sb", s.m, s.r, s.n, e, "lora_gemm"))
    # Y = Y1 + alpha * Y2: reads both partials, writes the output.
    profiles.append(
        _elementwise("muladd", bytes_read=2 * mn, bytes_written=mn, flops=2.0 * s.m * s.n)
    )
    return profiles


def _torch_backward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    mk, mn = s.m * s.k * e, s.m * s.n * e
    mask = s.m * s.k if s.dropout else 0
    profiles = [
        # dY_hat = alpha * dY
        _elementwise("mul", bytes_read=mn, bytes_written=mn, flops=s.m * s.n),
        gemm_profile("gemm_s_dy", s.r, s.m, s.n, e, "lora_gemm"),  # dB
        gemm_profile("gemm_dy_b", s.m, s.n, s.r, e, "lora_gemm"),  # dS
        gemm_profile("gemm_x_ds", s.k, s.m, s.r, e, "lora_gemm"),  # dA
        gemm_profile("gemm_ds_a", s.m, s.r, s.k, e, "lora_gemm"),  # dX_hat
        gemm_profile("gemm_dy_w", s.m, s.n, s.k, e, "base_gemm"),  # dX partial
    ]
    # Dropout backward accumulating into the base input gradient in place:
    # reads dX_hat, the mask and the partial dX, writes dX.
    profiles.append(
        _elementwise(
            "dropout_bwd_add",
            bytes_read=2 * mk + mask,
            bytes_written=mk,
            flops=2.0 * s.m * s.k,
        )
    )
    return profiles


def _compile_backward(s: LoRAShape) -> list[KernelProfile]:
    # torch.compile cannot fuse pointwise ops into the cuBLAS GEMMs; its only
    # measurable backward effect here is CUDA-graph launch elision, modelled
    # as negative extra latency on the cheap LoRA GEMMs.
    profiles = _torch_backward(s)
    elided = 0
    result = []
    for profile in profiles:
        if profile.category == "lora_gemm" and elided < 3:
            result.append(
                KernelProfile(
                    name=profile.name,
                    flops=profile.flops,
                    bytes_read=profile.bytes_read,
                    bytes_written=profile.bytes_written,
                    uses_tensor_cores=profile.uses_tensor_cores,
                    category=profile.category,
                    extra_latency_us=-3.0,
                )
            )
            elided += 1
        else:
            result.append(profile)
    return result


# ---------------------------------------------------------------------------
# FusedLoRA (split-graph plan, Figure 10)
# ---------------------------------------------------------------------------


def _fused_forward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    mk = s.m * s.k * e
    mr = s.m * s.r * e
    kr = s.k * s.r * e
    rn = s.r * s.n * e
    mask = s.m * s.k if s.dropout else 0
    # Kernel 1: dropout + down-projection in one pass over X.
    kernel1 = KernelProfile(
        name="fused_dropout_matmul",
        flops=2.0 * s.m * s.k * s.r + (3.0 * s.m * s.k if s.dropout else 0.0),
        bytes_read=mk + kr,
        bytes_written=(mk if s.dropout else 0) + mask + mr,
        uses_tensor_cores=True,
        category="lora_fused",
        mem_efficiency_scale=DROPOUT_RNG_EFFICIENCY if s.dropout else 1.0,
    )
    # Kernel 2: base GEMM with the up-projection in the epilogue.
    kernel2 = gemm_profile(
        "fused_xw_sb",
        s.m,
        s.k,
        s.n,
        e,
        "base_gemm",
        extra_read=mr + rn,
        extra_flops=2.0 * s.m * s.r * s.n + 2.0 * s.m * s.n,
    )
    return [kernel1, kernel2]


def _fused_backward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    mk = s.m * s.k * e
    mn = s.m * s.n * e
    mr = s.m * s.r * e
    kr = s.k * s.r * e
    rn = s.r * s.n * e
    mask = s.m * s.k if s.dropout else 0
    # Kernel 3: one pass over dY producing dB and dS.
    kernel3 = KernelProfile(
        name="fused_dys_dyb",
        flops=4.0 * s.m * s.r * s.n + s.m * s.n,
        bytes_read=mn + mr + rn,
        bytes_written=rn + mr,
        uses_tensor_cores=True,
        category="lora_fused",
    )
    # Kernel 4: dA = X_hat.T @ dS (unchanged).
    kernel4 = gemm_profile("matmul_da", s.k, s.m, s.r, e, "lora_gemm")
    # Kernel 5: dX = dY @ W.T + dropout_bwd(dS @ A.T) in the epilogue.
    kernel5 = gemm_profile(
        "fused_dyw_dsa",
        s.m,
        s.n,
        s.k,
        e,
        "base_gemm",
        extra_read=mr + kr + mask,
        extra_flops=2.0 * s.m * s.k * s.r + 2.0 * s.m * s.k,
    )
    return [kernel3, kernel4, kernel5]


# ---------------------------------------------------------------------------
# FusedMultiLoRA (tile routing, Figure 11)
# ---------------------------------------------------------------------------


def _multi_forward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    kernel1, kernel2 = _fused_forward(s)
    # Adapter table (8B per tile) plus per-adapter weight loads beyond the
    # single-adapter case; adapter weights are rank-sized so this is small.
    extra_weights = (s.num_adapters - 1) * (s.k * s.r + s.r * s.n) * e
    table = 8 * s.num_tiles
    kernel1 = KernelProfile(
        name="fused_multi_lora_dropout_matmul",
        flops=kernel1.flops,
        bytes_read=kernel1.bytes_read + extra_weights / 2 + table,
        bytes_written=kernel1.bytes_written,
        uses_tensor_cores=True,
        category="lora_fused",
        mem_efficiency_scale=kernel1.mem_efficiency_scale,
    )
    kernel2 = KernelProfile(
        name="fused_multi_lora_xw_sb",
        flops=kernel2.flops,
        bytes_read=kernel2.bytes_read + extra_weights / 2 + table,
        bytes_written=kernel2.bytes_written,
        uses_tensor_cores=True,
        category="base_gemm",
    )
    return [kernel1, kernel2]


def _multi_backward(s: LoRAShape) -> list[KernelProfile]:
    e = s.elem_bytes
    kernel3, kernel4, kernel5 = _fused_backward(s)
    # Atomic read-modify-write gradient accumulation and per-adapter weight
    # loads: the "slight overhead" of Section 6.4.  Most atomics land in L2,
    # so the DRAM-visible traffic is capped; the serialisation cost appears
    # as extra latency instead (which is why Figure 19 shows FusedMultiLoRA
    # traffic nearly equal to FusedLoRA while its backward is a bit slower).
    tiles = s.num_tiles
    per_tile_weights = s.num_adapters * (s.k * s.r + s.r * s.n) * e
    grad_bytes = (s.k * s.r + s.r * s.n) * e
    atomic_rmw = min(tiles, 32) * grad_bytes * 2
    kernel3 = KernelProfile(
        name="fused_multi_lora_dys_dyb",
        flops=kernel3.flops + s.m * s.r,
        bytes_read=kernel3.bytes_read + per_tile_weights / 2,
        bytes_written=kernel3.bytes_written + atomic_rmw / 2,
        uses_tensor_cores=True,
        category="lora_fused",
        extra_latency_us=MULTI_ATOMIC_US_PER_TILE * tiles / 2,
    )
    kernel4 = KernelProfile(
        name="multi_matmul_da",
        flops=kernel4.flops,
        bytes_read=kernel4.bytes_read,
        bytes_written=kernel4.bytes_written + atomic_rmw / 2,
        uses_tensor_cores=True,
        category="lora_gemm",
        extra_latency_us=MULTI_ATOMIC_US_PER_TILE * tiles / 2,
    )
    kernel5 = KernelProfile(
        name="fused_multi_lora_dyw_dsa",
        flops=kernel5.flops,
        bytes_read=kernel5.bytes_read + per_tile_weights / 2,
        bytes_written=kernel5.bytes_written,
        uses_tensor_cores=True,
        category="base_gemm",
    )
    return [kernel3, kernel4, kernel5]


# ---------------------------------------------------------------------------
# Figure 9 rejected designs (forward only; used by ablations)
# ---------------------------------------------------------------------------


def full_fusion_recompute_forward(s: LoRAShape) -> list[KernelProfile]:
    """Option 1 of Figure 9: fuse everything, recompute S per N-tile.

    Every N-tile of the output recomputes its S tile, multiplying the
    down-projection FLOPs by ``n / RECOMPUTE_BLOCK_N``, and the whole kernel
    pays a tiling/register penalty on the base GEMM.
    """
    e = s.elem_bytes
    mk = s.m * s.k * e
    mask = s.m * s.k if s.dropout else 0
    recompute_factor = max(1, s.n // RECOMPUTE_BLOCK_N)
    return [
        gemm_profile(
            "full_fusion_recompute",
            s.m,
            s.k,
            s.n,
            e,
            "base_gemm",
            extra_read=(s.k * s.r + s.r * s.n) * e,
            extra_write=mk + mask,
            extra_flops=2.0 * s.m * s.k * s.r * recompute_factor
            + 2.0 * s.m * s.r * s.n
            + 3.0 * s.m * s.k,
            gemm_efficiency_scale=FULL_FUSION_RECOMPUTE_EFF,
        )
    ]


def full_fusion_sync_forward(s: LoRAShape) -> list[KernelProfile]:
    """Option 2 of Figure 9: fuse everything, share S via semaphores.

    One M-tile computes each S tile and the rest wait, adding per-tile
    synchronisation latency on top of a tiling/register penalty.
    """
    e = s.elem_bytes
    mk = s.m * s.k * e
    mr = s.m * s.r * e
    mask = s.m * s.k if s.dropout else 0
    return [
        gemm_profile(
            "full_fusion_sync",
            s.m,
            s.k,
            s.n,
            e,
            "base_gemm",
            extra_read=(s.k * s.r + s.r * s.n) * e + mr,
            extra_write=mk + mask + mr,
            extra_flops=2.0 * s.m * s.k * s.r + 2.0 * s.m * s.r * s.n + 3.0 * s.m * s.k,
            gemm_efficiency_scale=FULL_FUSION_SYNC_EFF,
            extra_latency_us=FULL_FUSION_SYNC_US_PER_TILE * s.num_tiles,
        )
    ]


_FORWARD = {
    "frozen": _frozen_forward,
    "torch": _torch_forward,
    "compile": _torch_forward,  # zero forward benefit (Section 3.1)
    "fused": _fused_forward,
    "fused_multi": _multi_forward,
}

_BACKWARD = {
    "frozen": _frozen_backward,
    "torch": _torch_backward,
    "compile": _compile_backward,
    "fused": _fused_backward,
    "fused_multi": _multi_backward,
}


def lora_profiles(
    strategy: str, direction: str, shape: LoRAShape
) -> list[KernelProfile]:
    """Kernel profiles for one pass of ``strategy`` over ``shape``.

    Args:
        strategy: One of :data:`STRATEGIES`.
        direction: ``"forward"`` or ``"backward"``.
        shape: Problem shape.
    """
    try:
        table = {"forward": _FORWARD, "backward": _BACKWARD}[direction]
    except KeyError as exc:
        raise KernelConfigError(
            f"direction must be 'forward' or 'backward', got {direction!r}"
        ) from exc
    try:
        return table[strategy](shape)
    except KeyError as exc:
        raise KernelConfigError(
            f"unknown strategy {strategy!r}; known: {sorted(table)}"
        ) from exc


def total_traffic(profiles: list[KernelProfile]) -> float:
    """Total DRAM bytes moved by a list of kernel profiles."""
    return sum(p.bytes_total for p in profiles)


def traffic_ratio(strategy: str, baseline: str, shape: LoRAShape) -> float:
    """Forward+backward traffic of ``strategy`` relative to ``baseline``.

    This is the quantity NVIDIA Nsight Compute reports in Figure 19
    (e.g. FusedLoRA moves ~0.5-0.6x the DRAM bytes of Torch LoRA).
    """
    num = sum(
        total_traffic(lora_profiles(strategy, d, shape))
        for d in ("forward", "backward")
    )
    den = sum(
        total_traffic(lora_profiles(baseline, d, shape))
        for d in ("forward", "backward")
    )
    return num / den
