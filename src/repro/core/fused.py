"""FusedLoRA kernels: the split-graph fusion strategy of Figure 10.

The paper's key kernel-level insight is to split the LoRA computation graph
at the rank-``r`` intermediate ``S = dropout(X) @ A`` (which is cheap to
materialise) and fuse everything else *horizontally* around the full-sized
activations.  The resulting five-kernel plan is:

forward
    1. ``fused_dropout_matmul``  -- dropout + down-projection in one pass
       over ``X`` (avoids reloading ``X_hat``).
    2. ``fused_xw_sb``           -- base GEMM with the LoRA up-projection
       accumulated in its epilogue (avoids materialising the partial
       outputs ``Y1``/``Y2`` and the separate scale-and-add).

backward
    3. ``fused_dys_dyb``         -- one pass over ``dY`` producing both
       ``dB`` and ``dS`` (avoids materialising ``alpha * dY``).
    4. ``matmul_da``             -- ``dA = X_hat.T @ dS``; left unfused, as
       in the paper (operates on the already-saved ``X_hat``).
    5. ``fused_dyw_dsa``         -- base input-gradient GEMM with the LoRA
       path (``dS @ A`` + dropout backward) in its epilogue.

Numerically each fused kernel computes exactly what the corresponding
unfused kernels of :mod:`repro.core.lora` compute; the difference is the
number of passes over DRAM, which :mod:`repro.core.traffic` accounts for.
"""

from __future__ import annotations

import numpy as np

from repro.core.lora import (
    LoRAContext,
    LoRAGrads,
    LoRAWeights,
    apply_dropout,
    dropout_mask,
)
from repro.errors import KernelConfigError

__all__ = [
    "fused_dropout_matmul",
    "fused_xw_sb",
    "fused_dys_dyb",
    "matmul_da",
    "fused_dyw_dsa",
    "fused_lora_forward",
    "fused_lora_backward",
]


def fused_dropout_matmul(
    x: np.ndarray,
    a: np.ndarray,
    dropout: float,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Kernel 1: dropout fused with the down-projection GEMM.

    A single pass loads each tile of ``X`` once, applies dropout, stores the
    masked activation ``X_hat`` (needed later for ``dA``), and accumulates
    the rank-``r`` product ``S = X_hat @ A``.

    Returns:
        ``(x_hat, s, mask)``.
    """
    if mask is None:
        if dropout > 0.0 and rng is None:
            raise KernelConfigError("dropout > 0 requires an rng or explicit mask")
        mask = dropout_mask(x.shape, dropout, rng) if dropout else None
    keep_prob = 1.0 - dropout
    x_hat = apply_dropout(x, mask, keep_prob)
    s = x_hat @ a
    return x_hat, s, mask


def fused_xw_sb(
    x: np.ndarray,
    w: np.ndarray,
    s: np.ndarray,
    b: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """Kernel 2: base GEMM with the LoRA branch fused into its epilogue.

    Computes ``Y = X @ W + alpha * (S @ B)`` without writing the partial
    products to DRAM.  Because ``S`` and ``B`` are rank-``r`` sized, loading
    them inside the epilogue does not disturb the tiling of the
    compute-bound ``X @ W``.
    """
    return x @ w + alpha * (s @ b)


def fused_dys_dyb(
    dy: np.ndarray,
    s: np.ndarray,
    b: np.ndarray,
    alpha: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Kernel 3: one pass over ``dY`` producing both ``dB`` and ``dS``.

    The scaling ``alpha * dY`` happens in registers instead of through a
    materialised intermediate.

    Returns:
        ``(db, ds)`` with shapes ``(r, n)`` and ``(m, r)``.
    """
    db = alpha * (s.T @ dy)
    ds = alpha * (dy @ b.T)
    return db, ds


def matmul_da(x_hat: np.ndarray, ds: np.ndarray) -> np.ndarray:
    """Kernel 4: ``dA = X_hat.T @ dS`` -- intentionally left unfused.

    Both operands are already materialised and the output is rank-sized, so
    fusion would buy nothing (Figure 10, operation 4 "remains unchanged").
    """
    return x_hat.T @ ds


def fused_dyw_dsa(
    dy: np.ndarray,
    w: np.ndarray,
    ds: np.ndarray,
    a: np.ndarray,
    mask: np.ndarray | None,
    keep_prob: float,
) -> np.ndarray:
    """Kernel 5: base input-gradient GEMM fused with the LoRA input path.

    Computes ``dX = dY @ W.T + dropout_bwd(dS @ A.T)`` in one kernel,
    avoiding the partial input gradients and the separate add.
    """
    dx_lora = apply_dropout(ds @ a.T, mask, keep_prob)
    return dy @ w.T + dx_lora


def fused_lora_forward(
    x: np.ndarray,
    w: np.ndarray,
    weights: LoRAWeights,
    rng: np.random.Generator | None = None,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, LoRAContext]:
    """Complete FusedLoRA forward pass (kernels 1-2 of Figure 10)."""
    cfg = weights.config
    x_hat, s, mask = fused_dropout_matmul(x, weights.a, cfg.dropout, rng, mask)
    y = fused_xw_sb(x, w, s, weights.b, cfg.alpha)
    ctx = LoRAContext(x=x, x_hat=x_hat, s=s, mask=mask, keep_prob=1.0 - cfg.dropout)
    return y, ctx


def fused_lora_backward(
    dy: np.ndarray,
    w: np.ndarray,
    weights: LoRAWeights,
    ctx: LoRAContext,
) -> LoRAGrads:
    """Complete FusedLoRA backward pass (kernels 3-5 of Figure 10)."""
    cfg = weights.config
    db, ds = fused_dys_dyb(dy, ctx.s, weights.b, cfg.alpha)
    da = matmul_da(ctx.x_hat, ds)
    dx = fused_dyw_dsa(dy, w, ds, weights.a, ctx.mask, ctx.keep_prob)
    return LoRAGrads(dx=dx, da=da, db=db)
