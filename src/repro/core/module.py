"""`LoRALinear`: a plug-and-play LoRA layer with switchable kernel strategy.

The paper emphasises that FusedLoRA "can directly serve as a plug-and-play
replacement in existing LoRA systems".  This module provides that interface
for the numpy substrate: a layer object holding the frozen base weight and
one or more adapters, whose ``forward``/``backward`` dispatch to the
reference, fused, or multi-LoRA kernel implementations while logging the
kernel profiles each call would launch on a real GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import fused as fused_kernels
from repro.core import lora as ref_kernels
from repro.core import multi as multi_kernels
from repro.core.lora import LoRAConfig, LoRAContext, LoRAGrads, LoRAWeights
from repro.core.multi import MultiLoRABatch, MultiLoRAContext, MultiLoRAGrads
from repro.core.traffic import LoRAShape, lora_profiles
from repro.errors import KernelConfigError
from repro.gpu.roofline import KernelProfile

__all__ = ["TrafficLedger", "LoRALinear"]


@dataclass
class TrafficLedger:
    """Accumulates the kernel profiles a layer would launch on a GPU."""

    profiles: list[KernelProfile] = field(default_factory=list)

    def record(self, profiles: list[KernelProfile]) -> None:
        """Append a pass's kernel profiles."""
        self.profiles.extend(profiles)

    def total_bytes(self) -> float:
        """Total DRAM traffic recorded so far."""
        return sum(p.bytes_total for p in self.profiles)

    def total_flops(self) -> float:
        """Total FLOPs recorded so far."""
        return sum(p.flops for p in self.profiles)

    def clear(self) -> None:
        """Forget all recorded profiles."""
        self.profiles.clear()


class LoRALinear:
    """A frozen linear layer with one or more LoRA adapters attached.

    Args:
        w: Frozen base weight of shape ``(k, n)``.
        strategy: ``"torch"`` (unfused reference), ``"fused"`` (FusedLoRA),
            or ``"fused_multi"`` (FusedMultiLoRA; required for mixed
            batches).  The system falls back from ``fused_multi`` to the
            cheaper single-adapter plan automatically when a batch contains
            one adapter, mirroring the paper's runtime dispatch.
        rng: Generator used for dropout masks.

    Adapters are registered with :meth:`add_adapter` and selected per call:
    single-adapter calls take ``adapter_id``; mixed calls take a
    :class:`~repro.core.multi.MultiLoRABatch`.
    """

    def __init__(
        self,
        w: np.ndarray,
        strategy: str = "fused",
        rng: np.random.Generator | None = None,
    ) -> None:
        if w.ndim != 2:
            raise KernelConfigError(f"base weight must be 2-D, got shape {w.shape}")
        if strategy not in ("torch", "fused", "fused_multi"):
            raise KernelConfigError(f"unknown strategy {strategy!r}")
        self.w = w
        self.strategy = strategy
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.adapters: dict[int, LoRAWeights] = {}
        self.ledger = TrafficLedger()
        self._ctx: LoRAContext | MultiLoRAContext | None = None
        self._ctx_adapter: int | None = None

    @property
    def in_features(self) -> int:
        """Input dimension ``k``."""
        return self.w.shape[0]

    @property
    def out_features(self) -> int:
        """Output dimension ``n``."""
        return self.w.shape[1]

    def add_adapter(
        self, config: LoRAConfig, rng: np.random.Generator | None = None
    ) -> LoRAWeights:
        """Create, register, and return a fresh adapter for this layer."""
        if config.adapter_id in self.adapters:
            raise KernelConfigError(f"adapter {config.adapter_id} already exists")
        weights = ref_kernels.init_lora_weights(
            self.in_features,
            self.out_features,
            config,
            rng if rng is not None else self.rng,
            dtype=self.w.dtype,
        )
        self.adapters[config.adapter_id] = weights
        return weights

    def _shape(self, m: int, adapter: LoRAWeights, num_adapters: int = 1) -> LoRAShape:
        return LoRAShape(
            m=m,
            k=self.in_features,
            n=self.out_features,
            r=adapter.config.rank,
            dropout=adapter.config.dropout > 0.0,
            num_adapters=num_adapters,
        )

    def forward(self, x: np.ndarray, adapter_id: int = 0) -> np.ndarray:
        """Single-adapter forward pass; saves context for backward."""
        adapter = self._get_adapter(adapter_id)
        strategy = "torch" if self.strategy == "torch" else "fused"
        if strategy == "torch":
            y, ctx = ref_kernels.lora_forward_reference(x, self.w, adapter, self.rng)
        else:
            y, ctx = fused_kernels.fused_lora_forward(x, self.w, adapter, self.rng)
        self.ledger.record(
            lora_profiles(strategy, "forward", self._shape(x.shape[0], adapter))
        )
        self._ctx, self._ctx_adapter = ctx, adapter_id
        return y

    def backward(self, dy: np.ndarray) -> LoRAGrads:
        """Single-adapter backward pass using the saved context."""
        if not isinstance(self._ctx, LoRAContext):
            raise KernelConfigError("backward called without a single-adapter forward")
        adapter = self._get_adapter(self._ctx_adapter)
        strategy = "torch" if self.strategy == "torch" else "fused"
        if strategy == "torch":
            grads = ref_kernels.lora_backward_reference(dy, self.w, adapter, self._ctx)
        else:
            grads = fused_kernels.fused_lora_backward(dy, self.w, adapter, self._ctx)
        self.ledger.record(
            lora_profiles(strategy, "backward", self._shape(dy.shape[0], adapter))
        )
        self._ctx = None
        return grads

    def forward_multi(self, x: np.ndarray, batch: MultiLoRABatch) -> np.ndarray:
        """Mixed-adapter forward pass routed by ``batch``.

        Falls back to the single-adapter fused kernel when the batch holds
        exactly one adapter and no padding, as the paper's runtime does.
        """
        if self.strategy != "fused_multi":
            raise KernelConfigError(
                "forward_multi requires strategy='fused_multi' "
                f"(layer built with {self.strategy!r})"
            )
        ids = batch.adapter_ids
        if len(ids) == 1 and len(batch.segments) == 1:
            return self.forward(x, adapter_id=ids[0])
        y, ctx = multi_kernels.fused_multi_lora_forward(
            x, self.w, self.adapters, batch, self.rng
        )
        rank = max(self.adapters[i].config.rank for i in ids)
        shape = LoRAShape(
            m=x.shape[0],
            k=self.in_features,
            n=self.out_features,
            r=rank,
            dropout=any(self.adapters[i].config.dropout > 0 for i in ids),
            num_adapters=len(ids),
        )
        self.ledger.record(lora_profiles("fused_multi", "forward", shape))
        self._ctx = ctx
        return y

    def backward_multi(self, dy: np.ndarray) -> MultiLoRAGrads:
        """Mixed-adapter backward pass using the saved multi context."""
        if not isinstance(self._ctx, MultiLoRAContext):
            raise KernelConfigError("backward_multi called without forward_multi")
        ctx = self._ctx
        grads = multi_kernels.fused_multi_lora_backward(dy, self.w, self.adapters, ctx)
        ids = ctx.batch.adapter_ids
        rank = max(self.adapters[i].config.rank for i in ids)
        shape = LoRAShape(
            m=dy.shape[0],
            k=self.in_features,
            n=self.out_features,
            r=rank,
            dropout=any(self.adapters[i].config.dropout > 0 for i in ids),
            num_adapters=len(ids),
        )
        self.ledger.record(lora_profiles("fused_multi", "backward", shape))
        self._ctx = None
        return grads

    def _get_adapter(self, adapter_id: int | None) -> LoRAWeights:
        if adapter_id is None or adapter_id not in self.adapters:
            raise KernelConfigError(f"unknown adapter id {adapter_id!r}")
        return self.adapters[adapter_id]
