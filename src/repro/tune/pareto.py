"""Pareto machinery over serve-run objective points.

The autotuner judges every candidate configuration on three axes at
once -- mean job completion time (minimize), deadline goodput
(maximize), and dollars spent (minimize) -- because the axes genuinely
trade against each other: a feasibility gate buys goodput by refusing
work, a bigger fleet buys JCT with dollars.  No scalarization is
baked in; the tuner's output is the **Pareto front**, the set of
evaluated points no other evaluated point dominates, and picking one
point off the front is the caller's policy decision
(:func:`~repro.tune.runner.recommend` implements the capacity-planning
pick).

GPU-seconds ride along on every point as the rate-free companion of the
dollars axis: with every replica priced at the uniform
:data:`~repro.serve.config.GPU_HOURLY_RATE` the two are the same axis
scaled, so dominance is checked on dollars alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

__all__ = ["ObjectivePoint", "dominates", "pareto_front"]

T = TypeVar("T")


@dataclass(frozen=True)
class ObjectivePoint:
    """One serve run reduced to the tuner's three objectives.

    Attributes:
        mean_jct: Mean completion time over *finished* jobs, in virtual
            seconds (minimize).  ``inf`` when nothing finished -- a run
            that serves nobody must rank worst on this axis, not best,
            which is why the tuner does not reuse the metrics layer's
            0.0 convention here.
        goodput: Deadline-carrying jobs finished on time (maximize);
            0 on deadline-free traces, making the axis inert there.
        dollars: GPU-time bought priced in dollars (minimize) -- the
            recorded bill for autoscaled runs, else fleet size x
            makespan at the uniform rate.
        gpu_seconds: The same bought GPU-time in seconds, kept on the
            point for capacity-planning readability (at a uniform
            $/GPU-hour it is the dollars axis rescaled, so it carries
            no extra dominance information).
    """

    mean_jct: float
    goodput: int
    dollars: float
    gpu_seconds: float


def dominates(a: ObjectivePoint, b: ObjectivePoint) -> bool:
    """Whether ``a`` Pareto-dominates ``b``.

    True when ``a`` is at least as good on every objective -- JCT and
    dollars no higher, goodput no lower -- and strictly better on at
    least one.  Equal points do not dominate each other, so distinct
    configs landing on the same point both survive to the front.
    """
    if a.mean_jct > b.mean_jct or a.goodput < b.goodput or a.dollars > b.dollars:
        return False
    return a.mean_jct < b.mean_jct or a.goodput > b.goodput or a.dollars < b.dollars


def pareto_front(items: Sequence[T], point: Callable[[T], ObjectivePoint]) -> list[T]:
    """The non-dominated subset of ``items``, input order preserved.

    Args:
        items: Candidates carrying objective points.
        point: Extracts each item's :class:`ObjectivePoint`.

    Returns:
        Every item whose point no other item's point :func:`dominates`.
        Duplicated points all survive (none dominates its twin), so the
        front is a set of *configurations*, not just of points.
    """
    return [
        item
        for item in items
        if not any(
            dominates(point(other), point(item)) for other in items if other is not item
        )
    ]
