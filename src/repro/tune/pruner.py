"""Analytic pruning: discard candidates without ever simulating them.

Replaying a trace through the event kernel is fast, but a search space
is a cross-product and most of its members are either *equivalent* to
one another or *provably off the front*.  This module removes both
kinds using nothing but the trace and
:class:`~repro.serve.costing.CostEstimator` prices -- no simulation:

1. **Equivalence collapse** (:func:`canonical`).  Some knobs are inert
   in context and collapsing them merges whole slices of the product
   into one representative: on a single-replica fleet every routing
   policy places every tenant on replica 0 and no rebalance can ever
   fire, so routing/rebalance knobs are rewritten to their baselines;
   on a deadline-free trace
   :meth:`~repro.serve.admission.DeadlineFeasibilityAdmission.feasible`
   passes every arrival, so the gate collapses to its base admission;
   preemptive FCFS never finds a *strictly* earlier-arriving candidate
   than an admitted job, so it collapses to plain FCFS.  Each collapse
   is an exact behavioral identity, not an approximation.

2. **Bound-dominance pruning** (:func:`optimistic_point` + the
   branch-and-bound loop in :func:`~repro.tune.runner.tune`).  For each
   candidate an *optimistic* objective point is computed -- at least as
   good as anything the simulator could report on every axis -- and a
   candidate whose optimistic point is already Pareto-dominated by some
   **simulated** point is skipped.  Soundness: with bound ``b`` at
   least as good as actual ``a`` axiswise, a simulated point that
   dominates ``b`` dominates ``a`` too, so the skipped candidate could
   not have been on the front and the front over simulated points is
   unchanged (``tests/tune/test_pruner.py`` asserts the
   prune-vs-simulate-all front identity property-style).

The bounds are admissible because every estimator price carries a
documented honesty band: observed time stays within
``[price / CALIBRATION_TOLERANCE, price * CALIBRATION_TOLERANCE]``
(see ``docs/costing.md``).  Dividing the serialization-chain price of a
job by :data:`PRUNE_SAFETY` therefore floors its true service time, and
everything else (completion >= own service, makespan >= both the
longest arrival-plus-service horizon and total work over fleet size,
on-time finishes need ``arrival + service <= deadline``) is queueing
arithmetic that holds for *any* schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.serve.config import GPU_HOURLY_RATE, ServeConfig
from repro.serve.costing import CALIBRATION_TOLERANCE, CostEstimator, TenantProfile
from repro.serve.jobs import ServeJob
from repro.tune.pareto import ObjectivePoint

__all__ = ["PRUNE_SAFETY", "TraceSummary", "canonical", "optimistic_point"]

#: Safety divisor applied to every estimator price before it is used as
#: a lower bound: the calibration contract guarantees observed time is
#: at least ``price / CALIBRATION_TOLERANCE``, so dividing by the full
#: a priori tolerance makes the bound admissible even for uncorrected
#: estimators (corrected ones are tighter still -- see
#: ``docs/costing.md``, "The calibration contract").
PRUNE_SAFETY = CALIBRATION_TOLERANCE


def canonical(
    config: ServeConfig, has_deadlines: bool, multi_tenant: bool = True
) -> ServeConfig:
    """The representative of ``config``'s behavioral equivalence class.

    Rewrites knobs that are provably inert for the given trace shape to
    their baseline values, so configs differing only in inert knobs map
    to one bundle and are simulated once.  Every rewrite is an exact
    identity (see the module docstring for the three arguments);
    anything not provably inert is left untouched.

    Args:
        config: The candidate to canonicalize.
        has_deadlines: Whether any trace job carries a deadline -- the
            feasibility gate is only collapsible when none does.
        multi_tenant: Whether the trace holds more than one job -- the
            packing axis is only collapsible on singleton traces.
    """
    updates: dict[str, object] = {}
    if config.num_replicas == 1:
        # One replica: placement has one choice and skew needs two.
        updates["routing"] = "least_loaded"
        updates["migration_time_threshold"] = None
        updates["drain_then_migrate"] = False
    if not has_deadlines and config.deadline_gate:
        # feasible() passes every deadline-free arrival, so the gate is
        # exactly its base admission (and the queueing-aware charge is
        # part of the gate).
        updates["deadline_gate"] = False
        updates["gate_slack"] = 1.0
        updates["queueing_aware"] = False
    if config.ordering == "fcfs" and config.preemptive:
        # FCFS ranks by arrival time: a later arrival is never strictly
        # better-ranked than an admitted job, so preemption never fires.
        updates["preemptive"] = False
    if not multi_tenant and config.packing != "arrival":
        # One tenant: knapsack grouping over a single job is the
        # singleton group arrival order produces, the admission
        # tie-breaker never sees two candidates, routing scores never
        # tie-break differently for one tenant, and the merge discount
        # is gated on two or more live jobs -- so knapsack packing
        # prices and plans identically to arrival order.
        updates["packing"] = "arrival"
    return replace(config, **updates) if updates else config


@dataclass(frozen=True)
class _JobFloor:
    """One trace job's pruning inputs (all virtual seconds)."""

    arrival: float
    deadline: float | None
    service: float  # admissible lower bound on solo service time


@dataclass(frozen=True)
class TraceSummary:
    """Per-job service floors of one trace, the pruner's only input.

    Built once per tuning run (:meth:`from_trace`) and shared by every
    candidate's :func:`optimistic_point`: the floors depend on the
    trace and the estimator, never on the candidate.
    """

    jobs: tuple[_JobFloor, ...]

    @classmethod
    def from_trace(
        cls, trace: Sequence[ServeJob], estimator: CostEstimator
    ) -> "TraceSummary":
        """Price every job's admissible service floor.

        The floor is the estimator's whole-job wave price -- the max of
        the steady-state and serialization-chain bounds of
        :meth:`~repro.serve.costing.CostEstimator.wave_seconds` --
        divided by :data:`PRUNE_SAFETY`.  Pass an *uncorrected*
        estimator: a tracker's run-specific corrections have no place
        in a bound shared across candidates.
        """
        floors = []
        for serve_job in trace:
            profile = TenantProfile.from_job(serve_job.job)
            price = estimator.wave_seconds(
                [(profile, serve_job.job.num_global_batches())]
            )
            floors.append(
                _JobFloor(
                    arrival=serve_job.arrival_time,
                    deadline=serve_job.deadline,
                    service=price / PRUNE_SAFETY,
                )
            )
        return cls(jobs=tuple(floors))

    @property
    def has_deadlines(self) -> bool:
        """Whether any job carries a deadline (the gate-collapse input)."""
        return any(job.deadline is not None for job in self.jobs)


def _mean_jct_floor(certain: list[float], optional: list[float]) -> float:
    """Least achievable mean of ``certain`` plus any subset of ``optional``.

    The mean-JCT bound's combinatorial core: jobs in ``certain`` are
    finished in every run (their floors all count), jobs in
    ``optional`` may be shed by a gate, and the most optimistic
    outcome greedily admits optional floors in ascending order while
    each one still lowers the running mean (a value below the current
    mean always lowers it; one above always raises it, and ascending
    order means all later values are above it too).  ``inf`` when both
    lists are empty -- a run that finishes nothing has no mean JCT.
    """
    total = sum(certain)
    count = len(certain)
    for floor in sorted(optional):
        if count and floor >= total / count:
            break
        total += floor
        count += 1
    return total / count if count else float("inf")


def optimistic_point(
    config: ServeConfig,
    summary: TraceSummary,
    rate: float = GPU_HOURLY_RATE,
) -> ObjectivePoint:
    """A point at least as good as any the simulator could report.

    Per axis (proofs sketched in the module docstring; full math in
    ``docs/tuning.md``):

    - **mean JCT**: every finished job's completion time is at least
      its service floor, and the set of finished jobs is everything
      (no gate) or the deadline-free jobs plus an adversarially chosen
      subset of deadline jobs (gated) -- :func:`_mean_jct_floor` takes
      the least achievable mean.
    - **goodput**: a deadline job can only finish on time when
      ``arrival + service floor <= deadline``; count those.
    - **dollars**: certainly-served work floors the bill.  A fixed
      ``R``-replica fleet bills ``R x makespan`` with makespan at
      least ``max(arrival + service)`` (some job finishes last) and at
      least ``sum(service) / R`` (work conservation); an autoscaled
      fleet bills at least the total work floor (every executed second
      runs on a billed replica).

    Args:
        config: The candidate (only its fleet size, gate, and
            autoscaler knobs matter to the bounds).
        summary: The trace's precomputed service floors.
        rate: $/GPU-hour converting the GPU-seconds floor to dollars.
    """
    certain = [j.service for j in summary.jobs]
    optional: list[float] = []
    if config.deadline_gate:
        certain = [j.service for j in summary.jobs if j.deadline is None]
        optional = [j.service for j in summary.jobs if j.deadline is not None]
    jct_floor = _mean_jct_floor(certain, optional)
    goodput_ceiling = sum(
        1
        for j in summary.jobs
        if j.deadline is not None and j.arrival + j.service <= j.deadline
    )
    work_floor = sum(certain)
    if config.autoscale_budget is not None:
        gpu_floor = work_floor
    else:
        horizon = max((j.arrival + j.service for j in summary.jobs), default=0.0)
        if config.deadline_gate:
            horizon = max(
                (
                    j.arrival + j.service
                    for j in summary.jobs
                    if j.deadline is None
                ),
                default=0.0,
            )
        gpu_floor = max(work_floor, config.num_replicas * horizon)
    return ObjectivePoint(
        mean_jct=jct_floor,
        goodput=goodput_ceiling,
        dollars=gpu_floor / 3600.0 * rate,
        gpu_seconds=gpu_floor,
    )
