"""The serve-config search space: axes, enumeration, and baselines.

A :class:`SearchSpace` is the declarative cross-product the autotuner
explores: per-axis value tuples whose product is enumerated into
concrete :class:`~repro.serve.config.ServeConfig` bundles by
:meth:`SearchSpace.candidates`.  Combinations the serve layer itself
rejects (a queueing-aware gate without the gate, aging on FCFS, a drain
unlock without a migration trigger) are skipped during enumeration
rather than patched up, so every emitted candidate is a valid bundle
and the space's size is exactly what a user can count from the axes.

:func:`default_space` is the stock space ``docs/tuning.md`` documents
axis by axis; :func:`single_policy_defaults` are the one-knob baseline
configs the tuning benchmark's gate compares the tuned pick against
(each default turns on exactly one policy family over the plain
round-robin/FCFS baseline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields

from repro.serve.config import ServeConfig

__all__ = [
    "NON_SEARCH_FIELDS",
    "SearchSpace",
    "default_space",
    "single_policy_defaults",
]

#: :class:`~repro.serve.config.ServeConfig` fields the search space
#: deliberately does **not** sweep: the live gateway's door limits.  The
#: tuner replays recorded traces, and a trace never meets the door --
#: every gateway knob would multiply the product without changing a
#: single replayed metric.  They stay on the bundle (so a deployed
#: gateway's limits serialize and label with the rest of its
#: configuration) and enumerated candidates carry their defaults.
NON_SEARCH_FIELDS = frozenset(
    {
        "gateway_rate",
        "gateway_burst",
        "gateway_queue_bound",
        "gateway_fairness",
        "gateway_hold",
    }
)


@dataclass(frozen=True)
class SearchSpace:
    """Per-axis candidate values; the product is the candidate set.

    Every axis mirrors one :class:`~repro.serve.config.ServeConfig`
    field (same name, pluralized), so a one-point space on every axis
    describes exactly one config and widening any axis multiplies the
    product.  Axes default to the corresponding ``ServeConfig`` default
    as a single point, so a space only names the axes it actually
    sweeps.  The gateway knobs (:data:`NON_SEARCH_FIELDS`) have no axis
    at all: trace replay never exercises the door, so sweeping them
    would only inflate the product.

    Attributes:
        fleet_sizes: Initial replica counts to try.
        routings: Routing-policy names
            (:data:`~repro.serve.config.ROUTING_POLICIES`).
        orderings: Ordering-policy names
            (:data:`~repro.serve.config.ORDERING_POLICIES`).
        preemptive: Preemption on/off for the ordering policy.
        aging_rates: Aging starvation bounds (0 disables; skipped for
            FCFS, which takes none).
        slots: Adapter-slot budgets per replica.
        deadline_gates: Deadline-feasibility admission on/off.
        gate_slacks: Feasibility slack values (combined with gated
            candidates only).
        queueing_aware: Queueing-aware feasibility on/off (combined
            with gated candidates only).
        windows: Static planning-window sizes, in global batches.
        adaptive_windows: Adaptive-window control loop on/off.
        rebalance_thresholds: Completion-horizon skew triggers in
            expected seconds (``None`` disables rebalancing).
        drains: Drain-then-migrate unlock on/off (combined with a
            rebalance trigger only).
        autoscale_budgets: $/hour autoscaler budgets (``None`` keeps
            the fleet fixed).
        calibrated: Closed-loop calibration correction on/off.
        packings: Wave-packing scheme names
            (:data:`~repro.serve.config.PACKING_SCHEMES`).
    """

    fleet_sizes: tuple[int, ...] = (1,)
    routings: tuple[str, ...] = ("least_loaded",)
    orderings: tuple[str, ...] = ("fcfs",)
    preemptive: tuple[bool, ...] = (False,)
    aging_rates: tuple[float, ...] = (0.0,)
    slots: tuple[int, ...] = (2,)
    deadline_gates: tuple[bool, ...] = (False,)
    gate_slacks: tuple[float, ...] = (1.0,)
    queueing_aware: tuple[bool, ...] = (False,)
    windows: tuple[int, ...] = (2,)
    adaptive_windows: tuple[bool, ...] = (False,)
    rebalance_thresholds: tuple[float | None, ...] = (None,)
    drains: tuple[bool, ...] = (False,)
    autoscale_budgets: tuple[float | None, ...] = (None,)
    calibrated: tuple[bool, ...] = (False,)
    packings: tuple[str, ...] = ("arrival",)

    def candidates(self) -> list[ServeConfig]:
        """Every valid config in the space's cross-product, in axis order.

        The iteration order is the deterministic odometer order of
        :func:`itertools.product` over the axes as declared, so two runs
        over one space enumerate identical lists.  Invalid combinations
        are skipped: aging on FCFS, ``queueing_aware`` without the gate,
        a non-default ``gate_slack`` without the gate (it would alias
        the ungated config), a drain unlock without a rebalance trigger.
        """
        configs = []
        for (
            fleet,
            routing,
            ordering,
            preempt,
            aging,
            slot_budget,
            gate,
            slack,
            queueing,
            window,
            adaptive,
            threshold,
            drain,
            budget,
            calibrate,
            packing,
        ) in itertools.product(
            self.fleet_sizes,
            self.routings,
            self.orderings,
            self.preemptive,
            self.aging_rates,
            self.slots,
            self.deadline_gates,
            self.gate_slacks,
            self.queueing_aware,
            self.windows,
            self.adaptive_windows,
            self.rebalance_thresholds,
            self.drains,
            self.autoscale_budgets,
            self.calibrated,
            self.packings,
        ):
            if ordering == "fcfs" and aging:
                continue
            if not gate and (queueing or slack != 1.0):
                continue
            if drain and threshold is None:
                continue
            configs.append(
                ServeConfig(
                    num_replicas=fleet,
                    routing=routing,
                    ordering=ordering,
                    preemptive=preempt,
                    aging_rate=aging,
                    slots=slot_budget,
                    deadline_gate=gate,
                    gate_slack=slack,
                    queueing_aware=queueing,
                    window_batches=window,
                    adaptive_window=adaptive,
                    migration_time_threshold=threshold,
                    drain_then_migrate=drain,
                    autoscale_budget=budget,
                    calibrated=calibrate,
                    packing=packing,
                )
            )
        return configs

    def axes(self) -> dict[str, tuple]:
        """Axis name to value tuple, for reports and artifacts."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def default_space() -> SearchSpace:
    """The stock search space (``docs/tuning.md`` documents each axis).

    Sized for interactive tuning: three routing families (the cycle
    baseline, the count heuristic, the cost-driven policy), three
    ordering families (fairness, size-aware, deadline-aware), the
    feasibility gate on/off, two window sizes, and one- or two-replica
    fleets -- 72 raw candidates before equivalence collapse and
    pruning.
    """
    return SearchSpace(
        fleet_sizes=(1, 2),
        routings=("round_robin", "least_loaded", "cost_aware"),
        orderings=("fcfs", "srpt", "deadline"),
        deadline_gates=(False, True),
        windows=(1, 2),
    )


def single_policy_defaults(
    fleet_size: int = 2, slots: int = 2, window: int = 2
) -> dict[str, ServeConfig]:
    """The one-knob baseline configs the tuning benchmark gates against.

    Each default turns on exactly one policy family over the plain
    baseline (round-robin routing, FCFS ordering, slot-only admission,
    static window), so beating *every* default shows the tuned config's
    win comes from composing policies, not from any single knob:

    - ``baseline``: the plain config itself.
    - ``least-loaded`` / ``cost-aware``: routing only.
    - ``srpt`` / ``edf``: ordering only.
    - ``gated``: deadline-feasibility admission only.

    All defaults share ``fleet_size``, ``slots``, and ``window``, so
    the dollars axis compares fleets of equal size.
    """
    base = ServeConfig(
        num_replicas=fleet_size,
        routing="round_robin",
        ordering="fcfs",
        slots=slots,
        window_batches=window,
    )

    def variant(**kwargs: object) -> ServeConfig:
        return ServeConfig.from_dict({**base.to_dict(), **kwargs})

    return {
        "baseline": base,
        "least-loaded": variant(routing="least_loaded"),
        "cost-aware": variant(routing="cost_aware"),
        "srpt": variant(ordering="srpt"),
        "edf": variant(ordering="deadline"),
        "gated": variant(deadline_gate=True),
    }
