"""Artifact rendering: the Pareto front as committed, diffable JSON.

The tuning benchmark commits its front to
``benchmarks/results/autotune_front.json`` and the CI gate re-derives
it on a second seed run, so the rendering must be *bit-identical*
across runs and platforms: keys are sorted, floats are rounded to a
fixed precision before serialization (so accumulated float noise below
the reported precision cannot flip a digit), non-finite values are
mapped to ``None`` (JSON has no ``Infinity``), and the text ends in
exactly one newline.  :func:`front_to_json` is the only writer;
``scripts/check_bench_results.py`` is the reader that re-validates the
committed artifact (configs round-trip through
:meth:`~repro.serve.config.ServeConfig.from_dict`, front points are
mutually non-dominated).
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.tune.pareto import ObjectivePoint
from repro.tune.runner import TuneReport

__all__ = ["front_to_json", "point_as_dict"]

#: Decimal places every float in the artifact is rounded to before
#: serialization -- coarse enough to absorb sub-precision float noise,
#: fine enough that virtual-seconds metrics stay meaningfully distinct.
ARTIFACT_PRECISION = 6


def _finite(value: float) -> float | None:
    """JSON-safe float: rounded, with non-finite mapped to ``None``."""
    if not math.isfinite(value):
        return None
    return round(value, ARTIFACT_PRECISION)


def point_as_dict(point: ObjectivePoint) -> dict[str, Any]:
    """One objective point as a JSON-ready mapping.

    ``mean_jct`` is ``None`` when the run finished nothing (the
    in-memory point carries ``inf``, which JSON cannot); readers treat
    ``None`` as worst-possible on the axis.
    """
    return {
        "mean_jct": _finite(point.mean_jct),
        "goodput": point.goodput,
        "dollars": _finite(point.dollars),
        "gpu_seconds": _finite(point.gpu_seconds),
    }


def front_to_json(report: TuneReport) -> str:
    """Render a :class:`~repro.tune.runner.TuneReport` as artifact text.

    The document carries the search accounting (raw candidates,
    equivalence collapses, bound prunes, simulations) next to the front
    itself -- each front entry is the config's compact label, its full
    :meth:`~repro.serve.config.ServeConfig.to_dict` bundle (so the
    exact winning config can be rebuilt from the artifact alone), and
    its objective point.  Entries keep the report's cheapest-first
    order.  Deterministic: equal reports render byte-identical text.
    """
    document = {
        "objectives": {
            "minimize": ["mean_jct", "dollars"],
            "maximize": ["goodput"],
        },
        "search": {
            "candidates": report.candidates,
            "collapsed": report.collapsed,
            "pruned": report.pruned,
            "simulated": report.simulated,
        },
        "front": [
            {
                "label": trial.config.label(),
                "config": trial.config.to_dict(),
                "point": point_as_dict(trial.point),
            }
            for trial in report.front
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
