"""The autotuner loop: collapse, bound, simulate, front, recommend.

:func:`tune` is the tentpole entry point.  It takes a trace and a
:class:`~repro.tune.space.SearchSpace` and runs the three-stage funnel:

1. **Collapse** every candidate to its behavioral representative
   (:func:`~repro.tune.pruner.canonical`), merging configs that would
   replay identically.
2. **Bound** each survivor with an admissible
   :func:`~repro.tune.pruner.optimistic_point`, then walk candidates
   most-promising-first and **prune** any whose optimistic point an
   already-simulated *actual* point dominates -- branch and bound over
   the Pareto order instead of a scalar objective.
3. **Simulate** the rest by replaying the trace through the
   event-driven :class:`~repro.serve.replicaset.ReplicaSet` kernel
   (:func:`evaluate`) and keep the Pareto front of what was measured.

:func:`recommend` turns the front into a capacity plan: given an
:class:`SLOTarget` it returns the cheapest front entry that meets every
named target, or -- when nothing does -- the least-violating entry with
``feasible=False`` so callers can see how far the space falls short.
``docs/tuning.md`` walks through both entry points end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ScheduleError
from repro.models.layer_costs import LayerCostModel
from repro.scheduler.scheduler import SchedulerConfig
from repro.serve.config import GPU_HOURLY_RATE, ServeConfig
from repro.serve.costing import CostEstimator
from repro.serve.jobs import ServeJob
from repro.serve.metrics import ReplicaSetResult
from repro.serve.replicaset import ReplicaSet
from repro.tune.pareto import ObjectivePoint, dominates, pareto_front
from repro.tune.pruner import TraceSummary, canonical, optimistic_point
from repro.tune.space import SearchSpace, default_space

__all__ = [
    "Recommendation",
    "SLOTarget",
    "Trial",
    "TuneReport",
    "evaluate",
    "recommend",
    "tune",
]


@dataclass(frozen=True)
class Trial:
    """One simulated candidate: the bundle and where it landed."""

    config: ServeConfig
    point: ObjectivePoint


@dataclass(frozen=True)
class TuneReport:
    """Everything one :func:`tune` run measured and decided.

    Attributes:
        trials: Every simulated candidate with its measured point, in
            simulation order (the bound-sorted branch-and-bound order).
        front: The Pareto-front subset of ``trials``, sorted cheapest
            first (dollars, then JCT, then label) for stable artifacts.
        candidates: Raw cross-product size before any reduction.
        collapsed: Candidates merged away as behaviorally equivalent to
            an earlier one (:func:`~repro.tune.pruner.canonical`).
        pruned: Candidates skipped because an already-simulated point
            dominated their optimistic bound.
    """

    trials: tuple[Trial, ...]
    front: tuple[Trial, ...]
    candidates: int
    collapsed: int
    pruned: int

    @property
    def simulated(self) -> int:
        """Candidates that were actually replayed (``len(trials)``)."""
        return len(self.trials)


def evaluate(
    config: ServeConfig,
    trace: Sequence[ServeJob],
    *,
    cost: LayerCostModel,
    scheduler: SchedulerConfig,
    rate: float = GPU_HOURLY_RATE,
) -> tuple[ObjectivePoint, ReplicaSetResult]:
    """Replay ``trace`` under ``config`` and reduce the run to a point.

    Builds a fresh fleet (:meth:`~repro.serve.config.ServeConfig.build`
    shares no state between calls), runs the event kernel, and maps the
    :class:`~repro.serve.metrics.ReplicaSetResult` onto the tuner's
    axes:

    - ``mean_jct`` is the mean over finished jobs, or ``inf`` when
      nothing finished -- the metrics layer's 0.0 convention would rank
      a fleet that served nobody *best*, the tuner must rank it worst.
    - ``dollars``/``gpu_seconds`` use the recorded bill when the run
      was autoscaled (``replica_intervals`` populated); a fixed fleet
      bills ``num_replicas x makespan`` at ``rate``.
    """
    executors, fleet_config = config.build(cost, scheduler)
    result = ReplicaSet(executors, fleet_config).run(list(trace))
    finished = any(
        record.completion_time is not None for record in result.records.values()
    )
    mean_jct = result.mean_completion_time() if finished else float("inf")
    if result.replica_intervals:
        gpu_seconds = result.gpu_seconds
        dollars = result.dollars_spent
    else:
        gpu_seconds = config.num_replicas * result.makespan
        dollars = gpu_seconds / 3600.0 * rate
    point = ObjectivePoint(
        mean_jct=mean_jct,
        goodput=result.deadline_goodput(),
        dollars=dollars,
        gpu_seconds=gpu_seconds,
    )
    return point, result


def _bound_order_key(
    config: ServeConfig, bound: ObjectivePoint
) -> tuple[float, float, int, str]:
    """Most-promising-first walk order (deterministic via the label)."""
    return (bound.dollars, bound.mean_jct, -bound.goodput, config.label())


def _front_key(trial: Trial) -> tuple[float, float, int, str]:
    """Cheapest-first front order for stable reports and artifacts."""
    return (
        trial.point.dollars,
        trial.point.mean_jct,
        -trial.point.goodput,
        trial.config.label(),
    )


def tune(
    trace: Sequence[ServeJob],
    space: SearchSpace | None = None,
    *,
    cost: LayerCostModel,
    scheduler: SchedulerConfig,
    rate: float = GPU_HOURLY_RATE,
    prune: bool = True,
) -> TuneReport:
    """Search ``space`` against ``trace`` and return the Pareto front.

    The funnel (module docstring) guarantees the front equals -- as a
    set of objective points -- the front a simulate-everything sweep
    would have produced: collapses are exact behavioral identities and
    a pruned candidate's actual point is always dominated by a
    simulated one (``tests/tune/test_pruner.py`` asserts this against
    brute force).  Pass ``prune=False`` to run that brute-force sweep,
    collapse included, for the comparison.

    Args:
        trace: The workload to replay (any arrival order).
        space: Candidate axes; :func:`~repro.tune.space.default_space`
            when omitted.
        cost: Profiled layer costs the executors simulate against.
        scheduler: Packing configuration shared by every candidate.
        rate: $/GPU-hour pricing the dollars axis.
        prune: Whether to skip bound-dominated candidates (stage 2).
    """
    if not trace:
        raise ScheduleError("tune() needs a non-empty trace")
    space = space if space is not None else default_space()
    raw = space.candidates()
    if not raw:
        raise ScheduleError("the search space enumerates no valid candidate")
    pricer = CostEstimator.for_scheduler(cost, scheduler)
    summary = TraceSummary.from_trace(trace, pricer)

    representatives: list[ServeConfig] = []
    seen: set[ServeConfig] = set()
    for candidate in raw:
        representative = canonical(
            candidate, summary.has_deadlines, multi_tenant=len(trace) > 1
        )
        if representative not in seen:
            seen.add(representative)
            representatives.append(representative)

    bounds = {
        config: optimistic_point(config, summary, rate)
        for config in representatives
    }
    ordered = sorted(
        representatives, key=lambda c: _bound_order_key(c, bounds[c])
    )

    trials: list[Trial] = []
    pruned = 0
    for config in ordered:
        bound = bounds[config]
        if prune and any(dominates(trial.point, bound) for trial in trials):
            pruned += 1
            continue
        point, _ = evaluate(
            config, trace, cost=cost, scheduler=scheduler, rate=rate
        )
        trials.append(Trial(config=config, point=point))

    front = sorted(pareto_front(trials, lambda t: t.point), key=_front_key)
    return TuneReport(
        trials=tuple(trials),
        front=tuple(front),
        candidates=len(raw),
        collapsed=len(raw) - len(representatives),
        pruned=pruned,
    )


@dataclass(frozen=True)
class SLOTarget:
    """A capacity-planning target over the tuner's objective axes.

    Every field is optional; an omitted axis is unconstrained.  All
    named targets must hold at once for a point to qualify.

    Attributes:
        max_mean_jct: Mean JCT ceiling, virtual seconds.
        min_goodput: On-time deadline completions floor.
        max_dollars: Spend ceiling for the whole trace, dollars.
    """

    max_mean_jct: float | None = None
    min_goodput: int | None = None
    max_dollars: float | None = None

    def __post_init__(self) -> None:
        if self.max_mean_jct is not None and self.max_mean_jct <= 0:
            raise ScheduleError("max_mean_jct must be positive")
        if self.min_goodput is not None and self.min_goodput < 0:
            raise ScheduleError("min_goodput must be non-negative")
        if self.max_dollars is not None and self.max_dollars <= 0:
            raise ScheduleError("max_dollars must be positive")

    def violation(self, point: ObjectivePoint) -> float:
        """Summed relative shortfall against the named targets.

        0.0 when the point meets the SLO; each violated axis adds its
        shortfall relative to the target, so violations on different
        axes compare on one unitless scale (``inf`` mean JCT yields
        ``inf``, ranking nothing-served runs as far as possible from
        any JCT target).
        """
        total = 0.0
        if self.max_mean_jct is not None and point.mean_jct > self.max_mean_jct:
            total += (point.mean_jct - self.max_mean_jct) / self.max_mean_jct
        if self.min_goodput is not None and point.goodput < self.min_goodput:
            total += (self.min_goodput - point.goodput) / self.min_goodput
        if self.max_dollars is not None and point.dollars > self.max_dollars:
            total += (point.dollars - self.max_dollars) / self.max_dollars
        return total

    def met_by(self, point: ObjectivePoint) -> bool:
        """Whether the point satisfies every named target."""
        return self.violation(point) == 0.0


@dataclass(frozen=True)
class Recommendation:
    """One config picked off the front against an :class:`SLOTarget`.

    Attributes:
        config: The recommended bundle.
        point: Its measured objective point on the tuning trace.
        feasible: Whether the point meets every named SLO target; when
            False, ``config`` is the least-violating front entry and
            the caller should read the gap off ``point``.
        report: The full :class:`TuneReport` behind the pick, for
            drill-down into the rest of the front.
    """

    config: ServeConfig
    point: ObjectivePoint
    feasible: bool
    report: TuneReport = field(repr=False)


def recommend(
    trace: Sequence[ServeJob],
    slo: SLOTarget,
    *,
    cost: LayerCostModel,
    scheduler: SchedulerConfig,
    space: SearchSpace | None = None,
    rate: float = GPU_HOURLY_RATE,
) -> Recommendation:
    """Capacity planning: the cheapest front config that meets ``slo``.

    Runs :func:`tune` and picks from the front: among SLO-meeting
    entries, the minimum by (dollars, fleet size, mean JCT, label) --
    i.e. the smallest spend, smallest fleet that serves the trace
    within target.  When no front entry qualifies, returns the
    least-violating one with ``feasible=False``: the front is the set
    of best achievable trade-offs, so its least-violating member is the
    space's closest approach to the SLO.
    """
    report = tune(trace, space, cost=cost, scheduler=scheduler, rate=rate)
    qualifying = [t for t in report.front if slo.met_by(t.point)]
    if qualifying:
        pick = min(
            qualifying,
            key=lambda t: (
                t.point.dollars,
                t.config.num_replicas,
                t.point.mean_jct,
                t.config.label(),
            ),
        )
        return Recommendation(pick.config, pick.point, True, report)
    pick = min(
        report.front,
        key=lambda t: (slo.violation(t.point), _front_key(t)),
    )
    return Recommendation(pick.config, pick.point, False, report)
