"""Offline autotuning over the serve config space: Pareto-front capacity planning.

The serve layer (:mod:`repro.serve`) exposes a cross-product of knobs
-- router x ordering x admission gate x planning window x rebalancer x
fleet size / autoscaler budget -- and choosing a combination per
workload is guesswork.  This package closes that loop offline: describe
the candidate space declaratively, prune the bulk of it analytically
with :class:`~repro.serve.costing.CostEstimator` bounds (no
simulation), replay a trace through the event-driven
:class:`~repro.serve.replicaset.ReplicaSet` kernel for the survivors,
and keep the Pareto front over (mean JCT, deadline goodput, dollars).
The front doubles as a capacity planner: :func:`recommend` picks the
cheapest front entry that meets an SLO target.  The full reference --
search-space table, pruning math and admissibility arguments, artifact
format, planning walkthrough -- is ``docs/tuning.md``.

Exported API, by concern (one line each; the docstrings carry the
contracts):

**Search space** (``docs/tuning.md`` section "The search space")
  * :class:`SearchSpace` -- per-axis value tuples whose cross-product
    is the candidate set, enumerated deterministically as
    :class:`~repro.serve.config.ServeConfig` bundles.
  * :func:`default_space` -- the stock space the manual documents axis
    by axis.
  * :func:`single_policy_defaults` -- one-knob baseline configs the
    tuning benchmark gates the tuned pick against.
  * :data:`NON_SEARCH_FIELDS` -- the config fields the space
    deliberately never sweeps (the live gateway's door limits; trace
    replay never meets the door).

**Pruning** (``docs/tuning.md`` section "Analytic pruning")
  * :func:`canonical` -- collapse behaviorally equivalent candidates to
    one representative (exact identities, not approximations).
  * :class:`TraceSummary` -- per-job admissible service floors, priced
    once per trace.
  * :func:`optimistic_point` -- a bound at least as good as anything
    the simulator could report, per candidate.
  * :data:`PRUNE_SAFETY` -- the calibration-tolerance divisor that
    makes the floors admissible.

**Tuning & recommendation** (``docs/tuning.md`` section "Running the tuner")
  * :func:`tune` -- the collapse / bound-and-prune / simulate funnel;
    returns the measured Pareto front.
  * :func:`evaluate` -- replay one config on a trace, reduced to an
    objective point.
  * :class:`Trial` / :class:`TuneReport` -- one simulated candidate;
    the full run accounting plus the front.
  * :class:`SLOTarget` -- optional ceilings/floors per objective axis.
  * :func:`recommend` / :class:`Recommendation` -- capacity planning:
    the cheapest SLO-meeting front entry, or the least-violating one
    flagged infeasible.

**Objectives & artifacts** (``docs/tuning.md`` section "The artifact")
  * :class:`ObjectivePoint` -- one run on the three objective axes
    (plus GPU-seconds for readability).
  * :func:`dominates` / :func:`pareto_front` -- Pareto dominance and
    the non-dominated subset.
  * :func:`front_to_json` / :func:`point_as_dict` -- the committed,
    bit-identical JSON artifact rendering.
"""

from repro.tune.pareto import ObjectivePoint, dominates, pareto_front
from repro.tune.pruner import (
    PRUNE_SAFETY,
    TraceSummary,
    canonical,
    optimistic_point,
)
from repro.tune.report import front_to_json, point_as_dict
from repro.tune.runner import (
    Recommendation,
    SLOTarget,
    Trial,
    TuneReport,
    evaluate,
    recommend,
    tune,
)
from repro.tune.space import (
    NON_SEARCH_FIELDS,
    SearchSpace,
    default_space,
    single_policy_defaults,
)

__all__ = [
    "NON_SEARCH_FIELDS",
    "ObjectivePoint",
    "PRUNE_SAFETY",
    "Recommendation",
    "SLOTarget",
    "SearchSpace",
    "TraceSummary",
    "Trial",
    "TuneReport",
    "canonical",
    "default_space",
    "dominates",
    "evaluate",
    "front_to_json",
    "optimistic_point",
    "pareto_front",
    "point_as_dict",
    "recommend",
    "single_policy_defaults",
    "tune",
]
