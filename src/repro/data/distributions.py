"""Synthetic dataset length distributions calibrated to Figure 13.

The paper fine-tunes on three summarization datasets -- XSum,
CNN/DailyMail, and WikiSum -- whose *sample length distributions* are what
every scheduling result depends on (token content never matters for
throughput).  We model each as a clipped log-normal fitted to Figure 13's
densities: XSum is short (mean ~500 tokens), CNN/DailyMail medium
(~900), WikiSum long and heavy-tailed (~2200, stretching past 4K).  The
``mixed`` dataset combines equal thirds of all three, and is the high
variance workload of Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LengthDistribution",
    "MixtureDistribution",
    "XSUM",
    "CNN_DAILYMAIL",
    "WIKISUM",
    "MIXED",
    "get_distribution",
    "list_distributions",
]


@dataclass(frozen=True)
class LengthDistribution:
    """Clipped log-normal sample-length distribution.

    Attributes:
        name: Dataset name as used in the paper.
        key: Registry key.
        log_mean: Mean of the underlying normal (of ``ln(length)``).
        log_sigma: Standard deviation of the underlying normal.
        min_len: Lengths are clipped below this.
        max_len: Lengths are clipped above this.
    """

    name: str
    key: str
    log_mean: float
    log_sigma: float
    min_len: int = 64
    max_len: int = 8192

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` integer sample lengths."""
        raw = rng.lognormal(self.log_mean, self.log_sigma, size=count)
        return np.clip(np.round(raw).astype(np.int64), self.min_len, self.max_len)

    def mean(self) -> float:
        """Analytical mean of the (unclipped) log-normal."""
        return float(np.exp(self.log_mean + self.log_sigma**2 / 2.0))


@dataclass(frozen=True)
class MixtureDistribution:
    """Equal-probability mixture of several length distributions."""

    name: str
    key: str
    components: tuple[LengthDistribution, ...]

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` lengths, each from a uniformly chosen component."""
        choices = rng.integers(0, len(self.components), size=count)
        lengths = np.empty(count, dtype=np.int64)
        for i, component in enumerate(self.components):
            mask = choices == i
            lengths[mask] = component.sample(int(mask.sum()), rng)
        return lengths

    def mean(self) -> float:
        """Mean of the mixture."""
        return float(np.mean([c.mean() for c in self.components]))

    @property
    def min_len(self) -> int:
        """Smallest possible length across components."""
        return min(c.min_len for c in self.components)

    @property
    def max_len(self) -> int:
        """Largest possible length across components."""
        return max(c.max_len for c in self.components)


XSUM = LengthDistribution(
    name="XSum", key="xsum", log_mean=np.log(430.0), log_sigma=0.42
)

CNN_DAILYMAIL = LengthDistribution(
    name="CNN/DailyMail", key="cnn_dailymail", log_mean=np.log(820.0),
    log_sigma=0.38,
)

WIKISUM = LengthDistribution(
    name="WikiSum", key="wikisum", log_mean=np.log(1750.0), log_sigma=0.62
)

MIXED = MixtureDistribution(
    name="Mixed", key="mixed", components=(XSUM, CNN_DAILYMAIL, WIKISUM)
)

_REGISTRY: dict[str, LengthDistribution | MixtureDistribution] = {
    d.key: d for d in (XSUM, CNN_DAILYMAIL, WIKISUM, MIXED)
}


def get_distribution(key: str) -> LengthDistribution | MixtureDistribution:
    """Look up a dataset length distribution by key."""
    try:
        return _REGISTRY[key.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {key!r}; known: {sorted(_REGISTRY)}"
        ) from exc


def list_distributions() -> list[str]:
    """Registry keys of all known datasets."""
    return sorted(_REGISTRY)
