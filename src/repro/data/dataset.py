"""Fine-tuning datasets and global-batch iteration.

A :class:`FinetuneDataset` is an ordered stream of :class:`Sample` records
(lengths only -- content never affects throughput).  The order is the
dataset's *training order*: the scheduler must never reorder samples across
global-batch boundaries (that would change the gradient-update sequence),
so global batches are formed here, by position, exactly as a dataloader
would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distributions import (
    LengthDistribution,
    MixtureDistribution,
    get_distribution,
)
from repro.errors import ReproError

__all__ = ["Sample", "FinetuneDataset", "synthetic_dataset"]


@dataclass(frozen=True)
class Sample:
    """One training sample: its owner job, position, and token length.

    Attributes:
        adapter_id: The fine-tuning job (LoRA adapter) that owns it.
        index: Position within the adapter's dataset (training order).
        length: Token count.
    """

    adapter_id: int
    index: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ReproError(f"sample length must be positive: {self}")


@dataclass
class FinetuneDataset:
    """An adapter's dataset: ordered samples plus provenance metadata."""

    adapter_id: int
    samples: list[Sample]
    source: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.samples:
            raise ReproError("dataset must contain at least one sample")

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def lengths(self) -> np.ndarray:
        """All sample lengths in training order."""
        return np.asarray([s.length for s in self.samples], dtype=np.int64)

    def mean_length(self) -> float:
        """Average sample length (used by head-tail adapter grouping)."""
        return self.length_moments()[0]

    def length_moments(self) -> tuple[float, float]:
        """``(mean, mean square)`` sample length, computed once.

        The serving layer's cost estimator prices jobs from these
        moments on every routing/admission/ordering decision; samples
        never change after construction, so they are cached on first
        use.
        """
        cached = self.__dict__.get("_length_moments")
        if cached is None:
            lengths = self.lengths.astype(float)
            cached = (float(lengths.mean()), float((lengths**2).mean()))
            self.__dict__["_length_moments"] = cached
        return cached

    def total_tokens(self) -> int:
        """Total token count of the dataset."""
        return int(self.lengths.sum())

    def global_batches(self, global_batch_size: int) -> list[list[Sample]]:
        """Split into consecutive global batches of ``global_batch_size``.

        The final batch may be smaller.  Order is preserved: batch ``j``
        holds samples ``[j*gbs, (j+1)*gbs)`` of the training stream.
        """
        if global_batch_size <= 0:
            raise ReproError(f"global batch size must be positive, got "
                             f"{global_batch_size}")
        return [
            self.samples[i : i + global_batch_size]
            for i in range(0, len(self.samples), global_batch_size)
        ]


def synthetic_dataset(
    adapter_id: int,
    dataset: str | LengthDistribution | MixtureDistribution,
    num_samples: int,
    seed: int = 0,
) -> FinetuneDataset:
    """Generate a deterministic synthetic dataset for one adapter.

    Args:
        adapter_id: Owning job id.
        dataset: Distribution key (``"xsum"``, ``"cnn_dailymail"``,
            ``"wikisum"``, ``"mixed"``) or a distribution object.
        num_samples: Stream length.
        seed: RNG seed; the same seed always yields the same stream.
    """
    distribution = (
        get_distribution(dataset) if isinstance(dataset, str) else dataset
    )
    rng = np.random.default_rng((seed, adapter_id))
    lengths = distribution.sample(num_samples, rng)
    samples = [
        Sample(adapter_id=adapter_id, index=i, length=int(length))
        for i, length in enumerate(lengths)
    ]
    return FinetuneDataset(
        adapter_id=adapter_id, samples=samples, source=distribution.key
    )
