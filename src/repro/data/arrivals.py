"""Job arrival processes for online multi-tenant serving.

Production fine-tuning services see jobs arrive *continuously*: tenants
submit adapters at unpredictable times and the orchestrator must admit,
schedule, and retire them on the fly.  This module generates the arrival
timelines that drive those simulations -- a memoryless Poisson process
(the standard open-loop traffic model) and trace-driven replay for
recorded workloads.  Times are in the simulation's virtual clock units
and are payload-agnostic: the serving layer zips them with jobs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["poisson_times", "trace_times"]


def poisson_times(
    count: int, rate: float, rng: np.random.Generator | int = 0
) -> list[float]:
    """Arrival times of a Poisson process with intensity ``rate``.

    Args:
        count: Number of arrivals to draw.
        rate: Expected arrivals per unit of virtual time.
        rng: Generator or integer seed (deterministic per seed).

    Returns:
        Strictly increasing arrival times starting after 0.
    """
    if count <= 0:
        raise ReproError(f"count must be positive, got {count}")
    if rate <= 0:
        raise ReproError(f"rate must be positive, got {rate}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=count)
    return list(np.cumsum(gaps))


def trace_times(times: list[float]) -> list[float]:
    """Validate and normalize a recorded arrival trace.

    Args:
        times: Arrival times, in any order; must be non-negative.

    Returns:
        The times sorted ascending.
    """
    if not times:
        raise ReproError("arrival trace must contain at least one time")
    if any(t < 0 for t in times):
        raise ReproError("arrival times must be non-negative")
    return sorted(float(t) for t in times)
