"""The three batching schemes of Figure 2 and their efficiency accounting.

* **Batch padding** (Figure 2a): every sample in a microbatch is padded to
  the longest (or a preset) length; wasted computation on pad tokens.
* **Dataset pre-packing** (Figure 2b): samples are concatenated into
  fixed-length packs ahead of time; no padding waste, but the number of
  samples per optimizer step becomes variable, perturbing training
  semantics.
* **On-the-fly packing** (Figure 2c): each batch keeps a deterministic
  sample count and concatenates its samples without padding; microbatch
  token counts become variable -- which is precisely the load-imbalance
  problem (Figure 6) the LoRAFusion scheduler solves.

The paper adopts on-the-fly packing throughout; the other two are provided
for the motivation benches and comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "PaddedBatch",
    "Pack",
    "pad_batches",
    "prepack_dataset",
    "onthefly_microbatches",
    "padding_waste",
]


@dataclass(frozen=True)
class PaddedBatch:
    """A padded microbatch: real tokens plus padding to a uniform length."""

    lengths: tuple[int, ...]
    padded_length: int

    @property
    def real_tokens(self) -> int:
        """Tokens carrying gradient signal."""
        return sum(self.lengths)

    @property
    def total_tokens(self) -> int:
        """Tokens actually computed, padding included."""
        return self.padded_length * len(self.lengths)

    @property
    def wasted_tokens(self) -> int:
        """Pad tokens (computed but useless)."""
        return self.total_tokens - self.real_tokens


@dataclass(frozen=True)
class Pack:
    """A fixed-capacity pack of concatenated samples (pre-packing)."""

    lengths: tuple[int, ...]
    capacity: int

    @property
    def total_tokens(self) -> int:
        """Tokens in the pack (<= capacity)."""
        return sum(self.lengths)

    @property
    def sample_count(self) -> int:
        """Number of samples merged into this pack (variable!)."""
        return len(self.lengths)


def pad_batches(
    lengths: list[int], microbatch_size: int, preset_length: int | None = None
) -> list[PaddedBatch]:
    """Figure 2a: group consecutive samples and pad to a uniform length.

    Args:
        lengths: Sample lengths in training order.
        microbatch_size: Samples per microbatch.
        preset_length: Pad target; defaults to each batch's local maximum.
    """
    if microbatch_size <= 0:
        raise ReproError("microbatch_size must be positive")
    batches = []
    for i in range(0, len(lengths), microbatch_size):
        group = tuple(lengths[i : i + microbatch_size])
        target = preset_length if preset_length is not None else max(group)
        if any(l > target for l in group):
            raise ReproError(
                f"sample of length {max(group)} exceeds preset length {target}"
            )
        batches.append(PaddedBatch(lengths=group, padded_length=target))
    return batches


def prepack_dataset(lengths: list[int], capacity: int) -> list[Pack]:
    """Figure 2b: greedily concatenate the stream into fixed-size packs.

    Samples are taken in order; a pack closes when the next sample would
    overflow ``capacity``.  Sample counts per pack vary, which is the
    training-semantics drawback the paper notes.
    """
    if capacity <= 0:
        raise ReproError("capacity must be positive")
    packs: list[Pack] = []
    current: list[int] = []
    used = 0
    for length in lengths:
        if length > capacity:
            raise ReproError(f"sample length {length} exceeds capacity {capacity}")
        if used + length > capacity:
            packs.append(Pack(lengths=tuple(current), capacity=capacity))
            current, used = [], 0
        current.append(length)
        used += length
    if current:
        packs.append(Pack(lengths=tuple(current), capacity=capacity))
    return packs


def onthefly_microbatches(
    lengths: list[int], microbatch_size: int
) -> list[list[int]]:
    """Figure 2c: deterministic sample count, concatenated without padding.

    Returns the per-microbatch sample-length lists whose highly variable
    totals are plotted in Figure 6.
    """
    if microbatch_size <= 0:
        raise ReproError("microbatch_size must be positive")
    return [
        list(lengths[i : i + microbatch_size])
        for i in range(0, len(lengths), microbatch_size)
    ]


def padding_waste(batches: list[PaddedBatch]) -> float:
    """Fraction of computed tokens that are padding."""
    total = sum(b.total_tokens for b in batches)
    if total == 0:
        return 0.0
    return sum(b.wasted_tokens for b in batches) / total
