"""The three batching schemes of Figure 2 and their efficiency accounting.

* **Batch padding** (Figure 2a): every sample in a microbatch is padded to
  the longest (or a preset) length; wasted computation on pad tokens.
* **Dataset pre-packing** (Figure 2b): samples are concatenated into
  fixed-length packs ahead of time; no padding waste, but the number of
  samples per optimizer step becomes variable, perturbing training
  semantics.
* **On-the-fly packing** (Figure 2c): each batch keeps a deterministic
  sample count and concatenates its samples without padding; microbatch
  token counts become variable -- which is precisely the load-imbalance
  problem (Figure 6) the LoRAFusion scheduler solves.
* **Knapsack assembly** (length-aware streaming packing): samples are
  grouped by first-fit-decreasing over length buckets
  (:func:`greedy_knapsack`), so each knapsack's token total approaches
  capacity instead of tracking arrival order.  :class:`LengthHistogram`
  is the admission-side view of the same idea: a bucketed length census
  cheap enough to maintain per tenant as samples stream in.

The paper adopts on-the-fly packing throughout; the serve layer
(``docs/serving.md``, "Length-aware packing") builds its knapsack wave
assembly on the fourth scheme; the first two are provided for the
motivation benches and comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "LengthHistogram",
    "PaddedBatch",
    "Pack",
    "greedy_knapsack",
    "pad_batches",
    "prepack_dataset",
    "onthefly_microbatches",
    "padding_waste",
]


@dataclass(frozen=True)
class PaddedBatch:
    """A padded microbatch: real tokens plus padding to a uniform length."""

    lengths: tuple[int, ...]
    padded_length: int

    @property
    def real_tokens(self) -> int:
        """Tokens carrying gradient signal."""
        return sum(self.lengths)

    @property
    def total_tokens(self) -> int:
        """Tokens actually computed, padding included."""
        return self.padded_length * len(self.lengths)

    @property
    def wasted_tokens(self) -> int:
        """Pad tokens (computed but useless)."""
        return self.total_tokens - self.real_tokens


@dataclass(frozen=True)
class Pack:
    """A fixed-capacity pack of concatenated samples (pre-packing)."""

    lengths: tuple[int, ...]
    capacity: int

    @property
    def total_tokens(self) -> int:
        """Tokens in the pack (<= capacity)."""
        return sum(self.lengths)

    @property
    def sample_count(self) -> int:
        """Number of samples merged into this pack (variable!)."""
        return len(self.lengths)


def pad_batches(
    lengths: list[int], microbatch_size: int, preset_length: int | None = None
) -> list[PaddedBatch]:
    """Figure 2a: group consecutive samples and pad to a uniform length.

    Args:
        lengths: Sample lengths in training order.
        microbatch_size: Samples per microbatch.
        preset_length: Pad target; defaults to each batch's local maximum.
    """
    if microbatch_size <= 0:
        raise ReproError("microbatch_size must be positive")
    batches = []
    for i in range(0, len(lengths), microbatch_size):
        group = tuple(lengths[i : i + microbatch_size])
        target = preset_length if preset_length is not None else max(group)
        if any(l > target for l in group):
            raise ReproError(
                f"sample of length {max(group)} exceeds preset length {target}"
            )
        batches.append(PaddedBatch(lengths=group, padded_length=target))
    return batches


def prepack_dataset(lengths: list[int], capacity: int) -> list[Pack]:
    """Figure 2b: greedily concatenate the stream into fixed-size packs.

    Samples are taken in order; a pack closes when the next sample would
    overflow ``capacity``.  Sample counts per pack vary, which is the
    training-semantics drawback the paper notes.
    """
    if capacity <= 0:
        raise ReproError("capacity must be positive")
    packs: list[Pack] = []
    current: list[int] = []
    used = 0
    for length in lengths:
        if length > capacity:
            raise ReproError(f"sample length {length} exceeds capacity {capacity}")
        if used + length > capacity:
            packs.append(Pack(lengths=tuple(current), capacity=capacity))
            current, used = [], 0
        current.append(length)
        used += length
    if current:
        packs.append(Pack(lengths=tuple(current), capacity=capacity))
    return packs


def onthefly_microbatches(
    lengths: list[int], microbatch_size: int
) -> list[list[int]]:
    """Figure 2c: deterministic sample count, concatenated without padding.

    Returns the per-microbatch sample-length lists whose highly variable
    totals are plotted in Figure 6.
    """
    if microbatch_size <= 0:
        raise ReproError("microbatch_size must be positive")
    return [
        list(lengths[i : i + microbatch_size])
        for i in range(0, len(lengths), microbatch_size)
    ]


@dataclass(frozen=True)
class LengthHistogram:
    """A bucketed length census: the admission-side length profile.

    Counts samples per ``bucket_width``-sized length bucket (bucket ``i``
    covers lengths in ``(i * bucket_width, (i + 1) * bucket_width]``).
    Cheap to maintain as samples stream in and cheap to merge across
    tenants, which is all knapsack admission needs: the histogram of the
    co-resident set predicts how well length distributions interleave
    without keeping every raw length around.
    """

    bucket_width: int
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.bucket_width <= 0:
            raise ReproError(
                f"bucket_width must be positive, got {self.bucket_width}"
            )
        if any(c < 0 for c in self.counts):
            raise ReproError(f"negative bucket count in {self.counts}")

    @classmethod
    def from_lengths(
        cls, lengths: list[int], bucket_width: int
    ) -> "LengthHistogram":
        """Census ``lengths`` into ``bucket_width``-sized buckets."""
        if bucket_width <= 0:
            raise ReproError(f"bucket_width must be positive, got {bucket_width}")
        if any(l <= 0 for l in lengths):
            raise ReproError("sample lengths must be positive")
        if not lengths:
            return cls(bucket_width=bucket_width, counts=())
        buckets = [(l - 1) // bucket_width for l in lengths]
        counts = [0] * (max(buckets) + 1)
        for b in buckets:
            counts[b] += 1
        return cls(bucket_width=bucket_width, counts=tuple(counts))

    @property
    def num_samples(self) -> int:
        """Total samples censused."""
        return sum(self.counts)

    def merged(self, other: "LengthHistogram") -> "LengthHistogram":
        """The census of both sample sets (bucket widths must match)."""
        if other.bucket_width != self.bucket_width:
            raise ReproError(
                "cannot merge histograms with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}"
            )
        n = max(len(self.counts), len(other.counts))
        mine = self.counts + (0,) * (n - len(self.counts))
        theirs = other.counts + (0,) * (n - len(other.counts))
        return LengthHistogram(
            bucket_width=self.bucket_width,
            counts=tuple(m + t for m, t in zip(mine, theirs)),
        )


def greedy_knapsack(
    lengths: list[int], capacity: int, bucket_width: int = 1
) -> list[list[int]]:
    """Length-aware knapsack assembly: first-fit-decreasing over buckets.

    Samples are sorted by bucketed length descending (ties broken by true
    length descending, then original index ascending -- fully
    deterministic) and each is placed into the first open knapsack whose
    *true* remaining capacity fits it, opening a new knapsack when none
    does.  With ``bucket_width=1`` this is classic FFD; a coarser width
    makes same-bucket samples interchangeable so the sort matches the
    admission histogram's resolution.

    Returns:
        Knapsacks in creation order, each a list of indices into
        ``lengths`` in placement order (decreasing length).  Every index
        appears exactly once.
    """
    if capacity <= 0:
        raise ReproError(f"capacity must be positive, got {capacity}")
    if bucket_width <= 0:
        raise ReproError(f"bucket_width must be positive, got {bucket_width}")
    for length in lengths:
        if length <= 0:
            raise ReproError(f"sample length {length} must be positive")
        if length > capacity:
            raise ReproError(
                f"sample length {length} exceeds capacity {capacity}"
            )
    order = sorted(
        range(len(lengths)),
        key=lambda i: (-((lengths[i] - 1) // bucket_width), -lengths[i], i),
    )
    knapsacks: list[list[int]] = []
    remaining: list[int] = []
    for i in order:
        length = lengths[i]
        for k, room in enumerate(remaining):
            if length <= room:
                knapsacks[k].append(i)
                remaining[k] -= length
                break
        else:
            knapsacks.append([i])
            remaining.append(capacity - length)
    return knapsacks


def padding_waste(batches: list[PaddedBatch]) -> float:
    """Fraction of computed tokens that are padding."""
    total = sum(b.total_tokens for b in batches)
    if total == 0:
        return 0.0
    return sum(b.wasted_tokens for b in batches) / total
