"""Dataset substrate: length distributions, sample streams, packing, arrivals."""

from repro.data.arrivals import poisson_times, trace_times
from repro.data.dataset import FinetuneDataset, Sample, synthetic_dataset
from repro.data.distributions import (
    CNN_DAILYMAIL,
    MIXED,
    WIKISUM,
    XSUM,
    LengthDistribution,
    MixtureDistribution,
    get_distribution,
    list_distributions,
)
from repro.data.packing import (
    LengthHistogram,
    Pack,
    PaddedBatch,
    greedy_knapsack,
    onthefly_microbatches,
    pad_batches,
    padding_waste,
    prepack_dataset,
)

__all__ = [
    "CNN_DAILYMAIL",
    "FinetuneDataset",
    "LengthDistribution",
    "LengthHistogram",
    "MIXED",
    "MixtureDistribution",
    "Pack",
    "PaddedBatch",
    "Sample",
    "WIKISUM",
    "XSUM",
    "get_distribution",
    "greedy_knapsack",
    "list_distributions",
    "onthefly_microbatches",
    "pad_batches",
    "padding_waste",
    "poisson_times",
    "prepack_dataset",
    "synthetic_dataset",
    "trace_times",
]
