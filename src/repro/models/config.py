"""Model architecture configurations used by the paper's evaluation.

The end-to-end experiments fine-tune LLaMa-3.1-8B, Qwen-2.5-32B, and
LLaMa-3.1-70B.  Only architecture *shapes* matter for the performance model;
they are taken from the public model cards.  ``TINY`` is a numerically
trainable configuration used by the correctness/losslessness test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ModelConfig",
    "LLAMA3_8B",
    "QWEN25_32B",
    "LLAMA3_70B",
    "TINY",
    "get_model",
    "list_models",
]


@dataclass(frozen=True)
class ModelConfig:
    """Transformer decoder architecture description.

    Attributes:
        name: Human-readable model name.
        key: Registry key.
        hidden_size: Embedding width ``h``.
        intermediate_size: SwiGLU MLP width.
        num_layers: Number of decoder layers.
        num_heads: Query heads.
        num_kv_heads: Key/value heads (GQA).
        vocab_size: Vocabulary size (drives the LM-head cost).
    """

    name: str
    key: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total key/value projection width (GQA-aware)."""
        return self.num_kv_heads * self.head_dim

    def linear_shapes(self) -> dict[str, tuple[int, int]]:
        """The seven LoRA-adapted linear layers of one decoder layer.

        Returns a mapping from projection name to ``(k, n)`` weight shape.
        """
        h, kv, ffn = self.hidden_size, self.kv_dim, self.intermediate_size
        return {
            "q_proj": (h, h),
            "k_proj": (h, kv),
            "v_proj": (h, kv),
            "o_proj": (h, h),
            "gate_proj": (h, ffn),
            "up_proj": (h, ffn),
            "down_proj": (ffn, h),
        }

    def param_count(self) -> int:
        """Approximate parameter count (decoder layers + embeddings)."""
        per_layer = sum(k * n for k, n in self.linear_shapes().values())
        per_layer += 2 * self.hidden_size  # two RMSNorm gains
        embeddings = 2 * self.vocab_size * self.hidden_size
        return self.num_layers * per_layer + embeddings

    def model_state_bytes(self, lora_rank: int = 0) -> int:
        """Bytes of model states for LoRA fine-tuning (Section 2.1).

        Half-precision frozen weights (2 bytes/param) plus, per LoRA
        adapter parameter, 16 bytes (fp16 weight+grad, fp32 master weight
        and two Adam moments): the ``2nk + 32r(n+k)`` formula of the paper
        aggregated over all adapted linears.
        """
        frozen = 2 * self.param_count()
        if lora_rank == 0:
            return frozen
        lora_params = self.num_layers * sum(
            lora_rank * (k + n) for k, n in self.linear_shapes().values()
        )
        return frozen + 16 * lora_params


LLAMA3_8B = ModelConfig(
    name="LLaMa-3.1-8B",
    key="llama3-8b",
    hidden_size=4096,
    intermediate_size=14336,
    num_layers=32,
    num_heads=32,
    num_kv_heads=8,
    vocab_size=128256,
)

QWEN25_32B = ModelConfig(
    name="Qwen-2.5-32B",
    key="qwen25-32b",
    hidden_size=5120,
    intermediate_size=27648,
    num_layers=64,
    num_heads=40,
    num_kv_heads=8,
    vocab_size=152064,
)

LLAMA3_70B = ModelConfig(
    name="LLaMa-3.1-70B",
    key="llama3-70b",
    hidden_size=8192,
    intermediate_size=28672,
    num_layers=80,
    num_heads=64,
    num_kv_heads=8,
    vocab_size=128256,
)

TINY = ModelConfig(
    name="Tiny (numeric test model)",
    key="tiny",
    hidden_size=32,
    intermediate_size=64,
    num_layers=2,
    num_heads=4,
    num_kv_heads=4,
    vocab_size=101,
)

_REGISTRY = {m.key: m for m in (LLAMA3_8B, QWEN25_32B, LLAMA3_70B, TINY)}


def get_model(key: str) -> ModelConfig:
    """Look up a model config by registry key."""
    try:
        return _REGISTRY[key.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown model {key!r}; known: {sorted(_REGISTRY)}") from exc


def list_models() -> list[str]:
    """Registry keys of all known models."""
    return sorted(_REGISTRY)
