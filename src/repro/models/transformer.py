"""A numerically-exact numpy LoRA transformer for correctness experiments.

The paper claims its optimizations are *lossless*: fused kernels are
functionally identical to the baseline and the scheduler preserves each
adapter's gradient-update sequence.  The performance model cannot test that;
this module can.  It is a small decoder-only transformer (RMSNorm, rotary
causal attention, SwiGLU) with LoRA adapters on all seven projections,
implemented with explicit forward/backward passes in numpy, using the
FusedMultiLoRA kernels of :mod:`repro.core.multi` for every linear layer.

Samples from different adapters are packed into one sequence dimension with
block-diagonal causal attention (on-the-fly packing, Figure 2c), exactly as
the real system trains mixed-adapter microbatches.  Training it jointly on
multiple adapters must reproduce, bit-comparably, the updates of training
each adapter alone -- which the losslessness tests verify.

Base weights (embeddings, projections, norms, head) are frozen; only the
LoRA ``A``/``B`` matrices receive gradients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lora import LoRAConfig, LoRAWeights
from repro.core.multi import (
    MultiLoRABatch,
    MultiLoRAContext,
    Segment,
    fused_multi_lora_backward,
    fused_multi_lora_forward,
)
from repro.errors import KernelConfigError
from repro.models.config import ModelConfig

__all__ = ["PackedBatch", "TinyLoRATransformer", "softmax_cross_entropy"]

PROJECTIONS = ("q_proj", "k_proj", "v_proj", "o_proj",
               "gate_proj", "up_proj", "down_proj")

_NORM_EPS = 1e-6


@dataclass
class PackedBatch:
    """A packed microbatch of samples from (possibly) multiple adapters.

    Attributes:
        token_ids: Concatenated token ids, shape ``(M,)``.
        lengths: Per-sample lengths (attention is block-diagonal over them).
        adapter_ids: Owning adapter of each sample.
        weights: Per-sample loss weights (e.g. ``1 / adapter_batch_tokens``).
    """

    token_ids: np.ndarray
    lengths: list[int]
    adapter_ids: list[int]
    weights: list[float]

    def __post_init__(self) -> None:
        if not (len(self.lengths) == len(self.adapter_ids) == len(self.weights)):
            raise KernelConfigError("per-sample metadata lengths disagree")
        if sum(self.lengths) != len(self.token_ids):
            raise KernelConfigError("lengths do not cover token_ids")

    @staticmethod
    def from_samples(
        samples: list[tuple[int, np.ndarray]],
        weights: list[float] | None = None,
    ) -> "PackedBatch":
        """Pack ``(adapter_id, token_ids)`` samples into one batch."""
        if not samples:
            raise KernelConfigError("cannot pack an empty sample list")
        if weights is None:
            weights = [1.0] * len(samples)
        token_ids = np.concatenate([tokens for _, tokens in samples])
        return PackedBatch(
            token_ids=token_ids,
            lengths=[len(tokens) for _, tokens in samples],
            adapter_ids=[adapter_id for adapter_id, _ in samples],
            weights=list(weights),
        )

    def segments(self) -> list[Segment]:
        """Adapter segments in layout order (``block_m=1`` alignment)."""
        return [
            Segment(adapter_id, length)
            for adapter_id, length in zip(self.adapter_ids, self.lengths)
        ]

    def sample_slices(self) -> list[slice]:
        """Row range of each sample in the packed dimension."""
        slices, offset = [], 0
        for length in self.lengths:
            slices.append(slice(offset, offset + length))
            offset += length
        return slices

    @property
    def total_tokens(self) -> int:
        """Packed sequence length ``M``."""
        return int(sum(self.lengths))


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray, weights: np.ndarray
) -> tuple[float, np.ndarray]:
    """Weighted next-token cross entropy and its logits gradient.

    Args:
        logits: ``(T, vocab)`` prediction logits.
        targets: ``(T,)`` integer labels.
        weights: ``(T,)`` per-position loss weights.

    Returns:
        ``(loss, dlogits)`` where ``loss = sum_i w_i * nll_i``.
    """
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    nll = -np.log(probs[np.arange(len(targets)), targets] + 1e-300)
    loss = float(np.sum(weights * nll))
    dlogits = probs * weights[:, None]
    dlogits[np.arange(len(targets)), targets] -= weights
    return loss, dlogits


def _silu(z: np.ndarray) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-z))
    return z * sig


def _silu_grad(z: np.ndarray) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-z))
    return sig * (1.0 + z * (1.0 - sig))


def _rms_forward(x: np.ndarray, gain: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    inv = 1.0 / np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + _NORM_EPS)
    return x * inv * gain, inv


def _rms_backward(
    dy: np.ndarray, x: np.ndarray, inv: np.ndarray, gain: np.ndarray
) -> np.ndarray:
    h = x.shape[-1]
    dyg = dy * gain
    dot = np.sum(dyg * x, axis=-1, keepdims=True)
    return dyg * inv - x * (inv**3) * dot / h


def _rope_angles(length: int, head_dim: int) -> tuple[np.ndarray, np.ndarray]:
    half = head_dim // 2
    freqs = 1.0 / (10000.0 ** (np.arange(half) / half))
    angles = np.outer(np.arange(length), freqs)
    return np.cos(angles), np.sin(angles)


def _rope_apply(x: np.ndarray, cos: np.ndarray, sin: np.ndarray,
                inverse: bool = False) -> np.ndarray:
    """Rotate pairs of channels; ``inverse=True`` applies the transpose."""
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    if inverse:
        sin = -sin
    return np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)


@dataclass
class _LayerCache:
    """Saved intermediates of one decoder layer forward pass."""

    x_in: np.ndarray
    norm1_inv: np.ndarray
    a_in: np.ndarray
    lin_ctx: dict[str, MultiLoRAContext]
    q_rot: np.ndarray
    k_rot: np.ndarray
    v: np.ndarray
    attn_probs: list[np.ndarray]
    attn_out: np.ndarray
    h_mid: np.ndarray
    norm2_inv: np.ndarray
    m_in: np.ndarray
    gate: np.ndarray
    up: np.ndarray
    act: np.ndarray


class TinyLoRATransformer:
    """Decoder-only transformer with multi-LoRA adapters, numpy end-to-end.

    Args:
        config: Architecture (use :data:`repro.models.config.TINY`).
        rng: Generator used to initialise frozen weights and adapters.
        dtype: Numpy dtype for all tensors (float64 for exact tests).
    """

    def __init__(
        self,
        config: ModelConfig,
        rng: np.random.Generator | None = None,
        dtype: np.dtype = np.float64,
    ) -> None:
        if config.num_kv_heads != config.num_heads:
            raise KernelConfigError(
                "the numeric model implements MHA; use num_kv_heads == num_heads"
            )
        self.config = config
        self.dtype = dtype
        rng = rng if rng is not None else np.random.default_rng(0)
        h, v = config.hidden_size, config.vocab_size

        def init(shape, scale):
            return (rng.standard_normal(shape) * scale).astype(dtype)

        self.embed = init((v, h), 0.5)
        self.lm_head = init((h, v), 1.0 / np.sqrt(h))
        self.final_gain = np.ones(h, dtype=dtype)
        self.layers: list[dict[str, np.ndarray]] = []
        for _ in range(config.num_layers):
            weights = {"norm1": np.ones(h, dtype=dtype),
                       "norm2": np.ones(h, dtype=dtype)}
            for name, (k, n) in config.linear_shapes().items():
                weights[name] = init((k, n), 1.0 / np.sqrt(k))
            self.layers.append(weights)
        # adapters[adapter_id][(layer, projection)] -> LoRAWeights
        self.adapters: dict[int, dict[tuple[int, str], LoRAWeights]] = {}
        self._caches: list[_LayerCache] | None = None
        self._final: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._batch: PackedBatch | None = None

    # -- adapters -----------------------------------------------------------

    def add_adapter(
        self, cfg: LoRAConfig, rng: np.random.Generator | None = None
    ) -> None:
        """Attach a fresh adapter (Kaiming ``A``, zero ``B``) to every linear."""
        if cfg.adapter_id in self.adapters:
            raise KernelConfigError(f"adapter {cfg.adapter_id} already exists")
        rng = rng if rng is not None else np.random.default_rng(cfg.adapter_id + 1)
        params: dict[tuple[int, str], LoRAWeights] = {}
        for layer in range(self.config.num_layers):
            for name, (k, n) in self.config.linear_shapes().items():
                a = (rng.standard_normal((k, cfg.rank)) / np.sqrt(k)).astype(self.dtype)
                b = np.zeros((cfg.rank, n), dtype=self.dtype)
                params[(layer, name)] = LoRAWeights(a=a, b=b, config=cfg)
        self.adapters[cfg.adapter_id] = params

    def adapter_state(self, adapter_id: int) -> dict[tuple[int, str], LoRAWeights]:
        """The adapter's parameter mapping (mutated in place by optimizers)."""
        return self.adapters[adapter_id]

    def _proj_adapters(self, layer: int, name: str) -> dict[int, LoRAWeights]:
        return {
            adapter_id: params[(layer, name)]
            for adapter_id, params in self.adapters.items()
        }

    def _linear(
        self,
        layer: int,
        name: str,
        x: np.ndarray,
        batch: MultiLoRABatch,
        cache: dict[str, MultiLoRAContext],
    ) -> np.ndarray:
        y, ctx = fused_multi_lora_forward(
            x, self.layers[layer][name], self._proj_adapters(layer, name), batch
        )
        cache[name] = ctx
        return y

    def _linear_backward(
        self,
        layer: int,
        name: str,
        dy: np.ndarray,
        cache: dict[str, MultiLoRAContext],
        grads: dict[int, dict[tuple[int, str], dict[str, np.ndarray]]],
    ) -> np.ndarray:
        out = fused_multi_lora_backward(
            dy, self.layers[layer][name], self._proj_adapters(layer, name),
            cache[name],
        )
        for adapter_id, da in out.da.items():
            grads[adapter_id][(layer, name)]["a"] += da
        for adapter_id, db in out.db.items():
            grads[adapter_id][(layer, name)]["b"] += db
        return out.dx

    # -- attention ----------------------------------------------------------

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        m = x.shape[0]
        heads, dim = self.config.num_heads, self.config.head_dim
        return x.reshape(m, heads, dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        heads, m, dim = x.shape
        return x.transpose(1, 0, 2).reshape(m, heads * dim)

    def _attention_forward(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray, batch: PackedBatch
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Block-diagonal causal attention over packed samples."""
        scale = 1.0 / np.sqrt(self.config.head_dim)
        out = np.zeros_like(q)
        probs: list[np.ndarray] = []
        for sl in batch.sample_slices():
            qh = self._split_heads(q[sl])
            kh = self._split_heads(k[sl])
            vh = self._split_heads(v[sl])
            scores = qh @ kh.transpose(0, 2, 1) * scale
            length = qh.shape[1]
            causal = np.triu(np.ones((length, length), dtype=bool), k=1)
            scores = np.where(causal, -np.inf, scores)
            scores -= scores.max(axis=-1, keepdims=True)
            exp = np.exp(scores)
            p = exp / exp.sum(axis=-1, keepdims=True)
            out[sl] = self._merge_heads(p @ vh)
            probs.append(p)
        return out, probs

    def _attention_backward(
        self,
        dout: np.ndarray,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        probs: list[np.ndarray],
        batch: PackedBatch,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scale = 1.0 / np.sqrt(self.config.head_dim)
        dq, dk, dv = np.zeros_like(q), np.zeros_like(k), np.zeros_like(v)
        for p, sl in zip(probs, batch.sample_slices()):
            qh = self._split_heads(q[sl])
            kh = self._split_heads(k[sl])
            vh = self._split_heads(v[sl])
            do = self._split_heads(dout[sl])
            dv_h = p.transpose(0, 2, 1) @ do
            dp = do @ vh.transpose(0, 2, 1)
            dscores = p * (dp - np.sum(dp * p, axis=-1, keepdims=True))
            dq[sl] = self._merge_heads(dscores @ kh * scale)
            dk[sl] = self._merge_heads(dscores.transpose(0, 2, 1) @ qh * scale)
            dv[sl] = self._merge_heads(dv_h)
        return dq, dk, dv

    def _rope_tables(self, batch: PackedBatch) -> tuple[np.ndarray, np.ndarray]:
        """Per-token cos/sin with positions restarting at each sample."""
        cos_rows, sin_rows = [], []
        for length in batch.lengths:
            cos, sin = _rope_angles(length, self.config.head_dim)
            cos_rows.append(cos)
            sin_rows.append(sin)
        return np.concatenate(cos_rows), np.concatenate(sin_rows)

    def _rope(self, x: np.ndarray, cos: np.ndarray, sin: np.ndarray,
              inverse: bool = False) -> np.ndarray:
        heads = self.config.num_heads
        m = x.shape[0]
        per_head = x.reshape(m, heads, self.config.head_dim)
        rotated = _rope_apply(per_head, cos[:, None, :], sin[:, None, :],
                              inverse=inverse)
        return rotated.reshape(m, heads * self.config.head_dim)

    # -- full passes ----------------------------------------------------------

    def forward(self, batch: PackedBatch) -> np.ndarray:
        """Forward pass over a packed batch; returns ``(M, vocab)`` logits."""
        for adapter_id in set(batch.adapter_ids):
            if adapter_id not in self.adapters:
                raise KernelConfigError(f"unknown adapter {adapter_id}")
        multi_batch = MultiLoRABatch(batch.segments(), block_m=1)
        cos, sin = self._rope_tables(batch)
        x = self.embed[batch.token_ids]
        caches: list[_LayerCache] = []
        for layer in range(self.config.num_layers):
            weights = self.layers[layer]
            a_in, inv1 = _rms_forward(x, weights["norm1"])
            ctxs: dict[str, MultiLoRAContext] = {}
            q = self._linear(layer, "q_proj", a_in, multi_batch, ctxs)
            k = self._linear(layer, "k_proj", a_in, multi_batch, ctxs)
            v = self._linear(layer, "v_proj", a_in, multi_batch, ctxs)
            q_rot = self._rope(q, cos, sin)
            k_rot = self._rope(k, cos, sin)
            attn, probs = self._attention_forward(q_rot, k_rot, v, batch)
            o = self._linear(layer, "o_proj", attn, multi_batch, ctxs)
            h_mid = x + o
            m_in, inv2 = _rms_forward(h_mid, weights["norm2"])
            gate = self._linear(layer, "gate_proj", m_in, multi_batch, ctxs)
            up = self._linear(layer, "up_proj", m_in, multi_batch, ctxs)
            act = _silu(gate) * up
            down = self._linear(layer, "down_proj", act, multi_batch, ctxs)
            x_out = h_mid + down
            caches.append(
                _LayerCache(
                    x_in=x, norm1_inv=inv1, a_in=a_in, lin_ctx=ctxs,
                    q_rot=q_rot, k_rot=k_rot, v=v, attn_probs=probs,
                    attn_out=attn, h_mid=h_mid, norm2_inv=inv2, m_in=m_in,
                    gate=gate, up=up, act=act,
                )
            )
            x = x_out
        hf, inv_f = _rms_forward(x, self.final_gain)
        logits = hf @ self.lm_head
        self._caches = caches
        self._final = (x, inv_f, hf)
        self._batch = batch
        return logits

    def backward(
        self, dlogits: np.ndarray
    ) -> dict[int, dict[tuple[int, str], dict[str, np.ndarray]]]:
        """Backward pass; returns per-adapter gradients for ``A``/``B``."""
        if self._caches is None or self._final is None or self._batch is None:
            raise KernelConfigError("backward called before forward")
        batch = self._batch
        multi_batch = MultiLoRABatch(batch.segments(), block_m=1)
        cos, sin = self._rope_tables(batch)
        grads: dict[int, dict[tuple[int, str], dict[str, np.ndarray]]] = {
            adapter_id: {
                key: {"a": np.zeros_like(weights.a), "b": np.zeros_like(weights.b)}
                for key, weights in params.items()
            }
            for adapter_id, params in self.adapters.items()
        }
        x_last, inv_f, hf = self._final
        dhf = dlogits @ self.lm_head.T
        dx = _rms_backward(dhf, x_last, inv_f, self.final_gain)
        for layer in reversed(range(self.config.num_layers)):
            cache = self._caches[layer]
            weights = self.layers[layer]
            ctxs = cache.lin_ctx
            # MLP block.
            ddown_in = self._linear_backward(layer, "down_proj", dx, ctxs, grads)
            dgate = ddown_in * cache.up * _silu_grad(cache.gate)
            dup = ddown_in * _silu(cache.gate)
            dm_in = self._linear_backward(layer, "gate_proj", dgate, ctxs, grads)
            dm_in += self._linear_backward(layer, "up_proj", dup, ctxs, grads)
            dh_mid = dx + _rms_backward(dm_in, cache.h_mid, cache.norm2_inv,
                                        weights["norm2"])
            # Attention block.
            dattn = self._linear_backward(layer, "o_proj", dh_mid, ctxs, grads)
            dq_rot, dk_rot, dv = self._attention_backward(
                dattn, cache.q_rot, cache.k_rot, cache.v, cache.attn_probs, batch
            )
            dq = self._rope(dq_rot, cos, sin, inverse=True)
            dk = self._rope(dk_rot, cos, sin, inverse=True)
            da_in = self._linear_backward(layer, "q_proj", dq, ctxs, grads)
            da_in += self._linear_backward(layer, "k_proj", dk, ctxs, grads)
            da_in += self._linear_backward(layer, "v_proj", dv, ctxs, grads)
            dx = dh_mid + _rms_backward(da_in, cache.x_in, cache.norm1_inv,
                                        weights["norm1"])
        self._caches = None
        self._final = None
        self._batch = None
        return grads

    def loss_and_grads(
        self, batch: PackedBatch
    ) -> tuple[
        float,
        list[float],
        dict[int, dict[tuple[int, str], dict[str, np.ndarray]]],
    ]:
        """Next-token loss over the batch plus per-adapter gradients.

        Each sample predicts its own tokens only (targets never cross sample
        boundaries); position ``t`` predicts token ``t+1`` weighted by the
        sample's loss weight.

        Returns:
            ``(total_loss, per_sample_losses, grads)``.
        """
        logits = self.forward(batch)
        dlogits = np.zeros_like(logits)
        total_loss = 0.0
        per_sample: list[float] = []
        for sl, weight in zip(batch.sample_slices(), batch.weights):
            sample_logits = logits[sl][:-1]
            targets = batch.token_ids[sl][1:]
            if len(targets) == 0:
                per_sample.append(0.0)
                continue
            w = np.full(len(targets), weight)
            loss, dl = softmax_cross_entropy(sample_logits, targets, w)
            total_loss += loss
            per_sample.append(loss)
            dlogits[sl.start : sl.stop - 1] = dl
        grads = self.backward(dlogits)
        return total_loss, per_sample, grads
