"""Model substrate: architecture configs, layer cost model, numeric model."""

from repro.models.config import (
    LLAMA3_8B,
    LLAMA3_70B,
    QWEN25_32B,
    TINY,
    ModelConfig,
    get_model,
    list_models,
)
from repro.models.layer_costs import LayerCostModel, MicrobatchShape
from repro.models.transformer import (
    PackedBatch,
    TinyLoRATransformer,
    softmax_cross_entropy,
)

__all__ = [
    "LLAMA3_70B",
    "LLAMA3_8B",
    "LayerCostModel",
    "MicrobatchShape",
    "ModelConfig",
    "PackedBatch",
    "QWEN25_32B",
    "TINY",
    "TinyLoRATransformer",
    "get_model",
    "list_models",
    "softmax_cross_entropy",
]
