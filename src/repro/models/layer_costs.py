"""Per-decoder-layer cost model: from architecture to microbatch runtimes.

The end-to-end experiments (Figures 5, 7, 14-16, 20-22) need the time one
pipeline stage spends on one microbatch.  This module assembles that from
kernel profiles: the seven LoRA-adapted linears per decoder layer (priced by
:mod:`repro.core.traffic` under the chosen kernel strategy) plus the
non-linear layer machinery -- flash attention, RMSNorm, rotary embedding,
residual adds -- and the embedding / LM-head / loss work of the first and
last pipeline stages.

Attention cost is quadratic in per-sample sequence length, so microbatch
descriptors carry both the total token count and the sum of squared sample
lengths (on-the-fly packing uses block-diagonal attention, Figure 2c).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.traffic import LoRAShape, lora_profiles
from repro.gpu.roofline import KernelProfile, estimate_kernel_time
from repro.gpu.specs import BYTES_PER_ELEMENT, GPUSpec
from repro.models.config import ModelConfig

__all__ = ["MicrobatchShape", "LayerCostModel"]

#: Backward FLOP multiplier for flash attention (recomputes the forward).
ATTENTION_BACKWARD_FACTOR = 2.5


@dataclass(frozen=True)
class MicrobatchShape:
    """Workload description of one microbatch on one pipeline stage.

    Attributes:
        tokens: Total number of tokens (padded, as scheduled).
        sum_sq_len: Sum of squared per-sample lengths; drives the quadratic
            attention term.  A single 8K sample costs far more attention
            time than 8K tokens split over 16 samples.
        num_adapters: Distinct adapters present (selects the multi kernel).
    """

    tokens: int
    sum_sq_len: float
    num_adapters: int = 1

    @staticmethod
    def from_lengths(lengths: list[int], num_adapters: int = 1) -> "MicrobatchShape":
        """Build a shape from per-sample token lengths."""
        return MicrobatchShape(
            tokens=sum(lengths),
            sum_sq_len=float(sum(l * l for l in lengths)),
            num_adapters=num_adapters,
        )


class LayerCostModel:
    """Prices decoder-layer, embedding, and head work on a given GPU.

    Args:
        model: Architecture shapes.
        gpu: Device the work runs on.
        strategy: Kernel strategy for the LoRA linears (``"frozen"``,
            ``"torch"``, ``"fused"``, ``"fused_multi"``).
        lora_rank: Adapter rank ``r``.
        dropout: Whether adapters apply dropout.
        dtype: Storage dtype.
    """

    def __init__(
        self,
        model: ModelConfig,
        gpu: GPUSpec,
        strategy: str = "torch",
        lora_rank: int = 16,
        dropout: bool = True,
        dtype: str = "bf16",
    ) -> None:
        self.model = model
        self.gpu = gpu
        self.strategy = strategy
        self.lora_rank = lora_rank
        self.dropout = dropout
        self.dtype = dtype
        self._elem = BYTES_PER_ELEMENT[dtype]
        # Memoised on the (tokens, sum_sq, adapters, direction) tuple: the
        # simulators evaluate thousands of microbatches from a small set of
        # distinct shapes.
        self._layer_time_cached = lru_cache(maxsize=4096)(self._layer_time)

    # -- profile builders ---------------------------------------------------

    def linear_profiles(
        self, tokens: int, direction: str, num_adapters: int = 1
    ) -> list[KernelProfile]:
        """Profiles of the seven LoRA-adapted linears for one layer pass."""
        profiles: list[KernelProfile] = []
        strategy = self.strategy
        if strategy == "fused_multi" and num_adapters <= 1:
            strategy = "fused"  # the runtime's automatic fallback
        for k, n in self.model.linear_shapes().values():
            shape = LoRAShape(
                m=tokens,
                k=k,
                n=n,
                r=self.lora_rank,
                dtype=self.dtype,
                dropout=self.dropout and strategy != "frozen",
                num_adapters=max(1, num_adapters),
            )
            profiles.extend(lora_profiles(strategy, direction, shape))
        return profiles

    def attention_profile(
        self, tokens: int, sum_sq_len: float, direction: str
    ) -> KernelProfile:
        """Flash-attention cost with block-diagonal (packed) masking."""
        h = self.model.hidden_size
        kv_ratio = self.model.num_kv_heads / self.model.num_heads
        # Causal: half of the score matrix; two GEMMs (QK^T and PV).
        flops = 2.0 * sum_sq_len * h * (1.0 + 1.0)/2.0
        if direction == "backward":
            flops *= ATTENTION_BACKWARD_FACTOR
        qkv_bytes = tokens * (h + 2 * h * kv_ratio) * self._elem
        out_bytes = tokens * h * self._elem
        return KernelProfile(
            name=f"flash_attention_{direction[:3]}",
            flops=flops,
            bytes_read=qkv_bytes + (out_bytes if direction == "backward" else 0),
            bytes_written=out_bytes if direction == "forward" else qkv_bytes,
            uses_tensor_cores=True,
            category="attention",
        )

    def elementwise_profiles(self, tokens: int, direction: str) -> list[KernelProfile]:
        """RMSNorm (x2), rotary embedding, and residual adds for one layer."""
        h = self.model.hidden_size
        e = self._elem
        th = tokens * h * e
        rot = tokens * (self.model.hidden_size + self.model.kv_dim) * e
        profiles = [
            KernelProfile(f"rmsnorm_{direction[:3]}", flops=4.0 * tokens * h,
                          bytes_read=th, bytes_written=th,
                          uses_tensor_cores=False, category="elementwise"),
            KernelProfile(f"rmsnorm2_{direction[:3]}", flops=4.0 * tokens * h,
                          bytes_read=th, bytes_written=th,
                          uses_tensor_cores=False, category="elementwise"),
            KernelProfile(f"rotary_{direction[:3]}", flops=3.0 * tokens * h,
                          bytes_read=rot, bytes_written=rot,
                          uses_tensor_cores=False, category="elementwise"),
            KernelProfile(f"residual_{direction[:3]}", flops=2.0 * tokens * h,
                          bytes_read=2 * th, bytes_written=th,
                          uses_tensor_cores=False, category="elementwise"),
        ]
        return profiles

    def layer_profiles(
        self, shape: MicrobatchShape, direction: str
    ) -> list[KernelProfile]:
        """All kernel profiles of one decoder layer pass."""
        profiles = self.linear_profiles(shape.tokens, direction, shape.num_adapters)
        profiles.append(
            self.attention_profile(shape.tokens, shape.sum_sq_len, direction)
        )
        profiles.extend(self.elementwise_profiles(shape.tokens, direction))
        return profiles

    # -- timing -------------------------------------------------------------

    def _layer_time(
        self, tokens: int, sum_sq_len: float, num_adapters: int, direction: str
    ) -> float:
        shape = MicrobatchShape(tokens, sum_sq_len, num_adapters)
        return sum(
            estimate_kernel_time(p, self.gpu, self.dtype)
            for p in self.layer_profiles(shape, direction)
        )

    def layer_time(self, shape: MicrobatchShape, direction: str) -> float:
        """Seconds one decoder layer spends on ``shape`` in ``direction``."""
        return self._layer_time_cached(
            shape.tokens, shape.sum_sq_len, shape.num_adapters, direction
        )

    def embedding_time(self, tokens: int) -> float:
        """Embedding lookup cost (first pipeline stage)."""
        profile = KernelProfile(
            "embedding",
            flops=0.0,
            bytes_read=tokens * self.model.hidden_size * self._elem,
            bytes_written=tokens * self.model.hidden_size * self._elem,
            uses_tensor_cores=False,
            category="elementwise",
        )
        return estimate_kernel_time(profile, self.gpu, self.dtype)

    def head_time(self, tokens: int, direction: str) -> float:
        """LM head GEMM plus softmax cross-entropy (last pipeline stage)."""
        h, v = self.model.hidden_size, self.model.vocab_size
        e = self._elem
        gemm = KernelProfile(
            f"lm_head_{direction[:3]}",
            flops=2.0 * tokens * h * v * (2.0 if direction == "backward" else 1.0),
            bytes_read=(tokens * h + h * v) * e,
            bytes_written=tokens * v * e,
            uses_tensor_cores=True,
            category="base_gemm",
        )
        loss = KernelProfile(
            f"cross_entropy_{direction[:3]}",
            flops=5.0 * tokens * v,
            bytes_read=tokens * v * e,
            bytes_written=tokens * v * e if direction == "backward" else tokens * e,
            uses_tensor_cores=False,
            category="elementwise",
        )
        return estimate_kernel_time(gemm, self.gpu, self.dtype) + estimate_kernel_time(
            loss, self.gpu, self.dtype
        )

    def stage_time(
        self,
        shape: MicrobatchShape,
        direction: str,
        num_layers: float,
        first_stage: bool = False,
        last_stage: bool = False,
    ) -> float:
        """Seconds one pipeline stage spends on one microbatch pass.

        Args:
            shape: Microbatch workload.
            direction: ``"forward"`` or ``"backward"``.
            num_layers: Decoder layers hosted by this stage.
            first_stage: Whether the stage owns the embedding.
            last_stage: Whether the stage owns the LM head and loss.
        """
        if shape.tokens == 0:
            return 0.0
        total = num_layers * self.layer_time(shape, direction)
        if first_stage and direction == "forward":
            total += self.embedding_time(shape.tokens)
        if last_stage:
            total += self.head_time(shape.tokens, direction)
        return total

    def optimizer_step_time(self) -> float:
        """Adapter-only AdamW step cost: negligible but non-zero."""
        lora_params = self.model.num_layers * sum(
            self.lora_rank * (k + n)
            for k, n in self.model.linear_shapes().values()
        )
        profile = KernelProfile(
            "adamw_step",
            flops=12.0 * lora_params,
            bytes_read=16.0 * lora_params,
            bytes_written=12.0 * lora_params,
            uses_tensor_cores=False,
            category="optimizer",
        )
        return estimate_kernel_time(profile, self.gpu, self.dtype)
