"""Adapter grouping with head-tail pairing (Section 5.2).

Grouping serves two purposes.  First, *correctness scheduling room*: batches
of the same adapter must be spaced apart so the bubble lemma holds; putting
adapters into groups whose batches interleave creates that spacing
naturally.  Second, *load balance*: pairing a short-sequence adapter with a
long-sequence one gives the bin packer a mix of large and small items,
which packs far better than all-large or all-small.

The paper's heuristic: sort adapters by mean sample length, then repeatedly
pair the shortest remaining ("head") with the longest remaining ("tail").
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.scheduler.types import AdapterJob

__all__ = ["head_tail_groups"]


def head_tail_groups(
    jobs: list[AdapterJob], group_size: int = 2
) -> list[list[AdapterJob]]:
    """Partition jobs into groups by head-tail pairing.

    Args:
        jobs: The fine-tuning jobs to co-schedule.
        group_size: Adapters per group.  With the default of 2 and four
            adapters this produces the paper's two-group layout; sizes that
            do not divide evenly leave one smaller group.

    Returns:
        Groups ordered by schedule position.  Within a group, adapters are
        ordered short-first.
    """
    if not jobs:
        raise ScheduleError("head_tail_groups requires at least one job")
    if group_size <= 0:
        raise ScheduleError(f"group_size must be positive, got {group_size}")
    ids = [job.adapter_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ScheduleError(f"duplicate adapter ids in jobs: {ids}")

    by_length = sorted(jobs, key=lambda job: (job.mean_length(), job.adapter_id))
    groups: list[list[AdapterJob]] = []
    lo, hi = 0, len(by_length) - 1
    while lo <= hi:
        group: list[AdapterJob] = []
        # Alternate head (short) and tail (long) picks until the group is
        # full or the pool is exhausted.
        take_head = True
        while len(group) < group_size and lo <= hi:
            if take_head:
                group.append(by_length[lo])
                lo += 1
            else:
                group.append(by_length[hi])
                hi -= 1
            take_head = not take_head
        group.sort(key=lambda job: (job.mean_length(), job.adapter_id))
        groups.append(group)
    return groups
