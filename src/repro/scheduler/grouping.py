"""Adapter grouping with head-tail pairing (Section 5.2).

Grouping serves two purposes.  First, *correctness scheduling room*: batches
of the same adapter must be spaced apart so the bubble lemma holds; putting
adapters into groups whose batches interleave creates that spacing
naturally.  Second, *load balance*: pairing a short-sequence adapter with a
long-sequence one gives the bin packer a mix of large and small items,
which packs far better than all-large or all-small.

The paper's heuristic: sort adapters by mean sample length, then repeatedly
pair the shortest remaining ("head") with the longest remaining ("tail").

Two length-aware alternatives live alongside it.  :func:`knapsack_groups`
sizes groups by *token mass* instead of member count: each job is weighed
by its padded per-step tokens and jobs are binned by first-fit-decreasing
(:func:`repro.data.packing.greedy_knapsack`) so a group's combined
per-step mass fills microbatch capacity tightly -- the grouping analogue
of knapsack sequence packing.  :class:`StickyGrouper` makes either layout
stable across planning waves: as long as the live set's membership is
unchanged, the cached layout is reused, so the merge pass sees the same
adjacencies wave after wave and its discount becomes predictable.
"""

from __future__ import annotations

import math

from repro.data.packing import greedy_knapsack
from repro.errors import ScheduleError
from repro.scheduler.types import AdapterJob

__all__ = ["StickyGrouper", "head_tail_groups", "knapsack_groups"]


def head_tail_groups(
    jobs: list[AdapterJob], group_size: int = 2
) -> list[list[AdapterJob]]:
    """Partition jobs into groups by head-tail pairing.

    Args:
        jobs: The fine-tuning jobs to co-schedule.
        group_size: Adapters per group.  With the default of 2 and four
            adapters this produces the paper's two-group layout; sizes that
            do not divide evenly leave one smaller group.  A size larger
            than the live set is clamped to it (one group holding every
            job) rather than rejected: callers legitimately pass a fleet
            default while the live set shrinks to a single job.

    Returns:
        Groups ordered by schedule position.  Within a group, adapters are
        ordered short-first.
    """
    if not jobs:
        raise ScheduleError("head_tail_groups requires at least one job")
    if group_size <= 0:
        raise ScheduleError(f"group_size must be positive, got {group_size}")
    group_size = min(group_size, len(jobs))
    ids = [job.adapter_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ScheduleError(f"duplicate adapter ids in jobs: {ids}")

    by_length = sorted(jobs, key=lambda job: (job.mean_length(), job.adapter_id))
    groups: list[list[AdapterJob]] = []
    lo, hi = 0, len(by_length) - 1
    while lo <= hi:
        group: list[AdapterJob] = []
        # Alternate head (short) and tail (long) picks until the group is
        # full or the pool is exhausted.
        take_head = True
        while len(group) < group_size and lo <= hi:
            if take_head:
                group.append(by_length[lo])
                lo += 1
            else:
                group.append(by_length[hi])
                hi -= 1
            take_head = not take_head
        group.sort(key=lambda job: (job.mean_length(), job.adapter_id))
        groups.append(group)
    return groups


def _step_mass(job: AdapterJob, capacity: int, padding_multiple: int) -> int:
    """A job's padded per-optimizer-step token mass, clamped to capacity.

    The knapsack item weight: one global batch's tokens, padded up to the
    tile granule ``P`` the same way :class:`~repro.scheduler.types.Microbatch`
    pads them.  Clamping to ``capacity`` keeps a single heavy job packable
    (it simply fills its bins alone, as it would anyway).
    """
    per_step = job.mean_length() * min(job.global_batch_size, len(job.dataset))
    padded = math.ceil(per_step / padding_multiple) * padding_multiple
    return max(padding_multiple, min(padded, capacity))


def knapsack_groups(
    jobs: list[AdapterJob], capacity: int, padding_multiple: int = 64
) -> list[list[AdapterJob]]:
    """Partition jobs into groups by token-mass knapsack packing.

    Where :func:`head_tail_groups` pairs by length *contrast* at a fixed
    member count, this weighs each job by its padded per-step token mass
    (:func:`_step_mass`) and bins jobs first-fit-decreasing against
    microbatch ``capacity`` -- so a group's combined per-step mass fills
    whole microbatches tightly and the bin packer downstream sees items
    that sum near capacity multiples instead of scattering.

    Args:
        jobs: The fine-tuning jobs to co-schedule (unique adapter ids).
        capacity: Microbatch token capacity (the knapsack size).
        padding_multiple: The tile granule ``P`` used to pad each mass.

    Returns:
        Groups ordered by schedule position (knapsack creation order).
        Within a group, adapters are ordered short-first, matching
        :func:`head_tail_groups`.
    """
    if not jobs:
        raise ScheduleError("knapsack_groups requires at least one job")
    if capacity <= 0:
        raise ScheduleError(f"capacity must be positive, got {capacity}")
    if padding_multiple <= 0:
        raise ScheduleError(
            f"padding_multiple must be positive, got {padding_multiple}"
        )
    ids = [job.adapter_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ScheduleError(f"duplicate adapter ids in jobs: {ids}")
    # Stable item order before weighing: knapsack tie-breaks are by item
    # index, so index order must itself be deterministic.
    ordered = sorted(jobs, key=lambda job: job.adapter_id)
    masses = [_step_mass(job, capacity, padding_multiple) for job in ordered]
    groups = []
    for knapsack in greedy_knapsack(masses, capacity):
        group = [ordered[i] for i in knapsack]
        group.sort(key=lambda job: (job.mean_length(), job.adapter_id))
        groups.append(group)
    return groups


class StickyGrouper:
    """Cross-wave group stability: cache layouts keyed by live-set membership.

    The online orchestrator re-plans every wave from its live set.
    Recomputing groups each time lets a single arrival or retirement
    reshuffle every group, which breaks merge-pass adjacencies at wave
    boundaries and makes the merge discount unpredictable.  This cache
    pins the layout: as long as the live set holds the same adapter ids,
    :meth:`groups_for` replays the cached id-layout onto the wave's fresh
    (windowed) :class:`~repro.scheduler.types.AdapterJob` objects.  A
    membership change computes a fresh :func:`knapsack_groups` layout and
    caches it under the new key, so every distinct live set has exactly
    one layout for the lifetime of the grouper.
    """

    def __init__(self) -> None:
        self._layouts: dict[frozenset[int], tuple[tuple[int, ...], ...]] = {}

    def groups_for(
        self,
        jobs: list[AdapterJob],
        capacity: int,
        padding_multiple: int = 64,
    ) -> list[list[AdapterJob]]:
        """The pinned group layout for this live set.

        Args:
            jobs: The wave's live jobs (unique adapter ids).
            capacity: Microbatch token capacity.
            padding_multiple: The tile granule ``P``.

        Returns:
            Groups in the same shape :func:`knapsack_groups` returns; for
            a repeated live set, the *identical* id-layout as the first
            wave, mapped onto the fresh job objects.
        """
        key = frozenset(job.adapter_id for job in jobs)
        if len(key) != len(jobs):
            ids = [job.adapter_id for job in jobs]
            raise ScheduleError(f"duplicate adapter ids in jobs: {ids}")
        layout = self._layouts.get(key)
        if layout is None:
            groups = knapsack_groups(jobs, capacity, padding_multiple)
            layout = tuple(
                tuple(job.adapter_id for job in group) for group in groups
            )
            self._layouts[key] = layout
            return groups
        by_id = {job.adapter_id: job for job in jobs}
        return [[by_id[aid] for aid in group] for group in layout]
