"""The multi-LoRA scheduler: grouping, packing, merging, verification.

This is the top of the scheduling stack (Figure 12).  Given a set of
fine-tuning jobs sharing one base model, the scheduler:

1. groups adapters by head-tail pairing on mean sample length;
2. for every (group, global-batch-step), packs the step's samples into
   capacity-bounded microbatches with the two-stage MILP, falling back to
   greedy first-fit-decreasing on timeout or when greedy is no worse
   (Algorithm 1) -- steps are independent, so packing parallelises across
   worker processes;
3. assembles the global stream by interleaving groups step by step, which
   spaces each adapter's consecutive batches apart;
4. merges underfilled tail microbatches across batch boundaries when the
   bubble lemma allows;
5. verifies the bubble lemma and inserts no-op microbatches where needed.

The result is a :class:`~repro.scheduler.types.Schedule` that any executor
(the numeric engine or the pipeline simulator) can run directly.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.data.dataset import Sample
from repro.errors import ScheduleError
from repro.scheduler.bubble import find_violations, insert_noops
from repro.scheduler.greedy import greedy_pack
from repro.scheduler.grouping import head_tail_groups
from repro.scheduler.merging import merge_pass
from repro.scheduler.milp import milp_pack
from repro.scheduler.types import AdapterJob, Microbatch, Schedule

__all__ = [
    "PackingPlan",
    "SchedulerConfig",
    "MultiLoRAScheduler",
    "pack_global_batch",
]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the multi-LoRA scheduler.

    Attributes:
        capacity: Microbatch token budget (from the parallelism profiler).
        padding_multiple: Per-adapter padding granule ``P`` (64 or 128).
        num_stages: Pipeline depth the schedule must respect.
        use_milp: Enable the two-stage MILP (else pure greedy).
        milp_timeout: Per-stage HiGHS time limit in seconds.
        use_merge: Enable the cross-batch merge pass.
        group_size: Adapters per group for head-tail pairing; None derives
            it from the job count (pairs when there are 4+ jobs, singleton
            groups for 2-3 jobs so their batches still interleave, one
            group for a lone job).
        max_workers: Worker processes for parallel packing (0 = inline).
    """

    capacity: int
    padding_multiple: int = 64
    num_stages: int = 1
    use_milp: bool = True
    milp_timeout: float = 2.0
    use_merge: bool = True
    group_size: int | None = None
    max_workers: int = 0

    def resolved_group_size(self, num_jobs: int) -> int:
        """The group size to use for ``num_jobs`` jobs."""
        if self.group_size is not None:
            return self.group_size
        if num_jobs >= 4:
            return max(1, num_jobs // 2)
        return 1

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ScheduleError("capacity must be positive")
        if self.padding_multiple <= 0:
            raise ScheduleError("padding_multiple must be positive")
        if self.capacity % self.padding_multiple != 0:
            raise ScheduleError(
                f"capacity {self.capacity} must be a multiple of the padding "
                f"multiple {self.padding_multiple}"
            )


def pack_global_batch(
    samples: list[tuple[Sample, int]],
    capacity: int,
    padding_multiple: int,
    use_milp: bool,
    milp_timeout: float,
) -> tuple[list[Microbatch], str]:
    """Pack one (group, step)'s samples per Algorithm 1.

    Module-level (picklable) so worker processes can run it.

    Returns:
        ``(microbatches, method)`` with method ``"milp"`` or ``"greedy"``.
    """
    greedy_bins = greedy_pack(samples, capacity, padding_multiple)
    if not use_milp or len(greedy_bins) <= 1:
        return greedy_bins, "greedy"
    result = milp_pack(
        samples,
        capacity,
        padding_multiple,
        max_bins=len(greedy_bins),
        timeout=milp_timeout,
    )
    if result.microbatches is None or result.num_bins > len(greedy_bins):
        return greedy_bins, "greedy"
    greedy_min = min(mb.padded_tokens for mb in greedy_bins)
    if result.num_bins == len(greedy_bins) and result.min_bin_tokens >= greedy_min:
        return greedy_bins, "greedy"
    return result.microbatches, "milp"


def _pack_task(args):
    group_index, step, samples, capacity, padding, use_milp, timeout = args
    bins, method = pack_global_batch(samples, capacity, padding, use_milp, timeout)
    return group_index, step, bins, method


@dataclass
class PackingPlan:
    """Phase-1 output of the scheduler: grouped, packed, not yet assembled.

    The offline path assembles a plan immediately; the online orchestrator
    plans one *window* of live jobs at a time and splices the assembled
    stream into the in-flight schedule.

    Attributes:
        groups: Head-tail adapter groups, in schedule-position order.
        packed: Microbatches per ``(group_index, local_step)``, sorted
            fullest-first within each region.
        milp_wins: Packing tasks where the MILP beat greedy.
        num_tasks: Total packing tasks executed.
        seconds: Wall-clock time the packing phase took (folded into the
            assembled schedule's ``tuning_seconds``).
    """

    groups: list[list[AdapterJob]]
    packed: dict[tuple[int, int], list[Microbatch]] = field(default_factory=dict)
    milp_wins: int = 0
    num_tasks: int = 0
    seconds: float = 0.0


class MultiLoRAScheduler:
    """Schedules multiple LoRA fine-tuning jobs onto one microbatch stream.

    The pipeline has two reusable phases.  :meth:`plan_step` groups the
    jobs and packs every (group, global-batch step) region into
    capacity-bounded microbatches; :meth:`assemble` interleaves the packed
    regions, runs the merge pass, and verifies/fixes the bubble lemma.
    :meth:`schedule` composes the two for the offline whole-horizon case;
    the online orchestrator calls them per replanning window, with each
    job's ``batch_offset`` carrying the absolute optimizer-step indices.

    Args:
        jobs: The fine-tuning jobs (distinct adapter ids).
        config: Scheduler tunables.
    """

    def __init__(self, jobs: list[AdapterJob], config: SchedulerConfig) -> None:
        if not jobs:
            raise ScheduleError("scheduler requires at least one job")
        ids = [job.adapter_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ScheduleError(f"duplicate adapter ids: {ids}")
        self.jobs = list(jobs)
        self.config = config

    def _packing_tasks(self, groups: list[list[AdapterJob]]):
        """One packing task per (group, global-batch step)."""
        cfg = self.config
        tasks = []
        for group_index, group in enumerate(groups):
            batches_per_job = {
                job.adapter_id: job.dataset.global_batches(job.global_batch_size)
                for job in group
            }
            offsets = {job.adapter_id: job.batch_offset for job in group}
            num_steps = max(len(b) for b in batches_per_job.values())
            for step in range(num_steps):
                samples: list[tuple[Sample, int]] = []
                for job in group:
                    batches = batches_per_job[job.adapter_id]
                    if step < len(batches):
                        samples.extend(
                            (sample, offsets[job.adapter_id] + step)
                            for sample in batches[step]
                        )
                if samples:
                    tasks.append(
                        (
                            group_index,
                            step,
                            samples,
                            cfg.capacity,
                            cfg.padding_multiple,
                            cfg.use_milp,
                            cfg.milp_timeout,
                        )
                    )
        return tasks

    def _run_packing(self, tasks):
        if self.config.max_workers and len(tasks) > 1:
            with ProcessPoolExecutor(max_workers=self.config.max_workers) as pool:
                return list(pool.map(_pack_task, tasks))
        return [_pack_task(task) for task in tasks]

    def plan_step(self, groups: list[list[AdapterJob]] | None = None) -> PackingPlan:
        """Phase 1: group the jobs and pack every (group, step) region.

        Args:
            groups: Pre-computed adapter groups (e.g. held fixed across
                online replans); derived by head-tail pairing when omitted.
                Must cover exactly this scheduler's jobs.
        """
        start = time.perf_counter()
        if groups is None:
            groups = head_tail_groups(
                self.jobs, self.config.resolved_group_size(len(self.jobs))
            )
        else:
            grouped = [job.adapter_id for group in groups for job in group]
            expected = {job.adapter_id for job in self.jobs}
            if len(grouped) != len(set(grouped)) or set(grouped) != expected:
                raise ScheduleError(
                    f"groups cover adapters {sorted(grouped)} but the "
                    f"scheduler's jobs are {sorted(expected)}"
                )
        results = self._run_packing(self._packing_tasks(groups))
        plan = PackingPlan(groups=groups, num_tasks=len(results))
        for group_index, step, bins, method in results:
            # Emit fullest-first so the underfilled bin sits at the region
            # tail where the merge pass can reach it.
            bins = sorted(bins, key=lambda mb: -mb.padded_tokens)
            for mb in bins:
                mb.group = group_index
                mb.step = step
            plan.packed[(group_index, step)] = bins
            if method == "milp":
                plan.milp_wins += 1
        plan.seconds = time.perf_counter() - start
        return plan

    def assemble(self, plan: PackingPlan) -> Schedule:
        """Phase 2: interleave, merge, and verify a packing plan.

        Raises:
            ScheduleError: If the assembled stream still violates the
                bubble lemma after no-op insertion (never expected).
        """
        cfg = self.config
        start = time.perf_counter()
        # Interleave groups step by step: G0/B0, G1/B0, G0/B1, G1/B1, ...
        stream: list[Microbatch] = []
        max_step = max((key[1] for key in plan.packed), default=-1)
        for step in range(max_step + 1):
            for group_index in range(len(plan.groups)):
                stream.extend(plan.packed.get((group_index, step), []))

        merges = 0
        if cfg.use_merge:
            stream, merges = merge_pass(stream, cfg.num_stages)
        stream, noops = insert_noops(stream, cfg.num_stages)
        violations = find_violations(stream, cfg.num_stages)
        if violations:
            raise ScheduleError(
                f"schedule violates the bubble lemma after fixing: {violations[:3]}"
            )
        elapsed = time.perf_counter() - start
        stats = {
            "groups": float(len(plan.groups)),
            "packing_tasks": float(plan.num_tasks),
            "milp_selected": float(plan.milp_wins),
            "milp_selected_frac": (
                plan.milp_wins / plan.num_tasks if plan.num_tasks else 0.0
            ),
            "merges": float(merges),
            "noops_inserted": float(noops),
            "microbatches": float(len(stream)),
            "tuning_seconds": plan.seconds + elapsed,
        }
        return Schedule(microbatches=stream, num_stages=cfg.num_stages, stats=stats)

    def schedule(self) -> Schedule:
        """Produce the verified microbatch stream for all jobs."""
        return self.assemble(self.plan_step())
