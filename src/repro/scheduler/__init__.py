"""Job-level contribution of the paper: the multi-LoRA scheduler."""

from repro.scheduler.bubble import (
    BubbleViolation,
    dependency_gap,
    find_violations,
    insert_noops,
)
from repro.scheduler.greedy import check_sample_fits_capacity, greedy_pack
from repro.scheduler.grouping import (
    StickyGrouper,
    head_tail_groups,
    knapsack_groups,
)
from repro.scheduler.merging import merge_pass
from repro.scheduler.milp import MILPResult, milp_pack
from repro.scheduler.scheduler import (
    MultiLoRAScheduler,
    PackingPlan,
    SchedulerConfig,
    pack_global_batch,
)
from repro.scheduler.types import AdapterJob, Assignment, Microbatch, Schedule

__all__ = [
    "AdapterJob",
    "Assignment",
    "BubbleViolation",
    "MILPResult",
    "Microbatch",
    "MultiLoRAScheduler",
    "PackingPlan",
    "Schedule",
    "SchedulerConfig",
    "StickyGrouper",
    "check_sample_fits_capacity",
    "dependency_gap",
    "find_violations",
    "greedy_pack",
    "head_tail_groups",
    "insert_noops",
    "knapsack_groups",
    "merge_pass",
    "milp_pack",
    "pack_global_batch",
]
