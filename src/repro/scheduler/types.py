"""Core datatypes shared by the multi-LoRA scheduler."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import CapacityError, ScheduleError
from repro.models.layer_costs import MicrobatchShape

__all__ = ["AdapterJob", "Assignment", "Microbatch", "Schedule"]


@dataclass(frozen=True)
class AdapterJob:
    """One fine-tuning job: an adapter, its dataset, and its batch size.

    Attributes:
        adapter_id: Adapter identity (unique across jobs).
        dataset: The job's ordered sample stream.  For online scheduling
            this may be a *window* of a longer stream: the remaining
            samples, with their original absolute indices.
        global_batch_size: Samples per optimizer step.
        batch_offset: Absolute index of the dataset's first global batch.
            The scheduler labels assignments ``batch_offset + local_step``
            so a windowed job's samples carry the optimizer-step indices
            of the full stream (zero for offline, whole-horizon jobs).
    """

    adapter_id: int
    dataset: FinetuneDataset
    global_batch_size: int
    batch_offset: int = 0

    def __post_init__(self) -> None:
        if self.global_batch_size <= 0:
            raise ScheduleError("global_batch_size must be positive")
        if self.batch_offset < 0:
            raise ScheduleError("batch_offset must be non-negative")
        if self.dataset.adapter_id != self.adapter_id:
            raise ScheduleError(
                f"dataset belongs to adapter {self.dataset.adapter_id}, "
                f"job is adapter {self.adapter_id}"
            )

    def num_global_batches(self) -> int:
        """Optimizer steps this job will take."""
        return math.ceil(len(self.dataset) / self.global_batch_size)

    def mean_length(self) -> float:
        """Mean sample length (drives head-tail grouping)."""
        return self.dataset.mean_length()


@dataclass(frozen=True)
class Assignment:
    """One sample placed into a microbatch.

    Attributes:
        sample: The sample.
        global_batch: The sample's global-batch index for its adapter --
            the optimizer step whose gradient it contributes to.  Preserved
            under merging (a shifted sample keeps its original index).
    """

    sample: Sample
    global_batch: int

    @property
    def adapter_id(self) -> int:
        """Owning adapter."""
        return self.sample.adapter_id

    @property
    def length(self) -> int:
        """Token length."""
        return self.sample.length


@dataclass
class Microbatch:
    """A scheduled microbatch: assignments plus capacity bookkeeping.

    Token accounting follows the paper's MILP: each adapter's tokens inside
    a microbatch are padded up to a multiple of ``padding_multiple`` (``P``)
    so the FusedMultiLoRA tile table never straddles adapters.

    Attributes:
        assignments: Samples in this microbatch.
        capacity: Token budget (padded tokens must not exceed it).
        padding_multiple: The padding granule ``P``.
        group: Adapter-group index that produced this microbatch.
        step: Global-batch step index within the group's stream (window
            local under online scheduling; absolute batch indices live on
            the assignments).
        plan_id: Replanning wave that emitted this microbatch.  Offline
            schedules are one wave (0); the online orchestrator stamps
            each window's wave so spliced streams stay traceable back to
            the plan that produced every microbatch.
        replica: Pipeline replica that executed this microbatch.  Zero for
            single-pipeline runs; a :class:`~repro.serve.replicaset.ReplicaSet`
            stamps each replica's stream so merged traces stay attributable
            to the pipeline that ran every slot.
    """

    assignments: list[Assignment] = field(default_factory=list)
    capacity: int = 8192
    padding_multiple: int = 64
    group: int = 0
    step: int = 0
    plan_id: int = 0
    replica: int = 0

    @property
    def is_noop(self) -> bool:
        """True for bubble-restoring no-op microbatches."""
        return not self.assignments

    def tokens_by_adapter(self) -> dict[int, int]:
        """Raw (unpadded) token counts per adapter."""
        totals: dict[int, int] = {}
        for assignment in self.assignments:
            totals[assignment.adapter_id] = (
                totals.get(assignment.adapter_id, 0) + assignment.length
            )
        return totals

    def padded_tokens_by_adapter(self) -> dict[int, int]:
        """Per-adapter token counts padded to the next multiple of ``P``."""
        p = self.padding_multiple
        return {
            adapter: math.ceil(tokens / p) * p
            for adapter, tokens in self.tokens_by_adapter().items()
        }

    @property
    def padded_tokens(self) -> int:
        """Total padded tokens (the quantity capped by ``capacity``)."""
        return sum(self.padded_tokens_by_adapter().values())

    @property
    def real_tokens(self) -> int:
        """Total unpadded tokens."""
        return sum(a.length for a in self.assignments)

    @property
    def num_adapters(self) -> int:
        """Distinct adapters present."""
        return len({a.adapter_id for a in self.assignments})

    def fits(self, sample: Sample) -> bool:
        """Whether adding ``sample`` keeps the microbatch within capacity."""
        p = self.padding_multiple
        padded = self.padded_tokens_by_adapter()
        current = self.tokens_by_adapter().get(sample.adapter_id, 0)
        new_padded = math.ceil((current + sample.length) / p) * p
        total = sum(padded.values()) - padded.get(sample.adapter_id, 0) + new_padded
        return total <= self.capacity

    def add(self, assignment: Assignment) -> None:
        """Add a sample, enforcing the capacity invariant."""
        if not self.fits(assignment.sample):
            raise CapacityError(
                f"sample of length {assignment.length} does not fit "
                f"(used {self.padded_tokens}/{self.capacity})"
            )
        self.assignments.append(assignment)

    def shape(self) -> MicrobatchShape:
        """Workload descriptor for the cost model (padded tokens)."""
        lengths = [a.length for a in self.assignments]
        return MicrobatchShape(
            tokens=self.padded_tokens,
            sum_sq_len=float(sum(l * l for l in lengths)),
            num_adapters=self.num_adapters,
        )

    def batches_by_adapter(self) -> dict[int, set[int]]:
        """Which global-batch indices each adapter contributes."""
        result: dict[int, set[int]] = {}
        for assignment in self.assignments:
            result.setdefault(assignment.adapter_id, set()).add(
                assignment.global_batch
            )
        return result


@dataclass
class Schedule:
    """The scheduler's output: an ordered microbatch stream plus stats.

    Attributes:
        microbatches: Execution order (includes no-ops).
        num_stages: Pipeline depth the schedule was verified against.
        stats: Free-form counters (milp wins, merges, no-ops inserted...).
    """

    microbatches: list[Microbatch]
    num_stages: int = 1
    stats: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.microbatches)

    @property
    def total_tokens(self) -> int:
        """Real (unpadded) tokens across the schedule."""
        return sum(mb.real_tokens for mb in self.microbatches)

    @property
    def total_padded_tokens(self) -> int:
        """Padded tokens across the schedule."""
        return sum(mb.padded_tokens for mb in self.microbatches)

    def adapter_sample_order(self, adapter_id: int) -> list[tuple[int, int]]:
        """(global_batch, sample_index) pairs in execution order."""
        order = []
        for mb in self.microbatches:
            for assignment in mb.assignments:
                if assignment.adapter_id == adapter_id:
                    order.append((assignment.global_batch, assignment.sample.index))
        return order

    def to_dict(self) -> dict:
        """JSON-serializable representation (orchestrator trace dumps)."""
        return {
            "num_stages": self.num_stages,
            "stats": dict(self.stats),
            "microbatches": [
                {
                    "capacity": mb.capacity,
                    "padding_multiple": mb.padding_multiple,
                    "group": mb.group,
                    "step": mb.step,
                    "plan_id": mb.plan_id,
                    "replica": mb.replica,
                    "assignments": [
                        {
                            "adapter_id": a.adapter_id,
                            "index": a.sample.index,
                            "length": a.length,
                            "global_batch": a.global_batch,
                        }
                        for a in mb.assignments
                    ],
                }
                for mb in self.microbatches
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Schedule":
        """Rebuild a schedule dumped by :meth:`to_dict`."""
        microbatches = []
        for entry in payload["microbatches"]:
            microbatches.append(
                Microbatch(
                    assignments=[
                        Assignment(
                            sample=Sample(
                                adapter_id=a["adapter_id"],
                                index=a["index"],
                                length=a["length"],
                            ),
                            global_batch=a["global_batch"],
                        )
                        for a in entry["assignments"]
                    ],
                    capacity=entry["capacity"],
                    padding_multiple=entry["padding_multiple"],
                    group=entry["group"],
                    step=entry["step"],
                    plan_id=entry.get("plan_id", 0),
                    replica=entry.get("replica", 0),
                )
            )
        return cls(
            microbatches=microbatches,
            num_stages=payload["num_stages"],
            stats=dict(payload.get("stats", {})),
        )
