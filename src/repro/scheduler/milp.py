"""Two-stage MILP bin packing (Equations 3 and 4 of the paper).

Stage 1 minimises the number of microbatches needed to pack one global
batch's samples subject to per-adapter padding multiples and a token
capacity.  Stage 2 fixes that bin count and minimises the smallest bin's
padded token count, leaving maximal room for the later merge pass.

Both stages are solved with scipy's HiGHS backend (``scipy.optimize.milp``)
under a configurable time limit; the caller falls back to greedy packing
when the solver fails, times out without an incumbent, or is no better
(Algorithm 1, lines 2-10).

Variable layout (stage 1), matching the paper's notation:

* ``x[s,b] in {0,1}``  -- sample ``s`` placed in bin ``b``;
* ``k[a,b] in N``      -- padded multiples adapter ``a`` contributes to bin
  ``b`` (``tokens_a,b <= k[a,b] * P``);
* ``z[b] in {0,1}``    -- bin ``b`` used, contiguous from the front.

Stage 2 drops ``z`` and adds the symmetry-breaking constraint that the
*last* bin is the smallest, which linearises "minimise the smallest bin"
without big-M terms (bins are interchangeable).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.data.dataset import Sample
from repro.scheduler.types import Assignment, Microbatch

__all__ = ["MILPResult", "milp_pack"]


@dataclass
class MILPResult:
    """Outcome of the two-stage MILP for one global batch.

    Attributes:
        microbatches: The packed bins (None when the solver produced
            nothing usable and the caller must fall back to greedy).
        num_bins: Bin count of the stage-1 solution.
        min_bin_tokens: Padded tokens of the smallest bin after stage 2.
        stage1_optimal: Whether stage 1 proved optimality.
        stage2_optimal: Whether stage 2 proved optimality.
    """

    microbatches: list[Microbatch] | None
    num_bins: int = 0
    min_bin_tokens: int = 0
    stage1_optimal: bool = False
    stage2_optimal: bool = False


def _adapter_index(samples: list[tuple[Sample, int]]) -> dict[int, int]:
    ids = sorted({sample.adapter_id for sample, _ in samples})
    return {adapter_id: i for i, adapter_id in enumerate(ids)}


def _solve(c, constraints, integrality, bounds, timeout):
    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": timeout, "presolve": True},
    )
    return result


def _stage1(
    samples: list[tuple[Sample, int]],
    capacity: int,
    p: int,
    max_bins: int,
    timeout: float,
):
    """Minimise used bins; returns (x matrix, used bin count, optimal?)."""
    adapters = _adapter_index(samples)
    ns, na, nb = len(samples), len(adapters), max_bins
    nx, nk = ns * nb, na * nb
    n_vars = nx + nk + nb
    k_max = capacity // p

    def xi(s: int, b: int) -> int:
        return s * nb + b

    def ki(a: int, b: int) -> int:
        return nx + a * nb + b

    def zi(b: int) -> int:
        return nx + nk + b

    rows, cols, vals = [], [], []
    lbs, ubs = [], []
    row = 0

    # (1) each sample in exactly one bin.
    for s in range(ns):
        for b in range(nb):
            rows.append(row), cols.append(xi(s, b)), vals.append(1.0)
        lbs.append(1.0), ubs.append(1.0)
        row += 1
    # (2) adapter tokens respect padded multiples: sum len*x - P*k <= 0.
    for (a_id, a) in adapters.items():
        for b in range(nb):
            for s, (sample, _) in enumerate(samples):
                if sample.adapter_id == a_id:
                    rows.append(row), cols.append(xi(s, b))
                    vals.append(float(sample.length))
            rows.append(row), cols.append(ki(a, b)), vals.append(-float(p))
            lbs.append(-np.inf), ubs.append(0.0)
            row += 1
    # (3) capacity: sum_a P*k - C*z <= 0, and (4) z <= sum_a P*k.
    for b in range(nb):
        for a in range(na):
            rows.append(row), cols.append(ki(a, b)), vals.append(float(p))
        rows.append(row), cols.append(zi(b)), vals.append(-float(capacity))
        lbs.append(-np.inf), ubs.append(0.0)
        row += 1
    for b in range(nb):
        rows.append(row), cols.append(zi(b)), vals.append(1.0)
        for a in range(na):
            rows.append(row), cols.append(ki(a, b)), vals.append(-float(p))
        lbs.append(-np.inf), ubs.append(0.0)
        row += 1
    # (5) used bins are contiguous: z[b+1] <= z[b].
    for b in range(nb - 1):
        rows.append(row), cols.append(zi(b + 1)), vals.append(1.0)
        rows.append(row), cols.append(zi(b)), vals.append(-1.0)
        lbs.append(-np.inf), ubs.append(0.0)
        row += 1

    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    c = np.zeros(n_vars)
    c[nx + nk :] = 1.0
    lower = np.zeros(n_vars)
    upper = np.concatenate(
        [np.ones(nx), np.full(nk, float(k_max)), np.ones(nb)]
    )
    result = _solve(
        c,
        LinearConstraint(matrix, lbs, ubs),
        integrality=np.ones(n_vars),
        bounds=Bounds(lower, upper),
        timeout=timeout,
    )
    if result.x is None:
        return None, 0, False
    x = np.round(result.x[:nx]).reshape(ns, nb)
    used = int(np.round(result.x[nx + nk :].sum()))
    return x, used, result.status == 0


def _stage2(
    samples: list[tuple[Sample, int]],
    capacity: int,
    p: int,
    num_bins: int,
    timeout: float,
):
    """Fix the bin count; minimise the last (smallest) bin's padded tokens."""
    adapters = _adapter_index(samples)
    ns, na, nb = len(samples), len(adapters), num_bins
    nx, nk = ns * nb, na * nb
    n_vars = nx + nk
    k_max = capacity // p

    def xi(s: int, b: int) -> int:
        return s * nb + b

    def ki(a: int, b: int) -> int:
        return nx + a * nb + b

    rows, cols, vals = [], [], []
    lbs, ubs = [], []
    row = 0
    for s in range(ns):
        for b in range(nb):
            rows.append(row), cols.append(xi(s, b)), vals.append(1.0)
        lbs.append(1.0), ubs.append(1.0)
        row += 1
    for (a_id, a) in adapters.items():
        for b in range(nb):
            for s, (sample, _) in enumerate(samples):
                if sample.adapter_id == a_id:
                    rows.append(row), cols.append(xi(s, b))
                    vals.append(float(sample.length))
            rows.append(row), cols.append(ki(a, b)), vals.append(-float(p))
            lbs.append(-np.inf), ubs.append(0.0)
            row += 1
    for b in range(nb):
        for a in range(na):
            rows.append(row), cols.append(ki(a, b)), vals.append(float(p))
        lbs.append(-np.inf), ubs.append(float(capacity))
        row += 1
    # Symmetry break: the last bin is (weakly) the smallest.
    for b in range(nb - 1):
        for a in range(na):
            rows.append(row), cols.append(ki(a, nb - 1)), vals.append(1.0)
            rows.append(row), cols.append(ki(a, b)), vals.append(-1.0)
        lbs.append(-np.inf), ubs.append(0.0)
        row += 1

    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(row, n_vars))
    c = np.zeros(n_vars)
    for a in range(na):
        c[ki(a, nb - 1)] = float(p)
    lower = np.zeros(n_vars)
    upper = np.concatenate([np.ones(nx), np.full(nk, float(k_max))])
    result = _solve(
        c,
        LinearConstraint(matrix, lbs, ubs),
        integrality=np.ones(n_vars),
        bounds=Bounds(lower, upper),
        timeout=timeout,
    )
    if result.x is None:
        return None, False
    return np.round(result.x[:nx]).reshape(ns, nb), result.status == 0


def _bins_from_assignment(
    x: np.ndarray,
    samples: list[tuple[Sample, int]],
    capacity: int,
    p: int,
) -> list[Microbatch] | None:
    """Materialise microbatches from a 0/1 assignment matrix."""
    nb = x.shape[1]
    bins: list[Microbatch] = []
    for b in range(nb):
        members = [samples[s] for s in range(len(samples)) if x[s, b] > 0.5]
        if not members:
            continue
        mb = Microbatch(capacity=capacity, padding_multiple=p)
        for sample, batch_index in members:
            if not mb.fits(sample):
                return None  # solver artefact; caller falls back to greedy
            mb.add(Assignment(sample=sample, global_batch=batch_index))
        bins.append(mb)
    # Order bins fullest-first so the final (mergeable) bin is the smallest.
    bins.sort(key=lambda mb: -mb.padded_tokens)
    return bins


def milp_pack(
    samples: list[tuple[Sample, int]],
    capacity: int,
    padding_multiple: int,
    max_bins: int,
    timeout: float = 2.0,
) -> MILPResult:
    """Run the two-stage MILP on one global batch.

    Args:
        samples: ``(sample, global_batch_index)`` pairs.
        capacity: Microbatch token budget.
        padding_multiple: Padding granule ``P``.
        max_bins: Upper bound on bins -- use the greedy solution's count,
            since a worse-than-greedy solution would be discarded anyway.
        timeout: Per-stage HiGHS time limit in seconds.

    Returns:
        A :class:`MILPResult`; ``microbatches`` is None when the caller
        should fall back to greedy packing.
    """
    if not samples or max_bins <= 0:
        return MILPResult(microbatches=None)
    if max_bins == 1:
        # A single greedy bin is already optimal in count; stage 2 cannot
        # improve a one-bin packing either.
        return MILPResult(microbatches=None)

    x1, used, opt1 = _stage1(samples, capacity, padding_multiple, max_bins, timeout)
    if x1 is None or used <= 0:
        return MILPResult(microbatches=None)

    x2, opt2 = _stage2(samples, capacity, padding_multiple, used, timeout)
    x_final = x2 if x2 is not None else x1[:, :]
    bins = _bins_from_assignment(x_final, samples, capacity, padding_multiple)
    if bins is None:
        return MILPResult(microbatches=None)
    min_tokens = min(mb.padded_tokens for mb in bins)
    return MILPResult(
        microbatches=bins,
        num_bins=len(bins),
        min_bin_tokens=min_tokens,
        stage1_optimal=opt1,
        stage2_optimal=x2 is not None and opt2,
    )
