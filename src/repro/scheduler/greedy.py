"""Greedy first-fit-decreasing bin packing: Algorithm 1's fallback path.

The MILP solver gets a timeout; when it expires (or when its solution is
no better), the scheduler falls back to this packer.  It is also the
baseline for the Section 6.5 ablation ("two-stage MILP optimization
provides an additional 3.82% improvement over pure greedy bin-packing").
"""

from __future__ import annotations

import math

from repro.data.dataset import Sample
from repro.errors import CapacityError
from repro.scheduler.types import Assignment, Microbatch

__all__ = ["greedy_pack", "check_sample_fits_capacity"]


def check_sample_fits_capacity(
    sample: Sample, capacity: int, padding_multiple: int
) -> None:
    """Raise :class:`CapacityError` if a lone sample cannot fit any bin."""
    padded = math.ceil(sample.length / padding_multiple) * padding_multiple
    if padded > capacity:
        raise CapacityError(
            f"sample of length {sample.length} (padded {padded}) exceeds "
            f"microbatch capacity {capacity}; raise the capacity or drop "
            "the sample"
        )


def greedy_pack(
    samples: list[tuple[Sample, int]],
    capacity: int,
    padding_multiple: int,
) -> list[Microbatch]:
    """First-fit-decreasing packing of one global batch into microbatches.

    Args:
        samples: ``(sample, global_batch_index)`` pairs to pack.
        capacity: Token budget per microbatch (padded accounting).
        padding_multiple: Per-adapter padding granule ``P``.

    Returns:
        Microbatches, each within capacity.  Samples are sorted by
        decreasing length and placed into the first bin that fits; a new
        bin opens when none does.
    """
    for sample, _ in samples:
        check_sample_fits_capacity(sample, capacity, padding_multiple)
    ordered = sorted(
        samples,
        key=lambda pair: (-pair[0].length, pair[0].adapter_id, pair[0].index),
    )
    bins: list[Microbatch] = []
    for sample, batch_index in ordered:
        assignment = Assignment(sample=sample, global_batch=batch_index)
        for bin_ in bins:
            if bin_.fits(sample):
                bin_.add(assignment)
                break
        else:
            bin_ = Microbatch(capacity=capacity, padding_multiple=padding_multiple)
            bin_.add(assignment)
            bins.append(bin_)
    return bins
