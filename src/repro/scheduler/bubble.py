"""The bubble lemma: dependency verification and no-op restoration.

Section 5.2 defines the bubble lemma for an ``S``-stage pipeline: if a
sample of adapter ``i``'s global batch ``j`` is committed at microbatch
``k``, no sample of batch ``j+1`` of the same adapter may be committed
before microbatch ``k + S - 1`` -- that is the earliest point at which the
batch-``j`` backward pass (and hence adapter ``i``'s optimizer step) can
have completed.

Verification scans the schedule; fixing inserts no-op microbatches before
the violating position (Algorithm 1, line 15), trading a bubble for
correctness, exactly as the paper's VerifyAndFix step does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduler.types import Microbatch

__all__ = ["BubbleViolation", "dependency_gap", "find_violations", "insert_noops"]


@dataclass(frozen=True)
class BubbleViolation:
    """One bubble-lemma violation found in a schedule.

    Attributes:
        adapter_id: The adapter whose dependency is violated.
        batch: The *later* global batch (``j+1``).
        position: Microbatch index where batch ``j+1`` first appears.
        required: Earliest legal index (``last(j) + S - 1``).
    """

    adapter_id: int
    batch: int
    position: int
    required: int


def dependency_gap(num_stages: int) -> int:
    """Minimum microbatch distance between consecutive batches of an adapter.

    The paper's lemma gives ``S - 1``.  We use ``S``: our executor replays
    Megatron's static fwd-first 1F1B slot order, under which stage 0 issues
    ``F(i)`` immediately after ``B(i - S)``, so a forward may only depend
    on a backward at least ``S`` slots earlier (one extra slot versus the
    lemma -- negligible in time, and strictly safe).  We also require at
    least 1 so that two consecutive global batches of one adapter can never
    share a microbatch (the later batch must see post-optimizer-step
    weights even without a pipeline).
    """
    return max(1, num_stages)


def _batch_spans(
    microbatches: list[Microbatch],
) -> dict[tuple[int, int], tuple[int, int]]:
    """First/last microbatch index of every (adapter, global batch)."""
    spans: dict[tuple[int, int], tuple[int, int]] = {}
    for position, mb in enumerate(microbatches):
        for adapter_id, batches in mb.batches_by_adapter().items():
            for batch in batches:
                key = (adapter_id, batch)
                if key in spans:
                    spans[key] = (spans[key][0], position)
                else:
                    spans[key] = (position, position)
    return spans


def find_violations(
    microbatches: list[Microbatch], num_stages: int
) -> list[BubbleViolation]:
    """All bubble-lemma violations in execution order."""
    spans = _batch_spans(microbatches)
    violations = []
    for (adapter_id, batch), (first, _) in sorted(spans.items()):
        prev = spans.get((adapter_id, batch - 1))
        if prev is None:
            continue
        required = prev[1] + dependency_gap(num_stages)
        if first < required:
            violations.append(
                BubbleViolation(
                    adapter_id=adapter_id,
                    batch=batch,
                    position=first,
                    required=required,
                )
            )
    return violations


def insert_noops(
    microbatches: list[Microbatch],
    num_stages: int,
    initial_last: dict[tuple[int, int], int] | None = None,
    start_position: int = 0,
) -> tuple[list[Microbatch], int]:
    """Restore the bubble lemma by inserting no-op microbatches.

    Scans the schedule once.  Before emitting a microbatch that would start
    some adapter's batch ``j+1`` too early, enough no-ops are emitted to
    push it to its earliest legal position.  Assumes each adapter's batch
    indices appear in non-decreasing execution order, which the scheduler's
    group-interleaved assembly and merge pass guarantee.

    The online splicer passes the in-flight stream's state so that a new
    window is spaced correctly against work already submitted:

    Args:
        microbatches: The (window's) microbatches, in execution order.
        num_stages: Pipeline depth.
        initial_last: Last emitted position of each ``(adapter, batch)``
            in the stream *before* these microbatches, in stream-global
            coordinates.  Updated in place with the new positions.
        start_position: Stream-global position the first microbatch here
            will occupy (the current stream length).

    Returns:
        ``(schedule, inserted_count)``.
    """
    gap = dependency_gap(num_stages)
    output: list[Microbatch] = []
    last_position = initial_last if initial_last is not None else {}
    inserted = 0
    for mb in microbatches:
        required = start_position + len(output)
        for adapter_id, batches in mb.batches_by_adapter().items():
            for batch in batches:
                prev = last_position.get((adapter_id, batch - 1))
                if prev is not None:
                    required = max(required, prev + gap)
        while start_position + len(output) < required:
            output.append(
                Microbatch(
                    capacity=mb.capacity,
                    padding_multiple=mb.padding_multiple,
                    group=mb.group,
                    step=mb.step,
                    plan_id=mb.plan_id,
                )
            )
            inserted += 1
        position = start_position + len(output)
        output.append(mb)
        for adapter_id, batches in mb.batches_by_adapter().items():
            for batch in batches:
                last_position[(adapter_id, batch)] = position
    return output, inserted
