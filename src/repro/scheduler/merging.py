"""Cross-batch merge pass (Algorithm 1, lines 12-14; Figure 12 bottom).

After per-batch packing, the final microbatch of a global batch is often
underfilled.  The merge pass shifts tokens of the *smallest* microbatch of
the next global batch (which stage 2 of the MILP deliberately made as small
as possible) into the previous batch's microbatches -- but only when every
shifted sample still satisfies the bubble lemma at its new, earlier
position: a batch-``j+1`` sample of adapter ``a`` may move to position
``p`` only if adapter ``a``'s last batch-``j`` sample sits at least
``S - 1`` microbatches before ``p``.  When the donor microbatch empties, it
is deleted, removing one pipeline slot from the stream.
"""

from __future__ import annotations

from repro.scheduler.bubble import dependency_gap
from repro.scheduler.types import Assignment, Microbatch

__all__ = ["merge_pass"]


def _region_indices(
    microbatches: list[Microbatch],
) -> dict[tuple[int, int], list[int]]:
    """Positions of each (group, step) region in the schedule."""
    regions: dict[tuple[int, int], list[int]] = {}
    for position, mb in enumerate(microbatches):
        if not mb.is_noop:
            regions.setdefault((mb.group, mb.step), []).append(position)
    return regions


def _last_positions(
    microbatches: list[Microbatch],
) -> dict[tuple[int, int], int]:
    """Last microbatch index of each (adapter, global batch)."""
    last: dict[tuple[int, int], int] = {}
    for position, mb in enumerate(microbatches):
        for adapter_id, batches in mb.batches_by_adapter().items():
            for batch in batches:
                last[(adapter_id, batch)] = position
    return last


def _plan_donor_placement(
    donor: Microbatch,
    target_positions: list[int],
    schedule: list[Microbatch],
    last_positions: dict[tuple[int, int], int],
    gap: int,
) -> dict[int, list[Assignment]] | None:
    """Try to place every donor sample into the target region.

    Targets are tried latest-position-first (later positions satisfy the
    bubble constraint for more adapters and are typically the underfilled
    tail bins).  Returns a placement plan or None when any sample cannot
    move legally.
    """
    probes: dict[int, Microbatch] = {}
    plan: dict[int, list[Assignment]] = {}
    ordered = sorted(donor.assignments, key=lambda a: -a.length)
    for assignment in ordered:
        prev = last_positions.get(
            (assignment.adapter_id, assignment.global_batch - 1)
        )
        placed = False
        for position in sorted(target_positions, reverse=True):
            if prev is not None and position < prev + gap:
                continue
            probe = probes.get(position)
            if probe is None:
                original = schedule[position]
                probe = Microbatch(
                    assignments=list(original.assignments),
                    capacity=original.capacity,
                    padding_multiple=original.padding_multiple,
                    group=original.group,
                    step=original.step,
                )
                probes[position] = probe
            if probe.fits(assignment.sample):
                probe.add(assignment)
                plan.setdefault(position, []).append(assignment)
                placed = True
                break
        if not placed:
            return None
    return plan


def merge_pass(
    microbatches: list[Microbatch], num_stages: int
) -> tuple[list[Microbatch], int]:
    """Merge next-batch microbatches into underfilled earlier microbatches.

    For every consecutive pair of global-batch regions of the same group,
    try to dissolve the later region's smallest microbatch into the earlier
    region, sample by sample, under capacity and bubble-lemma constraints.
    Each success deletes one microbatch.

    Returns:
        ``(schedule, merges_performed)``.
    """
    result = list(microbatches)
    gap = dependency_gap(num_stages)
    merges = 0
    changed = True
    while changed:
        changed = False
        regions = _region_indices(result)
        last_positions = _last_positions(result)
        for (group, step), positions in sorted(regions.items()):
            next_positions = regions.get((group, step + 1))
            if not next_positions or len(next_positions) <= 1:
                # Never dissolve a region's only microbatch: adapters whose
                # batch appears nowhere would skip an optimizer step's worth
                # of spacing for batch step+2 checks.
                continue
            donor_position = min(
                next_positions, key=lambda i: result[i].padded_tokens
            )
            donor = result[donor_position]
            plan = _plan_donor_placement(
                donor, positions, result, last_positions, gap
            )
            if plan is None:
                continue
            for position, assignments in plan.items():
                for assignment in assignments:
                    result[position].add(assignment)
            del result[donor_position]
            merges += 1
            changed = True
            break  # positions are stale; recompute regions
    return result, merges
