"""LoRAFusion reproduction: efficient LoRA fine-tuning for LLMs.

A from-scratch Python implementation of the LoRAFusion system (EUROSYS '26):
fused LoRA kernels, multi-LoRA scheduling, and a distributed-training
simulator standing in for the paper's GPU testbed.  See README.md for a
quickstart and DESIGN.md for the architecture.
"""

__version__ = "1.0.0"
