"""Parallelism planning: capacity profiling and run-plan selection."""

from repro.planner.profiler import (
    DEFAULT_CAPACITY_CANDIDATES,
    CandidateResult,
    ProfilerReport,
    min_required_capacity,
    propose_capacity,
)

__all__ = [
    "DEFAULT_CAPACITY_CANDIDATES",
    "CandidateResult",
    "ProfilerReport",
    "min_required_capacity",
    "propose_capacity",
]
