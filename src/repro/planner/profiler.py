"""Parallelism profiler: propose the microbatch token capacity (Figure 8).

The scheduler needs a token capacity as input, and the right value is
workload-dependent: short-sample datasets (XSum) want small capacities so a
global-batch step yields enough microbatches to fill the pipeline, while
long-sample datasets (WikiSum) need at least the longest sample and prefer
large, launch-efficient microbatches.  The paper resolves this with a
lightweight profiler that benchmarks candidate configurations and feeds the
winner's token capacity to the data batcher; "the grouping and batching
outputs are re-evaluated through simulation, and the process iterates until
a high-throughput configuration is found".

Our profiler does exactly that against the discrete-event simulator: it
schedules a probe prefix of the workload at each candidate capacity,
simulates the pipeline, and returns the best-throughput capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.distsim.cluster import ClusterSpec
from repro.distsim.systems import run_lorafusion
from repro.errors import ScheduleError
from repro.models.config import ModelConfig
from repro.scheduler.scheduler import SchedulerConfig
from repro.scheduler.types import AdapterJob

__all__ = ["CandidateResult", "ProfilerReport", "propose_capacity",
           "DEFAULT_CAPACITY_CANDIDATES"]

#: Token-capacity candidates swept by default (multiples of 1024).
DEFAULT_CAPACITY_CANDIDATES = (2048, 3072, 4096, 6144, 8192, 12288, 16384)


@dataclass(frozen=True)
class CandidateResult:
    """Simulated outcome of one capacity candidate.

    Attributes:
        capacity: Token capacity probed.
        tokens_per_second: Simulated throughput on the probe prefix.
        bubble_ratio: Simulated pipeline idle fraction.
    """

    capacity: int
    tokens_per_second: float
    bubble_ratio: float | None


@dataclass
class ProfilerReport:
    """Profiler outcome: the chosen capacity plus the full sweep."""

    best_capacity: int
    candidates: list[CandidateResult] = field(default_factory=list)


def _probe_jobs(jobs: list[AdapterJob], probe_batches: int) -> list[AdapterJob]:
    """Truncate each job to its first ``probe_batches`` global batches."""
    truncated = []
    for job in jobs:
        keep = min(len(job.dataset), probe_batches * job.global_batch_size)
        dataset = type(job.dataset)(
            adapter_id=job.adapter_id,
            samples=job.dataset.samples[:keep],
            source=job.dataset.source,
        )
        truncated.append(
            AdapterJob(
                adapter_id=job.adapter_id,
                dataset=dataset,
                global_batch_size=job.global_batch_size,
            )
        )
    return truncated


def min_required_capacity(jobs: list[AdapterJob], padding_multiple: int) -> int:
    """Smallest capacity that can hold the longest sample after padding."""
    longest = max(s.length for job in jobs for s in job.dataset.samples)
    return math.ceil(longest / padding_multiple) * padding_multiple


def propose_capacity(
    jobs: list[AdapterJob],
    model: ModelConfig,
    cluster: ClusterSpec,
    candidates: tuple[int, ...] = DEFAULT_CAPACITY_CANDIDATES,
    padding_multiple: int = 64,
    probe_batches: int = 2,
    use_milp: bool = False,
) -> ProfilerReport:
    """Sweep capacity candidates on a probe prefix and pick the best.

    Args:
        jobs: The full workload (only a prefix is simulated).
        model: Model being fine-tuned.
        cluster: Target cluster.
        candidates: Capacities to try; values below the longest sample are
            raised to it.
        padding_multiple: Scheduler padding granule.
        probe_batches: Global batches per job in the probe prefix.
        use_milp: Run the probe schedules with the MILP packer (slower,
            marginally more accurate); greedy is the profiler default.

    Returns:
        The winning capacity and every candidate's simulated throughput.
    """
    if not jobs:
        raise ScheduleError("profiler requires at least one job")
    floor = min_required_capacity(jobs, padding_multiple)
    sweep = sorted({max(c, floor) for c in candidates})
    probe = _probe_jobs(jobs, probe_batches)
    results: list[CandidateResult] = []
    for capacity in sweep:
        config = SchedulerConfig(
            capacity=capacity,
            padding_multiple=padding_multiple,
            num_stages=cluster.num_gpus,
            use_milp=use_milp,
            milp_timeout=0.5,
        )
        report = run_lorafusion(
            probe, model, cluster, scheduler_config=config, capacity=capacity
        )
        results.append(
            CandidateResult(
                capacity=capacity,
                tokens_per_second=report.tokens_per_second,
                bubble_ratio=report.bubble_ratio,
            )
        )
    best = max(results, key=lambda r: r.tokens_per_second)
    return ProfilerReport(best_capacity=best.capacity, candidates=results)
