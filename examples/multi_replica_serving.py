"""Multi-replica serving: routed tenants, live migration, still lossless.

Two pipeline replicas (each a full numeric engine over models that share
the same frozen base weights) serve one tenant stream.  A deliberately
bad routing policy pins every tenant to replica 0; once the backlog skew
against the idle replica 1 crosses the migration threshold, the
ReplicaSet *migrates* the long-running tenant mid-training -- exporting
its adapter weights, AdamW moments, and progress counters out of engine
0 and importing them into engine 1, between optimizer steps.  The final
adapter weights of every tenant, including the migrated one, are
bit-identical to training each tenant alone.

Run:  PYTHONPATH=src python examples/multi_replica_serving.py
"""

import numpy as np

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    NumericExecutor,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 42


class StickyRouting:
    """Worst-case placement: every tenant lands on replica 0."""

    def choose(self, job, replicas):
        return 0


def make_tenant(rng, adapter_id, rank, num_samples, gbs, arrival):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    workload = [
        make_tenant(rng, 0, 2, 12, 2, arrival=0.0),   # the long tenant
        make_tenant(rng, 1, 3, 4, 2, arrival=1.0),
        make_tenant(rng, 2, 2, 4, 2, arrival=1.0),
    ]

    # Replicas must share frozen base weights for migration to be
    # lossless: build every model from the same seed.
    models = [
        TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        for _ in range(2)
    ]
    executors = [
        NumericExecutor(MultiLoRAEngine(model, exact_accumulation=True))
        for model in models
    ]
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                      num_stages=2, use_milp=False,
                                      group_size=2),
            window_batches=1,
            admission=SlotAdmission(3),
        ),
        routing=StickyRouting(),
        migration_threshold=8,
    )
    replica_set = ReplicaSet(executors, config)
    result = replica_set.run(workload)

    print(
        f"served {len(result.records)} tenants on "
        f"{result.num_replicas} replicas: {result.migrations} migration(s), "
        f"{result.reroutes} reroute(s), {result.violations} bubble-lemma "
        f"violations"
    )
    print(f"fleet makespan {result.makespan:.0f}, "
          f"mean JCT {result.mean_completion_time():.0f}, "
          f"fleet utilization {result.utilization():.1%}\n")
    for adapter_id, record in sorted(result.records.items()):
        print(
            f"tenant {adapter_id}: arrived {record.arrival_time:5.0f}  "
            f"finished {record.finish_time:5.0f}  on replica "
            f"{record.replica}  after {record.migrations} migration(s)"
        )

    # Retrain every tenant alone and compare bit for bit -- including
    # the tenant whose training crossed a replica boundary.
    exact = True
    for serve_job in workload:
        reference = TinyLoRATransformer(
            TINY, np.random.default_rng(MODEL_SEED)
        )
        train_job_sequentially(reference, serve_job.numeric)
        final_model = models[result.records[serve_job.adapter_id].replica]
        online = final_model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        exact &= all(
            np.array_equal(online[key].a, solo[key].a)
            and np.array_equal(online[key].b, solo[key].b)
            for key in online
        )
    print(f"\nonline == sequential parameters, bit for bit: {exact} "
          "(losslessness across migration)")


if __name__ == "__main__":
    main()
