"""Quickstart: the FusedLoRA kernel as a drop-in LoRA layer replacement.

Builds one LoRA linear layer three ways -- unfused reference ("Torch
LoRA"), FusedLoRA, and FusedMultiLoRA with two adapters -- verifies they
produce identical numerics, and reports what each strategy would cost on
an H100 (kernel launches, DRAM traffic, roofline time).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    LoRAConfig,
    LoRALinear,
    LoRAShape,
    lora_profiles,
    pack_segments,
    total_traffic,
)
from repro.gpu import H100, simulate_kernel_sequence


def main() -> None:
    rng = np.random.default_rng(0)
    k, n, tokens = 64, 48, 256
    w = rng.standard_normal((k, n)) / np.sqrt(k)
    x = rng.standard_normal((tokens, k))

    # --- numerics: torch vs fused are bit-identical -----------------------
    outputs = {}
    for strategy in ("torch", "fused"):
        layer = LoRALinear(w, strategy=strategy, rng=np.random.default_rng(1))
        layer.add_adapter(LoRAConfig(rank=8, alpha=2.0, dropout=0.0,
                                     adapter_id=0))
        layer.adapters[0].b[:] = rng.standard_normal((8, n)) * 0.1
        outputs[strategy] = layer.forward(x)
    diff = np.abs(outputs["torch"] - outputs["fused"]).max()
    print(f"max |torch - fused| output difference: {diff:.2e}")

    # --- multi-adapter batch through one fused kernel ---------------------
    layer = LoRALinear(w, strategy="fused_multi", rng=np.random.default_rng(1))
    for adapter_id, rank in ((0, 8), (1, 4)):
        layer.add_adapter(LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                                     adapter_id=adapter_id))
    x0, x1 = x[:150], x[150:]
    packed, batch, views = pack_segments([(0, x0), (1, x1)], block_m=64)
    y = layer.forward_multi(packed, batch)
    grads = layer.backward_multi(np.ones_like(y))
    print(f"multi-LoRA batch: {batch.num_tiles} tiles, adapters "
          f"{batch.adapter_ids}, grads routed to {sorted(grads.da)}")

    # --- what this costs on a real GPU ------------------------------------
    shape = LoRAShape(m=8192, k=4096, n=4096, r=16)
    print("\nH100 cost model for one 4096x4096 LoRA linear, 8K tokens:")
    print(f"{'strategy':<12} {'kernels':>8} {'DRAM (MB)':>10} {'fwd+bwd (us)':>13}")
    for strategy in ("torch", "fused", "fused_multi"):
        profiles = [p for d in ("forward", "backward")
                    for p in lora_profiles(strategy, d, shape)]
        time_us = simulate_kernel_sequence(profiles, H100).total_time * 1e6
        print(f"{strategy:<12} {len(profiles):>8} "
              f"{total_traffic(profiles)/1e6:>10.0f} {time_us:>13.0f}")


if __name__ == "__main__":
    main()
