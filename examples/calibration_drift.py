"""Closed-loop calibration: watch the correction factor converge.

One tenant's sample-length distribution drifts mid-stream -- the first
half of its dataset is short xsum-like samples, the second half long
wikisum-like ones.  The a priori ``CostEstimator`` prices every wave
from the dataset-level length moments, which describe the *mixture*,
so the short phase is systematically overpredicted and the long phase
underpredicted.

A ``CalibrationTracker`` closes the loop: after every wave the
orchestrator feeds the (predicted, observed) pair back, the tracker
folds the ratio into a smoothed per-tenant correction factor, and the
estimator multiplies future prices by it.  This script prints that
factor converging -- down toward the truth in the short phase, then
chasing the regime change up through 1.0 in the long phase -- and
compares the corrected run's calibration against an uncorrected twin.

Run:  PYTHONPATH=src python examples/calibration_drift.py
"""

from repro.data import synthetic_dataset
from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CORRECTED_CALIBRATION_TOLERANCE,
    CalibrationTracker,
    CostEstimator,
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    StreamingSimExecutor,
)

NUM_STAGES = 4
CAPACITY = 8192
SEED = 11
SAMPLES = 96
GBS = 8


def drifting_job(adapter_id, seed):
    """A tenant whose length regime steps halfway through its stream."""
    short = synthetic_dataset(adapter_id, "xsum", SAMPLES // 2, seed=seed)
    long = synthetic_dataset(adapter_id, "wikisum", SAMPLES // 2, seed=seed + 1)
    lengths = [s.length for s in short.samples]
    lengths += [s.length for s in long.samples]
    dataset = FinetuneDataset(
        adapter_id=adapter_id,
        samples=[
            Sample(adapter_id=adapter_id, index=i, length=length)
            for i, length in enumerate(lengths)
        ],
        source="drift",
    )
    return AdapterJob(adapter_id, dataset, GBS)


def serve(cost, scheduler, tracker):
    config = OrchestratorConfig(
        scheduler=scheduler,
        window_batches=1,  # one global batch per wave: drift is visible
        estimator=CostEstimator.for_scheduler(cost, scheduler,
                                              calibration=tracker),
    )
    orchestrator = OnlineOrchestrator(
        StreamingSimExecutor(cost, NUM_STAGES), config
    )
    workload = [ServeJob(job=drifting_job(0, SEED), arrival_time=0.0)]
    if tracker is None:
        result = orchestrator.run(workload)
    else:
        # Drive the loop by hand so we can print the factor per wave
        # (the same record OrchestratorResult.wave_estimates carries).
        orchestrator.start(workload)
        print("wave   predicted   observed   correction (tenant 0)")
        printed = 0
        while orchestrator.step():
            estimates = orchestrator.wave_estimates
            if len(estimates) > printed:
                printed = len(estimates)
                predicted, observed = estimates[-1]
                factor = tracker.tenant_corrections().get(0, 1.0)
                print(f"{printed:>4}   {predicted:>9.4f}   "
                      f"{observed:>8.4f}   {factor:>10.3f}")
        result = orchestrator.finish()
    assert result.violations == 0
    return result


def main():
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    scheduler = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                                use_milp=False)

    print("a tenant whose length distribution steps mid-run "
          f"({SAMPLES // 2} short samples, then {SAMPLES // 2} long):\n")
    tracker = CalibrationTracker(alpha=0.6)
    corrected = serve(cost, scheduler, tracker)
    uncorrected = serve(cost, scheduler, tracker=None)

    print("\ncalibration (predicted/observed wave seconds; 1.0 = honest):")
    print(f"  uncorrected ratio     {uncorrected.calibration_ratio():.3f}   "
          f"mean per-wave error {uncorrected.mean_wave_calibration_error():.3f}")
    print(f"  corrected ratio       {corrected.calibration_ratio():.3f}   "
          f"mean per-wave error {corrected.mean_wave_calibration_error():.3f}")
    print(f"  final tenant factor   "
          f"{tracker.tenant_corrections()[0]:.3f}")

    assert (
        corrected.mean_wave_calibration_error()
        < uncorrected.mean_wave_calibration_error()
    )
    ratio = corrected.calibration_ratio()
    assert (
        1 / CORRECTED_CALIBRATION_TOLERANCE
        <= ratio
        <= CORRECTED_CALIBRATION_TOLERANCE
    )
    print("\nthe feedback loop tracked the drift: per-wave error shrank "
          "and the corrected run sits inside the tightened "
          f"[{1 / CORRECTED_CALIBRATION_TOLERANCE:.2f}, "
          f"{CORRECTED_CALIBRATION_TOLERANCE}] band")


if __name__ == "__main__":
    main()
