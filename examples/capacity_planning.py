"""Capacity planning for a 70B multi-LoRA deployment on 4 H100s.

Mirrors the Figure 8 workflow: given four tenants' datasets, the
parallelism profiler sweeps token-capacity candidates against the
discrete-event simulator, picks the best, and the resulting plan is
compared against the Megatron-LM and mLoRA baselines.

Run:  python examples/capacity_planning.py
"""

from repro.data import synthetic_dataset
from repro.distsim import (
    ClusterSpec,
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
)
from repro.gpu import H100
from repro.models import LLAMA3_70B
from repro.planner import propose_capacity
from repro.scheduler import AdapterJob, SchedulerConfig


def main() -> None:
    datasets = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
    jobs = [
        AdapterJob(a, synthetic_dataset(a, name, 32, seed=7), 8)
        for a, name in enumerate(datasets)
    ]
    cluster = ClusterSpec(gpu=H100, num_gpus=4)

    report = propose_capacity(jobs, LLAMA3_70B, cluster)
    print("capacity sweep (probe prefix, greedy packing):")
    for candidate in report.candidates:
        marker = " <-- selected" if candidate.capacity == report.best_capacity else ""
        print(f"  {candidate.capacity:>6} tokens: "
              f"{candidate.tokens_per_second:7.0f} tok/s, "
              f"bubble {candidate.bubble_ratio:.1%}{marker}")

    config = SchedulerConfig(capacity=report.best_capacity, num_stages=4,
                             milp_timeout=0.5)
    systems = {
        "Megatron-LM FSDP": run_megatron_fsdp(jobs, LLAMA3_70B, cluster),
        "Megatron-LM PP": run_megatron_pp(jobs, LLAMA3_70B, cluster),
        "mLoRA": run_mlora(jobs, LLAMA3_70B, cluster),
        "LoRAFusion": run_lorafusion(jobs, LLAMA3_70B, cluster,
                                     scheduler_config=config,
                                     capacity=report.best_capacity),
    }
    base = systems["Megatron-LM FSDP"].tokens_per_second
    print("\nend-to-end comparison (4 adapters, LLaMa-3.1-70B, 4xH100):")
    for name, result in systems.items():
        bubble = (f", bubble {result.bubble_ratio:.1%}"
                  if result.bubble_ratio is not None else "")
        print(f"  {name:<18} {result.tokens_per_second:7.0f} tok/s "
              f"({result.tokens_per_second / base:.2f}x){bubble}")


if __name__ == "__main__":
    main()
