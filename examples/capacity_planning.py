"""Capacity planning, offline and online.

Part 1 mirrors the Figure 8 workflow: given four tenants' datasets, the
parallelism profiler sweeps token-capacity candidates against the
discrete-event simulator, picks the best, and the resulting plan is
compared against the Megatron-LM and mLoRA baselines.

Part 2 plans *fleet* capacity with the offline autotuner
(``docs/tuning.md``): given a deadline-carrying serve trace and an SLO,
``repro.tune.recommend`` searches the serve-config space (fleet size x
routing x ordering x admission gate), replays survivors through the
event kernel, and returns the cheapest Pareto-front config that meets
the target -- the "smallest fleet that serves this trace within SLO"
question answered from a trace prefix, before buying hardware.

Run:  python examples/capacity_planning.py
"""

from repro.data import synthetic_dataset
from repro.distsim import (
    ClusterSpec,
    run_lorafusion,
    run_megatron_fsdp,
    run_megatron_pp,
    run_mlora,
)
from repro.gpu import H100
from repro.models import LLAMA3_8B, LLAMA3_70B
from repro.models.layer_costs import LayerCostModel
from repro.planner import propose_capacity
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import CostEstimator, ServeJob
from repro.tune import SLOTarget, SearchSpace, recommend


def token_capacity() -> None:
    """Part 1: pick the fused-batch token capacity for a 70B system."""
    datasets = ["xsum", "cnn_dailymail", "wikisum", "mixed"]
    jobs = [
        AdapterJob(a, synthetic_dataset(a, name, 32, seed=7), 8)
        for a, name in enumerate(datasets)
    ]
    cluster = ClusterSpec(gpu=H100, num_gpus=4)

    report = propose_capacity(jobs, LLAMA3_70B, cluster)
    print("capacity sweep (probe prefix, greedy packing):")
    for candidate in report.candidates:
        marker = " <-- selected" if candidate.capacity == report.best_capacity else ""
        print(f"  {candidate.capacity:>6} tokens: "
              f"{candidate.tokens_per_second:7.0f} tok/s, "
              f"bubble {candidate.bubble_ratio:.1%}{marker}")

    config = SchedulerConfig(capacity=report.best_capacity, num_stages=4,
                             milp_timeout=0.5)
    systems = {
        "Megatron-LM FSDP": run_megatron_fsdp(jobs, LLAMA3_70B, cluster),
        "Megatron-LM PP": run_megatron_pp(jobs, LLAMA3_70B, cluster),
        "mLoRA": run_mlora(jobs, LLAMA3_70B, cluster),
        "LoRAFusion": run_lorafusion(jobs, LLAMA3_70B, cluster,
                                     scheduler_config=config,
                                     capacity=report.best_capacity),
    }
    base = systems["Megatron-LM FSDP"].tokens_per_second
    print("\nend-to-end comparison (4 adapters, LLaMa-3.1-70B, 4xH100):")
    for name, result in systems.items():
        bubble = (f", bubble {result.bubble_ratio:.1%}"
                  if result.bubble_ratio is not None else "")
        print(f"  {name:<18} {result.tokens_per_second:7.0f} tok/s "
              f"({result.tokens_per_second / base:.2f}x){bubble}")


def fleet_capacity() -> None:
    """Part 2: pick the smallest serve fleet that meets the SLO."""
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    scheduler = SchedulerConfig(capacity=8192, num_stages=4, use_milp=False)
    pricer = CostEstimator.for_scheduler(cost, scheduler)

    # A trace prefix: six tenants, deadlines at 4x their solo price.
    trace = []
    datasets = ["xsum", "cnn_dailymail", "xsum", "mixed", "xsum", "wikisum"]
    for adapter, name in enumerate(datasets):
        job = AdapterJob(adapter, synthetic_dataset(adapter, name, 16, seed=7),
                         global_batch_size=8)
        arrival = 0.2 * adapter
        trace.append(ServeJob(job=job, arrival_time=arrival,
                              deadline=arrival + 4.0 * pricer.job_seconds(job)))

    space = SearchSpace(
        fleet_sizes=(1, 2, 3),
        routings=("round_robin", "cost_aware"),
        orderings=("fcfs", "deadline"),
        deadline_gates=(False, True),
    )
    slo = SLOTarget(min_goodput=len(trace))  # every deadline met, no shedding
    plan = recommend(trace, slo, cost=cost, scheduler=scheduler, space=space)

    search = plan.report
    print(f"\nfleet planning over {search.candidates} candidates "
          f"({search.collapsed} collapsed, {search.pruned} pruned, "
          f"{search.simulated} simulated); Pareto front:")
    for trial in search.front:
        point = trial.point
        print(f"  {trial.config.label():<38} JCT {point.mean_jct:6.3f}s  "
              f"goodput {point.goodput}  ${point.dollars:.6f}")
    verdict = "meets" if plan.feasible else "CANNOT meet"
    print(f"recommended: {plan.config.label()} "
          f"({plan.config.num_replicas} replica(s), {verdict} "
          f"goodput >= {slo.min_goodput}) at ${plan.point.dollars:.6f}")


def main() -> None:
    token_capacity()
    fleet_capacity()


if __name__ == "__main__":
    main()
