"""Elastic serving: the fleet buys and sells replicas while jobs run.

One H100 replica faces a flash crowd.  A FleetAutoscaler watches the
calibrated seconds-valued backlog and, within a $/GPU-hour budget, buys
replicas from two capacity pools -- on-demand H100s and cheaper spot
L40S capacity that runs every step slower (the pool's ``speed_factor``
seeds the calibration tracker, so the cost-aware router prices the slow
hardware honestly from its first wave).  Mid-run a scripted
ReclamationNotice takes spot capacity back under a grace deadline: the
victims drain to step boundaries, eject their tenants, and the fleet
re-places every one of them -- nothing is lost.  When the burst passes,
the scaler retires surplus replicas and the result prices the whole run
in GPU-seconds and dollars.

Scale-up, retirement, and reclamation all flow through the fleet's
event kernel as first-class events, so the elastic run stays fully
deterministic -- rerun it and every job record is identical.

Run:  PYTHONPATH=src python examples/autoscale_serving.py
"""

import numpy as np

from repro.data.dataset import FinetuneDataset, Sample
from repro.gpu import H100
from repro.gpu.specs import get_gpu
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    CapacityPool,
    CostAwareRouting,
    CostEstimator,
    FleetAutoscaler,
    OrchestratorConfig,
    ReclamationNotice,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 2
SLOTS = 4
COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=NUM_STAGES, use_milp=False)


def flash_crowd(num_jobs, rate, seed):
    """A Poisson burst of one-batch tenants with mixed lengths."""
    rng = np.random.default_rng(seed)
    workload = []
    clock = 0.0
    for adapter_id in range(num_jobs):
        clock += float(rng.exponential(1.0 / rate))
        length = int(rng.integers(64, 512))
        job = AdapterJob(
            adapter_id,
            FinetuneDataset(adapter_id, [Sample(adapter_id, 0, length)]),
            1,
        )
        workload.append(ServeJob(job=job, arrival_time=clock))
    return workload


def main() -> None:
    on_demand = CapacityPool("h100", "h100", hourly_rate=6.0, limit=4)
    spot = CapacityPool("l40s-spot", "l40s", hourly_rate=1.5, limit=4,
                        speed_factor=5.0, spot=True)
    scaler = FleetAutoscaler(
        pools=(on_demand, spot),
        budget_per_hour=30.0,
        initial_pools=("h100",),
        scale_up_backlog=0.5,
        scale_down_backlog=0.1,
        provision_delay=0.1,
        cooldown=0.2,
        # At t=1.0 the provider takes 1 spot replica back; its tenants
        # have a 0.5s grace window to evacuate losslessly.
        reclamations=(ReclamationNotice(time=1.0, count=1, deadline=0.5),),
    )
    estimator = CostEstimator.for_scheduler(COST, SCHED)
    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=SCHED,
            window_batches=1,
            admission=SlotAdmission(SLOTS),
            estimator=estimator,
        ),
        routing=CostAwareRouting(estimator),
        migration_time_threshold=30.0,
        autoscaler=scaler,
        # Replicas bought mid-run simulate the pool's actual GPU.
        executor_factory=lambda pool: StreamingSimExecutor(
            LayerCostModel(LLAMA3_8B, get_gpu(pool.gpu),
                           strategy="fused_multi"),
            NUM_STAGES,
        ),
    )
    workload = flash_crowd(num_jobs=240, rate=150.0, seed=11)
    replica_set = ReplicaSet(
        [StreamingSimExecutor(COST, NUM_STAGES)], config
    )
    result = replica_set.run(workload)

    finished = sum(
        1 for r in result.records.values() if r.finish_time is not None
    )
    print(
        f"served {finished}/{len(workload)} tenants starting from 1 replica: "
        f"{result.joins} join(s), {result.retires} retirement(s), "
        f"{result.reclaims} spot reclaim(s) "
        f"({result.forced_evacuations} forced)"
    )
    latency = result.mean_reclaim_latency()
    if latency is not None:
        print(f"mean reclamation-to-empty latency {latency:.3f}s "
              "(every evacuated tenant re-placed, none lost)")
    for index, (start, end) in enumerate(result.replica_intervals):
        print(f"  replica {index}: active [{start:7.3f}, {end:7.3f})")
    print(
        f"fleet makespan {result.makespan:.2f}s, mean JCT "
        f"{result.mean_completion_time():.3f}s, utilization "
        f"{result.utilization():.1%}"
    )
    print(
        f"bill: {result.gpu_seconds:.2f} GPU-seconds = "
        f"${result.dollars_spent:.6f} at pool rates "
        f"(${on_demand.hourly_rate}/h on-demand, ${spot.hourly_rate}/h spot)"
    )


if __name__ == "__main__":
    main()
