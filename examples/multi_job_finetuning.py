"""Multi-job LoRA fine-tuning, end to end and numerically exact.

Three tenants fine-tune adapters of different ranks on the same frozen
base model.  The multi-LoRA scheduler packs their samples into balanced,
dependency-safe microbatches; the engine trains them jointly through the
FusedMultiLoRA kernels.  We then retrain each adapter alone and show the
loss trajectories match exactly -- the paper's losslessness guarantee.

Run:  python examples/multi_job_finetuning.py
"""

import numpy as np

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, MultiLoRAScheduler, SchedulerConfig


def make_job(rng, adapter_id, rank, num_samples, gbs):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    return NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    jobs = [make_job(rng, 0, 2, 8, 2), make_job(rng, 1, 4, 8, 4),
            make_job(rng, 2, 3, 6, 3)]

    scheduler_jobs = [
        AdapterJob(
            job.adapter_id,
            FinetuneDataset(job.adapter_id, [
                Sample(job.adapter_id, i, len(t))
                for i, t in enumerate(job.token_streams)
            ]),
            job.global_batch_size,
        )
        for job in jobs
    ]
    config = SchedulerConfig(capacity=64, padding_multiple=1, num_stages=2,
                             use_milp=True, milp_timeout=1.0, group_size=2)
    schedule = MultiLoRAScheduler(scheduler_jobs, config).schedule()
    print(f"schedule: {len(schedule)} microbatches, "
          f"{schedule.stats['milp_selected']:.0f} MILP-packed steps, "
          f"{schedule.stats['noops_inserted']:.0f} no-ops")

    joint_model = TinyLoRATransformer(TINY, np.random.default_rng(42))
    engine = MultiLoRAEngine(joint_model, jobs)
    joint = engine.run(schedule)

    sequential_model = TinyLoRATransformer(TINY, np.random.default_rng(42))
    for job in jobs:
        result = train_job_sequentially(sequential_model, job)
        joint_losses = joint.losses[job.adapter_id]
        seq_losses = result.losses[job.adapter_id]
        drift = max(abs(a - b) for a, b in zip(joint_losses, seq_losses))
        print(f"adapter {job.adapter_id} (rank {job.lora.rank}): "
              f"{joint.steps[job.adapter_id]} steps, "
              f"losses {['%.3f' % l for l in joint_losses]}, "
              f"max drift vs solo training {drift:.2e}")

    params_match = all(
        np.allclose(
            joint_model.adapter_state(j.adapter_id)[key].a,
            sequential_model.adapter_state(j.adapter_id)[key].a,
            atol=1e-10,
        )
        for j in jobs
        for key in joint_model.adapter_state(j.adapter_id)
    )
    print(f"\njoint == sequential parameters: {params_match} "
          "(the paper's losslessness guarantee)")


if __name__ == "__main__":
    main()
