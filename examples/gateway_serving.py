"""Live gateway serving: asyncio submits, backpressure, and a drain.

A :class:`~repro.serve.ServeGateway` is the live front door to the same
fleet simulator every batch example uses: callers ``await submit()``
fine-tuning jobs as they arrive in wall-clock (here: a scripted
:class:`~repro.serve.ManualClock`, so the run is deterministic), and
the door applies per-tenant token-bucket rate limiting, a bounded
ingress queue, and a fairness quota *before* a job ever reaches the
fleet.  Refusals come back as :class:`~repro.serve.GatewayOverload`
values -- a ``429`` with a ``retry_after`` hint, never an exception --
and land in an auditable shed ledger.

Two tenants share the door.  ``acme`` submits politely; ``globex``
floods and gets rate-limited.  One held job is cancelled inside its
hold window (it never reaches the fleet), and a ``stream_progress``
watcher follows one job's lifecycle concurrently with the submitting
task.  The drain releases everything still held, runs the fleet dry,
and folds the gateway ledger into the final result.

The recorded trace of a drained session replays bit-identically through
the batch ``ReplicaSet.run`` path -- that contract is enforced by
``tests/integration/test_gateway_conformance.py``.

Run:  PYTHONPATH=src python examples/gateway_serving.py
"""

import asyncio

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import GatewayOverload, GatewayTicket, ManualClock, ServeConfig

COST = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
SCHED = SchedulerConfig(capacity=8192, num_stages=2, use_milp=False)
DATASETS = ("xsum", "cnn_dailymail", "wikisum", "mixed")


def make_job(adapter_id, samples=8, gbs=4):
    dataset = synthetic_dataset(
        adapter_id, DATASETS[adapter_id % len(DATASETS)], samples, seed=7
    )
    return AdapterJob(adapter_id, dataset, gbs)


async def watch(gateway, adapter_id):
    """Follow one job's status transitions until it is terminal."""
    async for status in gateway.stream_progress(adapter_id):
        print(f"  watcher: adapter {adapter_id} -> {status}")


async def drive():
    clock = ManualClock()
    config = ServeConfig(
        num_replicas=2,
        slots=2,
        window_batches=1,
        gateway_rate=2.0,  # per-tenant token bucket: 2 submits/s...
        gateway_burst=3.0,  # ...after a 3-token opening burst
        gateway_queue_bound=4,
        gateway_fairness=0.6,  # no tenant holds > 60% of the backlog
        gateway_hold=0.2,  # 0.2s cancellation window per accept
    )
    gateway = config.build_gateway(COST, SCHED, clock=clock)

    # A watcher streams adapter 0's lifecycle while the driver submits.
    watcher = asyncio.create_task(watch(gateway, 0))

    adapter_id = 0
    for step, tenant in enumerate(
        ["acme", "globex", "globex", "globex", "globex", "acme"]
    ):
        outcome = await gateway.submit(make_job(adapter_id), tenant=tenant)
        if isinstance(outcome, GatewayTicket):
            print(
                f"t={clock.now():.2f} {tenant}: adapter {adapter_id} "
                f"accepted, releases at t={outcome.release_time:.2f}"
            )
        else:
            hint = (
                f", retry after {outcome.retry_after:.2f}s"
                if outcome.retry_after is not None
                else ""
            )
            print(
                f"t={clock.now():.2f} {tenant}: adapter {adapter_id} "
                f"shed ({outcome.reason}{hint})"
            )
        adapter_id += 1
        clock.advance(0.15)
        await asyncio.sleep(0)  # let the watcher observe this step

    # Adapter 5 is still inside its hold window: cancel it at the door.
    if await gateway.cancel(5):
        print(f"t={clock.now():.2f} acme: adapter 5 cancelled in its hold window")

    result = await gateway.drain()
    await watcher

    stats = result.stats
    sheds = ", ".join(f"{k}={v}" for k, v in stats.sheds.items() if v)
    print(
        f"\nledger: {stats.submitted} submitted = {stats.accepted} accepted "
        f"+ {stats.shed_total()} shed ({sheds or 'none'}); "
        f"{stats.released} released, {stats.cancelled} cancelled"
    )
    latencies = result.admission_latency_percentiles()
    print(
        "admission latency: "
        + ", ".join(f"{k}={v * 1e6:.0f}us" for k, v in latencies.items())
    )
    fleet = result.fleet
    print(
        f"fleet: {len(result.records)} job(s) served, makespan "
        f"{fleet.makespan:.2f}s, mean JCT {fleet.mean_completion_time():.3f}s, "
        f"pack efficiency {fleet.pack_efficiency():.1%}"
    )
    trace = gateway.recorded_trace()
    print(
        f"recorded trace: {len(trace)} arrival(s) at "
        + ", ".join(f"t={job.arrival_time:.2f}" for job in trace)
    )


if __name__ == "__main__":
    asyncio.run(drive())
