"""Online multi-tenant serving, end to end and numerically exact.

Tenants submit LoRA fine-tuning jobs over time.  The orchestrator admits
them against an adapter-slot budget, re-plans the microbatch schedule at
every window boundary over the live jobs only, splices each window into
the in-flight stream without violating the bubble lemma, and retires
tenants the moment their last optimizer step lands.  Despite all that
churn, every tenant's final adapter weights are *bit-identical* to
training the tenant alone -- losslessness, online.

Run:  python examples/online_serving.py
"""

import numpy as np

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    ServeJob,
    SlotAdmission,
)


def make_tenant(rng, adapter_id, rank, num_samples, gbs, arrival):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    workload = [
        make_tenant(rng, 0, 2, 8, 2, arrival=0.0),
        make_tenant(rng, 1, 4, 8, 4, arrival=0.0),
        make_tenant(rng, 2, 3, 6, 3, arrival=250.0),  # arrives mid-stream
        make_tenant(rng, 3, 2, 6, 2, arrival=600.0),  # arrives late
    ]

    model = TinyLoRATransformer(TINY, np.random.default_rng(42))
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False, group_size=2),
        window_batches=1,
        admission=SlotAdmission(3),
    )
    orchestrator = OnlineOrchestrator(NumericExecutor(engine), config)
    result = orchestrator.run(workload)

    print(
        f"served {len(result.records)} tenants in {result.replans} waves: "
        f"{result.total_microbatches} microbatch slots "
        f"({result.noop_microbatches} no-ops, "
        f"{result.splice_noops} from splicing), "
        f"{result.violations} bubble-lemma violations"
    )
    print(f"token-clock makespan {result.makespan:.0f}, "
          f"mean JCT {result.mean_completion_time():.0f}, "
          f"mean slot wait {result.mean_queueing_delay():.0f}\n")
    for adapter_id, record in sorted(result.records.items()):
        print(
            f"tenant {adapter_id}: arrived {record.arrival_time:6.0f}  "
            f"admitted {record.admit_time:6.0f}  "
            f"finished {record.finish_time:6.0f}  "
            f"({record.num_batches} steps, {record.total_tokens} tokens)"
        )

    # Retrain every tenant alone and compare bit for bit.
    reference = TinyLoRATransformer(TINY, np.random.default_rng(42))
    exact = True
    for serve_job in workload:
        train_job_sequentially(reference, serve_job.numeric)
        online = model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        exact &= all(
            np.array_equal(online[key].a, solo[key].a)
            and np.array_equal(online[key].b, solo[key].b)
            for key in online
        )
    print(f"\nonline == sequential parameters, bit for bit: {exact} "
          "(losslessness under churn)")


if __name__ == "__main__":
    main()
