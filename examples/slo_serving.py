"""SLO-aware serving: a high-class tenant preempts, losslessly.

One numeric pipeline with a single adapter slot serves two tenants: a
long best-effort job (priority 0) and a short high-class job (priority
1) arriving mid-run.  Under FCFS the high-class tenant would wait for
the long job to finish; under the preemptive priority policy it evicts
the long job instead -- the orchestrator exports the victim's adapter
weights, AdamW moments, and progress counters at an optimizer-step
boundary, parks them, serves the high-class tenant, and then resumes
the victim exactly where it stopped.  Both tenants finish with adapter
weights bit-identical to training each alone: preemption is lossless.

Run:  PYTHONPATH=src python examples/slo_serving.py
"""

import numpy as np

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    FCFSOrdering,
    NumericExecutor,
    OnlineOrchestrator,
    OrchestratorConfig,
    PriorityOrdering,
    ServeJob,
    SlotAdmission,
)

MODEL_SEED = 42


def make_tenant(rng, adapter_id, rank, num_samples, gbs, arrival, priority):
    streams = [
        rng.integers(0, TINY.vocab_size, int(rng.integers(6, 16)))
        for _ in range(num_samples)
    ]
    numeric = NumericJob(
        adapter_id=adapter_id,
        lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                        adapter_id=adapter_id),
        token_streams=streams,
        global_batch_size=gbs,
    )
    dataset = FinetuneDataset(
        adapter_id,
        [Sample(adapter_id, i, len(t)) for i, t in enumerate(streams)],
    )
    return ServeJob(
        job=AdapterJob(adapter_id, dataset, gbs),
        arrival_time=arrival,
        numeric=numeric,
        priority=priority,
    )


def make_workload():
    rng = np.random.default_rng(0)
    return [
        make_tenant(rng, 0, 2, 12, 2, arrival=0.0, priority=0),  # long
        make_tenant(rng, 1, 3, 4, 2, arrival=1.0, priority=1),   # urgent
    ]


def serve(workload, ordering, mid_wave):
    model = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
    engine = MultiLoRAEngine(model, exact_accumulation=True)
    config = OrchestratorConfig(
        scheduler=SchedulerConfig(capacity=64, padding_multiple=1,
                                  num_stages=2, use_milp=False, group_size=2),
        window_batches=1,
        admission=SlotAdmission(1),  # one slot: contention is the point
        ordering=ordering,
        mid_wave_admission=mid_wave,
    )
    orchestrator = OnlineOrchestrator(NumericExecutor(engine), config)
    return model, orchestrator.run(workload)


def main() -> None:
    workload = make_workload()
    _, fcfs = serve(make_workload(), FCFSOrdering(), mid_wave=False)
    model, slo = serve(workload, PriorityOrdering(), mid_wave=True)

    print("high-class tenant (adapter 1), one adapter slot:")
    print(f"  FCFS:              JCT {fcfs.records[1].completion_time:6.0f}, "
          f"{fcfs.preemptions} preemption(s)")
    print(f"  priority+preempt:  JCT {slo.records[1].completion_time:6.0f}, "
          f"{slo.preemptions} preemption(s), "
          f"{slo.wave_cuts} wave cut(s)\n")
    for adapter_id, record in sorted(slo.records.items()):
        print(
            f"tenant {adapter_id}: class {record.priority}  arrived "
            f"{record.arrival_time:4.0f}  finished {record.finish_time:5.0f}  "
            f"preempted {record.preemptions}x"
        )
    print(f"\nper-class mean JCT: {slo.jct_by_class()}")
    print(f"bubble-lemma violations: {slo.violations}")

    # Retrain each tenant alone and compare bit for bit -- including the
    # tenant that was evicted, parked, and resumed.
    exact = True
    for serve_job in workload:
        reference = TinyLoRATransformer(TINY, np.random.default_rng(MODEL_SEED))
        train_job_sequentially(reference, serve_job.numeric)
        online = model.adapter_state(serve_job.adapter_id)
        solo = reference.adapter_state(serve_job.adapter_id)
        exact &= all(
            np.array_equal(online[key].a, solo[key].a)
            and np.array_equal(online[key].b, solo[key].b)
            for key in online
        )
    print(f"\nonline == sequential parameters, bit for bit: {exact} "
          "(losslessness across preemption)")


if __name__ == "__main__":
    main()
