"""Explore the kernel-level design space of Figure 9.

Compares the three fusion strategies the paper considers for the LoRA
forward pass -- full fusion with recomputation, full fusion with
inter-block synchronisation, and the chosen split-graph fusion -- plus the
unfused baseline, across GPUs with different machine balances.  Shows why
split-graph fusion wins and why the win grows on compute-rich hardware.

Run:  python examples/kernel_cost_explorer.py
"""

from repro.core import LoRAShape, lora_profiles
from repro.core.traffic import (
    full_fusion_recompute_forward,
    full_fusion_sync_forward,
)
from repro.gpu import get_gpu, simulate_kernel_sequence


def forward_time(profiles, gpu):
    return simulate_kernel_sequence(profiles, gpu).total_time * 1e6


def main() -> None:
    shape = LoRAShape(m=8192, k=4096, n=4096, r=16)
    strategies = {
        "unfused (Torch LoRA)": lora_profiles("torch", "forward", shape),
        "full fusion + recompute": full_fusion_recompute_forward(shape),
        "full fusion + sync": full_fusion_sync_forward(shape),
        "split-graph (FusedLoRA)": lora_profiles("fused", "forward", shape),
    }
    gpus = ["h100", "a100-sxm", "l40s", "rtx3090"]

    header = f"{'forward strategy':<26}" + "".join(f"{g:>11}" for g in gpus)
    print(header)
    print("-" * len(header))
    for name, profiles in strategies.items():
        row = f"{name:<26}"
        for key in gpus:
            row += f"{forward_time(profiles, get_gpu(key)):>10.0f}u"
        print(row)

    print("\nspeedup of split-graph fusion over the unfused baseline:")
    for key in gpus:
        gpu = get_gpu(key)
        speedup = (forward_time(strategies["unfused (Torch LoRA)"], gpu)
                   / forward_time(strategies["split-graph (FusedLoRA)"], gpu))
        print(f"  {gpu.name:<32} {speedup:.2f}x "
              f"(machine balance {gpu.machine_balance():.0f} flop/byte)")


if __name__ == "__main__":
    main()
