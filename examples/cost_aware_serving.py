"""Cost-driven control plane: route, admit, and window by expected time.

Two simulated pipeline replicas serve a heterogeneous tenant mix --
heavy tenants owing *few* global batches of long samples and light
tenants owing *many* batches of short ones.  A batch-counting router
systematically misjudges that mix; the ``CostEstimator`` prices every
job in expected seconds from the calibrated layer cost model, so:

* ``CostAwareRouting`` places each arrival where the fleet's expected
  backlog (in seconds) grows least;
* ``DeadlineFeasibilityAdmission`` sheds an arrival whose deadline its
  expected remaining time can no longer meet (terminal ``rejected``
  state -- no slot wasted on doomed work);
* ``AdaptiveWindowConfig`` grows the planning window while the tenant
  set is stable and shrinks it under churn;
* every planning wave records a predicted/observed time pair, so the
  run reports how honest the estimator was
  (``OrchestratorResult.calibration_ratio``).

Run:  PYTHONPATH=src python examples/cost_aware_serving.py
"""

from repro.data import synthetic_dataset
from repro.gpu import H100
from repro.models import LLAMA3_8B
from repro.models.layer_costs import LayerCostModel
from repro.scheduler import AdapterJob, SchedulerConfig
from repro.serve import (
    AdaptiveWindowConfig,
    CostAwareRouting,
    CostEstimator,
    DeadlineFeasibilityAdmission,
    DeadlineOrdering,
    JobOutcome,
    OnlineOrchestrator,
    OrchestratorConfig,
    ReplicaSet,
    ReplicaSetConfig,
    ServeJob,
    SlotAdmission,
    StreamingSimExecutor,
)

NUM_STAGES = 4
CAPACITY = 8192
SEED = 11


def main():
    cost = LayerCostModel(LLAMA3_8B, H100, strategy="fused_multi")
    scheduler = SchedulerConfig(capacity=CAPACITY, num_stages=NUM_STAGES,
                                use_milp=False)
    estimator = CostEstimator.for_scheduler(cost, scheduler)

    # -- price the tenants: equal batch counts, very different seconds --
    heavy = AdapterJob(0, synthetic_dataset(0, "wikisum", 16, seed=SEED), 8)
    light = AdapterJob(1, synthetic_dataset(1, "xsum", 16, seed=SEED), 8)
    print("expected service seconds (both tenants owe "
          f"{heavy.num_global_batches()} global batches):")
    print(f"  heavy (wikisum): {estimator.job_seconds(heavy):.3f}s")
    print(f"  light (xsum):    {estimator.job_seconds(light):.3f}s")

    # -- serve a heterogeneous mix across two replicas, cost-aware ------
    workload = []
    for a in range(8):
        is_heavy = a % 2 == 0
        dataset = synthetic_dataset(a, "wikisum" if is_heavy else "xsum",
                                    32, seed=SEED)
        job = AdapterJob(a, dataset, 16 if is_heavy else 4)
        deadline = 0.05 * a + 12 * estimator.job_seconds(job)
        workload.append(
            ServeJob(job=job, arrival_time=0.05 * a, deadline=deadline)
        )
    # One hopeless straggler: its deadline is far below its own service
    # time, so feasibility admission sheds it at arrival.
    doomed_job = AdapterJob(8, synthetic_dataset(8, "wikisum", 48, seed=SEED),
                            8)
    workload.append(ServeJob(job=doomed_job, arrival_time=0.1, deadline=0.2))

    config = ReplicaSetConfig(
        orchestrator=OrchestratorConfig(
            scheduler=scheduler,
            window_batches=1,
            admission=DeadlineFeasibilityAdmission(SlotAdmission(2)),
            ordering=DeadlineOrdering(),
            estimator=estimator,
            adaptive_window=AdaptiveWindowConfig(min_batches=1,
                                                 max_batches=4),
        ),
        routing=CostAwareRouting(estimator),
    )
    executors = [StreamingSimExecutor(cost, NUM_STAGES) for _ in range(2)]
    result = ReplicaSet(executors, config).run(workload)

    assert result.violations == 0
    print(f"\nserved {len(result.records)} tenants on 2 replicas:")
    print(f"  mean JCT            {result.mean_completion_time():.3f}s")
    print(f"  deadline goodput    {result.deadline_goodput()} on-time")
    print(f"  served miss rate    {result.served_deadline_miss_rate():.2f}")
    print(f"  shed (rejected)     {result.rejected}")
    ratio = result.calibration_ratio()
    print(f"  calibration ratio   {ratio:.2f} (predicted/observed seconds)")

    doomed = result.records[8]
    assert doomed.outcome is JobOutcome.REJECTED
    print("\nthe hopeless tenant was shed before ever taking a slot "
          f"(rejected_time={doomed.rejected_time:.2f}), and every served "
          "tenant finished:")
    for aid, record in sorted(result.records.items()):
        if record.outcome is JobOutcome.REJECTED:
            continue
        assert record.finish_time is not None
        late = (record.deadline is not None
                and record.finish_time > record.deadline)
        print(f"  tenant {aid}: replica {record.replica}, "
              f"JCT {record.completion_time:.3f}s"
              + (" (missed deadline)" if late else ""))


if __name__ == "__main__":
    main()
