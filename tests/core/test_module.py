"""Tests for the plug-and-play LoRALinear module."""

import numpy as np
import pytest

from repro.core import LoRAConfig, LoRALinear, pack_segments
from repro.errors import KernelConfigError

K, N = 12, 10


@pytest.fixture
def w():
    return np.random.default_rng(0).standard_normal((K, N)) / np.sqrt(K)


def make_layer(w, strategy="fused", n_adapters=1, dropout=0.0):
    layer = LoRALinear(w, strategy=strategy, rng=np.random.default_rng(1))
    for i in range(n_adapters):
        layer.add_adapter(LoRAConfig(rank=3 + i, alpha=1.0, dropout=dropout,
                                     adapter_id=i))
    return layer


class TestConstruction:
    def test_rejects_bad_strategy(self, w):
        with pytest.raises(KernelConfigError):
            LoRALinear(w, strategy="magic")

    def test_rejects_non_matrix_weight(self):
        with pytest.raises(KernelConfigError):
            LoRALinear(np.zeros(5))

    def test_duplicate_adapter_rejected(self, w):
        layer = make_layer(w)
        with pytest.raises(KernelConfigError, match="already exists"):
            layer.add_adapter(LoRAConfig(adapter_id=0))

    def test_feature_dims(self, w):
        layer = make_layer(w)
        assert layer.in_features == K
        assert layer.out_features == N


class TestStrategiesAgree:
    def test_torch_and_fused_outputs_match(self, w):
        x = np.random.default_rng(2).standard_normal((8, K))
        y_torch = make_layer(w, "torch").forward(x)
        y_fused = make_layer(w, "fused").forward(x)
        np.testing.assert_allclose(y_torch, y_fused, atol=1e-12)

    def test_torch_and_fused_grads_match(self, w):
        x = np.random.default_rng(3).standard_normal((8, K))
        results = {}
        for strategy in ("torch", "fused"):
            layer = make_layer(w, strategy)
            # Fresh adapters are B=0, so re-seed A/B with real values.
            rng = np.random.default_rng(42)
            layer.adapters[0].a[:] = rng.standard_normal((K, 3))
            layer.adapters[0].b[:] = rng.standard_normal((3, N))
            y = layer.forward(x)
            results[strategy] = layer.backward(np.sin(y))
        np.testing.assert_allclose(results["torch"].dx, results["fused"].dx,
                                   atol=1e-12)
        np.testing.assert_allclose(results["torch"].da, results["fused"].da,
                                   atol=1e-12)


class TestMultiPath:
    def test_multi_forward_and_backward(self, w):
        layer = make_layer(w, "fused_multi", n_adapters=2)
        rng = np.random.default_rng(4)
        x0, x1 = rng.standard_normal((6, K)), rng.standard_normal((10, K))
        x, batch, views = pack_segments([(0, x0), (1, x1)], block_m=4)
        y = layer.forward_multi(x, batch)
        grads = layer.backward_multi(np.sin(y))
        assert set(grads.da) == {0, 1}
        assert grads.dx.shape == x.shape

    def test_single_adapter_batch_falls_back_to_fused(self, w):
        layer = make_layer(w, "fused_multi", n_adapters=1)
        x = np.random.default_rng(5).standard_normal((8, K))
        x_packed, batch, _ = pack_segments([(0, x)], block_m=4)
        layer.forward_multi(x_packed, batch)
        # The fallback records single-adapter fused profiles.
        assert any(p.name == "fused_xw_sb" for p in layer.ledger.profiles)

    def test_multi_requires_multi_strategy(self, w):
        layer = make_layer(w, "fused", n_adapters=2)
        x, batch, _ = pack_segments([(0, np.zeros((4, K)))], block_m=4)
        with pytest.raises(KernelConfigError, match="fused_multi"):
            layer.forward_multi(x, batch)

    def test_backward_multi_without_forward_rejected(self, w):
        layer = make_layer(w, "fused_multi", n_adapters=1)
        with pytest.raises(KernelConfigError):
            layer.backward_multi(np.zeros((4, N)))


class TestLedger:
    def test_ledger_accumulates_and_clears(self, w):
        layer = make_layer(w, "fused")
        x = np.random.default_rng(6).standard_normal((8, K))
        y = layer.forward(x)
        layer.backward(np.ones_like(y))
        assert layer.ledger.total_bytes() > 0
        assert layer.ledger.total_flops() > 0
        assert len(layer.ledger.profiles) == 5  # 2 fwd + 3 bwd kernels
        layer.ledger.clear()
        assert layer.ledger.profiles == []

    def test_fused_records_fewer_kernels_than_torch(self, w):
        x = np.random.default_rng(7).standard_normal((8, K))
        torch_layer = make_layer(w, "torch")
        fused_layer = make_layer(w, "fused")
        for layer in (torch_layer, fused_layer):
            y = layer.forward(x)
            layer.backward(np.ones_like(y))
        assert len(fused_layer.ledger.profiles) < len(torch_layer.ledger.profiles)

    def test_backward_without_forward_rejected(self, w):
        layer = make_layer(w)
        with pytest.raises(KernelConfigError):
            layer.backward(np.zeros((4, N)))
