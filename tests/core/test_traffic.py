"""Tests for the analytical traffic model against the paper's claims."""

import pytest

from repro.core import LoRAShape, lora_profiles, total_traffic, traffic_ratio
from repro.core.traffic import (
    full_fusion_recompute_forward,
    full_fusion_sync_forward,
    gemm_profile,
)
from repro.errors import KernelConfigError
from repro.gpu import H100, simulate_kernel_sequence

PAPER_SHAPE = LoRAShape(m=8192, k=4096, n=4096, r=16)


class TestShapeValidation:
    def test_negative_dim_rejected(self):
        with pytest.raises(KernelConfigError):
            LoRAShape(m=-1, k=4096, n=4096)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(KernelConfigError):
            LoRAShape(m=8, k=8, n=8, dtype="fp13")

    def test_num_tiles(self):
        assert LoRAShape(m=130, k=8, n=8, block_m=64).num_tiles == 3


class TestKernelCounts:
    def test_torch_forward_launches_five_kernels(self):
        # Figure 4 forward: dropout, X@W, X@A, S@B, MulAdd.
        assert len(lora_profiles("torch", "forward", PAPER_SHAPE)) == 5

    def test_torch_backward_launches_seven_kernels(self):
        assert len(lora_profiles("torch", "backward", PAPER_SHAPE)) == 7

    def test_fused_forward_launches_two_kernels(self):
        assert len(lora_profiles("fused", "forward", PAPER_SHAPE)) == 2

    def test_fused_backward_launches_three_kernels(self):
        assert len(lora_profiles("fused", "backward", PAPER_SHAPE)) == 3

    def test_no_dropout_removes_dropout_kernel(self):
        shape = LoRAShape(m=8192, k=4096, n=4096, r=16, dropout=False)
        names = [p.name for p in lora_profiles("torch", "forward", shape)]
        assert "dropout" not in names

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KernelConfigError, match="unknown strategy"):
            lora_profiles("mystery", "forward", PAPER_SHAPE)

    def test_unknown_direction_rejected(self):
        with pytest.raises(KernelConfigError, match="direction"):
            lora_profiles("torch", "sideways", PAPER_SHAPE)


class TestSection31Claims:
    """Quantitative claims from the motivation section."""

    def test_lora_raises_traffic_about_2_6x(self):
        # "total GPU global memory read/write traffic increases by
        # approximately 2.64x compared to the original frozen linear layer".
        ratio = traffic_ratio("torch", "frozen", PAPER_SHAPE)
        assert 2.3 <= ratio <= 3.2

    def test_lora_forward_slowdown_about_40_percent(self):
        frozen = simulate_kernel_sequence(
            lora_profiles("frozen", "forward", PAPER_SHAPE), H100
        ).total_time
        lora = simulate_kernel_sequence(
            lora_profiles("torch", "forward", PAPER_SHAPE), H100
        ).total_time
        slowdown = 1.0 - frozen / lora
        assert 0.30 <= slowdown <= 0.45

    def test_lora_backward_slowdown_about_36_percent(self):
        frozen = simulate_kernel_sequence(
            lora_profiles("frozen", "backward", PAPER_SHAPE), H100
        ).total_time
        lora = simulate_kernel_sequence(
            lora_profiles("torch", "backward", PAPER_SHAPE), H100
        ).total_time
        slowdown = 1.0 - frozen / lora
        assert 0.28 <= slowdown <= 0.45

    def test_rank_barely_changes_runtime(self):
        # Figure 3: r=16 vs r=32 nearly identical (memory-, not compute-bound).
        t16 = simulate_kernel_sequence(
            lora_profiles("torch", "forward", PAPER_SHAPE), H100
        ).total_time
        shape32 = LoRAShape(m=8192, k=4096, n=4096, r=32)
        t32 = simulate_kernel_sequence(
            lora_profiles("torch", "forward", shape32), H100
        ).total_time
        assert abs(t32 - t16) / t16 < 0.02

    def test_compile_gives_zero_forward_benefit(self):
        t_torch = simulate_kernel_sequence(
            lora_profiles("torch", "forward", PAPER_SHAPE), H100
        ).total_time
        t_compile = simulate_kernel_sequence(
            lora_profiles("compile", "forward", PAPER_SHAPE), H100
        ).total_time
        assert t_compile == pytest.approx(t_torch)

    def test_compile_backward_benefit_is_negligible(self):
        t_torch = simulate_kernel_sequence(
            lora_profiles("torch", "backward", PAPER_SHAPE), H100
        ).total_time
        t_compile = simulate_kernel_sequence(
            lora_profiles("compile", "backward", PAPER_SHAPE), H100
        ).total_time
        assert t_compile < t_torch
        assert (t_torch - t_compile) / t_torch < 0.05


class TestFusionSavings:
    def test_fused_moves_less_traffic_than_torch(self):
        assert traffic_ratio("fused", "torch", PAPER_SHAPE) < 0.7

    def test_traffic_ratio_grows_with_base_dimension(self):
        # Figure 19: savings shrink (ratio rises) as K=N grows, because the
        # untouched base-GEMM traffic dominates.
        ratios = [
            traffic_ratio("fused", "torch", LoRAShape(m=8192, k=d, n=d, r=16))
            for d in (4096, 5120, 8192)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_multi_traffic_close_to_fused(self):
        shape = LoRAShape(m=8192, k=4096, n=4096, r=16, num_adapters=4)
        fused = traffic_ratio("fused", "torch", shape)
        multi = traffic_ratio("fused_multi", "torch", shape)
        assert multi >= fused
        assert multi - fused < 0.05

    def test_fused_forward_is_faster(self):
        t_torch = simulate_kernel_sequence(
            lora_profiles("torch", "forward", PAPER_SHAPE), H100
        ).total_time
        t_fused = simulate_kernel_sequence(
            lora_profiles("fused", "forward", PAPER_SHAPE), H100
        ).total_time
        assert 1.1 < t_torch / t_fused < 1.5

    def test_multi_backward_slightly_slower_than_fused(self):
        shape = LoRAShape(m=8192, k=4096, n=4096, r=16, num_adapters=4)
        t_fused = simulate_kernel_sequence(
            lora_profiles("fused", "backward", shape), H100
        ).total_time
        t_multi = simulate_kernel_sequence(
            lora_profiles("fused_multi", "backward", shape), H100
        ).total_time
        assert t_fused < t_multi < t_fused * 1.25


class TestFigure9Ablation:
    """The rejected full-fusion designs must lose to split-graph fusion."""

    def _forward_time(self, profiles):
        return simulate_kernel_sequence(profiles, H100).total_time

    def test_split_beats_full_fusion_recompute(self):
        split = self._forward_time(lora_profiles("fused", "forward", PAPER_SHAPE))
        recompute = self._forward_time(full_fusion_recompute_forward(PAPER_SHAPE))
        assert split < recompute

    def test_split_beats_full_fusion_sync(self):
        split = self._forward_time(lora_profiles("fused", "forward", PAPER_SHAPE))
        sync = self._forward_time(full_fusion_sync_forward(PAPER_SHAPE))
        assert split < sync

    def test_recompute_cost_grows_with_m(self):
        small = full_fusion_recompute_forward(
            LoRAShape(m=2048, k=4096, n=4096, r=16)
        )[0]
        large = full_fusion_recompute_forward(
            LoRAShape(m=16384, k=4096, n=4096, r=16)
        )[0]
        assert large.flops > 8 * small.flops * 0.9


class TestGemmProfile:
    def test_small_operands_read_once(self):
        p = gemm_profile("g", 64, 64, 64, 2, "base_gemm")
        assert p.bytes_read == (64 * 64 + 64 * 64) * 2
        assert p.bytes_written == 64 * 64 * 2

    def test_large_operands_reload(self):
        # 8192x8192 fp16 operands exceed L2 residency and re-stream.
        p = gemm_profile("g", 8192, 8192, 8192, 2, "base_gemm")
        minimal = 2 * (8192 * 8192 * 2)
        assert p.bytes_read > minimal

    def test_flops_count(self):
        p = gemm_profile("g", 4, 5, 6, 2, "x")
        assert p.flops == 2 * 4 * 5 * 6
