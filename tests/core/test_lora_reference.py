"""Tests for the unfused reference LoRA math, including numeric gradchecks."""

import numpy as np
import pytest

from repro.core import (
    LoRAConfig,
    LoRAWeights,
    init_lora_weights,
    lora_backward_reference,
    lora_forward_reference,
)
from repro.core.lora import apply_dropout, dropout_mask
from repro.errors import KernelConfigError
from tests.helpers import numerical_grad


@pytest.fixture
def setup():
    rng = np.random.default_rng(7)
    m, k, n, r = 12, 10, 8, 3
    x = rng.standard_normal((m, k))
    w = rng.standard_normal((k, n)) / np.sqrt(k)
    cfg = LoRAConfig(rank=r, alpha=0.5, dropout=0.0)
    a = rng.standard_normal((k, r))
    b = rng.standard_normal((r, n))
    weights = LoRAWeights(a=a, b=b, config=cfg)
    return rng, x, w, weights


class TestConfigValidation:
    def test_negative_rank_rejected(self):
        with pytest.raises(KernelConfigError):
            LoRAConfig(rank=0)

    def test_dropout_one_rejected(self):
        with pytest.raises(KernelConfigError):
            LoRAConfig(dropout=1.0)

    def test_weight_shape_mismatch_rejected(self):
        cfg = LoRAConfig(rank=4)
        with pytest.raises(KernelConfigError):
            LoRAWeights(a=np.zeros((8, 3)), b=np.zeros((4, 8)), config=cfg)

    def test_weights_expose_dims(self):
        cfg = LoRAConfig(rank=4)
        w = LoRAWeights(a=np.zeros((8, 4)), b=np.zeros((4, 6)), config=cfg)
        assert w.in_features == 8
        assert w.out_features == 6


class TestInit:
    def test_b_zero_makes_adapter_identity(self, setup):
        rng, x, w, _ = setup
        cfg = LoRAConfig(rank=4, alpha=1.0, dropout=0.0)
        weights = init_lora_weights(x.shape[1], w.shape[1], cfg, rng)
        y, _ = lora_forward_reference(x, w, weights)
        np.testing.assert_allclose(y, x @ w, atol=1e-12)


class TestForward:
    def test_matches_equation_1(self, setup):
        _, x, w, weights = setup
        y, _ = lora_forward_reference(x, w, weights)
        expected = x @ w + weights.config.alpha * ((x @ weights.a) @ weights.b)
        np.testing.assert_allclose(y, expected, atol=1e-12)

    def test_dropout_requires_rng(self, setup):
        _, x, w, weights = setup
        cfg = LoRAConfig(rank=3, alpha=0.5, dropout=0.5)
        wet = LoRAWeights(a=weights.a, b=weights.b, config=cfg)
        with pytest.raises(KernelConfigError, match="rng"):
            lora_forward_reference(x, w, wet)

    def test_dropout_scales_kept_entries(self):
        rng = np.random.default_rng(3)
        x = np.ones((4, 6))
        mask = dropout_mask(x.shape, 0.5, rng)
        x_hat = apply_dropout(x, mask, 0.5)
        kept = x_hat[mask]
        assert np.all(kept == 2.0)
        assert np.all(x_hat[~mask] == 0.0)

    def test_context_saves_forward_tensors(self, setup):
        _, x, w, weights = setup
        _, ctx = lora_forward_reference(x, w, weights)
        np.testing.assert_array_equal(ctx.x, x)
        np.testing.assert_allclose(ctx.s, x @ weights.a, atol=1e-12)
        assert ctx.mask is None


class TestBackwardGradcheck:
    """Check analytic gradients against central differences."""

    def _loss_and_grads(self, x, w, weights, mask):
        y, ctx = lora_forward_reference(x, w, weights, mask=mask)
        dy = np.cos(y)  # arbitrary smooth upstream gradient: loss = sum(sin y)
        grads = lora_backward_reference(dy, w, weights, ctx)
        return grads

    def _scalar_loss(self, x, w, a, b, cfg, mask):
        weights = LoRAWeights(a=a, b=b, config=cfg)
        y, _ = lora_forward_reference(x, w, weights, mask=mask)
        return float(np.sum(np.sin(y)))

    @pytest.mark.parametrize("dropout", [0.0, 0.3])
    def test_grad_wrt_input_and_adapters(self, setup, dropout):
        rng, x, w, weights = setup
        cfg = LoRAConfig(rank=3, alpha=0.5, dropout=dropout)
        weights = LoRAWeights(a=weights.a, b=weights.b, config=cfg)
        mask = dropout_mask(x.shape, dropout, rng) if dropout else None
        grads = self._loss_and_grads(x, w, weights, mask)

        num_dx = numerical_grad(
            lambda x_: self._scalar_loss(x_, w, weights.a, weights.b, cfg, mask),
            x.copy(),
        )
        num_da = numerical_grad(
            lambda a_: self._scalar_loss(x, w, a_, weights.b, cfg, mask),
            weights.a.copy(),
        )
        num_db = numerical_grad(
            lambda b_: self._scalar_loss(x, w, weights.a, b_, cfg, mask),
            weights.b.copy(),
        )
        np.testing.assert_allclose(grads.dx, num_dx, atol=1e-6)
        np.testing.assert_allclose(grads.da, num_da, atol=1e-6)
        np.testing.assert_allclose(grads.db, num_db, atol=1e-6)

    def test_frozen_weight_gets_no_grad_attribute(self, setup):
        _, x, w, weights = setup
        grads = self._loss_and_grads(x, w, weights, None)
        assert not hasattr(grads, "dw")
