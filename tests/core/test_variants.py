"""Tests for the Section 7 LoRA variants (QLoRA, VeRA, DoRA)."""

import numpy as np
import pytest

from repro.core import LoRAConfig, LoRAShape, LoRAWeights, lora_forward_reference
from repro.core.variants import (
    QuantizedWeight,
    VeRAWeights,
    dequantize_nf4,
    dora_forward,
    qlora_forward,
    quantize_nf4,
    variant_forward_profiles,
    vera_backward_scales,
    vera_forward,
)
from repro.errors import KernelConfigError
from tests.helpers import numerical_grad

K, N, R = 16, 12, 3


@pytest.fixture
def problem():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((10, K))
    w = rng.standard_normal((K, N)) / np.sqrt(K)
    cfg = LoRAConfig(rank=R, alpha=0.8, dropout=0.0)
    weights = LoRAWeights(
        a=rng.standard_normal((K, R)), b=rng.standard_normal((R, N)),
        config=cfg,
    )
    return rng, x, w, weights


class TestNF4Quantization:
    def test_roundtrip_error_bounded(self, problem):
        _, _, w, _ = problem
        q = quantize_nf4(w)
        reconstructed = dequantize_nf4(q)
        # NF4 has 16 levels per absmax block: coarse but bounded.
        err = np.abs(reconstructed - w).max() / np.abs(w).max()
        assert err < 0.2

    def test_codes_are_4bit(self, problem):
        _, _, w, _ = problem
        q = quantize_nf4(w)
        assert q.codes.max() <= 15
        assert q.codes.dtype == np.uint8

    def test_zero_weight_safe(self):
        q = quantize_nf4(np.zeros((8, 8)))
        np.testing.assert_array_equal(dequantize_nf4(q), np.zeros((8, 8)))

    def test_non_matrix_rejected(self):
        with pytest.raises(KernelConfigError):
            quantize_nf4(np.zeros(5))


class TestQLoRA:
    def test_matches_reference_on_dequantized_weight(self, problem):
        _, x, w, weights = problem
        q = quantize_nf4(w)
        y_qlora, _ = qlora_forward(x, q, weights)
        w_deq = dequantize_nf4(q)
        y_ref, _ = lora_forward_reference(x, w_deq, weights)
        np.testing.assert_allclose(y_qlora, y_ref, atol=1e-12)

    def test_close_to_full_precision(self, problem):
        _, x, w, weights = problem
        y_q, _ = qlora_forward(x, quantize_nf4(w), weights)
        y_full, _ = lora_forward_reference(x, w, weights)
        # Quantisation noise only; same order of magnitude outputs.
        assert np.abs(y_q - y_full).max() < 0.5 * np.abs(y_full).max() + 0.5


class TestVeRA:
    def make_vera(self, problem):
        rng, x, w, weights = problem
        vera = VeRAWeights(
            a=weights.a, b=weights.b,
            d=rng.standard_normal(R), b_vec=rng.standard_normal(N),
            config=weights.config,
        )
        return x, w, vera

    def test_identity_scales_reduce_to_lora(self, problem):
        _, x, w, weights = problem
        vera = VeRAWeights(a=weights.a, b=weights.b, d=np.ones(R),
                           b_vec=np.ones(N), config=weights.config)
        y_vera, _ = vera_forward(x, w, vera)
        y_ref, _ = lora_forward_reference(x, w, weights)
        np.testing.assert_allclose(y_vera, y_ref, atol=1e-12)

    def test_scale_gradients_match_numeric(self, problem):
        x, w, vera = self.make_vera(problem)
        y, ctx = vera_forward(x, w, vera)
        dy = np.cos(y)  # loss = sum(sin(y))
        dd, db_vec = vera_backward_scales(dy, vera, ctx)

        def loss_d(d_):
            v = VeRAWeights(a=vera.a, b=vera.b, d=d_, b_vec=vera.b_vec,
                            config=vera.config)
            out, _ = vera_forward(x, w, v)
            return float(np.sum(np.sin(out)))

        def loss_b(b_):
            v = VeRAWeights(a=vera.a, b=vera.b, d=vera.d, b_vec=b_,
                            config=vera.config)
            out, _ = vera_forward(x, w, v)
            return float(np.sum(np.sin(out)))

        np.testing.assert_allclose(dd, numerical_grad(loss_d, vera.d.copy()),
                                   atol=1e-6)
        np.testing.assert_allclose(db_vec,
                                   numerical_grad(loss_b, vera.b_vec.copy()),
                                   atol=1e-6)

    def test_shape_validation(self, problem):
        _, _, _, weights = problem
        with pytest.raises(KernelConfigError):
            VeRAWeights(a=weights.a, b=weights.b, d=np.ones(R + 1),
                        b_vec=np.ones(N), config=weights.config)


class TestDoRA:
    def test_unit_magnitude_and_zero_b_is_normalised_base(self, problem):
        rng, x, w, weights = problem
        zero_b = LoRAWeights(a=weights.a, b=np.zeros((R, N)),
                             config=weights.config)
        magnitude = np.linalg.norm(w, axis=0)
        y = dora_forward(x, w, zero_b, magnitude)
        np.testing.assert_allclose(y, x @ w, atol=1e-12)

    def test_magnitude_scales_columns(self, problem):
        _, x, w, weights = problem
        base_mag = np.linalg.norm(
            w + weights.config.alpha * (weights.a @ weights.b), axis=0
        )
        y1 = dora_forward(x, w, weights, base_mag)
        y2 = dora_forward(x, w, weights, 2.0 * base_mag)
        np.testing.assert_allclose(y2, 2.0 * y1, atol=1e-12)

    def test_bad_magnitude_shape_rejected(self, problem):
        _, x, w, weights = problem
        with pytest.raises(KernelConfigError):
            dora_forward(x, w, weights, np.ones(N + 1))


class TestVariantProfiles:
    SHAPE = LoRAShape(m=4096, k=4096, n=4096, r=16)

    @pytest.mark.parametrize("variant", ["qlora", "vera", "dora"])
    def test_variant_adds_one_kernel_to_fused_plan(self, variant):
        profiles = variant_forward_profiles(variant, self.SHAPE)
        assert len(profiles) == 3  # fused fwd (2) + variant kernel

    def test_qlora_dequant_traffic_is_sub_weight_sized(self):
        profiles = variant_forward_profiles("qlora", self.SHAPE)
        dequant = profiles[-1]
        weight_bytes = self.SHAPE.k * self.SHAPE.n * self.SHAPE.elem_bytes
        assert dequant.bytes_read < weight_bytes  # reads 4-bit codes
        assert dequant.bytes_written == weight_bytes

    def test_unknown_variant_rejected(self):
        with pytest.raises(KernelConfigError):
            variant_forward_profiles("adapterdrop", self.SHAPE)

    def test_vera_overhead_negligible(self):
        from repro.gpu import H100, simulate_kernel_sequence

        fused = simulate_kernel_sequence(
            variant_forward_profiles("vera", self.SHAPE)[:2], H100
        ).total_time
        vera = simulate_kernel_sequence(
            variant_forward_profiles("vera", self.SHAPE), H100
        ).total_time
        assert vera / fused < 1.05
