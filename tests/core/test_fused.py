"""FusedLoRA must be numerically identical to the unfused reference.

This is the paper's losslessness guarantee at the kernel level: "Our
FusedLoRA and FusedMultiLoRA kernels are numerically stable, producing
outputs that are functionally identical to the baseline implementations".
With float64 numpy both paths are exactly the same math, so we compare at
round-off tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LoRAConfig,
    LoRAWeights,
    fused_dropout_matmul,
    fused_dys_dyb,
    fused_dyw_dsa,
    fused_lora_backward,
    fused_lora_forward,
    fused_xw_sb,
    lora_backward_reference,
    lora_forward_reference,
    matmul_da,
)
from repro.core.lora import dropout_mask


def make_problem(seed, m=16, k=12, n=10, r=4, alpha=0.7, dropout=0.0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k))
    w = rng.standard_normal((k, n)) / np.sqrt(k)
    weights = LoRAWeights(
        a=rng.standard_normal((k, r)),
        b=rng.standard_normal((r, n)),
        config=LoRAConfig(rank=r, alpha=alpha, dropout=dropout),
    )
    mask = dropout_mask(x.shape, dropout, rng) if dropout else None
    return x, w, weights, mask


class TestKernelPieces:
    def test_fused_dropout_matmul_no_dropout(self):
        x, _, weights, _ = make_problem(0)
        x_hat, s, mask = fused_dropout_matmul(x, weights.a, dropout=0.0)
        assert mask is None
        np.testing.assert_array_equal(x_hat, x)
        np.testing.assert_allclose(s, x @ weights.a, atol=1e-12)

    def test_fused_dropout_matmul_with_mask(self):
        x, _, weights, mask = make_problem(1, dropout=0.25)
        x_hat, s, out_mask = fused_dropout_matmul(
            x, weights.a, dropout=0.25, mask=mask
        )
        np.testing.assert_array_equal(out_mask, mask)
        np.testing.assert_allclose(s, x_hat @ weights.a, atol=1e-12)
        assert np.all(x_hat[~mask] == 0.0)

    def test_fused_xw_sb_accumulates_scaled_branch(self):
        x, w, weights, _ = make_problem(2)
        s = x @ weights.a
        y = fused_xw_sb(x, w, s, weights.b, alpha=0.7)
        np.testing.assert_allclose(y, x @ w + 0.7 * (s @ weights.b), atol=1e-12)

    def test_fused_dys_dyb_shapes_and_values(self):
        x, w, weights, _ = make_problem(3)
        s = x @ weights.a
        dy = np.ones((x.shape[0], w.shape[1]))
        db, ds = fused_dys_dyb(dy, s, weights.b, alpha=0.7)
        np.testing.assert_allclose(db, 0.7 * (s.T @ dy), atol=1e-12)
        np.testing.assert_allclose(ds, 0.7 * (dy @ weights.b.T), atol=1e-12)

    def test_matmul_da(self):
        x, _, weights, _ = make_problem(4)
        ds = np.ones((x.shape[0], weights.config.rank))
        np.testing.assert_allclose(matmul_da(x, ds), x.T @ ds, atol=1e-12)

    def test_fused_dyw_dsa_without_dropout(self):
        x, w, weights, _ = make_problem(5)
        m, n = x.shape[0], w.shape[1]
        dy = np.full((m, n), 0.5)
        ds = np.ones((m, weights.config.rank))
        dx = fused_dyw_dsa(dy, w, ds, weights.a, mask=None, keep_prob=1.0)
        np.testing.assert_allclose(dx, dy @ w.T + ds @ weights.a.T, atol=1e-12)


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("dropout", [0.0, 0.1, 0.5])
    def test_forward_matches_reference(self, dropout):
        x, w, weights, mask = make_problem(6, dropout=dropout)
        y_ref, _ = lora_forward_reference(x, w, weights, mask=mask)
        y_fused, _ = fused_lora_forward(x, w, weights, mask=mask)
        np.testing.assert_allclose(y_fused, y_ref, atol=1e-12)

    @pytest.mark.parametrize("dropout", [0.0, 0.1, 0.5])
    def test_backward_matches_reference(self, dropout):
        x, w, weights, mask = make_problem(7, dropout=dropout)
        y_ref, ctx_ref = lora_forward_reference(x, w, weights, mask=mask)
        _, ctx_fused = fused_lora_forward(x, w, weights, mask=mask)
        dy = np.sin(y_ref)
        g_ref = lora_backward_reference(dy, w, weights, ctx_ref)
        g_fused = fused_lora_backward(dy, w, weights, ctx_fused)
        np.testing.assert_allclose(g_fused.dx, g_ref.dx, atol=1e-12)
        np.testing.assert_allclose(g_fused.da, g_ref.da, atol=1e-12)
        np.testing.assert_allclose(g_fused.db, g_ref.db, atol=1e-12)

    def test_same_rng_stream_gives_same_dropout(self):
        x, w, weights, _ = make_problem(8, dropout=0.3)
        y_ref, _ = lora_forward_reference(
            x, w, weights, rng=np.random.default_rng(99)
        )
        y_fused, _ = fused_lora_forward(
            x, w, weights, rng=np.random.default_rng(99)
        )
        np.testing.assert_allclose(y_fused, y_ref, atol=1e-12)


class TestPropertyBased:
    @given(
        m=st.integers(1, 48),
        k=st.integers(1, 32),
        n=st.integers(1, 32),
        r=st.integers(1, 8),
        alpha=st.floats(0.01, 4.0),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_fused_equals_reference_on_random_shapes(self, m, k, n, r, alpha, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, k))
        w = rng.standard_normal((k, n))
        weights = LoRAWeights(
            a=rng.standard_normal((k, r)),
            b=rng.standard_normal((r, n)),
            config=LoRAConfig(rank=r, alpha=alpha, dropout=0.0),
        )
        y_ref, ctx_ref = lora_forward_reference(x, w, weights)
        y_fused, ctx_fused = fused_lora_forward(x, w, weights)
        np.testing.assert_allclose(y_fused, y_ref, atol=1e-9)
        dy = np.ones_like(y_ref)
        g_ref = lora_backward_reference(dy, w, weights, ctx_ref)
        g_fused = fused_lora_backward(dy, w, weights, ctx_fused)
        np.testing.assert_allclose(g_fused.dx, g_ref.dx, atol=1e-9)
        np.testing.assert_allclose(g_fused.da, g_ref.da, atol=1e-9)
        np.testing.assert_allclose(g_fused.db, g_ref.db, atol=1e-9)
