"""FusedMultiLoRA tile routing: equivalence with per-adapter FusedLoRA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LoRAConfig,
    LoRAWeights,
    MultiLoRABatch,
    PAD_ADAPTER_ID,
    Segment,
    build_tile_table,
    fused_lora_backward,
    fused_lora_forward,
    fused_multi_lora_backward,
    fused_multi_lora_forward,
    pack_segments,
)
from repro.errors import KernelConfigError

K, N = 12, 10
BLOCK = 4


def make_adapters(ranks=(3, 5), alphas=(0.5, 1.5), seed=0):
    rng = np.random.default_rng(seed)
    adapters = {}
    for i, (r, alpha) in enumerate(zip(ranks, alphas)):
        adapters[i] = LoRAWeights(
            a=rng.standard_normal((K, r)),
            b=rng.standard_normal((r, N)),
            config=LoRAConfig(rank=r, alpha=alpha, dropout=0.0, adapter_id=i),
        )
    return adapters


@pytest.fixture
def base_weight():
    return np.random.default_rng(1).standard_normal((K, N)) / np.sqrt(K)


class TestTileTable:
    def test_table_maps_tiles_to_adapters(self):
        table = build_tile_table(
            [Segment(0, 8), Segment(1, 4)], block_m=4
        )
        np.testing.assert_array_equal(table, [0, 0, 1])

    def test_unaligned_segment_rejected(self):
        with pytest.raises(KernelConfigError, match="not aligned"):
            build_tile_table([Segment(0, 6)], block_m=4)

    def test_nonpositive_block_rejected(self):
        with pytest.raises(KernelConfigError):
            build_tile_table([Segment(0, 4)], block_m=0)

    def test_zero_length_segment_rejected(self):
        with pytest.raises(KernelConfigError):
            Segment(0, 0)

    def test_batch_properties(self):
        batch = MultiLoRABatch([Segment(2, 8), Segment(0, 4), Segment(2, 4)],
                               block_m=4)
        assert batch.total_tokens == 16
        assert batch.num_tiles == 4
        assert batch.adapter_ids == [2, 0]
        assert batch.tile_bounds(1) == (4, 8)


class TestPackSegments:
    def test_pads_to_block_multiple(self):
        rng = np.random.default_rng(2)
        x0 = rng.standard_normal((5, K))
        x1 = rng.standard_normal((8, K))
        x, batch, views = pack_segments([(0, x0), (1, x1)], block_m=4)
        assert x.shape[0] == 8 + 8  # 5 -> 8, 8 stays
        np.testing.assert_array_equal(x[views[0]], x0)
        np.testing.assert_array_equal(x[views[1]], x1)
        # Padding rows are zero.
        assert np.all(x[5:8] == 0.0)

    def test_empty_input_rejected(self):
        with pytest.raises(KernelConfigError):
            pack_segments([], block_m=4)

    def test_mismatched_width_rejected(self):
        with pytest.raises(KernelConfigError):
            pack_segments([(0, np.zeros((4, 3))), (1, np.zeros((4, 5)))])


class TestForwardEquivalence:
    def test_two_adapters_match_per_adapter_fused(self, base_weight):
        adapters = make_adapters()
        rng = np.random.default_rng(3)
        x0 = rng.standard_normal((8, K))
        x1 = rng.standard_normal((12, K))
        x, batch, views = pack_segments([(0, x0), (1, x1)], block_m=BLOCK)

        y, _ = fused_multi_lora_forward(x, base_weight, adapters, batch)
        y0, _ = fused_lora_forward(x0, base_weight, adapters[0])
        y1, _ = fused_lora_forward(x1, base_weight, adapters[1])
        np.testing.assert_allclose(y[views[0]], y0, atol=1e-12)
        np.testing.assert_allclose(y[views[1]], y1, atol=1e-12)

    def test_interleaved_segments_of_same_adapter(self, base_weight):
        adapters = make_adapters()
        rng = np.random.default_rng(4)
        xs = [rng.standard_normal((4, K)) for _ in range(3)]
        x, batch, views = pack_segments(
            [(0, xs[0]), (1, xs[1]), (0, xs[2])], block_m=BLOCK
        )
        y, _ = fused_multi_lora_forward(x, base_weight, adapters, batch)
        for view, xi, aid in zip(views, xs, [0, 1, 0]):
            y_ref, _ = fused_lora_forward(xi, base_weight, adapters[aid])
            np.testing.assert_allclose(y[view], y_ref, atol=1e-12)

    def test_padding_tiles_get_base_output_only(self, base_weight):
        adapters = make_adapters()
        batch = MultiLoRABatch(
            [Segment(0, 4), Segment(PAD_ADAPTER_ID, 4)], block_m=4
        )
        x = np.random.default_rng(5).standard_normal((8, K))
        y, _ = fused_multi_lora_forward(x, base_weight, adapters, batch)
        np.testing.assert_allclose(y[4:], x[4:] @ base_weight, atol=1e-12)

    def test_unknown_adapter_rejected(self, base_weight):
        batch = MultiLoRABatch([Segment(7, 4)], block_m=4)
        x = np.zeros((4, K))
        with pytest.raises(KernelConfigError, match="unknown adapter"):
            fused_multi_lora_forward(x, base_weight, {}, batch)

    def test_row_count_mismatch_rejected(self, base_weight):
        adapters = make_adapters()
        batch = MultiLoRABatch([Segment(0, 8)], block_m=4)
        with pytest.raises(KernelConfigError, match="rows"):
            fused_multi_lora_forward(np.zeros((4, K)), base_weight, adapters, batch)


class TestBackwardEquivalence:
    def test_gradients_routed_per_adapter(self, base_weight):
        adapters = make_adapters()
        rng = np.random.default_rng(6)
        x0 = rng.standard_normal((8, K))
        x1 = rng.standard_normal((8, K))
        x, batch, views = pack_segments([(0, x0), (1, x1)], block_m=BLOCK)

        y, ctx = fused_multi_lora_forward(x, base_weight, adapters, batch)
        dy = np.sin(y)
        grads = fused_multi_lora_backward(dy, base_weight, adapters, ctx)

        for aid, xi, view in [(0, x0, views[0]), (1, x1, views[1])]:
            y_ref, ctx_ref = fused_lora_forward(xi, base_weight, adapters[aid])
            g_ref = fused_lora_backward(np.sin(y_ref), base_weight,
                                        adapters[aid], ctx_ref)
            np.testing.assert_allclose(grads.dx[view], g_ref.dx, atol=1e-12)
            np.testing.assert_allclose(grads.da[aid], g_ref.da, atol=1e-12)
            np.testing.assert_allclose(grads.db[aid], g_ref.db, atol=1e-12)

    def test_split_segments_accumulate_adapter_grads(self, base_weight):
        # One adapter's tokens split across two segments must produce the
        # same dA/dB as a single contiguous segment.
        adapters = make_adapters(ranks=(3,), alphas=(0.9,))
        rng = np.random.default_rng(7)
        x_full = rng.standard_normal((16, K))
        x_a, x_b = x_full[:8], x_full[8:]

        x1, batch1, _ = pack_segments([(0, x_full)], block_m=BLOCK)
        y1, ctx1 = fused_multi_lora_forward(x1, base_weight, adapters, batch1)
        g1 = fused_multi_lora_backward(np.cos(y1), base_weight, adapters, ctx1)

        x2, batch2, _ = pack_segments([(0, x_a), (0, x_b)], block_m=BLOCK)
        y2, ctx2 = fused_multi_lora_forward(x2, base_weight, adapters, batch2)
        g2 = fused_multi_lora_backward(np.cos(y2), base_weight, adapters, ctx2)

        np.testing.assert_allclose(g1.da[0], g2.da[0], atol=1e-12)
        np.testing.assert_allclose(g1.db[0], g2.db[0], atol=1e-12)

    def test_dropout_masks_respected_in_backward(self, base_weight):
        adapters = make_adapters(ranks=(3, 4), alphas=(1.0, 1.0), seed=8)
        for aid, p in [(0, 0.25), (1, 0.5)]:
            cfg = adapters[aid].config
            adapters[aid] = LoRAWeights(
                a=adapters[aid].a,
                b=adapters[aid].b,
                config=LoRAConfig(rank=cfg.rank, alpha=cfg.alpha, dropout=p,
                                  adapter_id=aid),
            )
        rng = np.random.default_rng(9)
        x0 = rng.standard_normal((8, K))
        x1 = rng.standard_normal((8, K))
        x, batch, views = pack_segments([(0, x0), (1, x1)], block_m=BLOCK)
        mask = np.random.default_rng(10).random(x.shape) >= 0.25

        y, ctx = fused_multi_lora_forward(
            x, base_weight, adapters, batch, mask=mask
        )
        grads = fused_multi_lora_backward(np.sin(y), base_weight, adapters, ctx)

        for aid, xi, view in [(0, x0, views[0]), (1, x1, views[1])]:
            y_ref, ctx_ref = fused_lora_forward(
                xi, base_weight, adapters[aid], mask=mask[view]
            )
            g_ref = fused_lora_backward(np.sin(y_ref), base_weight,
                                        adapters[aid], ctx_ref)
            np.testing.assert_allclose(grads.da[aid], g_ref.da, atol=1e-12)
            np.testing.assert_allclose(grads.db[aid], g_ref.db, atol=1e-12)


class TestPropertyBased:
    @given(
        lengths=st.lists(st.integers(1, 24), min_size=1, max_size=4),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_multi_matches_per_adapter_for_random_layouts(self, lengths, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((K, N))
        adapters = make_adapters(ranks=(2, 4, 3, 5)[: len(lengths)],
                                 alphas=(1.0,) * len(lengths), seed=seed)
        inputs = [
            (i % len(adapters), rng.standard_normal((length, K)))
            for i, length in enumerate(lengths)
        ]
        x, batch, views = pack_segments(inputs, block_m=BLOCK)
        y, _ = fused_multi_lora_forward(x, w, adapters, batch)
        for (aid, xi), view in zip(inputs, views):
            y_ref, _ = fused_lora_forward(xi, w, adapters[aid])
            np.testing.assert_allclose(y[view], y_ref, atol=1e-9)
