"""Tests for the parallelism profiler (capacity proposal)."""

import pytest

from repro.data import synthetic_dataset
from repro.distsim import ClusterSpec
from repro.errors import ScheduleError
from repro.gpu import H100
from repro.models import LLAMA3_70B
from repro.planner import min_required_capacity, propose_capacity
from repro.scheduler import AdapterJob


def jobs_for(dataset, samples=16, gbs=8, n=4):
    return [
        AdapterJob(a, synthetic_dataset(a, dataset, samples, seed=5), gbs)
        for a in range(n)
    ]


CLUSTER = ClusterSpec(gpu=H100, num_gpus=4)


class TestMinRequiredCapacity:
    def test_covers_longest_sample_padded(self):
        jobs = jobs_for("wikisum")
        longest = max(s.length for j in jobs for s in j.dataset.samples)
        floor = min_required_capacity(jobs, 64)
        assert floor >= longest
        assert floor % 64 == 0


class TestProposeCapacity:
    def test_requires_jobs(self):
        with pytest.raises(ScheduleError):
            propose_capacity([], LLAMA3_70B, CLUSTER)

    def test_short_dataset_prefers_small_capacity(self):
        report = propose_capacity(jobs_for("xsum"), LLAMA3_70B, CLUSTER,
                                  candidates=(2048, 4096, 8192, 16384))
        assert report.best_capacity <= 8192

    def test_long_dataset_respects_sample_floor(self):
        report = propose_capacity(jobs_for("wikisum"), LLAMA3_70B, CLUSTER,
                                  candidates=(2048, 8192))
        floor = min_required_capacity(jobs_for("wikisum"), 64)
        assert report.best_capacity >= floor

    def test_best_is_argmax_of_candidates(self):
        report = propose_capacity(jobs_for("mixed"), LLAMA3_70B, CLUSTER,
                                  candidates=(4096, 8192))
        best = max(report.candidates, key=lambda c: c.tokens_per_second)
        assert report.best_capacity == best.capacity

    def test_candidates_deduplicated_after_floor(self):
        # Both candidates below the floor collapse to one probe.
        jobs = jobs_for("wikisum")
        floor = min_required_capacity(jobs, 64)
        report = propose_capacity(jobs, LLAMA3_70B, CLUSTER,
                                  candidates=(64, 128))
        assert [c.capacity for c in report.candidates] == [floor]
