"""The paper's losslessness guarantee, verified numerically end to end.

Section 6: "The optimizations in LoRAFusion are designed to be lossless
... our adaptive scheduler rearranges samples to form balanced
microbatches, [but] it strictly preserves the order of global batches,
ensuring the sequence of gradient updates remains unchanged."

We verify this at full numeric fidelity: training N adapters *jointly*
through the scheduler + FusedMultiLoRA engine must produce, for every
adapter, the same per-batch losses and the same final parameters as
training that adapter *alone* -- up to float64 summation-order round-off.
"""

import numpy as np
import pytest

from repro.baselines import train_job_sequentially
from repro.core.lora import LoRAConfig
from repro.data.dataset import FinetuneDataset, Sample
from repro.errors import ScheduleError
from repro.models import TINY, TinyLoRATransformer
from repro.runtime import MultiLoRAEngine, NumericJob
from repro.scheduler import (
    AdapterJob,
    Assignment,
    Microbatch,
    MultiLoRAScheduler,
    Schedule,
    SchedulerConfig,
)

TOL = 1e-10


def make_numeric_jobs(rng, spec):
    """spec: list of (adapter_id, rank, num_samples, gbs)."""
    jobs = []
    for aid, rank, n, gbs in spec:
        streams = [
            rng.integers(0, TINY.vocab_size, int(rng.integers(4, 12)))
            for _ in range(n)
        ]
        jobs.append(
            NumericJob(
                adapter_id=aid,
                lora=LoRAConfig(rank=rank, alpha=1.0, dropout=0.0,
                                adapter_id=aid),
                token_streams=streams,
                global_batch_size=gbs,
            )
        )
    return jobs


def scheduler_jobs(jobs):
    out = []
    for job in jobs:
        samples = [
            Sample(job.adapter_id, i, len(t))
            for i, t in enumerate(job.token_streams)
        ]
        out.append(
            AdapterJob(job.adapter_id, FinetuneDataset(job.adapter_id, samples),
                       job.global_batch_size)
        )
    return out


def train_joint(jobs, num_stages=2, seed=7, **config_overrides):
    settings = dict(capacity=64, padding_multiple=1, num_stages=num_stages,
                    use_milp=False, group_size=2)
    settings.update(config_overrides)
    config = SchedulerConfig(**settings)
    schedule = MultiLoRAScheduler(scheduler_jobs(jobs), config).schedule()
    model = TinyLoRATransformer(TINY, np.random.default_rng(seed))
    engine = MultiLoRAEngine(model, jobs)
    result = engine.run(schedule)
    return model, result, schedule


def train_separate(jobs, seed=7):
    model = TinyLoRATransformer(TINY, np.random.default_rng(seed))
    results = {}
    for job in jobs:
        results[job.adapter_id] = train_job_sequentially(model, job)
    return model, results


class TestLosslessness:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(0)
        jobs = make_numeric_jobs(
            rng, [(0, 2, 6, 2), (1, 3, 6, 3), (2, 2, 4, 2)]
        )
        joint_model, joint_result, schedule = train_joint(jobs)
        seq_model, seq_results = train_separate(jobs)
        return jobs, joint_model, joint_result, schedule, seq_model, seq_results

    def test_final_parameters_match(self, trained):
        jobs, joint_model, _, _, seq_model, _ = trained
        for job in jobs:
            pj = joint_model.adapter_state(job.adapter_id)
            ps = seq_model.adapter_state(job.adapter_id)
            for key in pj:
                np.testing.assert_allclose(pj[key].a, ps[key].a, atol=TOL)
                np.testing.assert_allclose(pj[key].b, ps[key].b, atol=TOL)

    def test_loss_trajectories_match(self, trained):
        jobs, _, joint_result, _, _, seq_results = trained
        for job in jobs:
            joint = joint_result.losses[job.adapter_id]
            seq = seq_results[job.adapter_id].losses[job.adapter_id]
            assert len(joint) == len(seq) == job.num_global_batches()
            np.testing.assert_allclose(joint, seq, atol=TOL)

    def test_all_steps_taken(self, trained):
        jobs, _, joint_result, _, _, _ = trained
        for job in jobs:
            assert joint_result.steps[job.adapter_id] == job.num_global_batches()

    def test_schedule_actually_mixes_adapters(self, trained):
        # The equivalence is only meaningful if the joint run really packs
        # multiple adapters per microbatch somewhere.
        _, _, _, schedule, _, _ = trained
        assert any(mb.num_adapters > 1 for mb in schedule.microbatches)


class TestLosslessnessWithMilpAndMerge:
    def test_milp_and_merge_preserve_updates(self):
        rng = np.random.default_rng(3)
        jobs = make_numeric_jobs(rng, [(0, 2, 8, 2), (1, 2, 8, 4)])
        joint_model, joint_result, _ = train_joint(
            jobs, num_stages=2, use_milp=True, milp_timeout=2.0
        )
        seq_model, seq_results = train_separate(jobs)
        for job in jobs:
            pj = joint_model.adapter_state(job.adapter_id)
            ps = seq_model.adapter_state(job.adapter_id)
            for key in pj:
                np.testing.assert_allclose(pj[key].a, ps[key].a, atol=TOL)
            np.testing.assert_allclose(
                joint_result.losses[job.adapter_id],
                seq_results[job.adapter_id].losses[job.adapter_id],
                atol=TOL,
            )


class TestEngineGuards:
    def test_update_order_violation_detected(self):
        rng = np.random.default_rng(4)
        jobs = make_numeric_jobs(rng, [(0, 2, 4, 2)])
        # Hand-build an illegal schedule: batch 1 sample before batch 0
        # completes.
        bad = Microbatch(capacity=64, padding_multiple=1)
        bad.add(Assignment(Sample(0, 2, len(jobs[0].token_streams[2])), 1))
        first = Microbatch(capacity=64, padding_multiple=1)
        first.add(Assignment(Sample(0, 0, len(jobs[0].token_streams[0])), 0))
        schedule = Schedule(microbatches=[first, bad])
        model = TinyLoRATransformer(TINY, np.random.default_rng(0))
        engine = MultiLoRAEngine(model, jobs)
        with pytest.raises(ScheduleError, match="update ordering"):
            engine.run(schedule)

    def test_unknown_adapter_in_schedule_detected(self):
        rng = np.random.default_rng(5)
        jobs = make_numeric_jobs(rng, [(0, 2, 2, 2)])
        rogue = Microbatch(capacity=64, padding_multiple=1)
        rogue.add(Assignment(Sample(9, 0, 5), 0))
        model = TinyLoRATransformer(TINY, np.random.default_rng(0))
        engine = MultiLoRAEngine(model, jobs)
        with pytest.raises(ScheduleError, match="unknown job"):
            engine.run(Schedule(microbatches=[rogue]))

    def test_microbatch_granularity_does_not_change_updates(self):
        # Gradient accumulation property: sequential training with 1 or 2
        # samples per microbatch yields the same updates.
        rng = np.random.default_rng(6)
        jobs = make_numeric_jobs(rng, [(0, 2, 4, 4)])
        m1 = TinyLoRATransformer(TINY, np.random.default_rng(1))
        train_job_sequentially(m1, jobs[0], microbatch_samples=1)
        m2 = TinyLoRATransformer(TINY, np.random.default_rng(1))
        train_job_sequentially(m2, jobs[0], microbatch_samples=2)
        p1 = m1.adapter_state(0)
        p2 = m2.adapter_state(0)
        for key in p1:
            np.testing.assert_allclose(p1[key].a, p2[key].a, atol=TOL)
